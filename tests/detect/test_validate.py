"""K-fold cross-validation utilities."""

import numpy as np
import pytest

from repro.detect import TrainConfig, kfold_evaluate, kfold_indices
from tests.detect.test_model_train import TINY, synthetic_dataset


class TestKFoldIndices:
    def test_covers_everything_disjointly(self):
        for train_idx, test_idx in kfold_indices(20, 4, seed=1):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            assert len(train_idx) + len(test_idx) == 20

    def test_every_sample_tested_once(self):
        tested = np.concatenate([t for _, t in kfold_indices(17, 5, seed=0)])
        assert sorted(tested.tolist()) == list(range(17))

    def test_deterministic(self):
        a = kfold_indices(10, 3, seed=7)
        b = kfold_indices(10, 3, seed=7)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            kfold_indices(3, 5)


class TestKFoldEvaluate:
    def test_runs_all_folds_and_aggregates(self):
        dataset = synthetic_dataset(n=36, size=24, seed=1)
        result = kfold_evaluate(
            TINY, dataset, k=3,
            train_config=TrainConfig(epochs=2, batch_size=12, seed=0),
            iou_threshold=0.1,
        )
        assert len(result.folds) == 3
        assert 0.0 <= result.mean_ap <= 1.0
        assert result.std_ap >= 0.0
        assert "3-fold" in result.summary()
        for fold in result.folds:
            assert fold.train_size + fold.test_size == 36
