"""Full-scene scanning detection and NMS."""

import json

import pytest

from repro.detect import (
    SceneDetection,
    evaluate_scene_detections,
    non_max_suppression,
    scan_origins,
    scan_scene,
)
from repro.geo import Crossing, WatershedConfig, build_scene


def det(r, c, conf, size=12.0):
    return SceneDetection(row=r, col=c, height=size, width=size, confidence=conf)


class TestNMS:
    def test_keeps_most_confident(self):
        kept = non_max_suppression([det(10, 10, 0.6), det(12, 12, 0.9)], radius=10)
        assert len(kept) == 1 and kept[0].confidence == 0.9

    def test_distant_detections_survive(self):
        kept = non_max_suppression([det(10, 10, 0.6), det(80, 80, 0.9)], radius=10)
        assert len(kept) == 2

    def test_empty_input(self):
        assert non_max_suppression([], radius=10) == []

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            non_max_suppression([], radius=0)

    def test_chain_suppression_is_greedy(self):
        """A mid-confidence detection suppressed by the best does not
        itself suppress a far third."""
        kept = non_max_suppression(
            [det(0, 0, 0.9), det(0, 9, 0.8), det(0, 18, 0.7)], radius=10
        )
        assert [k.confidence for k in kept] == [0.9, 0.7]

    def test_confidence_ties_keep_one(self):
        """Equal-confidence neighbors: exactly one survives (stable
        greedy pass, no mutual suppression dropping both)."""
        kept = non_max_suppression([det(10, 10, 0.8), det(12, 12, 0.8)],
                                   radius=10)
        assert len(kept) == 1 and kept[0].confidence == 0.8

    def test_distance_exactly_radius_is_suppressed(self):
        """Boundary pin: survival requires distance strictly greater
        than radius, so distance == radius is still suppressed."""
        kept = non_max_suppression([det(0, 0, 0.9), det(0, 10, 0.8)],
                                   radius=10)
        assert len(kept) == 1
        kept = non_max_suppression([det(0, 0, 0.9), det(0, 10.001, 0.8)],
                                   radius=10)
        assert len(kept) == 2


class TestEvaluate:
    def gts(self):
        return [Crossing(20, 20, 10, 10), Crossing(60, 60, 10, 10)]

    def test_perfect_matching(self):
        scores = evaluate_scene_detections(
            [det(20, 20, 0.9), det(61, 59, 0.8)], self.gts()
        )
        assert scores.true_positives == 2
        assert scores.precision == 1.0 and scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_misses_counted(self):
        scores = evaluate_scene_detections([det(20, 20, 0.9)], self.gts())
        assert scores.false_negatives == 1
        assert scores.recall == 0.5

    def test_false_positive_counted(self):
        scores = evaluate_scene_detections(
            [det(20, 20, 0.9), det(100, 100, 0.9)], self.gts()
        )
        assert scores.false_positives == 1

    def test_one_to_one_matching(self):
        """Two detections cannot both claim the same ground truth."""
        scores = evaluate_scene_detections(
            [det(20, 20, 0.9), det(21, 21, 0.8)], self.gts()
        )
        assert scores.true_positives == 1
        assert scores.false_positives == 1

    def test_match_radius_respected(self):
        scores = evaluate_scene_detections([det(40, 40, 0.9)], self.gts(),
                                           match_radius=5.0)
        assert scores.true_positives == 0

    def test_empty_cases(self):
        scores = evaluate_scene_detections([], self.gts())
        assert scores.recall == 0.0 and scores.precision == 0.0
        assert scores.mean_center_error == 0.0

    def test_zero_matches_serializes_to_valid_json(self):
        """No-match scores must round-trip through strict JSON — the
        spec has no NaN literal, so mean_center_error is 0.0, never NaN."""
        scores = evaluate_scene_detections([det(100, 100, 0.9)], self.gts())
        assert scores.true_positives == 0
        payload = json.dumps({"mean_center_error": scores.mean_center_error},
                             allow_nan=False)
        assert json.loads(payload)["mean_center_error"] == 0.0


class TestScanOrigins:
    def test_exact_multiple(self):
        origins = scan_origins(192, 64, 64)
        rows = sorted({r for r, _ in origins})
        assert rows == [0, 64, 128]

    def test_remainder_stride_appends_final_origin(self):
        """size - window not a multiple of stride: the trailing origin
        still reaches the scene edge and no origin is duplicated."""
        origins = scan_origins(100, 30, 25)  # size-window = 70, stride 25
        rows = sorted({r for r, _ in origins})
        assert rows == [0, 25, 50, 70]
        assert len(origins) == len(set(origins))
        covered = set()
        for r, _ in origins:
            covered.update(range(r, r + 30))
        assert covered == set(range(100))

    def test_window_equals_scene(self):
        assert scan_origins(64, 64, 50) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            scan_origins(64, 100, 10)
        with pytest.raises(ValueError):
            scan_origins(64, 32, 0)


class TestScanScene:
    @pytest.fixture(scope="class")
    def scene(self):
        return build_scene(WatershedConfig(size=192, road_spacing=64,
                                           stream_threshold=600, seed=5))

    def test_untrained_model_runs_and_respects_threshold(self, scene):
        from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
        from repro.detect import SPPNetDetector

        arch = SPPNetConfig(
            convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
            pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
            spp_levels=(2, 1), fc_sizes=(32,), name="scan-test",
        )
        model = SPPNetDetector(arch, seed=0)
        detections = scan_scene(model, scene, window=64, stride=48,
                                confidence_threshold=0.99)
        for d in detections:
            assert d.confidence >= 0.99
            assert 0 <= d.row < scene.size and 0 <= d.col < scene.size

    def test_window_validation(self, scene):
        from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
        from repro.detect import SPPNetDetector

        arch = SPPNetConfig(
            convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
            spp_levels=(1,), fc_sizes=(16,), name="tiny",
        )
        with pytest.raises(ValueError):
            scan_scene(SPPNetDetector(arch), scene, window=1000)

    def test_service_path_matches_local_predict(self, scene):
        """scan_scene(service=...) returns the same detections as the
        direct predict path, modulo float order — same windows, same
        model, one goes through the batcher."""
        from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
        from repro.detect import SPPNetDetector
        from repro.serve import BatchPolicy, InferenceService

        arch = SPPNetConfig(
            convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
            pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
            spp_levels=(2, 1), fc_sizes=(32,), name="scan-serve",
        )
        model = SPPNetDetector(arch, seed=0)
        kwargs = dict(window=64, stride=48, confidence_threshold=0.5)
        local = scan_scene(model, scene, **kwargs)
        with InferenceService(model, BatchPolicy(max_batch=8,
                                                 max_wait_ms=5.0)) as service:
            served = scan_scene(model, scene, service=service, **kwargs)
            assert service.metrics.completed.value > 0
        assert len(local) == len(served)
        for a, b in zip(sorted(local, key=lambda d: d.center),
                        sorted(served, key=lambda d: d.center)):
            assert a.center == b.center
            assert a.confidence == pytest.approx(b.confidence, abs=1e-6)
