"""IoU, precision/recall, and Equation-1 AP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect import (
    average_precision,
    iou_cxcywh,
    precision_recall,
    score_detections,
)

settings.register_profile("detect", deadline=None, max_examples=40)
settings.load_profile("detect")


def box(cx, cy, w, h):
    return np.array([cx, cy, w, h])


class TestIoU:
    def test_identical_boxes(self):
        b = box(0.5, 0.5, 0.2, 0.2)
        assert iou_cxcywh(b, b) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou_cxcywh(box(0.2, 0.2, 0.1, 0.1), box(0.8, 0.8, 0.1, 0.1)) == 0.0

    def test_half_overlap(self):
        a = box(0.0, 0.0, 2.0, 2.0)
        b = box(1.0, 0.0, 2.0, 2.0)  # shifted by half width
        assert iou_cxcywh(a, b) == pytest.approx(2.0 / 6.0)

    def test_contained_box(self):
        outer = box(0.5, 0.5, 0.4, 0.4)
        inner = box(0.5, 0.5, 0.2, 0.2)
        assert iou_cxcywh(outer, inner) == pytest.approx(0.25)

    def test_zero_area_box(self):
        assert iou_cxcywh(box(0.5, 0.5, 0.0, 0.0), box(0.5, 0.5, 0.2, 0.2)) == 0.0

    def test_batch_broadcast(self):
        a = np.stack([box(0.5, 0.5, 0.2, 0.2)] * 3)
        assert iou_cxcywh(a, a).shape == (3,)

    @given(st.floats(0.1, 0.9), st.floats(0.1, 0.9),
           st.floats(0.01, 0.5), st.floats(0.01, 0.5),
           st.floats(0.1, 0.9), st.floats(0.1, 0.9),
           st.floats(0.01, 0.5), st.floats(0.01, 0.5))
    def test_iou_bounded_and_symmetric(self, ax, ay, aw, ah, bx, by, bw, bh):
        a, b = box(ax, ay, aw, ah), box(bx, by, bw, bh)
        v = iou_cxcywh(a, b)
        assert 0.0 <= v <= 1.0 + 1e-12
        assert v == pytest.approx(iou_cxcywh(b, a))


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        conf = np.array([0.9, 0.8, 0.2, 0.1])
        tp = np.array([True, True, False, False])
        precision, recall = precision_recall(conf, tp, num_ground_truth=2)
        assert np.allclose(precision, [1, 1, 2 / 3, 0.5])
        assert np.allclose(recall, [0.5, 1, 1, 1])

    def test_worst_ranking(self):
        conf = np.array([0.9, 0.1])
        tp = np.array([False, True])
        precision, recall = precision_recall(conf, tp, 1)
        assert np.allclose(precision, [0, 0.5])

    def test_zero_ground_truth(self):
        precision, recall = precision_recall(np.array([0.5]), np.array([False]), 0)
        assert np.allclose(recall, [0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_recall(np.zeros(2), np.zeros(3, bool), 1)
        with pytest.raises(ValueError):
            precision_recall(np.zeros(2), np.zeros(2, bool), -1)


class TestAveragePrecision:
    def test_perfect_detector_ap_one(self):
        precision = np.array([1.0, 1.0])
        recall = np.array([0.5, 1.0])
        assert average_precision(precision, recall) == pytest.approx(1.0)

    def test_equation1_literal(self):
        """AP = sum (R_i - R_{i-1}) * P_i, exactly as printed."""
        precision = np.array([1.0, 0.5, 2 / 3])
        recall = np.array([0.5, 0.5, 1.0])
        expected = (0.5 - 0) * 1.0 + (0.5 - 0.5) * 0.5 + (1.0 - 0.5) * (2 / 3)
        assert average_precision(precision, recall) == pytest.approx(expected)

    def test_empty(self):
        assert average_precision(np.array([]), np.array([])) == 0.0

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(2), np.zeros(3))

    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    def test_ap_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        conf = rng.random(n)
        tp = rng.random(n) < 0.5
        gt = max(1, int(tp.sum()))
        precision, recall = precision_recall(conf, tp, gt)
        assert 0.0 <= average_precision(precision, recall) <= 1.0 + 1e-9


class TestScoreDetections:
    def _perfect(self, n=6):
        labels = np.array([1, 1, 1, 0, 0, 0])[:n]
        gt = np.zeros((n, 4))
        gt[labels == 1] = box(0.5, 0.5, 0.2, 0.2)
        conf = np.where(labels == 1, 0.9, 0.1).astype(float)
        return conf, gt.copy(), labels, gt

    def test_perfect_detections(self):
        conf, pred, labels, gt = self._perfect()
        scores = score_detections(conf, pred, labels, gt)
        assert scores.ap == pytest.approx(1.0)
        assert scores.accuracy == 1.0
        assert scores.mean_iou_tp == pytest.approx(1.0)

    def test_confident_misses_hurt_ap(self):
        conf, pred, labels, gt = self._perfect()
        conf[3] = 0.99  # a confident false positive ranks first
        scores = score_detections(conf, pred, labels, gt)
        assert scores.ap < 1.0

    def test_bad_boxes_kill_tp(self):
        conf, pred, labels, gt = self._perfect()
        pred[labels == 1] = box(0.1, 0.1, 0.05, 0.05)
        scores = score_detections(conf, pred, labels, gt)
        assert scores.ap == 0.0

    def test_iou_threshold_monotonicity(self):
        """AP never increases as the IoU threshold tightens."""
        rng = np.random.default_rng(0)
        n = 40
        labels = (rng.random(n) < 0.5).astype(int)
        gt = np.zeros((n, 4))
        gt[labels == 1] = rng.uniform(0.3, 0.7, (int(labels.sum()), 4))
        pred = gt + rng.normal(0, 0.05, gt.shape)
        conf = rng.random(n)
        aps = [score_detections(conf, pred, labels, gt, iou_threshold=t).ap
               for t in (0.1, 0.3, 0.5, 0.7)]
        assert all(a >= b - 1e-12 for a, b in zip(aps, aps[1:]))

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            score_detections(np.zeros(2), np.zeros((3, 4)), np.zeros(2),
                             np.zeros((2, 4)))
