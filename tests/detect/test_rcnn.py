"""Faster-R-CNN-style baseline: components and learning behaviour."""

import numpy as np
import pytest

from repro.detect import FasterRCNNLite, RCNNConfig, evaluate_rcnn, train_rcnn
from repro.detect.rcnn import _anchor_targets
from repro.tensor import Tensor
from tests.detect.test_model_train import synthetic_dataset

SMALL = RCNNConfig(backbone_channels=(16, 32), proposal_count=3, anchor_size=0.2)


@pytest.fixture(scope="module")
def model():
    return FasterRCNNLite(SMALL, seed=0)


@pytest.fixture(scope="module")
def data():
    return synthetic_dataset(n=48, size=32, seed=0).split(0.75, seed=0)


class TestComponents:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RCNNConfig(backbone_channels=())
        with pytest.raises(ValueError):
            RCNNConfig(anchor_size=1.5)
        with pytest.raises(ValueError):
            RCNNConfig(proposal_count=0)

    def test_objectness_shape(self, model):
        x = Tensor(np.random.default_rng(0).random((2, 4, 32, 32)))
        obj = model.objectness(model.features(x))
        assert obj.shape == (2, 1, 8, 8)

    def test_propose_ranks_by_objectness(self, model):
        obj = np.zeros((1, 1, 8, 8))
        obj[0, 0, 3, 5] = 9.0
        obj[0, 0, 6, 1] = 5.0
        proposals = model.propose(obj)
        assert proposals.shape == (1, 3, 4)
        cx, cy = proposals[0, 0, 0], proposals[0, 0, 1]
        assert cx == pytest.approx((5 + 0.5) / 8)
        assert cy == pytest.approx((3 + 0.5) / 8)

    def test_propose_fixed_anchor_size(self, model):
        proposals = model.propose(np.zeros((2, 1, 8, 8)))
        assert np.allclose(proposals[..., 2:], SMALL.anchor_size)

    def test_roi_features_fixed_length(self, model):
        x = Tensor(np.random.default_rng(1).random((2, 4, 32, 32)))
        feature = model.features(x)
        boxes = np.tile([0.5, 0.5, 0.2, 0.2], (2, 3, 1))
        pooled = model.roi_features(feature, boxes)
        assert pooled.shape == (6, 32 * SMALL.roi_pool**2)

    def test_refined_boxes_near_proposals(self, model):
        """Delta decode keeps boxes near the proposal (bounded shift)."""
        x = Tensor(np.random.default_rng(2).random((1, 4, 32, 32)))
        feature = model.features(x)
        boxes = np.array([[[0.5, 0.5, 0.2, 0.2]]])
        _, refined = model.classify_rois(feature, boxes)
        shift = SMALL.anchor_size / 2
        assert abs(refined.data[0, 0] - 0.5) <= shift + 1e-9
        assert abs(refined.data[0, 1] - 0.5) <= shift + 1e-9

    def test_forward_full_pipeline(self, model):
        x = Tensor(np.random.default_rng(3).random((2, 4, 32, 32)))
        obj, proposals, cls_logits, refined = model(x)
        assert proposals.shape == (2, 3, 4)
        assert cls_logits.shape == (6, 2)
        assert refined.shape == (6, 4)


class TestAnchorTargets:
    def test_positive_cells_near_gt(self):
        labels = np.array([1])
        gt = np.array([[0.5, 0.5, 0.2, 0.2]])
        targets = _anchor_targets((1, 1, 8, 8), labels, gt, anchor=0.2)
        assert targets[0, 0, 4, 4] == 1 or targets[0, 0, 3, 3] == 1
        assert targets[0, 0, 0, 0] == 0

    def test_negative_image_all_zero(self):
        targets = _anchor_targets((1, 1, 8, 8), np.array([0]),
                                  np.zeros((1, 4)), anchor=0.2)
        assert targets.sum() == 0


class TestLearning:
    def test_baseline_learns_toy_task(self, data):
        train, test = data
        model = train_rcnn(train, SMALL, epochs=8, batch_size=8,
                           learning_rate=0.01, seed=0)
        scores = evaluate_rcnn(model, test, iou_threshold=0.1)
        assert scores.accuracy > 0.8
        assert scores.ap > 0.4

    def test_pos_weight_validation(self):
        from repro.tensor import Tensor, losses

        with pytest.raises(ValueError):
            losses.binary_cross_entropy_with_logits(
                Tensor(np.zeros(3)), np.zeros(3), pos_weight=-1.0
            )

    def test_pos_weight_changes_loss(self):
        from repro.tensor import Tensor, losses

        logits = Tensor(np.array([2.0, -2.0]))
        targets = np.array([1.0, 0.0])
        plain = losses.binary_cross_entropy_with_logits(logits, targets)
        weighted = losses.binary_cross_entropy_with_logits(
            logits, targets, pos_weight=10.0
        )
        assert weighted.item() > plain.item()
