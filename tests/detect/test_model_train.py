"""SPP-Net detector model and the training loop (tiny configs for speed)."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import (
    SPPNetDetector,
    TrainConfig,
    evaluate_detector,
    predict,
    train_detector,
)
from repro.geo import ChipDataset
from repro.tensor import Tensor

TINY = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
    pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
    spp_levels=(2, 1),
    fc_sizes=(32,),
    in_channels=4,
    name="tiny",
)


def synthetic_dataset(n=48, size=24, seed=0):
    """Crossing = bright square blob; trivial but real learning signal."""
    rng = np.random.default_rng(seed)
    images = rng.random((n, 4, size, size)).astype(np.float32) * 0.2
    labels = np.zeros(n, dtype=np.int64)
    boxes = np.zeros((n, 4), dtype=np.float32)
    for i in range(n // 2):
        labels[i] = 1
        r, c = rng.integers(6, size - 6, 2)
        images[i, :, r - 3:r + 3, c - 3:c + 3] += 0.7
        boxes[i] = [(c) / size, (r) / size, 6 / size, 6 / size]
    order = rng.permutation(n)
    return ChipDataset(images[order], labels[order], boxes[order], size)


@pytest.fixture(scope="module")
def data():
    ds = synthetic_dataset()
    return ds.split(0.75, seed=0)


class TestModel:
    def test_forward_shapes(self):
        model = SPPNetDetector(TINY, seed=0)
        x = Tensor(np.random.default_rng(0).random((3, 4, 24, 24)))
        logits, boxes = model(x)
        assert logits.shape == (3, 2)
        assert boxes.shape == (3, 4)
        assert (boxes.data >= 0).all() and (boxes.data <= 1).all()

    def test_variable_input_sizes(self):
        """SPP property: same weights, any input size >= minimum."""
        model = SPPNetDetector(TINY, seed=0)
        for size in (16, 24, 37):
            x = Tensor(np.random.default_rng(1).random((1, 4, size, size)))
            logits, _ = model(x)
            assert logits.shape == (1, 2)

    def test_min_input_size_consistent(self):
        min_size = TINY.min_input_size()
        model = SPPNetDetector(TINY, seed=0)
        x = Tensor(np.zeros((1, 4, min_size, min_size)))
        model(x)  # must not raise
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 4, min_size - 4, min_size - 4))))

    def test_input_validation(self):
        model = SPPNetDetector(TINY, seed=0)
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((4, 24, 24))))
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 3, 24, 24))))

    def test_seed_reproducible(self):
        a = SPPNetDetector(TINY, seed=5)
        b = SPPNetDetector(TINY, seed=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_predict_scores_probabilities(self):
        model = SPPNetDetector(TINY, seed=0)
        scores = model.predict_scores(Tensor(np.random.random((5, 4, 24, 24))))
        assert scores.shape == (5,)
        assert (scores >= 0).all() and (scores <= 1).all()


class TestTraining:
    def test_loss_decreases_and_ap_meaningful(self, data):
        train, test = data
        result = train_detector(TINY, train, test,
                                TrainConfig(epochs=6, batch_size=8, seed=0))
        assert result.history[-1].mean_loss < result.history[0].mean_loss
        assert result.test_scores is not None
        assert result.test_scores.accuracy > 0.7

    def test_history_records_epochs(self, data):
        train, test = data
        result = train_detector(TINY, train, test,
                                TrainConfig(epochs=2, batch_size=8))
        assert [h.epoch for h in result.history] == [1, 2]
        assert all(h.duration_s > 0 for h in result.history)

    def test_eval_every(self, data):
        train, test = data
        result = train_detector(TINY, train, test,
                                TrainConfig(epochs=2, batch_size=8, eval_every=1))
        assert all(h.test_ap is not None for h in result.history)

    def test_dtype_restored_after_training(self, data):
        from repro.tensor import default_dtype

        before = default_dtype()
        train, test = data
        train_detector(TINY, train, None, TrainConfig(epochs=1, batch_size=8))
        assert default_dtype() == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)


class TestPredictionAPI:
    def test_predict_batches_consistent(self, data):
        train, _ = data
        model = SPPNetDetector(TINY, seed=0)
        c1, b1 = predict(model, train.images, batch_size=4)
        c2, b2 = predict(model, train.images, batch_size=16)
        assert np.allclose(c1, c2, atol=1e-6)
        assert np.allclose(b1, b2, atol=1e-6)

    def test_predict_shape_validation(self):
        model = SPPNetDetector(TINY, seed=0)
        with pytest.raises(ValueError):
            predict(model, np.zeros((4, 24, 24)))

    def test_evaluate_returns_scores(self, data):
        _, test = data
        model = SPPNetDetector(TINY, seed=0)
        scores = evaluate_detector(model, test)
        assert 0.0 <= scores.ap <= 1.0
        assert scores.num_ground_truth == int((test.labels == 1).sum())
