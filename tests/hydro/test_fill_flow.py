"""Priority-flood filling and D8 routing, with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hydro import (
    D8_OFFSETS,
    FLOW_NONE,
    depression_mask,
    downstream_index,
    flow_accumulation,
    flow_direction,
    priority_flood_fill,
)

settings.register_profile("hydro", deadline=None, max_examples=25)
settings.load_profile("hydro")


def bowl(n=9, depth=2.0):
    """A DEM with a single interior depression."""
    dem = np.fromfunction(lambda r, c: ((r - n // 2) ** 2 + (c - n // 2) ** 2) ** 0.5,
                          (n, n))
    dem = dem.max() - dem  # peak at center
    dem[n // 2, n // 2] -= depth + dem[n // 2, n // 2]
    return dem


@st.composite
def random_dems(draw, max_n=14):
    n = draw(st.integers(4, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).random((n, n)) * 10


class TestPriorityFlood:
    def test_never_lowers(self):
        dem = bowl()
        filled = priority_flood_fill(dem)
        assert (filled >= dem - 1e-12).all()

    def test_fills_single_depression_to_pour_point(self):
        dem = np.ones((5, 5))
        dem[2, 2] = 0.0
        filled = priority_flood_fill(dem)
        assert filled[2, 2] == pytest.approx(1.0)

    def test_border_untouched(self):
        dem = bowl()
        filled = priority_flood_fill(dem)
        assert np.allclose(filled[0, :], dem[0, :])
        assert np.allclose(filled[:, -1], dem[:, -1])

    def test_epsilon_produces_no_interior_pits(self):
        dem = bowl(11)
        filled = priority_flood_fill(dem, epsilon=1e-4)
        direction = flow_direction(filled)
        assert (direction[1:-1, 1:-1] != FLOW_NONE).all()

    def test_tiny_dem_passthrough(self):
        dem = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(priority_flood_fill(dem), dem)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            priority_flood_fill(np.zeros(5))

    @given(random_dems())
    def test_idempotent(self, dem):
        once = priority_flood_fill(dem)
        twice = priority_flood_fill(once)
        assert np.allclose(once, twice)

    @given(random_dems())
    def test_no_depressions_remain(self, dem):
        filled = priority_flood_fill(dem)
        assert not depression_mask(filled).any()

    def test_depression_mask_flags_bowl(self):
        assert depression_mask(bowl()).any()


class TestFlowDirection:
    def test_west_gradient_flows_east(self):
        dem = np.tile(np.linspace(10, 0, 8), (8, 1))
        direction = flow_direction(dem)
        assert (direction[:, :-1] == 0).all()  # code 0 = East

    def test_pit_has_no_direction(self):
        dem = np.ones((3, 3))
        dem[1, 1] = 0.0
        assert flow_direction(dem)[1, 1] == FLOW_NONE

    def test_downstream_index_consistency(self):
        dem = np.tile(np.linspace(10, 0, 6), (6, 1))
        direction = flow_direction(dem)
        down = downstream_index(direction)
        r, c = 2, 3
        dr, dc = D8_OFFSETS[direction[r, c]]
        assert down[r, c] == (r + dr) * 6 + (c + dc)

    def test_offgrid_flow_marked_negative(self):
        dem = np.tile(np.linspace(10, 0, 6), (6, 1))
        down = downstream_index(flow_direction(dem))
        assert (down[:, -1] == -1).all()  # east edge drains off-grid


class TestFlowAccumulation:
    def test_linear_slope_accumulates_along_rows(self):
        dem = np.tile(np.linspace(10, 0, 7), (3, 1))
        acc = flow_accumulation(dem)
        assert (acc[:, 0] == 1).all()
        assert (acc[:, -1] >= acc[:, 0]).all()

    @given(random_dems())
    def test_conservation_on_filled_dem(self, dem):
        """Every cell contributes exactly itself: max accumulation <= n*n
        and every cell >= 1."""
        filled = priority_flood_fill(dem, epsilon=1e-5)
        acc = flow_accumulation(filled)
        assert (acc >= 1).all()
        assert acc.max() <= dem.size

    @given(random_dems(max_n=10))
    def test_downstream_monotonicity(self, dem):
        """Accumulation never decreases along a flow path."""
        filled = priority_flood_fill(dem, epsilon=1e-5)
        direction = flow_direction(filled)
        acc = flow_accumulation(filled, direction)
        down = downstream_index(direction)
        n = dem.shape[1]
        for r in range(dem.shape[0]):
            for c in range(n):
                target = down[r, c]
                if target >= 0:
                    tr, tc = divmod(int(target), n)
                    assert acc[tr, tc] >= acc[r, c]
