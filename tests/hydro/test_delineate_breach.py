"""Stream delineation, terminations, breaching, and connectivity metrics."""

import numpy as np
import pytest

from repro.hydro import (
    assess_connectivity,
    breach_at_crossing,
    breach_dem,
    delineate_streams,
    priority_flood_fill,
    trace_flow_path,
)


def valley_with_dam(n=24, dam_col=None, dam_height=5.0):
    """A V-valley draining east with an optional N-S embankment."""
    rows = np.abs(np.arange(n) - n // 2)[:, None] * 0.5
    cols = np.linspace(5, 0, n)[None, :]
    dem = rows + cols
    if dam_col is not None:
        dem[:, dam_col] += dam_height
    return dem


class TestDelineation:
    def test_valley_concentrates_flow(self):
        dem = valley_with_dam()
        net = delineate_streams(priority_flood_fill(dem, 1e-5), threshold=10)
        assert net.mask[12, 20]  # valley axis near the outlet
        assert not net.mask[1, 2]  # ridge cell

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            delineate_streams(valley_with_dam(), threshold=0)

    def test_components_counts_segments(self):
        dem = valley_with_dam()
        net = delineate_streams(priority_flood_fill(dem, 1e-5), threshold=10)
        _, count = net.components()
        assert count >= 1

    def test_dam_creates_terminations_and_fragments(self):
        free = valley_with_dam()
        dammed = valley_with_dam(dam_col=12)
        net_free = delineate_streams(priority_flood_fill(free, 1e-5), threshold=10)
        # Deliberately delineate on the RAW dammed DEM (the digital-dam
        # failure mode: flow dies behind the embankment).
        net_dam = delineate_streams(dammed, threshold=10)
        assert len(net_dam.terminations()) >= len(net_free.terminations())


class TestTracePath:
    def test_path_reaches_edge_on_clean_valley(self):
        dem = priority_flood_fill(valley_with_dam(), 1e-5)
        net = delineate_streams(dem, threshold=5)
        path = trace_flow_path(net.direction, (12, 2))
        assert path[-1][1] >= 22  # exits near the east edge

    def test_path_includes_start(self):
        dem = priority_flood_fill(valley_with_dam(), 1e-5)
        net = delineate_streams(dem, threshold=5)
        assert trace_flow_path(net.direction, (12, 2))[0] == (12, 2)

    def test_max_steps_truncates(self):
        dem = priority_flood_fill(valley_with_dam(), 1e-5)
        net = delineate_streams(dem, threshold=5)
        path = trace_flow_path(net.direction, (12, 0), max_steps=3)
        assert len(path) <= 4


class TestBreach:
    def test_breach_lowers_dam_crest(self):
        dem = valley_with_dam(dam_col=12)
        crest_before = dem[12, 12]
        breach_at_crossing(dem, (12, 12), radius=3)
        assert dem[12, 12] < crest_before

    def test_breach_restores_flow_through(self):
        dem = valley_with_dam(dam_col=12)
        breached = breach_dem(dem, [(12, 12)], radius=3)
        net = delineate_streams(priority_flood_fill(breached, 1e-5), threshold=10)
        path = trace_flow_path(net.direction, (12, 2))
        assert path[-1][1] >= 20  # crosses the (breached) dam

    def test_breach_dem_copies(self):
        dem = valley_with_dam(dam_col=12)
        original = dem.copy()
        breach_dem(dem, [(12, 12)])
        assert np.allclose(dem, original)

    def test_breach_validation(self):
        dem = valley_with_dam()
        with pytest.raises(IndexError):
            breach_at_crossing(dem, (99, 99))
        with pytest.raises(ValueError):
            breach_at_crossing(dem, (12, 12), radius=0)

    def test_breach_near_border_noop(self):
        dem = valley_with_dam(dam_col=12)
        before = dem.copy()
        breach_at_crossing(dem, (0, 0), radius=3)
        assert np.allclose(dem, before)


class TestConnectivity:
    def test_breaching_improves_connectivity(self):
        """The Figure 1 story end-to-end on a toy valley."""
        dammed = valley_with_dam(dam_col=12)
        breached = breach_dem(dammed, [(12, 12)], radius=3)

        def report(dem):
            net = delineate_streams(dem, threshold=10)
            return assess_connectivity(dem, net)

        before, after = report(dammed), report(breached)
        assert after.num_terminations <= before.num_terminations
        assert after.mean_path_length >= before.mean_path_length

    def test_report_fields(self):
        dem = priority_flood_fill(valley_with_dam(), 1e-5)
        net = delineate_streams(dem, threshold=10)
        rep = assess_connectivity(dem, net)
        assert rep.num_stream_cells == net.num_cells
        assert rep.num_segments >= 1
        assert rep.fragmentation >= 0

    def test_better_than_strictness(self):
        from repro.hydro import ConnectivityReport

        a = ConnectivityReport(10, 1, 10, 0, 20.0, 0)
        b = ConnectivityReport(10, 1, 10, 2, 10.0, 5)
        assert a.better_than(b)
        assert not b.better_than(a)
        assert not a.better_than(a)  # not strictly better than itself
