"""Strahler ordering and basin labeling."""

import numpy as np
import pytest

from repro.hydro import (
    basin_labels,
    basin_sizes,
    delineate_streams,
    flow_direction,
    priority_flood_fill,
    strahler_order,
)


def east_flow(n=6):
    """Uniform eastward flow on a tilted plane."""
    return flow_direction(np.tile(np.linspace(10, 0, n), (n, 1)))


class TestStrahler:
    def test_single_channel_is_order_one(self):
        direction = east_flow()
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, :] = True  # one straight stream
        order = strahler_order(direction, mask)
        assert (order[2, :] == 1).all()
        assert (order[~mask] == 0).all()

    def test_confluence_increments_order(self):
        """Two order-1 tributaries joining yield order 2 downstream."""
        n = 7
        dem = np.tile(np.linspace(10, 0, n), (n, 1))
        dem[0, :] += np.abs(np.arange(n) - 0)  # keep rows distinct
        # Build directions manually: rows 1 and 3 flow east until col 3,
        # then both join row 2 and continue east.
        direction = np.full((n, n), -1, dtype=np.int8)
        direction[1, :3] = 0   # east
        direction[3, :3] = 0
        direction[1, 3] = 7    # SE into row 2
        direction[3, 3] = 1    # NE into row 2
        direction[2, 4:n - 1] = 0
        direction[2, 4] = 0
        mask = np.zeros((n, n), dtype=bool)
        mask[1, :4] = mask[3, :4] = True
        mask[2, 4:] = True
        order = strahler_order(direction, mask)
        assert order[1, 3] == 1 and order[3, 3] == 1
        assert order[2, 4] == 2  # equal-order junction increments

    def test_unequal_junction_keeps_max(self):
        n = 7
        direction = np.full((n, n), -1, dtype=np.int8)
        # Order-2 main stem entering cell (2,4) plus one order-1 donor.
        direction[1, :3] = 0
        direction[3, :3] = 0
        direction[1, 3] = 7
        direction[3, 3] = 1
        direction[2, 4:n - 1] = 0
        direction[5, 4] = 2  # a single order-1 donor from the south...
        # route (5,4) north over several cells into (3,4)? keep simple:
        mask = np.zeros((n, n), dtype=bool)
        mask[1, :4] = mask[3, :4] = True
        mask[2, 4:] = True
        order = strahler_order(direction, mask)
        assert order[2, n - 1] == 2  # no second equal junction -> stays 2

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            strahler_order(np.zeros((3, 3), dtype=np.int8), np.zeros((4, 4), bool))

    def test_orders_monotone_downstream_on_real_scene(self):
        rng = np.random.default_rng(0)
        dem = priority_flood_fill(rng.random((48, 48)).cumsum(axis=1)[:, ::-1],
                                  epsilon=1e-5)
        net = delineate_streams(dem, threshold=30)
        order = strahler_order(net.direction, net.mask)
        assert order.max() >= 1
        assert (order[net.mask] >= 1).all()


class TestBasins:
    def test_plane_single_exit_column(self):
        direction = east_flow()
        labels = basin_labels(direction)
        # every row drains east off-grid: one basin per row
        assert len(np.unique(labels)) == 6
        for r in range(6):
            assert (labels[r, :] == labels[r, 0]).all()

    def test_labels_are_terminal_cells(self):
        direction = east_flow()
        labels = basin_labels(direction)
        n = direction.shape[1]
        for r in range(6):
            assert labels[r, 0] == r * n + (n - 1)  # east edge cell

    def test_pit_collects_bowl(self):
        dem = np.ones((5, 5)) * 5
        dem[2, 2] = 0.0
        for (r, c) in [(1, 2), (3, 2), (2, 1), (2, 3)]:
            dem[r, c] = 2.0
        direction = flow_direction(dem)
        labels = basin_labels(direction)
        assert labels[1, 2] == labels[2, 2]

    def test_basin_sizes_partition(self):
        direction = east_flow()
        sizes = basin_sizes(basin_labels(direction))
        assert sum(sizes.values()) == direction.size
