"""Liveness-based memory planner: slot reuse, aliasing safety, pinning."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.sppnet import SPPNetDetector
from repro.engine import CompiledModel, Step, plan_memory


def step(name, inputs, elems, kind="relu", scratch=0):
    return Step(kind, name, tuple(inputs), (elems,), {}, (name,), scratch)


def chain(*elems):
    steps = [step("input", (), elems[0], kind="input")]
    prev = "input"
    for i, e in enumerate(elems[1:]):
        steps.append(step(f"t{i}", (prev,), e))
        prev = f"t{i}"
    return steps, prev


def assert_no_aliasing(plan):
    """No two lifetimes assigned to one slot may overlap in time."""
    by_slot = {}
    for lt in plan.lifetimes.values():
        by_slot.setdefault(lt.slot, []).append(lt)
    for slot, lts in by_slot.items():
        lts.sort(key=lambda lt: lt.birth)
        for a, b in zip(lts, lts[1:]):
            assert a.death < b.birth, (
                f"slot {slot}: {a.name} [{a.birth},{a.death}] overlaps "
                f"{b.name} [{b.birth},{b.death}]"
            )


class TestChain:
    def test_slots_are_recycled(self):
        steps, out = chain(100, 100, 100, 100, 100)
        plan = plan_memory(steps, (out,), batch=1)
        assert_no_aliasing(plan)
        # A pure chain only ever has two tensors live (producer input,
        # consumer output), so the arena needs two slots, not five.
        assert len(plan.slot_sizes) == 2
        assert plan.peak_bytes < plan.naive_bytes
        assert plan.reuse_factor > 1.0

    def test_peak_holds_largest_simultaneous_pair(self):
        steps, out = chain(10, 1000, 10)
        plan = plan_memory(steps, (out,), batch=1, itemsize=4)
        assert plan.peak_bytes >= (1000 + 10) * 4

    def test_batch_scales_bytes(self):
        steps, out = chain(100, 100)
        p1 = plan_memory(steps, (out,), batch=1)
        p8 = plan_memory(steps, (out,), batch=8)
        assert p8.peak_bytes == 8 * p1.peak_bytes

    def test_bad_batch_rejected(self):
        steps, out = chain(10, 10)
        with pytest.raises(ValueError):
            plan_memory(steps, (out,), batch=0)


class TestPinningAndScratch:
    def test_early_output_is_pinned_until_program_end(self):
        # input -> a -> b (output), a -> c -> d (output): b is produced
        # mid-program but must survive to the end.
        steps = [
            step("input", (), 50, kind="input"),
            step("a", ("input",), 50),
            step("b", ("a",), 50),
            step("c", ("a",), 50),
            step("d", ("c",), 50),
        ]
        plan = plan_memory(steps, ("b", "d"), batch=1)
        assert_no_aliasing(plan)
        last = len(steps) - 1
        assert plan.lifetimes["b"].death == last
        assert plan.lifetimes["d"].death == last
        b_slot = plan.lifetimes["b"].slot
        later = [lt for lt in plan.lifetimes.values()
                 if lt.slot == b_slot and lt.name != "b"]
        assert all(lt.death < plan.lifetimes["b"].birth for lt in later)

    def test_scratch_never_aliases_live_tensors(self):
        steps = [
            step("input", (), 64, kind="input"),
            step("conv", ("input",), 64, kind="conv", scratch=256),
            step("out", ("conv",), 16),
        ]
        plan = plan_memory(steps, ("out",), batch=1)
        assert_no_aliasing(plan)
        scratch = plan.lifetimes["conv:scratch"]
        assert scratch.birth == scratch.death == 1
        # Scratch is live at the same instant as the step's input and
        # output, so it must sit in its own slot.
        assert scratch.slot != plan.lifetimes["conv"].slot
        assert scratch.slot != plan.lifetimes["input"].slot
        # The eager path allocates scratch too, so it counts in naive.
        assert plan.naive_bytes == (64 + 64 + 256 + 16) * 4

    def test_unconsumed_intermediate_is_freed(self):
        steps = [
            step("input", (), 10, kind="input"),
            step("dead", ("input",), 1000),
            step("live", ("input",), 10),
        ]
        plan = plan_memory(steps, ("live",), batch=1)
        assert_no_aliasing(plan)
        assert plan.lifetimes["dead"].death == 1


class TestRealModelPlan:
    def config(self):
        return SPPNetConfig(
            convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
            pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
            spp_levels=(2, 1), fc_sizes=(32,), in_channels=4,
        )

    def test_compiled_plan_has_no_aliasing_and_reuses(self):
        model = SPPNetDetector(self.config(), seed=0)
        compiled = CompiledModel(model, (4, 32, 32))
        plan = compiled.memory_plan(batch=2)
        assert_no_aliasing(plan)
        assert plan.reuse_factor > 1.0
        assert compiled.planned_peak_bytes(batch=2) == plan.peak_bytes

    def test_plan_matches_execution_dtype(self, monkeypatch):
        # Pin the conv variant: the autotuner may legitimately pick
        # different kernels (with different scratch shapes) per dtype,
        # which would break the exact 2x byte relation this asserts.
        monkeypatch.setenv("REPRO_CONV_VARIANT", "im2col")
        model = SPPNetDetector(self.config(), seed=0)
        f32 = CompiledModel(model, (4, 32, 32), dtype=np.float32)
        f64 = CompiledModel(model, (4, 32, 32), dtype=np.float64)
        assert f64.planned_peak_bytes() == 2 * f32.planned_peak_bytes()


def diamond_steps(scratch: int = 0):
    """input -> a -> (b, c) -> d: the minimal parallelizable DAG."""
    return [
        step("input", (), 64, kind="input"),
        step("a", ("input",), 64),
        step("b", ("a",), 64, scratch=scratch),
        step("c", ("a",), 64, scratch=scratch),
        step("d", ("b", "c"), 64),
    ]


class TestScheduledPlanning:
    """Stage-barrier planning for concurrent execution: buffers touched
    by different groups of one stage must never share arena slots."""

    STAGES = [[["a"]], [["b"], ["c"]], [["d"]]]

    def touched_slots(self, plan, name):
        slots = {plan.lifetimes[name].slot}
        scratch = plan.lifetimes.get(f"{name}:scratch")
        if scratch is not None:
            slots.add(scratch.slot)
        return slots

    def test_parallel_group_buffers_never_alias(self):
        plan = plan_memory(diamond_steps(scratch=32), ("d",), batch=1,
                           stages=self.STAGES)
        b = self.touched_slots(plan, "b") | {plan.lifetimes["a"].slot}
        c = self.touched_slots(plan, "c") | {plan.lifetimes["a"].slot}
        # outputs and scratches of the concurrent pair are disjoint
        # (their shared input "a" is the only legal overlap)
        assert not (self.touched_slots(plan, "b")
                    & self.touched_slots(plan, "c"))
        # and the shared input stays resident through the whole stage
        assert plan.lifetimes["a"].death >= max(
            plan.lifetimes["b"].birth, plan.lifetimes["c"].birth)
        assert b and c  # plans cover both groups

    def test_scratch_held_to_stage_barrier(self):
        plan = plan_memory(diamond_steps(scratch=32), ("d",), batch=1,
                           stages=self.STAGES)
        sb = plan.lifetimes["b:scratch"]
        sc = plan.lifetimes["c:scratch"]
        assert sb.slot != sc.slot
        # both scratches die at the stage barrier, not at their own step
        assert sb.death == sc.death

    def test_sequential_path_unchanged_by_stages_kwarg(self):
        steps = diamond_steps(scratch=32)
        old = plan_memory(steps, ("d",), batch=1)
        new = plan_memory(steps, ("d",), batch=1, stages=None)
        assert old == new
        assert_no_aliasing(old)

    def test_scheduled_peak_at_least_sequential(self):
        steps = diamond_steps(scratch=32)
        seq = plan_memory(steps, ("d",), batch=1)
        sch = plan_memory(steps, ("d",), batch=1, stages=self.STAGES)
        assert sch.peak_bytes >= seq.peak_bytes
        assert sch.naive_bytes == seq.naive_bytes

    def test_schedule_must_cover_steps_exactly_once(self):
        steps = diamond_steps()
        with pytest.raises(ValueError, match="does not cover"):
            plan_memory(steps, ("d",), batch=1,
                        stages=[[["a"]], [["b"], ["c"]]])
        with pytest.raises(ValueError, match="scheduled twice"):
            plan_memory(steps, ("d",), batch=1,
                        stages=self.STAGES + [[["d"]]])
        with pytest.raises(ValueError, match="unknown or non-compute"):
            plan_memory(steps, ("d",), batch=1,
                        stages=[[["a"]], [["b"], ["c"]], [["ghost"]],
                                [["d"]]])
