"""Tracing modules into the IR and fusing the IR into kernel steps."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.sppnet import SPPNetDetector
from repro.engine import CompiledModel, TraceError, fuse_graph, trace
from repro.graph import OpType
from repro.tensor import Tensor, no_grad
from repro.tensor.modules import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)


def small_config():
    return SPPNetConfig(
        convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=(2, 1), fc_sizes=(32,), in_channels=4,
    )


class TestTrace:
    def test_detector_outputs_and_params(self):
        model = SPPNetDetector(small_config(), seed=0)
        traced = trace(model, (4, 32, 32))
        assert len(traced.outputs) == 2
        assert traced.outputs[1] == "box_sigmoid"
        assert traced.graph["box_sigmoid"].op_type is OpType.SIGMOID
        # conv1/conv2 from the trunk, fc1 + two heads.
        for name in ("conv1", "conv2", "fc1", "fc2", "fc3"):
            assert name in traced.params
            assert "weight" in traced.params[name]

    def test_names_stable_across_input_sizes(self):
        model = SPPNetDetector(small_config(), seed=0)
        a = trace(model, (4, 32, 32))
        b = trace(model, (4, 48, 40))
        assert a.graph.names() == b.graph.names()
        assert a.outputs == b.outputs

    def test_dropout_traces_to_identity(self):
        mlp = Sequential(Linear(8, 8), ReLU(), Dropout(0.5), Linear(8, 2))
        traced = trace(mlp, (8,))
        assert all(op.op_type is not OpType.IDENTITY
                   for op in traced.graph.nodes())
        assert len(traced.graph) == 4  # input + fc1 + relu1 + fc2

    def test_batchnorm_folds_into_conv_params(self):
        conv = Conv2d(3, 4, 3, bias=False)
        bn = BatchNorm2d(4)
        bn.running_mean.data[:] = np.arange(4, dtype=float)
        bn.running_var.data[:] = 1.0 + np.arange(4, dtype=float)
        net = Sequential(conv, bn, ReLU())
        traced = trace(net, (3, 8, 8))
        assert "conv1" in traced.params
        folded = traced.params["conv1"]
        assert not np.allclose(folded["weight"], conv.weight.data)
        # The fold synthesizes a bias for the biasless conv and the
        # op's attrs must reflect it so the packer includes the row.
        assert "bias" in folded
        assert traced.graph["conv1"].attrs["bias"] is True

    def test_batchnorm_without_conv_rejected(self):
        net = Sequential(MaxPool2d(2, 2), BatchNorm2d(3))
        with pytest.raises(TraceError):
            trace(net, (3, 8, 8))

    def test_too_small_input_rejected(self):
        model = SPPNetDetector(small_config(), seed=0)
        with pytest.raises(TraceError):
            trace(model, (4, 2, 2))


class TestFusion:
    def test_detector_fuses_away_elementwise_glue(self):
        model = SPPNetDetector(small_config(), seed=0)
        traced = trace(model, (4, 32, 32))
        steps = fuse_graph(traced.graph, traced.outputs)
        kinds = {s.kind for s in steps}
        # Every ReLU rides a conv/linear/pool kernel and every flatten
        # rides a pool; neither survives as a standalone step.
        assert "relu" not in kinds
        assert "flatten" not in kinds
        assert {"conv_pool", "linear", "sigmoid"} <= kinds

    def test_trunk_chain_fuses_into_conv_pool(self):
        # The SPP-Net trunk pattern conv->relu->pool(2x2/s2) lowers to a
        # single conv_pool step covering all three IR nodes; neither the
        # conv output nor the standalone pool survives as a planned
        # tensor.
        model = SPPNetDetector(small_config(), seed=0)
        traced = trace(model, (4, 32, 32))
        steps = fuse_graph(traced.graph, traced.outputs)
        fused = [s for s in steps if s.kind == "conv_pool"]
        assert len(fused) == 2  # both trunk stages
        for s in fused:
            assert s.attrs["relu"] is True
            assert s.attrs["pool_kernel"] == 2
            assert s.attrs["pool_stride"] == 2
            assert len(s.covers) == 3
            # Result is named after the pool node so downstream
            # consumers resolve unchanged.
            assert s.name.startswith("pool")
        assert not any(s.kind == "conv" for s in steps)

    def test_conv_relu_defers_to_unfusable_pool(self):
        # A pool that is not 2x2/s2 cannot ride the conv kernel; ReLU
        # still commutes with max pooling, so it runs on the pooled
        # (k^2-smaller) tensor, not on the conv output.
        net = Sequential(Conv2d(3, 8, 3), ReLU(), MaxPool2d(3, 3))
        traced = trace(net, (3, 17, 17))
        steps = {s.name: s for s in fuse_graph(traced.graph, traced.outputs)}
        convs = [s for s in steps.values() if s.kind == "conv"]
        pools = [s for s in steps.values()
                 if s.kind in ("maxpool", "maxpool_flatten")]
        assert convs and pools
        assert all(not s.attrs["relu"] for s in convs)
        assert all(s.attrs["relu"] for s in pools)

    def test_linear_relu_fused(self):
        mlp = Sequential(Linear(8, 8), ReLU(), Linear(8, 2))
        traced = trace(mlp, (8,))
        steps = fuse_graph(traced.graph, traced.outputs)
        linears = [s for s in steps if s.kind == "linear"]
        assert [s.attrs["relu"] for s in linears] == [True, False]

    def test_conv_steps_reserve_im2col_scratch(self):
        model = SPPNetDetector(small_config(), seed=0)
        traced = trace(model, (4, 32, 32))
        steps = fuse_graph(traced.graph, traced.outputs)
        assert all(s.scratch_elems > 0 for s in steps
                   if s.kind in ("conv", "conv_pool"))


class TestGenericModules:
    def test_padded_conv_equivalence(self):
        net = Sequential(Conv2d(3, 8, 3, padding=1), ReLU(), MaxPool2d(2, 2))
        net.eval()
        x = np.random.default_rng(0).standard_normal((2, 3, 10, 10)).astype(
            np.float32)
        with no_grad():
            eager = net(Tensor(x)).data
        compiled = CompiledModel(net, (3, 10, 10))
        np.testing.assert_allclose(compiled(x), eager, atol=1e-5, rtol=1e-4)

    def test_mlp_equivalence(self):
        mlp = Sequential(Linear(6, 16), ReLU(), Dropout(0.3), Linear(16, 3))
        mlp.eval()
        x = np.random.default_rng(1).standard_normal((4, 6)).astype(np.float32)
        with no_grad():
            eager = mlp(Tensor(x)).data
        compiled = CompiledModel(mlp, (6,))
        np.testing.assert_allclose(compiled(x), eager, atol=1e-5, rtol=1e-4)
