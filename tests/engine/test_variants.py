"""Conv kernel variants: equivalence, fused pooling, and the autotuner."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.sppnet import SPPNetDetector
from repro.engine import CompiledModel
from repro.engine.autotune import (
    CONV_VARIANTS,
    ConvKey,
    choose_variant,
    eligible_variants,
)
from repro.engine.kernels import (
    bind_conv,
    conv_out_hw,
    conv_scratch_elems,
    pack_conv_weight,
    winograd23_pack_weight,
)
from repro.tensor import Tensor, no_grad
from repro.tensor.modules import Conv2d, MaxPool2d, ReLU, Sequential


def small_config(kernel=3):
    return SPPNetConfig(
        convs=(ConvSpec(8, kernel, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=(2, 1), fc_sizes=(32,), in_channels=4,
    )


def run_variant(variant, *, batch=2, h=13, w=11, c=3, f=8, k=3, stride=1,
                pad=0, relu=True, pool=None, bias=True, seed=0):
    """Bind one conv kernel on standalone buffers and run it."""
    rng = np.random.default_rng(seed)
    src = rng.standard_normal((batch, h, w, c)).astype(np.float32)
    weight = rng.standard_normal((f, c, k, k)).astype(np.float32)
    b_vec = rng.standard_normal(f).astype(np.float32) if bias else None
    ho, wo = conv_out_hw(h, w, k, stride, pad)
    out_hw = (ho // 2, wo // 2) if pool else (ho, wo)
    out = np.empty((batch,) + out_hw + (f,), dtype=np.float32)
    scratch = np.empty(batch * conv_scratch_elems(
        variant, batch=batch, h=h, w=w, c_in=c, out_channels=f, kernel=k,
        stride=stride, padding=pad, bias=bias, pool=pool is not None),
        dtype=np.float32)
    fn = bind_conv(
        variant, src=src, out=out, scratch=scratch, k=k, stride=stride,
        pad=pad, relu=relu, pool=pool,
        w_pack=pack_conv_weight(weight, b_vec, np.dtype(np.float32)),
        wg_pack=(winograd23_pack_weight(weight, np.dtype(np.float32))
                 if k == 3 and stride == 1 else None, b_vec))
    fn()
    return out


class TestKernelEquivalence:
    """im2col is the reference; the other variants must match it."""

    @pytest.mark.parametrize("variant", ["im2col_tiled", "winograd23"])
    @pytest.mark.parametrize("pool", [None, (2, 2)])
    @pytest.mark.parametrize("pad", [0, 1])
    def test_3x3_stride1(self, variant, pool, pad):
        kw = dict(h=14, w=12, c=5, f=7, k=3, stride=1, pad=pad, pool=pool)
        ref = run_variant("im2col", **kw)
        got = run_variant(variant, **kw)
        np.testing.assert_allclose(got, ref, atol=2e-5, rtol=1e-4)

    @pytest.mark.parametrize("k,stride", [(5, 1), (3, 2), (1, 1)])
    def test_tiled_other_geometries(self, k, stride):
        kw = dict(h=17, w=15, c=4, f=6, k=k, stride=stride, pad=0)
        ref = run_variant("im2col", **kw)
        got = run_variant("im2col_tiled", **kw)
        np.testing.assert_allclose(got, ref, atol=2e-5, rtol=1e-4)

    def test_without_bias_and_relu(self):
        kw = dict(h=10, w=10, c=3, f=4, bias=False, relu=False)
        ref = run_variant("im2col", **kw)
        for variant in ("im2col_tiled", "winograd23"):
            np.testing.assert_allclose(
                run_variant(variant, **kw), ref, atol=2e-5, rtol=1e-4)

    def test_odd_output_with_fused_pool(self):
        # 13x11 input -> 11x9 conv output -> 5x4 pooled: the pool floors
        # away the odd edge, which trips any kernel that pools a padded
        # Winograd tile without cropping first.
        kw = dict(h=13, w=11, c=3, f=8, pool=(2, 2))
        ref = run_variant("im2col", **kw)
        for variant in ("im2col_tiled", "winograd23"):
            np.testing.assert_allclose(
                run_variant(variant, **kw), ref, atol=2e-5, rtol=1e-4)

    def test_winograd_rejects_non_3x3(self):
        with pytest.raises(ValueError):
            run_variant("winograd23", k=5)
        with pytest.raises(ValueError):
            run_variant("winograd23", k=3, stride=2)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            run_variant("fft")


class TestCompiledEquivalence:
    """Every variant must produce eager-equivalent full-model outputs."""

    @pytest.mark.parametrize("variant", CONV_VARIANTS)
    def test_forced_variant_matches_eager(self, variant, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_VARIANT", variant)
        from repro.detect.predict import predict

        model = SPPNetDetector(small_config(), seed=3)
        model.eval()
        x = np.random.default_rng(0).standard_normal(
            (3, 4, 32, 32)).astype(np.float32)
        conf, boxes = predict(model, x, batch_size=3)
        compiled = CompiledModel(model, (4, 32, 32))
        eng_conf, eng_boxes = compiled.predict(x, batch_size=3)
        np.testing.assert_allclose(eng_conf, conf, atol=1e-4, rtol=1e-3)
        np.testing.assert_allclose(eng_boxes, boxes, atol=1e-4, rtol=1e-3)

    @pytest.mark.parametrize("variant", CONV_VARIANTS)
    def test_forced_variant_padded_conv(self, variant, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_VARIANT", variant)
        net = Sequential(Conv2d(3, 8, 3, padding=1), ReLU(), MaxPool2d(2, 2))
        net.eval()
        x = np.random.default_rng(1).standard_normal(
            (2, 3, 10, 10)).astype(np.float32)
        with no_grad():
            eager = net(Tensor(x)).data
        compiled = CompiledModel(net, (3, 10, 10))
        np.testing.assert_allclose(compiled(x), eager, atol=1e-4, rtol=1e-3)

    def test_kernel_choices_reported(self):
        model = SPPNetDetector(small_config(), seed=3)
        model.eval()
        compiled = CompiledModel(model, (4, 32, 32))
        compiled.predict(np.zeros((1, 4, 32, 32), dtype=np.float32))
        choices = compiled.kernel_choices(batch=1)
        assert choices  # one entry per conv step
        assert all(v in CONV_VARIANTS for v in choices.values())


def key(**overrides):
    base = dict(batch=1, height=32, width=32, in_channels=4, out_channels=8,
                kernel=3, stride=1, padding=0, pool=True, dtype="float32",
                mode="float32")
    base.update(overrides)
    return ConvKey(**base)


class TestAutotuner:
    def test_eligibility(self):
        assert eligible_variants(key()) == CONV_VARIANTS
        assert "winograd23" not in eligible_variants(key(kernel=5))
        assert "winograd23" not in eligible_variants(key(stride=2))
        assert eligible_variants(key(mode="int8")) == ("im2col",)

    def test_choice_is_fastest_and_sticky(self):
        cache = {}
        made = []

        def make_kernel(variant):
            made.append(variant)
            return variant

        rigged = {"im2col": 3.0, "im2col_tiled": 1.0, "winograd23": 2.0}
        k = key()
        first = choose_variant(k, make_kernel, bench=rigged.get, cache=cache)
        assert first == "im2col_tiled"
        assert set(made) == set(CONV_VARIANTS)
        # Second call: memoized, no kernels rebuilt, even with timings
        # rigged the other way.
        made.clear()
        flipped = {"im2col": 1.0, "im2col_tiled": 3.0, "winograd23": 2.0}
        again = choose_variant(k, make_kernel, bench=flipped.get, cache=cache)
        assert again == "im2col_tiled"
        assert made == []

    def test_tie_breaks_to_first_listed(self):
        cache = {}
        flat = dict.fromkeys(CONV_VARIANTS, 1.0)
        choice = choose_variant(key(), lambda v: v, bench=flat.get,
                                cache=cache)
        assert choice == "im2col"

    def test_distinct_keys_tuned_independently(self):
        cache = {}
        rigged = {"im2col": 3.0, "im2col_tiled": 1.0, "winograd23": 2.0}
        choose_variant(key(), lambda v: v, bench=rigged.get, cache=cache)
        choose_variant(key(batch=20), lambda v: v,
                       bench={"im2col": 0.5, "im2col_tiled": 3.0,
                              "winograd23": 2.0}.get, cache=cache)
        assert cache[key()] == "im2col_tiled"
        assert cache[key(batch=20)] == "im2col"

    def test_env_override_bypasses_cache(self, monkeypatch):
        cache = {key(): "im2col"}
        monkeypatch.setenv("REPRO_CONV_VARIANT", "winograd23")
        choice = choose_variant(key(), lambda v: v,
                                bench=lambda fn: 0.0, cache=cache)
        assert choice == "winograd23"
        assert cache[key()] == "im2col"  # override never cached

    def test_env_override_ignored_when_ineligible(self, monkeypatch):
        # int8 pins im2col; a forced winograd must not apply there.
        monkeypatch.setenv("REPRO_CONV_VARIANT", "winograd23")
        choice = choose_variant(key(mode="int8"), lambda v: v,
                                bench=lambda fn: 0.0, cache={})
        assert choice == "im2col"

    def test_env_override_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONV_VARIANT", "fft")
        with pytest.raises(ValueError):
            choose_variant(key(), lambda v: v, bench=lambda fn: 0.0, cache={})


class TestSnapshotSeed:
    """Cross-process choice shipping: the worker pool sends the parent's
    sticky choices so every process binds the same kernels."""

    @pytest.fixture()
    def fresh_keys(self):
        # deliberately implausible geometry so these keys can never
        # collide with real autotuned entries in the process-wide cache
        from repro.engine import autotune

        keys = [key(height=7777, width=7777),
                key(height=7777, width=7778)]
        yield keys
        with autotune._lock:
            for k in keys:
                autotune._cache.pop(k, None)

    def test_seed_then_snapshot_roundtrips(self, fresh_keys):
        from repro.engine import autotune

        k1, k2 = fresh_keys
        autotune.seed({k1: "winograd23", k2: "im2col_tiled"})
        snap = autotune.snapshot()
        assert snap[k1] == "winograd23"
        assert snap[k2] == "im2col_tiled"

    def test_seeded_choice_wins_over_local_measurement(self, fresh_keys):
        # a seeded process must bind the parent's kernel even when its
        # own timings would pick another variant
        from repro.engine import autotune

        k1 = fresh_keys[0]
        autotune.seed({k1: "winograd23"})
        rigged = {"im2col": 0.1, "im2col_tiled": 0.2, "winograd23": 9.0}
        choice = choose_variant(k1, lambda v: v, bench=rigged.get)
        assert choice == "winograd23"

    def test_local_sticky_choice_survives_seeding(self, fresh_keys):
        from repro.engine import autotune

        k1 = fresh_keys[0]
        rigged = {"im2col": 0.1, "im2col_tiled": 0.2, "winograd23": 9.0}
        assert choose_variant(k1, lambda v: v, bench=rigged.get) == "im2col"
        autotune.seed({k1: "winograd23"})
        assert autotune.snapshot()[k1] == "im2col"

    def test_seed_rejects_unknown_variant(self, fresh_keys):
        from repro.engine import autotune

        with pytest.raises(ValueError, match="unknown conv variant"):
            autotune.seed({fresh_keys[0]: "fft"})
        assert fresh_keys[0] not in autotune.snapshot()
