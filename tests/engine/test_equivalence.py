"""Compiled engine vs eager autograd: output equivalence across the
NAS search axes (first-conv kernel size, SPP pyramid levels, FC widths)
plus batching, variable input sizes, and BatchNorm folding."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.predict import predict
from repro.detect.sppnet import SPPNetDetector
from repro.engine import CompiledModel, compile as engine_compile, compiled_for
from repro.tensor import Tensor, no_grad

ATOL = 1e-5


def small_config(kernel: int = 3, spp_levels=(2, 1), fc_sizes=(32,),
                 use_batchnorm: bool = False) -> SPPNetConfig:
    """Two-conv trunk small enough that the whole sweep stays fast."""
    return SPPNetConfig(
        convs=(ConvSpec(8, kernel, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=tuple(spp_levels),
        fc_sizes=tuple(fc_sizes),
        in_channels=4,
        use_batchnorm=use_batchnorm,
    )


def chips(n: int, size: int = 32, channels: int = 4, seed: int = 0,
          width: int | None = None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(
        (n, channels, size, width if width is not None else size)
    ).astype(np.float32)


def eager_outputs(model: SPPNetDetector,
                  images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    model.eval()
    with no_grad():
        logits, boxes = model(Tensor(images))
    return logits.data, boxes.data


def assert_engine_matches(model: SPPNetDetector, images: np.ndarray,
                          dtype=np.float32, atol: float = ATOL) -> None:
    logits, boxes = eager_outputs(model, images)
    compiled = CompiledModel(
        model, (model.config.in_channels,) + images.shape[2:], dtype=dtype
    )
    eng_logits, eng_boxes = compiled(images)
    np.testing.assert_allclose(eng_logits, logits, atol=atol, rtol=1e-4)
    np.testing.assert_allclose(eng_boxes, boxes, atol=atol, rtol=1e-4)


class TestSearchAxes:
    @pytest.mark.parametrize("kernel", [1, 3, 5, 7])
    def test_first_conv_kernel(self, kernel):
        model = SPPNetDetector(small_config(kernel=kernel), seed=1)
        assert_engine_matches(model, chips(2))

    @pytest.mark.parametrize("levels", [(1,), (2, 1), (4, 2, 1), (3, 1)])
    def test_spp_levels(self, levels):
        model = SPPNetDetector(small_config(spp_levels=levels), seed=2)
        assert_engine_matches(model, chips(2))

    @pytest.mark.parametrize("fc", [(16,), (32, 16), (64, 32, 16)])
    def test_fc_widths(self, fc):
        model = SPPNetDetector(small_config(fc_sizes=fc), seed=3)
        assert_engine_matches(model, chips(2))


class TestExecutionModes:
    def test_float64_is_tighter(self):
        model = SPPNetDetector(small_config(), seed=4)
        assert_engine_matches(model, chips(2), dtype=np.float64, atol=1e-10)

    def test_variable_input_sizes_share_one_compile(self):
        model = SPPNetDetector(small_config(), seed=5)
        compiled = CompiledModel(model, (4, 32, 32))
        for size, width in [(32, 32), (40, 56), (28, 28)]:
            images = chips(2, size=size, width=width, seed=size)
            logits, boxes = eager_outputs(model, images)
            eng_logits, eng_boxes = compiled(images)
            np.testing.assert_allclose(eng_logits, logits, atol=ATOL, rtol=1e-4)
            np.testing.assert_allclose(eng_boxes, boxes, atol=ATOL, rtol=1e-4)

    def test_ragged_batches(self):
        model = SPPNetDetector(small_config(), seed=6)
        images = chips(5)
        conf, boxes = predict(model, images, batch_size=2)
        eng_conf, eng_boxes = predict(model, images, batch_size=2,
                                      backend="engine")
        np.testing.assert_allclose(eng_conf, conf, atol=ATOL, rtol=1e-4)
        np.testing.assert_allclose(eng_boxes, boxes, atol=ATOL, rtol=1e-4)

    def test_batchnorm_folds_into_conv(self):
        model = SPPNetDetector(small_config(use_batchnorm=True), seed=7)
        # Push the running statistics away from the (0, 1) init so the
        # fold actually rescales the conv weights.
        model.train()
        with no_grad():
            model(Tensor(chips(4, seed=11) * 3.0 + 1.0))
        model.eval()
        assert_engine_matches(model, chips(2))

    def test_tensor_input_accepted(self):
        model = SPPNetDetector(small_config(), seed=8)
        images = chips(2)
        compiled = engine_compile(model, (4, 32, 32))
        from_tensor = compiled(Tensor(images))
        from_array = compiled(images)
        np.testing.assert_array_equal(from_tensor[0], from_array[0])


class TestBackendSelection:
    def test_compiled_for_caches_per_instance(self):
        model = SPPNetDetector(small_config(), seed=9)
        # compiled_for defaults to the deployment chip shape, which needs
        # a real 100x100-capable config; the small config qualifies.
        assert compiled_for(model) is compiled_for(model)

    def test_unknown_backend_rejected(self):
        model = SPPNetDetector(small_config(), seed=9)
        with pytest.raises(ValueError, match="backend"):
            predict(model, chips(1), backend="tpu")

    def test_engine_snapshot_ignores_later_weight_edits(self):
        model = SPPNetDetector(small_config(), seed=10)
        images = chips(2)
        compiled = engine_compile(model, (4, 32, 32))
        before = compiled(images)[0].copy()
        model.cls_head.weight.data += 1.0
        np.testing.assert_array_equal(compiled(images)[0], before)
