"""IOS-scheduled engine execution: byte-identity with the sequential
path across the NAS search axes and quant modes, sticky schedule
caching, snapshot/seed shipping, and the escape hatches."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.sppnet import SPPNetDetector
from repro.engine import CompiledModel, sched
from repro.graph.ir import OpType
from repro.ios.schedule import Schedule


def small_config(kernel: int = 3, spp_levels=(2, 1), fc_sizes=(32,),
                 use_batchnorm: bool = False) -> SPPNetConfig:
    return SPPNetConfig(
        convs=(ConvSpec(8, kernel, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=tuple(spp_levels),
        fc_sizes=tuple(fc_sizes),
        in_channels=4,
        use_batchnorm=use_batchnorm,
    )


def chips(n: int, size: int = 32, channels: int = 4,
          seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, channels, size, size)).astype(np.float32)


@pytest.fixture()
def forced_parallel(monkeypatch):
    """Deterministic parallel schedules on any host: zero concurrency
    overheads and a 4-lane worker budget, so the DP parallelizes every
    profitable branch regardless of cpu count or timing noise."""
    monkeypatch.setattr(sched, "DISPATCH_US", 0.0)
    monkeypatch.setattr(sched, "SYNC_US", 0.0)
    monkeypatch.setenv(sched.ENV_WORKERS, "4")
    sched.clear_cache()
    yield
    sched.clear_cache()


def build_pair(config, images, quant="float32", seed=1):
    """(sequential outputs, scheduled outputs, scheduled model)."""
    model = SPPNetDetector(config, seed=seed)
    model.eval()
    shape = (config.in_channels,) + images.shape[2:]
    plain = CompiledModel(model, shape, quant=quant, schedule=False)
    staged = CompiledModel(model, shape, quant=quant, schedule=True)
    return plain(images), staged(images), staged


def assert_bytes_equal(seq_out, sch_out):
    for a, b in zip(seq_out, sch_out):
        assert a.tobytes() == b.tobytes()


class TestByteIdentity:
    """Scheduled execution must be bitwise-identical to sequential:
    same kernels, disjoint buffers, only the interleaving differs."""

    @pytest.mark.parametrize("quant", ["float32", "float16", "int8"])
    def test_quant_modes(self, forced_parallel, quant):
        config = small_config()
        seq, sch, staged = build_pair(config, chips(3), quant=quant)
        assert_bytes_equal(seq, sch)
        plan = staged.schedule_for(3, (4, 32, 32))
        assert plan is not None and plan.max_parallelism > 1

    @pytest.mark.parametrize("spp_levels", [(1,), (2, 1), (4, 2, 1)])
    def test_spp_pyramid_axis(self, forced_parallel, spp_levels):
        config = small_config(spp_levels=spp_levels)
        seq, sch, _ = build_pair(config, chips(2))
        assert_bytes_equal(seq, sch)

    @pytest.mark.parametrize("kernel", [1, 5])
    def test_first_conv_kernel_axis(self, forced_parallel, kernel):
        config = small_config(kernel=kernel)
        seq, sch, _ = build_pair(config, chips(2))
        assert_bytes_equal(seq, sch)

    def test_fc_widths_and_batchnorm(self, forced_parallel):
        config = small_config(fc_sizes=(48, 16), use_batchnorm=True)
        seq, sch, _ = build_pair(config, chips(4))
        assert_bytes_equal(seq, sch)

    def test_repeated_runs_stay_identical(self, forced_parallel):
        """Thread interleavings vary run to run; bytes must not."""
        config = small_config()
        images = chips(3)
        seq, sch, staged = build_pair(config, images)
        for _ in range(5):
            assert_bytes_equal(seq, staged(images))

    def test_int8_calibration_matches_sequential(self, forced_parallel):
        config = small_config()
        images = chips(4)
        model = SPPNetDetector(config, seed=2)
        model.eval()
        shape = (4, 32, 32)
        plain = CompiledModel(model, shape, quant="int8", schedule=False)
        staged = CompiledModel(model, shape, quant="int8", schedule=True)
        assert plain.calibrate(images) == staged.calibrate(images)
        assert_bytes_equal(plain(images), staged(images))


class TestScheduleShape:
    def test_spp_branches_form_parallel_stage(self, forced_parallel):
        config = small_config(spp_levels=(4, 2, 1))
        _, _, staged = build_pair(config, chips(2))
        plan = staged.schedule_for(2, (4, 32, 32))
        assert plan.strategy == "ios-dp-measured"
        assert plan.max_parallelism >= 3  # the three pyramid branches

    def test_profile_works_on_scheduled_program(self, forced_parallel):
        config = small_config()
        _, _, staged = build_pair(config, chips(2))
        report = staged.profile(chips(2), repeats=2, warmup=1)
        assert report["per_run_ms"] > 0
        assert report["categories"]  # thread-time attribution merged

    def test_memory_plan_has_no_stage_aliasing(self, forced_parallel):
        config = small_config(spp_levels=(4, 2, 1))
        _, _, staged = build_pair(config, chips(2))
        plan = staged.schedule_for(2, (4, 32, 32))
        mem = staged.memory_plan(2, (4, 32, 32))
        for stage in plan.stage_groups():
            if len(stage) < 2:
                continue
            slot_sets = []
            for group in stage:
                slots = set()
                for name in group:
                    slots.add(mem.lifetimes[name].slot)
                    scratch = mem.lifetimes.get(f"{name}:scratch")
                    if scratch is not None:
                        slots.add(scratch.slot)
                slot_sets.append(slots)
            for i, a in enumerate(slot_sets):
                for b in slot_sets[i + 1:]:
                    assert not (a & b), f"stage {stage} shares slots"


class TestStickyCache:
    def test_second_compile_pays_zero_solves(self, forced_parallel):
        config = small_config()
        images = chips(3)
        build_pair(config, images)
        before = sched.stats()
        assert before["solves"] >= 1
        # same structure, fresh model object: schedule comes from cache
        model = SPPNetDetector(config, seed=9)
        model.eval()
        staged = CompiledModel(model, (4, 32, 32), schedule=True)
        staged(images)
        after = sched.stats()
        assert after["solves"] == before["solves"]
        assert after["hits"] > before["hits"]

    def test_key_separates_quant_modes(self, forced_parallel):
        config = small_config()
        images = chips(2)
        build_pair(config, images, quant="float32")
        solves = sched.stats()["solves"]
        build_pair(config, images, quant="int8")
        assert sched.stats()["solves"] > solves


class TestSnapshotSeed:
    def test_round_trip(self, forced_parallel):
        config = small_config()
        build_pair(config, chips(3))
        snap = sched.snapshot()
        assert snap
        plans = {key: Schedule.from_json(text).stage_groups()
                 for key, text in snap.items()}
        sched.clear_cache()
        assert sched.seed(snap) == len(snap)
        assert sched.stats()["seeded"] == len(snap)
        for key, stage_groups in plans.items():
            assert sched.cached_schedule(key).stage_groups() == stage_groups

    def test_seed_respects_first_writer(self, forced_parallel):
        config = small_config()
        build_pair(config, chips(3))
        snap = sched.snapshot()
        resident = {key: sched.cached_schedule(key) for key in snap}
        assert sched.seed(snap) == 0  # every key already decided locally
        for key, schedule in resident.items():
            assert sched.cached_schedule(key) is schedule

    def test_corrupted_payload_raises(self, forced_parallel):
        config = small_config()
        build_pair(config, chips(3))
        key, text = next(iter(sched.snapshot().items()))
        tampered = text.replace('"batch"', '"batch_" ', 1)
        sched.clear_cache()
        with pytest.raises((ValueError, KeyError, TypeError)):
            sched.seed({key: tampered})


class TestEscapeHatches:
    def test_env_off_disables_scheduling(self, forced_parallel,
                                         monkeypatch):
        monkeypatch.setenv(sched.ENV_SCHEDULE, "off")
        assert not sched.scheduling_enabled()
        config = small_config()
        model = SPPNetDetector(config, seed=1)
        model.eval()
        staged = CompiledModel(model, (4, 32, 32), schedule=True)
        staged(chips(2))
        assert staged.schedule_for(2, (4, 32, 32)) is None
        assert sched.stats()["solves"] == 0

    def test_model_level_opt_out(self, forced_parallel):
        config = small_config()
        model = SPPNetDetector(config, seed=1)
        model.eval()
        plain = CompiledModel(model, (4, 32, 32), schedule=False)
        plain(chips(2))
        assert plain.schedule_for(2, (4, 32, 32)) is None
        assert sched.stats()["solves"] == 0

    def test_enabled_values(self, monkeypatch):
        for value in ("off", "0", "false", "no", " OFF "):
            monkeypatch.setenv(sched.ENV_SCHEDULE, value)
            assert not sched.scheduling_enabled()
        for value in ("", "on", "1"):
            monkeypatch.setenv(sched.ENV_SCHEDULE, value)
            assert sched.scheduling_enabled()

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv(sched.ENV_WORKERS, "3")
        assert sched.schedule_workers() == 3
        monkeypatch.setenv(sched.ENV_WORKERS, "0")
        with pytest.raises(ValueError):
            sched.schedule_workers()


class TestStepsToGraph:
    def test_program_steps_lower_to_valid_ir(self):
        config = small_config(spp_levels=(2, 1))
        model = SPPNetDetector(config, seed=0)
        model.eval()
        compiled = CompiledModel(model, (4, 32, 32), schedule=False)
        graph = sched.steps_to_graph(compiled.steps)
        names = {op.name for op in graph.compute_nodes()}
        assert names == {s.name for s in compiled.steps
                         if s.kind != "input"}
        assert graph["input"].op_type is OpType.INPUT

    def test_unknown_kind_rejected(self):
        from repro.engine.fusion import Step

        bogus = [Step("input", "input", (), (4,), {}, ("input",), 0),
                 Step("warp", "w0", ("input",), (4,), {}, ("w0",), 0)]
        with pytest.raises(ValueError, match="no IR mapping"):
            sched.steps_to_graph(bogus)

    def test_fingerprint_distinguishes_programs(self):
        a = SPPNetDetector(small_config(spp_levels=(2, 1)), seed=0)
        b = SPPNetDetector(small_config(spp_levels=(4, 2, 1)), seed=0)
        a.eval(), b.eval()
        ca = CompiledModel(a, (4, 32, 32), schedule=False)
        cb = CompiledModel(b, (4, 32, 32), schedule=False)
        key_a = sched.schedule_key(ca.steps, 1, (4, 32, 32), "float32",
                                   "float32", workers=2)
        key_b = sched.schedule_key(cb.steps, 1, (4, 32, 32), "float32",
                                   "float32", workers=2)
        assert key_a.program != key_b.program


class TestStepCosts:
    def test_costs_cover_every_compute_step(self):
        config = small_config()
        model = SPPNetDetector(config, seed=0)
        model.eval()
        compiled = CompiledModel(model, (4, 32, 32), schedule=False)
        prog = compiled._program_for(2, (4, 32, 32))
        costs = prog.step_costs(chips(2), repeats=2)
        assert set(costs) == {s.name for s in compiled.steps
                              if s.kind != "input"}
        assert all(c > 0 for c in costs.values())
