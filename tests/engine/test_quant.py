"""Quantized execution: parity, calibration, and the accuracy gate."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect.predict import predict
from repro.detect.sppnet import SPPNetDetector
from repro.engine import (
    CompiledModel,
    QuantPolicy,
    compile as engine_compile,
    quantize_with_accuracy_gate,
)
from repro.engine.quant import (
    activation_scale,
    quantize_weight_per_channel,
    round_f16,
)


def small_config(kernel=3, spp_levels=(2, 1), fc_sizes=(32,)):
    return SPPNetConfig(
        convs=(ConvSpec(8, kernel, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=spp_levels, fc_sizes=fc_sizes, in_channels=4,
    )


def chips(n, shape=(4, 32, 32), seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n,) + shape).astype(np.float32)


class TestPolicy:
    def test_coerce(self):
        assert QuantPolicy.coerce("int8").mode == "int8"
        p = QuantPolicy(mode="float16")
        assert QuantPolicy.coerce(p) is p

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            QuantPolicy(mode="int4")

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            QuantPolicy(percentile=10.0)


class TestPrimitives:
    def test_round_f16_is_half_precision(self):
        x = np.array([1.0 + 2.0 ** -12], dtype=np.float32)
        assert round_f16(x)[0] == 1.0  # rounded away: f16 has 10 bits

    def test_per_channel_weight_quant_roundtrip(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((18, 6)).astype(np.float32)
        w[:, 2] *= 100.0  # scale outlier channel must not hurt others
        q, scales = quantize_weight_per_channel(w)
        assert np.abs(q).max() <= 127.0
        assert np.all(q == np.rint(q))  # integer-valued float storage
        np.testing.assert_allclose(q * scales, w, atol=np.max(scales) / 2)

    def test_all_zero_channel_gets_unit_scale(self):
        w = np.zeros((4, 3), dtype=np.float32)
        q, scales = quantize_weight_per_channel(w)
        assert np.all(scales == 1.0)
        assert np.all(q == 0.0)

    def test_activation_scale_percentile(self):
        x = np.concatenate([np.full(999, 1.0), [1000.0]]).astype(np.float32)
        clipped = activation_scale(x, 99.0)
        outlier = activation_scale(x, 100.0)
        assert clipped == pytest.approx(1.0 / 127.0, rel=1e-3)
        assert outlier == pytest.approx(1000.0 / 127.0, rel=1e-3)


class TestQuantizedParity:
    """Reduced-precision programs must track float32 closely on every
    architecture axis (the NAS search space must be safely quantizable)."""

    AXES = {
        "kernel5": dict(kernel=5),
        "spp_deep": dict(spp_levels=(4, 2, 1)),
        "fc_wide": dict(fc_sizes=(64, 32)),
    }

    @pytest.mark.parametrize("axis", sorted(AXES))
    @pytest.mark.parametrize("mode,atol", [("float16", 2e-3), ("int8", 0.08)])
    def test_outputs_track_float32(self, axis, mode, atol):
        model = SPPNetDetector(small_config(**self.AXES[axis]), seed=1)
        model.eval()
        x = chips(4)
        ref_conf, ref_boxes = predict(model, x, backend="engine")
        q = engine_compile(model, quant=mode)
        conf, boxes = q.predict(x, batch_size=4)
        np.testing.assert_allclose(conf, ref_conf, atol=atol)
        np.testing.assert_allclose(boxes, ref_boxes, atol=atol)

    def test_calibration_tightens_or_matches_dynamic(self):
        model = SPPNetDetector(small_config(), seed=2)
        model.eval()
        x = chips(6, seed=3)
        ref_conf, _ = predict(model, x, backend="engine")

        q = engine_compile(model, quant="int8")
        dyn_conf, _ = q.predict(x, batch_size=6)
        stats = q.calibrate(chips(20, seed=4))
        cal_conf, _ = q.predict(x, batch_size=6)

        assert stats  # one static scale per quantized step
        assert all(v > 0.0 for v in stats.values())
        dyn_err = float(np.abs(dyn_conf - ref_conf).max())
        cal_err = float(np.abs(cal_conf - ref_conf).max())
        assert cal_err < max(2.0 * dyn_err, 0.08)

    def test_calibrate_noop_for_float32(self):
        model = SPPNetDetector(small_config(), seed=2)
        model.eval()
        compiled = engine_compile(model)
        assert compiled.calibrate(chips(4)) == {}

    def test_int8_pins_im2col(self):
        model = SPPNetDetector(small_config(), seed=2)
        model.eval()
        q = engine_compile(model, quant="int8")
        q.predict(chips(1))
        assert set(q.kernel_choices(batch=1).values()) == {"im2col"}


class TestAccuracyGate:
    """Mode selection is subordinate to the paper's a(n) > A constraint."""

    def setup_method(self):
        self.model = SPPNetDetector(small_config(), seed=5)
        self.model.eval()
        self.x = chips(8, seed=6)
        ref_conf, _ = predict(self.model, self.x, backend="engine")
        self.ref_labels = ref_conf > 0.5

        def agreement(compiled):
            conf, _ = compiled.predict(self.x, batch_size=8)
            return float(np.mean((conf > 0.5) == self.ref_labels))

        self.agreement = agreement

    def test_low_floor_selects_most_aggressive_mode(self):
        compiled, report = quantize_with_accuracy_gate(
            self.model, self.agreement, floor=0.5,
            input_shape=(4, 32, 32), calibration=chips(16, seed=7))
        assert report["selected"] == "int8"
        assert compiled.quant.mode == "int8"
        assert report["candidates"][0]["calibrated"] is True
        assert report["candidates"][0]["accuracy"] > 0.5

    def test_impossible_floor_falls_back_to_float32(self):
        compiled, report = quantize_with_accuracy_gate(
            self.model, self.agreement, floor=1.5, input_shape=(4, 32, 32))
        assert report["selected"] == "float32"
        assert compiled.quant.mode == "float32"
        assert len(report["candidates"]) == 2  # both modes tried and failed
        assert all(not c["passed"] for c in report["candidates"])

    def test_mode_order_respected(self):
        # With float16 listed first and a reachable floor, int8 is never
        # compiled: the gate stops at the first passing candidate.
        compiled, report = quantize_with_accuracy_gate(
            self.model, self.agreement, floor=0.5,
            modes=("float16",), input_shape=(4, 32, 32))
        assert report["selected"] == "float16"
        assert [c["mode"] for c in report["candidates"]] == ["float16"]


class TestCompiledForCache:
    def test_cache_keys_on_quant_mode(self):
        from repro.engine import compiled_for

        model = SPPNetDetector(small_config(), seed=5)
        model.eval()
        f32 = compiled_for(model)
        q = compiled_for(model, quant="float16")
        assert q is not f32
        assert q.quant.mode == "float16"
        assert compiled_for(model, quant="float16") is q
