"""Engine program-cache warmup."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.engine import compiled_for


@pytest.fixture(scope="module")
def compiled():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="warmup-test",
    )
    model = SPPNetDetector(arch, seed=0)
    model.eval()
    return compiled_for(model)


class TestWarmup:
    def test_builds_requested_programs(self, compiled):
        elapsed = compiled.warmup([1, 4])
        assert elapsed >= 0.0
        keys = set(compiled._programs)
        assert (1,) + compiled.input_shape in keys
        assert (4,) + compiled.input_shape in keys

    def test_warm_batch_runs_without_recompiling(self, compiled):
        compiled.warmup([3])
        before = dict(compiled._programs)
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(3,) + compiled.input_shape).astype(np.float32)
        compiled.predict(stack, batch_size=3)
        assert set(compiled._programs) == set(before)

    def test_idempotent(self, compiled):
        compiled.warmup([2])
        n_programs = len(compiled._programs)
        compiled.warmup([2])
        assert len(compiled._programs) == n_programs

    def test_custom_sample_shape(self, compiled):
        shape = (compiled.input_shape[0], 40, 40)
        compiled.warmup([2], sample_shape=shape)
        assert (2,) + shape in compiled._programs

    def test_rejects_nonpositive_batch(self, compiled):
        with pytest.raises(ValueError, match="batch"):
            compiled.warmup([0])

    def test_guarded_engine_delegates(self):
        from repro.robust import GuardedEngine

        arch = SPPNetConfig(
            convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
            spp_levels=(2, 1), fc_sizes=(32,), name="warmup-guard-test",
        )
        model = SPPNetDetector(arch, seed=0)
        guarded = GuardedEngine(model)
        assert guarded.warmup([1, 2]) >= 0.0
        assert (1,) + guarded.compiled.input_shape in guarded.compiled._programs
