"""Timeline views: ASCII Gantt and Chrome trace export."""

import json

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_inception_graph, build_sppnet_graph
from repro.gpusim import GraphExecutor, Trace
from repro.ios import dp_schedule
from repro.profiling import ascii_gantt, save_chrome_trace, to_chrome_trace


@pytest.fixture(scope="module")
def run_result():
    graph = build_inception_graph(branches=3, depth=1)
    executor = GraphExecutor(graph)
    return executor.run(dp_schedule(graph, 1), 1)


class TestAsciiGantt:
    def test_renders_streams_and_kernels(self, run_result):
        text = ascii_gantt(run_result.trace)
        assert "stream 0" in text
        assert "#" in text
        assert "b0_conv0" in text

    def test_parallel_schedule_shows_multiple_streams(self, run_result):
        text = ascii_gantt(run_result.trace)
        assert sum(1 for line in text.splitlines()
                   if line.startswith("stream")) >= 2

    def test_empty_trace(self):
        assert "no kernels" in ascii_gantt(Trace())

    def test_width_respected(self, run_result):
        for line in ascii_gantt(run_result.trace, width=40).splitlines():
            if line.startswith("stream"):
                bar = line.split("|")[1]
                assert len(bar) == 40


class TestChromeTrace:
    def test_event_structure(self, run_result):
        doc = to_chrome_trace(run_result.trace)
        events = doc["traceEvents"]
        kinds = {e.get("cat", "").split(",")[0] for e in events if "cat" in e}
        assert "cuda_api" in kinds and "kernel" in kinds and "memops" in kinds
        for event in events:
            if event.get("ph") == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0

    def test_kernel_events_match_trace(self, run_result):
        doc = to_chrome_trace(run_result.trace)
        kernel_events = [e for e in doc["traceEvents"]
                         if e.get("cat", "").startswith("kernel")]
        assert len(kernel_events) == len(run_result.trace.kernels)

    def test_save_writes_valid_json(self, run_result, tmp_path):
        path = save_chrome_trace(run_result.trace, tmp_path / "out" / "trace.json")
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded

    def test_streams_become_tids(self):
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        executor = GraphExecutor(graph)
        result = executor.run(dp_schedule(graph, 64), 64)
        doc = to_chrome_trace(result.trace)
        tids = {e["tid"] for e in doc["traceEvents"]
                if e.get("cat", "").startswith("kernel")}
        assert tids == {e.stream for e in result.trace.kernels}
