"""Nsight-like profiler: session aggregation and paper-shape checks."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_sppnet_graph
from repro.ios import dp_schedule
from repro.profiling import (
    TABLE3_CATEGORIES,
    display_name,
    format_api_table,
    format_kernel_table,
    format_memops,
    format_report,
    profile_session,
)


@pytest.fixture(scope="module")
def graph():
    return build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])


@pytest.fixture(scope="module")
def report_b1(graph):
    return profile_session(graph, dp_schedule(graph, 1), 1, iterations=50, warmup=2)


@pytest.fixture(scope="module")
def report_b64(graph):
    return profile_session(graph, dp_schedule(graph, 64), 64, iterations=50, warmup=2)


class TestAggregation:
    def test_api_shares_sum_to_one(self, report_b1):
        assert sum(s.share for s in report_b1.api) == pytest.approx(1.0)

    def test_kernel_shares_sum_to_one(self, report_b1):
        assert sum(s.share for s in report_b1.kernels) == pytest.approx(1.0)

    def test_api_sorted_descending(self, report_b1):
        times = [s.total_us for s in report_b1.api]
        assert times == sorted(times, reverse=True)

    def test_table3_row_keys(self, report_b1):
        row = report_b1.table3_row()
        assert set(row) == set(TABLE3_CATEGORIES)
        assert all(0 <= v <= 100 for v in row.values())

    def test_unknown_share_zero(self, report_b1):
        assert report_b1.api_share("cudaNotARealApi") == 0.0
        assert report_b1.kernel_share("nonexistent") == 0.0

    def test_memops_counts(self, report_b1):
        assert report_b1.memops.count > 0
        assert report_b1.memops.total_bytes > 0
        assert report_b1.memops.per_image_ns > 0

    def test_iterations_validated(self, graph):
        with pytest.raises(ValueError):
            profile_session(graph, dp_schedule(graph, 1), 1, iterations=0)


class TestPaperShapes:
    def test_libload_dominates_at_batch1(self, report_b1):
        """Figure 8, batch 1: cuLibraryLoadData ~80%, sync tiny."""
        lib = report_b1.api_share("cuLibraryLoadData")
        sync = report_b1.api_share("cudaDeviceSynchronize")
        assert lib > 0.6
        assert sync < lib

    def test_sync_grows_with_batch(self, report_b1, report_b64):
        assert (report_b64.api_share("cudaDeviceSynchronize")
                > report_b1.api_share("cudaDeviceSynchronize"))

    def test_matmul_dominates_kernels_at_batch1(self, report_b1):
        row = report_b1.table3_row()
        assert row["matmul"] > row["conv"]
        assert row["matmul"] > row["pooling"]

    def test_conv_dominates_kernels_at_batch64(self, report_b64):
        row = report_b64.table3_row()
        assert row["conv"] > row["matmul"]
        assert row["conv"] > row["pooling"]

    def test_memops_per_image_amortizes(self, report_b1, report_b64):
        """Figure 7: per-image memop timing falls with batch."""
        assert report_b64.memops.per_image_ns < report_b1.memops.per_image_ns

    def test_memory_far_below_capacity(self, report_b64):
        assert report_b64.memory_utilization < 0.05


class TestFormatting:
    def test_full_report_sections(self, report_b1):
        text = format_report(report_b1)
        assert "CUDA API Statistics" in text
        assert "CUDA Kernel Statistics" in text
        assert "CUDA Memory Operation Statistics" in text
        assert "cuLibraryLoadData" in text

    def test_api_table_top_limits_rows(self, report_b1):
        text = format_api_table(report_b1, top=2)
        assert len(text.splitlines()) == 3 + 2

    def test_kernel_table_display_names(self, report_b1):
        text = format_kernel_table(report_b1)
        assert "Matrix Multiplication" in text

    def test_memops_block(self, report_b64):
        text = format_memops(report_b64)
        assert "GiB" in text and "per-image" in text

    def test_display_name_fallback(self):
        assert display_name("matmul") == "Matrix Multiplication"
        assert display_name("weird") == "weird"
