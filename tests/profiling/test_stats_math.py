"""Arithmetic of the profiler's stat records."""

import pytest

from repro.profiling import ApiStat, KernelStat, MemopsStat


class TestApiStat:
    def test_avg(self):
        stat = ApiStat("cudaMalloc", total_us=100.0, calls=25, share=0.1)
        assert stat.avg_us == 4.0

    def test_zero_calls_safe(self):
        assert ApiStat("x", 0.0, 0, 0.0).avg_us == 0.0


class TestKernelStat:
    def test_display_name(self):
        assert KernelStat("matmul", 1.0, 1, 1.0).display == "Matrix Multiplication"
        assert KernelStat("custom", 1.0, 1, 1.0).display == "custom"


class TestMemopsStat:
    def test_per_image_conversion(self):
        stat = MemopsStat(total_us=100.0, count=10, total_bytes=1000, images=50)
        assert stat.per_image_ns == pytest.approx(1e3 * 100.0 / 50)

    def test_avg_call(self):
        stat = MemopsStat(total_us=100.0, count=10, total_bytes=1000, images=50)
        assert stat.avg_call_us == 10.0

    def test_zero_images_safe(self):
        stat = MemopsStat(10.0, 1, 100, images=0)
        assert stat.per_image_ns == 0.0

    def test_zero_count_safe(self):
        stat = MemopsStat(0.0, 0, 0, images=5)
        assert stat.avg_call_us == 0.0
