"""Accuracy-constrained efficiency optimization (§5.4 / Figure 5)."""

import pytest

from repro.arch import TABLE1_MODELS, TABLE1_PAPER_AP
from repro.nas import (
    CandidateProfile,
    benchmark_candidates,
    constrained_selection,
    resource_aware_selection,
)


def profile(name, acc, opt_us, seq_us=None, batch=1):
    return CandidateProfile(
        config=TABLE1_MODELS["Original SPP-Net"].with_name(name),
        accuracy=acc,
        sequential_latency_us=seq_us if seq_us is not None else 2 * opt_us,
        optimized_latency_us=opt_us,
        batch=batch,
    )


class TestConstrainedSelection:
    def test_filters_then_maximizes_efficiency(self):
        profiles = [
            profile("fast-but-inaccurate", 0.90, 100.0),
            profile("accurate-slow", 0.98, 500.0),
            profile("accurate-fast", 0.97, 300.0),
        ]
        winner = constrained_selection(profiles, accuracy_threshold=0.965)
        assert winner.config.name == "accurate-fast"

    def test_threshold_is_strict(self):
        profiles = [profile("exactly-at", 0.97, 100.0),
                    profile("above", 0.971, 400.0)]
        winner = constrained_selection(profiles, accuracy_threshold=0.97)
        assert winner.config.name == "above"  # a(n) > A is strict

    def test_infeasible_raises_with_best_observed(self):
        with pytest.raises(ValueError, match="0.9000"):
            constrained_selection([profile("only", 0.90, 100.0)], 0.99)

    def test_profile_derived_metrics(self):
        p = profile("x", 0.95, 250.0, seq_us=500.0, batch=4)
        assert p.efficiency == pytest.approx(1e6 * 4 / 250.0)
        assert p.speedup == pytest.approx(2.0)


class TestBenchmarkPipeline:
    @pytest.fixture(scope="class")
    def profiles(self):
        candidates = [(cfg, TABLE1_PAPER_AP[name])
                      for name, cfg in TABLE1_MODELS.items()]
        return benchmark_candidates(candidates, batch=1)

    def test_all_candidates_profiled(self, profiles):
        assert len(profiles) == 4
        for p in profiles:
            assert p.optimized_latency_us < p.sequential_latency_us

    def test_selection_meets_constraint(self, profiles):
        winner = constrained_selection(profiles, 0.965)
        assert winner.accuracy > 0.965
        # smaller-FC feasible candidate is faster in the deterministic sim
        assert winner.config.name == "SPP-Net #3"

    def test_resource_aware_end_to_end(self):
        candidates = [(cfg, TABLE1_PAPER_AP[name])
                      for name, cfg in TABLE1_MODELS.items()]
        winner, profiles = resource_aware_selection(candidates, 0.955)
        assert winner in profiles
        assert winner.accuracy > 0.955
        feasible = [p for p in profiles if p.accuracy > 0.955]
        assert winner.efficiency == max(p.efficiency for p in feasible)
