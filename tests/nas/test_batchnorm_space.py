"""BatchNorm extension axis of the search space."""

import numpy as np

from repro.nas import config_from_sample, sppnet_search_space


class TestBatchNormAxis:
    def test_space_size_doubles(self):
        assert sppnet_search_space(include_batchnorm=True).size == 350

    def test_sample_decodes_flag(self):
        cfg = config_from_sample({
            "first_kernel": 3, "spp_first_level": 4, "fc_width": 256,
            "batchnorm": True,
        })
        assert cfg.use_batchnorm
        assert cfg.name.endswith("-bn]")

    def test_default_space_has_no_bn(self):
        space = sppnet_search_space()
        sample = space.sample(np.random.default_rng(0))
        assert "batchnorm" not in sample
        assert not config_from_sample(sample).use_batchnorm

    def test_bn_detector_has_more_parameters(self):
        from repro.detect import SPPNetDetector

        base = config_from_sample({"first_kernel": 3, "spp_first_level": 2,
                                   "fc_width": 128})
        bn = config_from_sample({"first_kernel": 3, "spp_first_level": 2,
                                 "fc_width": 128, "batchnorm": True})
        extra = (SPPNetDetector(bn, seed=0).num_parameters()
                 - SPPNetDetector(base, seed=0).num_parameters())
        assert extra == 2 * (64 + 128 + 256)  # gamma+beta per conv stage

    def test_bn_flag_does_not_change_ir(self):
        """BN folds into conv at inference: identical graphs either way."""
        from repro.graph import build_sppnet_graph

        base = config_from_sample({"first_kernel": 3, "spp_first_level": 4,
                                   "fc_width": 256})
        bn = config_from_sample({"first_kernel": 3, "spp_first_level": 4,
                                 "fc_width": 256, "batchnorm": True})
        g1 = build_sppnet_graph(base)
        g2 = build_sppnet_graph(bn)
        assert g1.names() == g2.names()
