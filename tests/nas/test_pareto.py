"""Pareto-front analysis of the dual objective."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import TABLE1_MODELS
from repro.nas import (
    CandidateProfile,
    constrained_selection,
    dominates,
    front_table,
    knee_point,
    pareto_front,
)

settings.register_profile("pareto", deadline=None, max_examples=40)
settings.load_profile("pareto")


def profile(name: str, accuracy: float, efficiency: float) -> CandidateProfile:
    return CandidateProfile(
        config=TABLE1_MODELS["Original SPP-Net"].with_name(name),
        accuracy=accuracy,
        sequential_latency_us=2e6 / efficiency,
        optimized_latency_us=1e6 / efficiency,
        batch=1,
    )


class TestDominance:
    def test_strict_dominance(self):
        assert dominates(profile("a", 0.9, 100), profile("b", 0.8, 90))

    def test_tradeoff_not_dominated(self):
        a = profile("a", 0.9, 50)
        b = profile("b", 0.8, 100)
        assert not dominates(a, b) and not dominates(b, a)

    def test_equal_profiles_do_not_dominate(self):
        a = profile("a", 0.9, 100)
        b = profile("b", 0.9, 100)
        assert not dominates(a, b)


class TestFront:
    def test_front_excludes_dominated(self):
        profiles = [profile("good", 0.95, 100), profile("bad", 0.90, 50),
                    profile("fast", 0.85, 200)]
        names = {p.config.name for p in pareto_front(profiles)}
        assert names == {"good", "fast"}

    def test_front_sorted_by_accuracy(self):
        profiles = [profile(f"p{i}", a, e) for i, (a, e) in
                    enumerate([(0.9, 100), (0.95, 50), (0.85, 200)])]
        front = pareto_front(profiles)
        accs = [p.accuracy for p in front]
        assert accs == sorted(accs)

    def test_knee_on_singleton(self):
        only = [profile("solo", 0.9, 100)]
        assert knee_point(pareto_front(only)).config.name == "solo"

    def test_knee_requires_front(self):
        with pytest.raises(ValueError):
            knee_point([])

    def test_table_marks_status(self):
        profiles = [profile("good", 0.95, 100), profile("bad", 0.90, 50)]
        text = front_table(profiles)
        assert "pareto" in text and "dominated" in text and "knee" in text

    @given(st.lists(st.tuples(st.floats(0.5, 1.0), st.floats(10, 1000)),
                    min_size=1, max_size=12))
    def test_constrained_winner_always_on_front(self, pairs):
        """The winner's objective pair is always a front objective pair
        (ties between identical candidates may resolve to either name)."""
        profiles = [profile(f"p{i}", a, e) for i, (a, e) in enumerate(pairs)]
        front = pareto_front(profiles)
        threshold = min(p.accuracy for p in profiles) - 1e-9
        winner = constrained_selection(profiles, threshold)
        # With every candidate feasible, the scalarization maximizes
        # efficiency, so the winner ties the front's best efficiency
        # (names may differ when efficiencies tie exactly).
        assert winner.efficiency == pytest.approx(
            max(p.efficiency for p in front)
        )

    @given(st.lists(st.tuples(st.floats(0.5, 1.0), st.floats(10, 1000)),
                    min_size=1, max_size=12))
    def test_front_members_mutually_nondominated(self, pairs):
        profiles = [profile(f"p{i}", a, e) for i, (a, e) in enumerate(pairs)]
        front = pareto_front(profiles)
        for a in front:
            for b in front:
                assert not dominates(a, b)
