"""Trial retries, quarantine, journaling, and checkpoint/resume."""

import time

import numpy as np
import pytest

from repro.faults import FatalOn, Flaky, InjectedFault
from repro.nas import (
    Experiment,
    FunctionalEvaluator,
    ModelSpace,
    ParallelExperiment,
    RetryPolicy,
    TrialJournal,
    ValueChoice,
    run_trial_with_retries,
    sppnet_search_space,
)

FAST_RETRIES = RetryPolicy(max_attempts=3, backoff_s=0.001, max_backoff_s=0.01)


def objective(sample):
    return sample["fc_width"] / 8192 + sample["spp_first_level"] / 100


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.0,
                             max_backoff_s=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        delays = [policy.delay(1, rng) for _ in range(100)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        assert len(set(delays)) > 1

    def test_none_is_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestRunTrialWithRetries:
    def test_flaky_succeeds_on_retry(self):
        from repro.faults import FailFirst

        fn = FailFirst(objective, n=1)  # transient: first attempt fails
        record = run_trial_with_retries(
            FunctionalEvaluator(fn), {"fc_width": 4096, "spp_first_level": 2},
            trial_id=0, policy=FAST_RETRIES,
        )
        assert record.ok
        assert record.attempts == 2
        assert record.value == pytest.approx(objective(record.sample))

    def test_fatal_is_quarantined(self):
        def always_fails(sample):
            raise InjectedFault("boom")

        record = run_trial_with_retries(
            FunctionalEvaluator(always_fails), {"a": 1},
            trial_id=3, policy=FAST_RETRIES,
        )
        assert not record.ok
        assert record.status == "failed"
        assert record.attempts == FAST_RETRIES.max_attempts
        assert "InjectedFault" in record.error
        assert np.isnan(record.value)
        assert record.trial_id == 3


class TestExperimentQuarantine:
    def test_flaky_sweep_completes_and_matches_fault_free(self):
        """20% injected failures: same trials, same winner as fault-free."""
        clean = Experiment(sppnet_search_space(), FunctionalEvaluator(objective),
                           max_trials=12, seed=4)
        clean.run()

        # 6 attempts: P(6 consecutive injected faults) ~ 6e-5 per trial,
        # so every trial deterministically succeeds within the budget
        flaky = Flaky(objective, rate=0.2, seed=11)
        faulty = Experiment(
            sppnet_search_space(), FunctionalEvaluator(flaky),
            max_trials=12, seed=4,
            retry_policy=RetryPolicy(max_attempts=6, backoff_s=0.001),
        )
        faulty.run()

        assert flaky.faults > 0  # faults were actually injected
        assert len(faulty.trials) == 12
        assert [t.sample for t in faulty.trials] == [t.sample for t in clean.trials]
        assert faulty.best().sample == clean.best().sample
        assert faulty.best().value == pytest.approx(clean.best().value)
        assert any(t.attempts > 1 for t in faulty.trials)

    def test_fatal_trials_quarantined_and_excluded_from_best(self):
        space = ModelSpace([ValueChoice("a", (1, 2, 3, 4, 5))])
        poisoned = {repr({"a": 5})}  # would otherwise win

        fn = FatalOn(lambda s: s["a"] / 10, poisoned, key=lambda s: repr(dict(s)))
        exp = Experiment(space, FunctionalEvaluator(fn), max_trials=5, seed=0,
                         retry_policy=RetryPolicy.none())
        exp.run()

        assert len(exp.trials) == 5
        assert len(exp.failed()) == 1
        assert not exp.failed()[0].ok
        assert exp.best().sample["a"] == 4  # 5 is quarantined
        assert all(t.sample["a"] != 5 for t in exp.above_threshold(0.0))
        assert "FAILED" in exp.results_table()

    def test_all_failed_raises(self):
        space = ModelSpace([ValueChoice("a", (1, 2))])

        def boom(sample):
            raise RuntimeError("dead evaluator")

        exp = Experiment(space, FunctionalEvaluator(boom), max_trials=2, seed=0,
                         retry_policy=RetryPolicy.none())
        exp.run()
        with pytest.raises(RuntimeError, match="quarantined"):
            exp.best()


class TestParallelQuarantine:
    def test_flaky_parallel_sweep_matches_fault_free_winner(self):
        clean = ParallelExperiment(
            sppnet_search_space(), FunctionalEvaluator(objective),
            max_trials=12, workers=4, seed=4)
        clean.run()

        flaky = Flaky(objective, rate=0.2, seed=23)
        faulty = ParallelExperiment(
            sppnet_search_space(), FunctionalEvaluator(flaky),
            max_trials=12, workers=4, seed=4,
            retry_policy=RetryPolicy(max_attempts=6, backoff_s=0.001),
        )
        faulty.run()

        assert flaky.faults > 0
        assert len(faulty.trials) == 12
        assert [t.sample for t in faulty.trials] == [t.sample for t in clean.trials]
        assert faulty.best().sample == clean.best().sample

    def test_fatal_trial_does_not_lose_batch_siblings(self):
        """One poisoned trial in a batch: siblings' results survive."""
        space = ModelSpace([ValueChoice("a", (1, 2, 3, 4))])
        fn = FatalOn(lambda s: s["a"] / 10, {repr({"a": 2})},
                     key=lambda s: repr(dict(s)))
        exp = ParallelExperiment(space, FunctionalEvaluator(fn),
                                 max_trials=4, workers=4, seed=0,
                                 retry_policy=RetryPolicy.none())
        exp.run()
        assert len(exp.trials) == 4
        assert len(exp.succeeded()) == 3
        assert len(exp.failed()) == 1
        assert exp.failed()[0].sample["a"] == 2
        assert exp.best().sample["a"] == 4

    def test_per_trial_duration_measured_in_worker(self):
        """duration_s is each trial's own cost, not the batch wall-clock
        split evenly (the old fiction)."""
        space = ModelSpace([ValueChoice("a", (1, 2, 3, 4))])

        def uneven(sample):
            time.sleep(0.25 if sample["a"] == 1 else 0.0)
            return float(sample["a"])

        exp = ParallelExperiment(space, FunctionalEvaluator(uneven),
                                 max_trials=4, workers=4, seed=0)
        exp.run()
        by_a = {t.sample["a"]: t for t in exp.trials}
        assert by_a[1].duration_s >= 0.2
        for a in (2, 3, 4):
            assert by_a[a].duration_s < 0.1


class TestJournalResume:
    def test_journal_roundtrip_including_failures(self, tmp_path):
        journal = TrialJournal(tmp_path / "trials.jsonl")
        space = ModelSpace([ValueChoice("a", (1, 2, 3))])
        fn = FatalOn(lambda s: s["a"] / 10, {repr({"a": 2})},
                     key=lambda s: repr(dict(s)))
        exp = Experiment(space, FunctionalEvaluator(fn), max_trials=3, seed=0,
                         retry_policy=RetryPolicy.none(), journal=journal)
        exp.run()

        loaded = journal.load()
        assert len(loaded) == 3
        for original, restored in zip(exp.trials, loaded):
            assert restored.trial_id == original.trial_id
            assert dict(restored.sample) == dict(original.sample)
            assert restored.status == original.status
            assert restored.attempts == original.attempts
            if original.ok:
                assert restored.value == pytest.approx(original.value)
            else:
                assert np.isnan(restored.value)

    def test_resumed_sweep_identical_to_uninterrupted(self, tmp_path):
        """Kill after k trials, resume from the journal: same trial DB."""
        full = Experiment(sppnet_search_space(), FunctionalEvaluator(objective),
                          max_trials=10, seed=5)
        full.run()

        path = tmp_path / "trials.jsonl"
        partial = Experiment(sppnet_search_space(), FunctionalEvaluator(objective),
                             max_trials=4, seed=5, journal=path)
        partial.run()  # "killed" after 4 trials

        resumed = Experiment.resume(
            path, sppnet_search_space(), FunctionalEvaluator(objective),
            max_trials=10, seed=5)
        assert len(resumed.trials) == 4  # restored from the journal
        resumed.run()

        assert len(resumed.trials) == 10
        assert [t.sample for t in resumed.trials] == [t.sample for t in full.trials]
        assert [t.trial_id for t in resumed.trials] == [t.trial_id for t in full.trials]
        assert [t.value for t in resumed.trials] == pytest.approx(
            [t.value for t in full.trials])
        assert resumed.best().sample == full.best().sample
        # the journal now holds the complete run
        assert len(TrialJournal(path).load()) == 10

    def test_parallel_resume_matches_uninterrupted(self, tmp_path):
        full = ParallelExperiment(
            sppnet_search_space(), FunctionalEvaluator(objective),
            max_trials=9, workers=3, seed=7)
        full.run()

        path = tmp_path / "trials.jsonl"
        partial = ParallelExperiment(
            sppnet_search_space(), FunctionalEvaluator(objective),
            max_trials=5, workers=3, seed=7, journal=path)
        partial.run()

        resumed = ParallelExperiment.resume(
            path, sppnet_search_space(), FunctionalEvaluator(objective),
            max_trials=9, workers=3, seed=7)
        resumed.run()

        assert [t.sample for t in resumed.trials] == [t.sample for t in full.trials]
        assert resumed.best().sample == full.best().sample

    def test_resume_from_missing_journal_starts_fresh(self, tmp_path):
        exp = Experiment.resume(
            tmp_path / "new.jsonl", sppnet_search_space(),
            FunctionalEvaluator(objective), max_trials=3, seed=0)
        assert exp.trials == []
        exp.run()
        assert len(exp.trials) == 3
