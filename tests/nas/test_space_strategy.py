"""Search space, strategies, and experiment driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import TABLE1_MODELS
from repro.nas import (
    Experiment,
    FunctionalEvaluator,
    GreedyBanditStrategy,
    GridSearchStrategy,
    ModelSpace,
    RandomStrategy,
    RegularizedEvolution,
    TrainingEvaluator,
    ValueChoice,
    config_from_sample,
    sppnet_search_space,
)

settings.register_profile("nas", deadline=None, max_examples=30)
settings.load_profile("nas")


class TestSpace:
    def test_paper_space_size(self):
        # 5 kernels x 5 SPP levels x 7 FC widths = 175 architectures
        assert sppnet_search_space().size == 175
        assert sppnet_search_space(include_second_fc=True).size == 175 * 7

    def test_sample_valid(self):
        space = sppnet_search_space()
        sample = space.sample(np.random.default_rng(0))
        space.validate(sample)

    def test_grid_enumerates_everything(self):
        space = sppnet_search_space()
        points = list(space.grid())
        assert len(points) == space.size
        assert len({ModelSpace.encode(p) for p in points}) == space.size

    def test_mutate_changes_exactly_one(self):
        space = sppnet_search_space()
        rng = np.random.default_rng(1)
        sample = space.sample(rng)
        mutated = space.mutate(sample, rng)
        diffs = [k for k in sample if sample[k] != mutated[k]]
        assert len(diffs) == 1

    def test_validate_rejects_bad_values(self):
        space = sppnet_search_space()
        with pytest.raises(ValueError):
            space.validate({"first_kernel": 2, "spp_first_level": 1, "fc_width": 128})
        with pytest.raises(KeyError):
            space.validate({"first_kernel": 3})

    def test_choice_validation(self):
        with pytest.raises(ValueError):
            ValueChoice("x", ())
        with pytest.raises(ValueError):
            ValueChoice("x", (1, 1))
        with pytest.raises(ValueError):
            ModelSpace([])


class TestConfigFromSample:
    def test_table1_members_reachable(self):
        """Every Table 1 candidate is a point of the §4.2 search space."""
        for name, cfg in TABLE1_MODELS.items():
            sample = {
                "first_kernel": cfg.convs[0].kernel,
                "spp_first_level": cfg.spp_levels[0],
                "fc_width": cfg.fc_sizes[0],
            }
            rebuilt = config_from_sample(sample)
            assert rebuilt.convs == cfg.convs
            assert rebuilt.spp_levels == cfg.spp_levels
            assert rebuilt.fc_sizes == cfg.fc_sizes

    def test_degenerate_pyramids(self):
        assert config_from_sample(
            {"first_kernel": 3, "spp_first_level": 1, "fc_width": 128}
        ).spp_levels == (1,)
        assert config_from_sample(
            {"first_kernel": 3, "spp_first_level": 2, "fc_width": 128}
        ).spp_levels == (2, 1)

    def test_second_fc(self):
        cfg = config_from_sample({"first_kernel": 3, "spp_first_level": 4,
                                  "fc_width": 512, "fc2_width": 256})
        assert cfg.fc_sizes == (512, 256)

    @given(st.integers(0, 2**31 - 1))
    def test_every_sample_buildable(self, seed):
        space = sppnet_search_space()
        sample = space.sample(np.random.default_rng(seed))
        cfg = config_from_sample(sample)
        assert cfg.min_input_size() <= 100  # paper chips always valid


class TestStrategies:
    def _history(self, space, n, seed=0):
        evaluator = FunctionalEvaluator(lambda s: s["spp_first_level"] / 5)
        exp = Experiment(space, evaluator, RandomStrategy(), max_trials=n, seed=seed)
        exp.run()
        return exp.trials

    def test_random_deterministic_per_seed(self):
        space = sppnet_search_space()
        rng1, rng2 = np.random.default_rng(3), np.random.default_rng(3)
        s = RandomStrategy()
        assert s.propose(space, [], rng1) == s.propose(space, [], rng2)

    def test_grid_proposes_untried(self):
        space = sppnet_search_space()
        history = self._history(space, 5)
        tried = {ModelSpace.encode(t.sample) for t in history}
        proposal = GridSearchStrategy().propose(space, history, np.random.default_rng(0))
        assert ModelSpace.encode(proposal) not in tried

    def test_evolution_warmup_then_mutates(self):
        space = sppnet_search_space()
        strat = RegularizedEvolution(population=4, sample_size=2)
        rng = np.random.default_rng(0)
        assert strat.propose(space, [], rng)  # random during warmup
        history = self._history(space, 8)
        child = strat.propose(space, history, rng)
        space.validate(child)

    def test_bandit_exploits_best_value(self):
        space = sppnet_search_space()
        history = self._history(space, 30)
        strat = GreedyBanditStrategy(epsilon=0.0)
        proposal = strat.propose(space, history, np.random.default_rng(0))
        space.validate(proposal)
        # objective only rewards spp level; exploit should pick a top level
        seen_levels = {t.sample["spp_first_level"] for t in history}
        assert proposal["spp_first_level"] == max(seen_levels)

    def test_strategy_param_validation(self):
        with pytest.raises(ValueError):
            RegularizedEvolution(population=1)
        with pytest.raises(ValueError):
            GreedyBanditStrategy(epsilon=2.0)


class TestExperiment:
    def test_runs_budget(self):
        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: 0.5),
                         max_trials=7, seed=0)
        trials = exp.run()
        assert len(trials) == 7
        assert [t.trial_id for t in trials] == list(range(7))

    def test_deduplication(self):
        space = ModelSpace([ValueChoice("a", (1, 2, 3))])
        exp = Experiment(space, FunctionalEvaluator(lambda s: s["a"]),
                         max_trials=10, seed=0)
        exp.run()
        encodings = [ModelSpace.encode(t.sample) for t in exp.trials]
        assert len(set(encodings)) == len(encodings)
        assert len(exp.trials) == 3  # space exhausted

    def test_best_and_topk(self):
        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: s["fc_width"]),
                         max_trials=10, seed=1)
        exp.run()
        assert exp.best().value == max(t.value for t in exp.trials)
        top = exp.top_k(3)
        assert top[0].value >= top[1].value >= top[2].value

    def test_above_threshold(self):
        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: s["spp_first_level"] / 5),
                         max_trials=12, seed=0)
        exp.run()
        for t in exp.above_threshold(0.5):
            assert t.value > 0.5

    def test_results_table_sorted(self):
        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: s["fc_width"] / 8192),
                         max_trials=5, seed=0)
        exp.run()
        table = exp.results_table()
        assert "first_kernel" in table
        assert len(table.splitlines()) == 2 + 5

    def test_metrics_recorded(self):
        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: {"value": 0.9, "loss": 0.1}),
                         max_trials=2, seed=0)
        exp.run()
        assert exp.trials[0].metric("loss") == 0.1

    def test_evaluator_without_value_key_is_quarantined(self):
        from repro.nas import RetryPolicy

        exp = Experiment(sppnet_search_space(),
                         FunctionalEvaluator(lambda s: {"oops": 1.0}),
                         max_trials=1, seed=0, retry_policy=RetryPolicy.none())
        exp.run()  # the broken evaluator no longer kills the sweep
        assert len(exp.trials) == 1
        assert not exp.trials[0].ok
        assert "KeyError" in exp.trials[0].error
        with pytest.raises(RuntimeError):
            exp.best()

    def test_training_evaluator_decodes_config(self):
        captured = []

        def train_fn(cfg):
            captured.append(cfg)
            return 0.5

        evaluator = TrainingEvaluator(train_fn)
        evaluator.evaluate({"first_kernel": 5, "spp_first_level": 3, "fc_width": 256})
        assert captured[0].convs[0].kernel == 5
