"""Concurrent trial dispatch."""

import threading
import time

import pytest

from repro.nas import (
    FunctionalEvaluator,
    ModelSpace,
    ParallelExperiment,
    RandomStrategy,
    ValueChoice,
    sppnet_search_space,
)


def slow_evaluator(delay=0.05):
    concurrency = {"active": 0, "max": 0}
    lock = threading.Lock()

    def fn(sample):
        with lock:
            concurrency["active"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["active"])
        time.sleep(delay)
        with lock:
            concurrency["active"] -= 1
        return sample["spp_first_level"] / 5

    return FunctionalEvaluator(fn), concurrency


class TestParallelExperiment:
    def test_runs_budget_with_unique_trials(self):
        evaluator, _ = slow_evaluator(0.0)
        exp = ParallelExperiment(sppnet_search_space(), evaluator,
                                 max_trials=12, workers=4, seed=0)
        trials = exp.run()
        assert len(trials) == 12
        encodings = {ModelSpace.encode(t.sample) for t in trials}
        assert len(encodings) == 12

    def test_actually_concurrent(self):
        evaluator, concurrency = slow_evaluator(0.05)
        exp = ParallelExperiment(sppnet_search_space(), evaluator,
                                 max_trials=8, workers=4, seed=0)
        exp.run()
        assert concurrency["max"] >= 2

    def test_matches_sequential_random_exploration(self):
        """Same strategy+seed explores the same architectures (any order)."""
        from repro.nas import Experiment

        def value(sample):
            return sample["fc_width"] / 8192

        seq = Experiment(sppnet_search_space(), FunctionalEvaluator(value),
                         RandomStrategy(), max_trials=10, seed=5)
        seq.run()
        par = ParallelExperiment(sppnet_search_space(), FunctionalEvaluator(value),
                                 RandomStrategy(), max_trials=10, workers=3, seed=5)
        par.run()
        assert ({ModelSpace.encode(t.sample) for t in seq.trials}
                == {ModelSpace.encode(t.sample) for t in par.trials})

    def test_space_exhaustion_stops(self):
        space = ModelSpace([ValueChoice("a", (1, 2, 3))])
        evaluator, _ = slow_evaluator(0.0)
        exp = ParallelExperiment(space, FunctionalEvaluator(lambda s: s["a"]),
                                 max_trials=10, workers=2, seed=0)
        trials = exp.run()
        assert len(trials) == 3

    def test_best(self):
        exp = ParallelExperiment(
            sppnet_search_space(),
            FunctionalEvaluator(lambda s: s["fc_width"]),
            max_trials=6, workers=3, seed=0,
        )
        exp.run()
        assert exp.best().value == max(t.value for t in exp.trials)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ParallelExperiment(sppnet_search_space(),
                               FunctionalEvaluator(lambda s: 0.0), workers=0)
