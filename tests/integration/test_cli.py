"""The experiments CLI: dispatch, output, JSON persistence."""

import json

import pytest

from repro.experiments.cli import EXPERIMENTS, main


class TestCli:
    def test_all_paper_artifacts_have_regenerators(self):
        for artifact in ("table1", "table2", "table3", "fig5", "fig6",
                         "fig7", "fig8"):
            assert artifact in EXPERIMENTS

    def test_table2_command_prints_paper_comparison(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "SPP-Net #2" in out
        assert "paper reported" in out

    def test_out_writes_json(self, tmp_path, capsys):
        main(["table2", "--out", str(tmp_path)])
        path = tmp_path / "table2.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "table2"
        assert len(data["rows"]) == 4

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_fast_flag_accepted(self, capsys):
        assert main(["ablation-multigpu", "--fast"]) == 0
        assert "GPU" in capsys.readouterr().out
