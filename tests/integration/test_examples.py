"""Example scripts: syntax, CLI surface, and importability.

Full example runs train models for minutes; these tests pin the cheap
invariants — every example compiles, exposes --help, and only imports
public ``repro`` API.
"""

import ast
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(pathlib.Path(__file__).parents[2].joinpath("examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)

    def test_has_docstring_and_main_guard(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} missing module docstring"
        assert 'if __name__ == "__main__":' in path.read_text()

    @pytest.mark.slow  # one subprocess per example script
    def test_help_exits_cleanly(self, path):
        result = subprocess.run(
            [sys.executable, str(path), "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "usage" in result.stdout.lower()

    def test_imports_only_public_api(self, path):
        """Examples must consume the public package surface, not private
        modules — the adoption contract."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    parts = node.module.split(".")
                    assert all(not p.startswith("_") for p in parts)


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "nas_search.py", "ios_scheduling.py",
            "gpu_profiling.py", "connectivity_pipeline.py",
            "full_scene_detection.py"} <= names
