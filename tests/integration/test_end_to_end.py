"""Cross-module integration: real chips through the full pipeline."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import TrainConfig, evaluate_detector, train_detector
from repro.geo import WatershedConfig, build_dataset, build_scene
from repro.hydro import (
    assess_connectivity,
    breach_dem,
    delineate_streams,
    priority_flood_fill,
)


pytestmark = pytest.mark.slow  # minutes-scale training/pipeline runs

SMALL_ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1), ConvSpec(32, 3, 1)),
    pools=(PoolSpec(2, 2), PoolSpec(2, 2), PoolSpec(2, 2)),
    spp_levels=(4, 2, 1),
    fc_sizes=(64,),
    name="small-sppnet",
)


@pytest.fixture(scope="module")
def chips():
    ds = build_dataset(num_scenes=1, chips_per_crossing=4, chip_size=64,
                       seed=21, scene_size=384)
    return ds.split(0.8, seed=0)


class TestDetectionOnRealChips:
    def test_small_model_learns_synthetic_crossings(self, chips):
        """End-to-end: synthetic watershed chips -> trained detector with
        meaningfully-better-than-chance classification.

        The tiny test architecture needs a higher learning rate than the
        paper's full-width models; augmentation doubles the small sample.
        """
        from repro.geo import augment_dataset

        train, test = chips
        result = train_detector(
            SMALL_ARCH, augment_dataset(train, seed=1), test,
            TrainConfig(epochs=10, batch_size=10, seed=0, learning_rate=0.02),
        )
        assert result.test_scores is not None
        assert result.test_scores.accuracy > 0.75
        loose = evaluate_detector(result.model, test, iou_threshold=0.1)
        assert loose.ap > 0.5

    def test_spp_accepts_full_scene_window(self, chips):
        """The trained (chip-sized) model runs on a larger window unchanged —
        the variable-input capability SPP exists for."""
        train, _ = chips
        result = train_detector(SMALL_ARCH, train, None,
                                TrainConfig(epochs=1, batch_size=10, seed=0))
        from repro.tensor import Tensor, no_grad

        big = np.random.default_rng(0).random((1, 4, 96, 96)).astype(np.float32)
        with no_grad():
            logits, boxes = result.model(Tensor(big))
        assert logits.shape == (1, 2) and boxes.shape == (1, 4)


class TestHydroOnScene:
    def test_breaching_at_true_crossings_improves_connectivity(self):
        """Figure 1 on a full synthetic scene: delineate on the embanked DEM,
        breach at ground-truth crossings, connectivity improves."""
        scene = build_scene(WatershedConfig(size=192, road_spacing=64,
                                            stream_threshold=600, seed=5))
        threshold = scene.config.stream_threshold

        def analyze(dem):
            conditioned = priority_flood_fill(dem, epsilon=1e-4)
            net = delineate_streams(conditioned, threshold=threshold)
            return assess_connectivity(dem, net)

        before = analyze(scene.dem)
        breached = breach_dem(scene.dem, [c.center for c in scene.crossings],
                              radius=4)
        after = analyze(breached)
        # Breaching removes digital-dam depressions behind embankments.
        assert after.depression_cells < before.depression_cells
        assert after.mean_path_length >= 0.9 * before.mean_path_length

    def test_pipeline_smoke(self):
        """The one-call pipeline produces every artifact on a micro budget."""
        from repro.pipeline import PipelineConfig, run_pipeline

        result = run_pipeline(PipelineConfig(
            num_scenes=1, chips_per_crossing=1, nas_trials=1, train_epochs=1,
            accuracy_threshold=-1.0, profile_iterations=5, serve_requests=8,
        ))
        assert result.winner_config is not None
        assert result.winner_model is not None
        assert result.schedule_result is not None
        assert result.schedule_result.speedup > 1.0
        assert result.profile is not None
        assert result.profile.peak_memory_bytes > 0
        # serving smoke: every request answered, repeats hit the cache
        assert result.serve_metrics is not None
        assert result.serve_metrics["completed"] == 8
        assert result.serve_metrics["rejected"] == 0
