"""Failure injection and robustness: the system degrades loudly, not
silently."""

import numpy as np
import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import Graph, Operator, OpType, build_sppnet_graph
from repro.gpusim import (
    CudaRuntime,
    DeviceSpec,
    GraphExecutor,
    OutOfMemoryError,
    sequential_stages,
)
from repro.ios import dp_schedule


class TestDeviceOOM:
    def test_executor_raises_on_tiny_device(self):
        """A 64 MB card cannot host SPP-Net #2's 127 MB of weights."""
        tiny = DeviceSpec(name="tiny", dram_capacity_gb=0.0625)
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        executor = GraphExecutor(graph, device=tiny)
        with pytest.raises(OutOfMemoryError):
            executor.run(sequential_stages(graph), batch=1)

    def test_oom_message_mentions_capacity(self):
        tiny = DeviceSpec(name="tiny", dram_capacity_gb=0.0625)
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        with pytest.raises(OutOfMemoryError, match="capacity"):
            GraphExecutor(graph, device=tiny).run(sequential_stages(graph), 1)

    def test_batch_big_enough_to_oom_activations(self):
        """Weights fit, but a huge batch's activations do not."""
        small = DeviceSpec(name="small", dram_capacity_gb=0.5)
        graph = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        executor = GraphExecutor(graph, device=small)
        executor.run(sequential_stages(graph), 1)  # fits
        with pytest.raises(OutOfMemoryError):
            executor.run(sequential_stages(graph), 2048)


class TestDegenerateGraphs:
    def test_single_op_graph(self):
        g = Graph("one")
        g.add(Operator("in", OpType.INPUT, out_shape=(8,)))
        g.add(Operator("only", OpType.RELU, ("in",), (8,)))
        sched = dp_schedule(g, 1)
        assert sched.num_stages == 1
        result = GraphExecutor(g).run(sched, 1)
        assert result.latency_us > 0

    def test_multi_output_graph(self):
        g = Graph("fork")
        g.add(Operator("in", OpType.INPUT, out_shape=(8,)))
        g.add(Operator("a", OpType.RELU, ("in",), (8,)))
        g.add(Operator("b", OpType.RELU, ("a",), (8,)))
        g.add(Operator("c", OpType.RELU, ("a",), (8,)))  # two sinks
        sched = dp_schedule(g, 1)
        GraphExecutor(g).run(sched, 1)

    def test_wide_flat_graph(self):
        """Many independent ops: DP must stay polynomial via pruning cap."""
        g = Graph("flat")
        g.add(Operator("in", OpType.INPUT, out_shape=(64, 8, 8)))
        for i in range(10):
            g.add(Operator(f"p{i}", OpType.RELU, ("in",), (64, 8, 8)))
        sched = dp_schedule(g, 1, max_stage_ops=4)
        assert all(stage.num_ops <= 4 for stage in sched.stages)


class TestTrainingEdgeCases:
    def test_all_negative_batch_trains(self):
        """detection_loss with zero positives must not crash or NaN."""
        from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
        from repro.detect import TrainConfig, train_detector
        from repro.geo import ChipDataset

        rng = np.random.default_rng(0)
        ds = ChipDataset(
            rng.random((16, 4, 24, 24)).astype(np.float32),
            np.zeros(16, dtype=np.int64),
            np.zeros((16, 4), dtype=np.float32),
            24,
        )
        arch = SPPNetConfig(convs=(ConvSpec(4, 3, 1),), pools=(PoolSpec(2, 2),),
                            spp_levels=(2, 1), fc_sizes=(16,), name="neg-only")
        result = train_detector(arch, ds, None, TrainConfig(epochs=1, batch_size=8))
        assert np.isfinite(result.history[0].mean_loss)

    def test_single_sample_batch(self):
        from repro.tensor import Tensor, losses

        logits = Tensor(np.zeros((1, 2)), requires_grad=True)
        boxes = Tensor(np.full((1, 4), 0.5), requires_grad=True)
        loss = losses.detection_loss(logits, boxes, np.array([1]),
                                     np.full((1, 4), 0.4))
        loss.backward()
        assert np.isfinite(loss.item())


class TestRuntimeConsistency:
    def test_trace_times_monotone_per_stream(self):
        graph = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        executor = GraphExecutor(graph)
        result = executor.run(dp_schedule(graph, 4), 4)
        per_stream: dict[int, float] = {}
        for event in result.trace.kernels:
            assert event.start_us >= per_stream.get(event.stream, 0.0) - 1e-9
            per_stream[event.stream] = event.end_us

    def test_api_events_monotone(self):
        rt = CudaRuntime()
        rt.init_session()
        times = [e.start_us for e in rt.trace.api]
        assert times == sorted(times)

    def test_kernel_never_starts_before_its_launch_returns(self):
        graph = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        executor = GraphExecutor(graph)
        result = executor.run(sequential_stages(graph), 1)
        launches = [e for e in result.trace.api if e.name == "cudaLaunchKernel"]
        assert len(launches) == len(result.trace.kernels)
        for api, kernel in zip(launches, result.trace.kernels):
            assert kernel.start_us >= api.end_us - 1e-9
