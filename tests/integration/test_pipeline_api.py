"""Pipeline convenience API surface (cheap checks; the full run is covered
by test_end_to_end.py::test_pipeline_smoke)."""

import pytest

from repro.pipeline import PipelineConfig, PipelineResult


class TestPipelineConfig:
    def test_defaults_are_demo_sized(self):
        config = PipelineConfig()
        assert config.nas_trials <= 5
        assert config.train_epochs <= 5
        assert config.batch >= 1

    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(AttributeError):
            config.nas_trials = 99


class TestPipelineResult:
    def test_empty_result_shape(self):
        from repro.geo import ChipDataset
        import numpy as np

        ds = ChipDataset(np.zeros((1, 4, 8, 8), np.float32),
                         np.zeros(1, dtype=np.int64),
                         np.zeros((1, 4), np.float32), 8)
        result = PipelineResult(dataset=ds)
        assert result.trials == []
        assert result.winner_config is None
        assert result.profile is None
