"""Experiment harness integration: each regenerator produces the paper's
shape on reduced workloads."""

import pytest

from repro.experiments import (
    ExperimentResult,
    format_table,
    run_ablation_scheduler,
    run_ablation_spp,
    run_ablation_strategy,
    run_constrained_selection,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table2,
    run_table3,
    select_optimal_batch,
)

BATCHES = (1, 4, 16, 64)


class TestResultType:
    def test_text_and_markdown_render(self):
        result = ExperimentResult("x", "demo", ["a", "b"], [[1, 2]], [[3, 4]],
                                  notes="n")
        text = result.to_text()
        assert "demo" in text and "paper reported" in text and "notes" in text
        md = result.to_markdown()
        assert md.count("|") > 4

    def test_save_json(self, tmp_path):
        result = ExperimentResult("x", "demo", ["a"], [[1]])
        path = result.save_json(tmp_path / "x.json")
        assert path.exists()

    def test_format_table_alignment(self):
        text = format_table(["col"], [[123]])
        assert "123" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_all_models_present(self, result):
        assert len(result.rows) == 4

    def test_optimized_faster_everywhere(self, result):
        for row in result.rows:
            seq = float(row[1].split()[0])
            opt = float(row[2].split()[0])
            assert opt < seq

    def test_latencies_same_order_of_magnitude_as_paper(self, result):
        """Within ~3x of the paper's milliseconds (same testbed class)."""
        for measured, paper in zip(result.rows, result.paper_reference):
            m = float(measured[1].split()[0])
            p = float(paper[1].split()[0])
            assert p / 3 < m < p * 3


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(batch_sizes=BATCHES, iterations=30)

    def test_shapes(self, result):
        rows = {r[0]: (float(r[1]), float(r[2]), float(r[3])) for r in result.rows}
        # matmul falls, conv rises, conv dominates at 64
        assert rows[1][0] > rows[64][0]
        assert rows[64][2] > rows[1][2]
        assert rows[64][2] > rows[64][0]
        assert rows[64][2] > rows[64][1]

    def test_percentages_bounded(self, result):
        for row in result.rows:
            for cell in row[1:]:
                assert 0.0 <= float(cell) <= 100.0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(batch_sizes=BATCHES)

    def test_efficiency_improves_with_batch(self, result):
        opt = [float(r[2]) for r in result.rows]
        assert opt[0] > opt[-1]

    def test_diminishing_gains(self, result):
        opt = [float(r[2]) for r in result.rows]
        first_gain = (opt[0] - opt[1]) / opt[0]
        last_gain = (opt[-2] - opt[-1]) / opt[-2]
        assert first_gain > last_gain

    def test_optimized_never_slower(self, result):
        for row in result.rows:
            assert float(row[2]) <= float(row[1]) + 1e-9

    def test_select_optimal_batch_rule(self):
        eff = {1: 100.0, 2: 60.0, 4: 40.0, 8: 38.0, 16: 37.5}
        assert select_optimal_batch(eff, min_gain=0.10) == 4


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(batch_sizes=BATCHES, iterations=100)

    def test_per_image_memops_fall_then_flatten(self, result):
        ns = [float(r[1]) for r in result.rows]
        assert ns[0] > ns[-1]
        # Tail flattens: the 16 -> 64 change is far smaller than the 1 -> 4 drop.
        first_drop = (ns[0] - ns[1]) / ns[0]
        tail_drop = abs(ns[-2] - ns[-1]) / ns[-2]
        assert tail_drop < first_drop

    def test_memory_far_below_capacity(self, result):
        for row in result.rows:
            assert float(row[3].rstrip("%")) < 5.0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # The crossover is a whole-session effect: it needs the full
        # 1000-iteration benchmark loop the paper's nsys run profiles.
        return run_fig8(batch_sizes=(1, 64), iterations=1000)

    def test_libload_dominates_batch1(self, result):
        first = result.rows[0]
        assert float(first[1]) > 60.0
        assert float(first[2]) < float(first[1])

    def test_sync_surpasses_libload_at_64(self, result):
        last = result.rows[-1]
        assert float(last[2]) > float(last[1])


class TestConstrainedSelection:
    def test_selects_feasible_most_efficient(self):
        result = run_constrained_selection(accuracy_threshold=0.965)
        selected = [r for r in result.rows if r[-1]]
        assert len(selected) == 1
        assert selected[0][2] == "yes"


class TestAblations:
    def test_scheduler_ablation_dp_wins_on_branched(self):
        result = run_ablation_scheduler()
        by_name = {r[0]: r for r in result.rows}
        row = by_name["inception(4x2)"]
        dp = float(row[4])
        assert dp < float(row[1]) and dp < float(row[2]) and dp <= float(row[3])

    def test_spp_ablation_rows(self):
        result = run_ablation_spp()
        assert len(result.rows) == 4
        features = {r[0]: int(r[1]) for r in result.rows}
        assert features["SPP (5,2,1)"] > features["single pool 5"]

    def test_strategy_ablation_reasonable(self):
        result = run_ablation_strategy(max_trials=40, seeds=(0, 1))
        assert len(result.rows) == 4
        for row in result.rows:
            assert 1 <= float(row[1]) <= 40


class TestExtensionExperiments:
    def test_energy_sweep_amortizes(self):
        from repro.experiments import run_energy_sweep

        result = run_energy_sweep(batch_sizes=(1, 8, 64))
        energy = [float(r[1]) for r in result.rows]
        assert energy[0] > 2 * energy[-1]
        power = [float(r[2]) for r in result.rows]
        assert all(0 < p <= 230 for p in power)

    def test_pareto_front_consistent_with_fig5(self):
        from repro.experiments import run_pareto_front

        result = run_pareto_front()
        statuses = {r[0]: r[3] for r in result.rows}
        assert "dominated" in statuses["SPP-Net #2"]
        assert sum("pareto" in s for s in statuses.values()) == 3

    def test_input_size_sweep_quadratic_growth(self):
        from repro.experiments import run_input_size_sweep

        result = run_input_size_sweep(input_sizes=(100, 200))
        seq = [float(r[1].split()[0]) for r in result.rows]
        assert seq[1] > 1.3 * seq[0]
