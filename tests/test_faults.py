"""Deterministic fault-injection wrappers."""

import pytest

from repro.faults import FailFirst, FatalOn, Flaky, InjectedFault, Slow


class TestFlaky:
    def test_same_seed_injects_same_faults(self):
        def run(seed):
            flaky = Flaky(lambda x: x, rate=0.3, seed=seed)
            outcomes = []
            for i in range(50):
                try:
                    flaky(i)
                    outcomes.append(True)
                except InjectedFault:
                    outcomes.append(False)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_rate_zero_never_fails_rate_one_always(self):
        ok = Flaky(lambda: "ok", rate=0.0, seed=0)
        assert all(ok() == "ok" for _ in range(20))
        bad = Flaky(lambda: "ok", rate=1.0, seed=0)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                bad()
        assert bad.faults == 5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Flaky(lambda: None, rate=1.5)

    def test_custom_exception(self):
        flaky = Flaky(lambda: None, rate=1.0, exc=TimeoutError)
        with pytest.raises(TimeoutError):
            flaky()


class TestFailFirst:
    def test_fails_exactly_n_then_recovers(self):
        fn = FailFirst(lambda: 42, n=3)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                fn()
        assert fn() == 42
        assert fn() == 42
        assert fn.calls == 5

    def test_zero_never_fails(self):
        fn = FailFirst(lambda: 1, n=0)
        assert fn() == 1


class TestFatalOn:
    def test_only_poisoned_inputs_fail(self):
        fn = FatalOn(lambda x: x * 2, poisoned={"3"}, key=lambda x: str(x))
        assert fn(2) == 4
        with pytest.raises(InjectedFault):
            fn(3)
        with pytest.raises(InjectedFault):
            fn(3)  # retries never help
        assert fn.faults == 2


class TestSlow:
    def test_delegates_after_delay(self):
        fn = Slow(lambda x: x + 1, delay_s=0.01)
        assert fn(1) == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Slow(lambda: None, delay_s=-1.0)
