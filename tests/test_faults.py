"""Deterministic fault-injection wrappers and corruption injectors."""

import numpy as np
import pytest

from repro.faults import (
    NODATA,
    DropBand,
    FailFirst,
    FatalOn,
    Flaky,
    InjectedFault,
    NaNPepper,
    NodataHoles,
    SaturateStripe,
    Slow,
    TruncateTile,
    corrupt_scene,
)


class TestFlaky:
    def test_same_seed_injects_same_faults(self):
        def run(seed):
            flaky = Flaky(lambda x: x, rate=0.3, seed=seed)
            outcomes = []
            for i in range(50):
                try:
                    flaky(i)
                    outcomes.append(True)
                except InjectedFault:
                    outcomes.append(False)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_rate_zero_never_fails_rate_one_always(self):
        ok = Flaky(lambda: "ok", rate=0.0, seed=0)
        assert all(ok() == "ok" for _ in range(20))
        bad = Flaky(lambda: "ok", rate=1.0, seed=0)
        for _ in range(5):
            with pytest.raises(InjectedFault):
                bad()
        assert bad.faults == 5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Flaky(lambda: None, rate=1.5)

    def test_custom_exception(self):
        flaky = Flaky(lambda: None, rate=1.0, exc=TimeoutError)
        with pytest.raises(TimeoutError):
            flaky()


class TestFailFirst:
    def test_fails_exactly_n_then_recovers(self):
        fn = FailFirst(lambda: 42, n=3)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                fn()
        assert fn() == 42
        assert fn() == 42
        assert fn.calls == 5

    def test_zero_never_fails(self):
        fn = FailFirst(lambda: 1, n=0)
        assert fn() == 1


class TestFatalOn:
    def test_only_poisoned_inputs_fail(self):
        fn = FatalOn(lambda x: x * 2, poisoned={"3"}, key=lambda x: str(x))
        assert fn(2) == 4
        with pytest.raises(InjectedFault):
            fn(3)
        with pytest.raises(InjectedFault):
            fn(3)  # retries never help
        assert fn.faults == 2


class TestSlow:
    def test_delegates_after_delay(self):
        fn = Slow(lambda x: x + 1, delay_s=0.01)
        assert fn(1) == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Slow(lambda: None, delay_s=-1.0)


def chip(seed=0, shape=(4, 24, 24)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


class TestCorruptions:
    def test_calls_are_replayable(self):
        """The k-th corruption is a function of (seed, k) only — two
        instances with the same seed produce identical sequences."""
        a, b = NaNPepper(rate=0.2, seed=9), NaNPepper(rate=0.2, seed=9)
        x = chip()
        for _ in range(3):
            out_a, out_b = a(x), b(x)
            assert np.array_equal(np.isnan(out_a), np.isnan(out_b))
        assert not np.array_equal(
            np.isnan(NaNPepper(rate=0.2, seed=1)(x)), np.isnan(a(x))
        )

    def test_input_never_modified(self):
        x = chip()
        before = x.copy()
        for inj in (NaNPepper(rate=0.5), NodataHoles(), DropBand(),
                    SaturateStripe(), TruncateTile()):
            inj(x)
        assert np.array_equal(x, before)

    def test_nan_pepper_rate(self):
        out = NaNPepper(rate=0.25, seed=0)(chip())
        frac = np.isnan(out).mean()
        assert 0.15 < frac < 0.35

    def test_nodata_holes_use_sentinel(self):
        out = NodataHoles(holes=2, radius=4, seed=0)(chip())
        assert (out == NODATA).any()
        assert np.isfinite(out).all()  # nodata is a value, not NaN
        # holes punch through every band at the same location
        hole = out[0] == NODATA
        for band in out[1:]:
            assert np.array_equal(band == NODATA, hole)

    def test_drop_band_blanks_exactly_one(self):
        out = DropBand(band=1, seed=0)(chip())
        assert np.isnan(out[1]).all()
        assert np.isfinite(np.delete(out, 1, axis=0)).all()

    def test_drop_band_random_choice_is_seeded(self):
        x = chip()
        a = DropBand(seed=3)(x)
        b = DropBand(seed=3)(x)
        assert np.array_equal(np.isnan(a), np.isnan(b))

    def test_saturate_stripe_out_of_range(self):
        out = SaturateStripe(width=5, value=4.0, seed=0)(chip())
        assert (out == 4.0).any()
        assert np.isfinite(out).all()

    def test_truncate_returns_smaller_tile(self):
        out = TruncateTile(max_loss=0.25, seed=0)(chip())
        c, h, w = out.shape
        assert c == 4 and h < 24 and w < 24
        assert h >= 18 and w >= 18  # at most 25% of each axis lost

    def test_validation(self):
        with pytest.raises(ValueError):
            NaNPepper(rate=2.0)
        with pytest.raises(ValueError):
            NodataHoles(holes=0)
        with pytest.raises(ValueError):
            TruncateTile(max_loss=1.5)
        with pytest.raises(ValueError):
            NaNPepper()(np.zeros((3, 3)))  # not (C, H, W)


class TestCorruptScene:
    def test_corrupts_requested_fraction_deterministically(self):
        image = chip(seed=1, shape=(4, 96, 96))
        origins = [(r, c) for r in (0, 32, 64) for c in (0, 32, 64)]
        out1, applied1 = corrupt_scene(image, origins, 32, fraction=0.33, seed=5)
        out2, applied2 = corrupt_scene(image, origins, 32, fraction=0.33, seed=5)
        assert applied1 == applied2 and len(applied1) == 3
        assert np.array_equal(np.isnan(out1), np.isnan(out2))
        # untouched tiles are bit-identical to the original
        for i, (r, c) in enumerate(origins):
            tile = out1[:, r:r + 32, c:c + 32]
            if i not in applied1:
                assert np.array_equal(tile, image[:, r:r + 32, c:c + 32])

    def test_truncation_becomes_nodata_strip(self):
        """A shrunken tile cannot change the scene raster's shape, so the
        lost strip is represented as nodata — like a real mosaicker."""
        image = chip(seed=2, shape=(4, 64, 64))
        out, applied = corrupt_scene(
            image, [(0, 0)], 64, fraction=1.0,
            injectors=[TruncateTile(seed=0)], seed=0,
        )
        assert out.shape == image.shape
        assert applied == {0: "TruncateTile"}
        assert (out == NODATA).any()


class TestWorkerFaultPlan:
    def test_unknown_kind_rejected(self, tmp_path):
        from repro.faults import WorkerFaultPlan

        with pytest.raises(ValueError, match="unknown fault kinds"):
            WorkerFaultPlan(faults={0: "explode"},
                            fuse_dir=str(tmp_path / "fuses"))

    def test_counts_and_fired(self, tmp_path):
        from repro.faults import WorkerFaultPlan

        plan = WorkerFaultPlan(faults={0: "hang", 3: "kill", 5: "hang"},
                               fuse_dir=str(tmp_path / "fuses"))
        assert plan.counts() == {"error": 0, "hang": 2, "kill": 1, "slow": 0}
        assert plan.fired() == 0
        (tmp_path / "fuses" / "call-000003").write_text("123")
        (tmp_path / "fuses" / "call-000004").write_text("123")  # not a fault
        assert plan.fired() == 1


class FaultTargetModel:
    """Minimal picklable model for FaultyDetector delegation tests."""

    hidden = "spp"

    def __init__(self):
        self.mode = None

    def eval(self):
        self.mode = "eval"
        return self

    def train(self):
        self.mode = "train"
        return self

    def __call__(self, batch):
        return batch * 2


class TestFaultyDetector:
    def plan(self, tmp_path, faults, **kwargs):
        from repro.faults import WorkerFaultPlan

        return WorkerFaultPlan(faults=faults,
                               fuse_dir=str(tmp_path / "fuses"), **kwargs)

    def test_parent_process_never_faults(self, tmp_path):
        from repro.faults import FaultyDetector

        plan = self.plan(tmp_path, {n: "error" for n in range(5)})
        detector = FaultyDetector(FaultTargetModel(), plan)
        for _ in range(5):
            assert detector(3) == 6        # delegates verbatim, no fuse
        assert plan.fired() == 0

    def test_error_fault_fires_exactly_once(self, tmp_path):
        from repro.faults import FaultyDetector

        plan = self.plan(tmp_path, {0: "error"})
        # parent_pid=0 simulates running inside a worker process
        detector = FaultyDetector(FaultTargetModel(), plan, parent_pid=0)
        with pytest.raises(InjectedFault, match="ordinal 0"):
            detector(3)
        assert detector(3) == 6            # ordinal 1 is clean
        assert plan.fired() == 1

    def test_ordinals_are_claimed_once_across_instances(self, tmp_path):
        from repro.faults import FaultyDetector

        plan = self.plan(tmp_path, {0: "error"})
        first = FaultyDetector(FaultTargetModel(), plan, parent_pid=0)
        second = FaultyDetector(FaultTargetModel(), plan, parent_pid=0)
        with pytest.raises(InjectedFault):
            first(3)
        # a "redispatched" second instance sees the fuse already burned
        assert second(3) == 6

    def test_slow_fault_delays_then_answers(self, tmp_path):
        import time as _time

        from repro.faults import FaultyDetector

        plan = self.plan(tmp_path, {0: "slow"}, slow_s=0.05)
        detector = FaultyDetector(FaultTargetModel(), plan, parent_pid=0)
        t0 = _time.monotonic()
        assert detector(3) == 6
        assert _time.monotonic() - t0 >= 0.05

    def test_pickle_roundtrip_preserves_plan(self, tmp_path):
        import pickle

        from repro.faults import FaultyDetector

        plan = self.plan(tmp_path, {2: "kill"})
        detector = FaultyDetector(FaultTargetModel(), plan)
        clone = pickle.loads(pickle.dumps(detector))
        assert clone.plan.faults == {2: "kill"}
        assert clone.parent_pid == detector.parent_pid
        assert clone(4) == 8

    def test_delegation_and_eval_train(self, tmp_path):
        from repro.faults import FaultyDetector

        detector = FaultyDetector(FaultTargetModel(),
                                  self.plan(tmp_path, {}))
        assert detector.hidden == "spp"    # attribute falls through
        assert detector.eval() is detector
        assert detector.model.mode == "eval"
        assert detector.train() is detector
        assert detector.model.mode == "train"
        with pytest.raises(AttributeError):
            detector.does_not_exist


class TestTearTrailingLine:
    def test_tears_mid_final_line(self, tmp_path):
        import json

        from repro.faults import tear_trailing_line
        from repro.robust.journal import load_jsonl_repaired

        path = tmp_path / "log.jsonl"
        records = [{"tile": n, "conf": 0.5} for n in range(4)]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        removed = tear_trailing_line(path)
        assert removed > 0
        assert not path.read_bytes().endswith(b"\n")
        # the repair path drops exactly the torn record
        assert load_jsonl_repaired(path) == records[:3]

    def test_keep_fraction_validation(self, tmp_path):
        from repro.faults import tear_trailing_line

        path = tmp_path / "log.jsonl"
        path.write_text("{}\n")
        with pytest.raises(ValueError, match="keep_fraction"):
            tear_trailing_line(path, keep_fraction=1.0)

    def test_empty_file_is_a_noop(self, tmp_path):
        from repro.faults import tear_trailing_line

        path = tmp_path / "log.jsonl"
        path.write_text("")
        assert tear_trailing_line(path) == 0
