"""Tests for the shared benchmark gate helpers and the regression tracker.

``benchmarks/`` is not a package (its scripts import each other by
sys.path adjacency), so these tests add it to ``sys.path`` explicitly.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parents[1] / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

import check_regression  # noqa: E402
import gates  # noqa: E402


def make_payload(bench="demo", checks=()):
    payload = {"benchmark": bench, "detail": {"latency_ms": 1.0}}
    gates.attach(payload, list(checks))
    return payload


class TestCheck:
    def test_ge_passes_and_fails(self):
        assert gates.check("x", 4.2, ">=", 4.0).passed
        assert not gates.check("x", 3.9, ">=", 4.0).passed

    def test_le_passes_and_fails(self):
        assert gates.check("x", 0.05, "<=", 0.10).passed
        assert not gates.check("x", 0.15, "<=", 0.10).passed

    def test_bool_check(self):
        assert gates.check("x", True, "bool").passed
        assert not gates.check("x", False, "bool").passed

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            gates.check("x", 1.0, "==", 1.0).passed

    def test_evaluate_collects_failure_messages(self):
        msgs = gates.evaluate([gates.check("good", 2.0, ">=", 1.0),
                               gates.check("bad", 0.5, ">=", 1.0)])
        assert len(msgs) == 1 and "bad" in msgs[0]

    def test_attach_embeds_machine_readable_gates(self):
        payload = make_payload(checks=[
            gates.check("a", 2.0, ">=", 1.0),
            gates.check("b", 9.9, "<=", 1.0, track=False)])
        section = payload["gates"]
        assert section["passed"] is False
        by_name = {c["name"]: c for c in section["checks"]}
        assert by_name["a"]["passed"] is True
        assert by_name["b"]["passed"] is False
        assert by_name["b"]["track"] is False
        assert by_name["b"]["op"] == "<="
        json.dumps(payload)  # must be serializable as-is

    def test_finish_writes_payload_before_enforcing(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        with pytest.raises(SystemExit):
            gates.finish({"benchmark": "x"},
                         [gates.check("bad", 0.0, ">=", 1.0)], out)
        saved = json.loads(out.read_text())
        assert saved["gates"]["passed"] is False
        assert "FAIL" in capsys.readouterr().out

    def test_finish_gate_off_never_exits(self, tmp_path):
        out = tmp_path / "BENCH_x.json"
        gates.finish({"benchmark": "x"},
                     [gates.check("bad", 0.0, ">=", 1.0)], out,
                     enforce=False)
        assert json.loads(out.read_text())["gates"]["passed"] is False


class TestCompare:
    def nominal(self):
        return make_payload(checks=[
            gates.check("speedup", 4.2, ">=", 4.0),
            gates.check("share", 0.05, "<=", 0.10),
            gates.check("err", 1e-6, "<=", 1e-5, track=False),
            gates.check("flag", True, "bool")])

    def test_identical_payload_passes(self):
        base = self.nominal()
        rows, failures = check_regression.compare(base, base, 0.10)
        assert failures == []
        assert all(r["status"] in ("ok", "untracked") for r in rows)

    def test_small_drift_within_tolerance_passes(self):
        cur = make_payload(checks=[
            gates.check("speedup", 4.05, ">=", 4.0),  # -3.6% vs 4.2
            gates.check("share", 0.053, "<=", 0.10),
            gates.check("err", 1e-6, "<=", 1e-5, track=False),
            gates.check("flag", True, "bool")])
        _, failures = check_regression.compare(cur, self.nominal(), 0.10)
        assert failures == []

    def test_over_ten_percent_drop_on_ge_check_fails(self):
        base = make_payload(checks=[gates.check("speedup", 5.0, ">=", 4.0)])
        cur = make_payload(checks=[gates.check("speedup", 4.4, ">=", 4.0)])
        _, failures = check_regression.compare(cur, base, 0.10)
        assert len(failures) == 1 and "-12.0%" in failures[0]

    def test_over_ten_percent_rise_on_le_check_fails(self):
        base = make_payload(checks=[gates.check("share", 0.05, "<=", 0.10)])
        cur = make_payload(checks=[gates.check("share", 0.06, "<=", 0.10)])
        _, failures = check_regression.compare(cur, base, 0.10)
        assert len(failures) == 1 and "+20.0%" in failures[0]

    def test_improvement_never_fails(self):
        base = make_payload(checks=[
            gates.check("speedup", 4.2, ">=", 4.0),
            gates.check("share", 0.08, "<=", 0.10)])
        cur = make_payload(checks=[
            gates.check("speedup", 8.4, ">=", 4.0),   # 2x better
            gates.check("share", 0.01, "<=", 0.10)])  # 8x better
        _, failures = check_regression.compare(cur, base, 0.10)
        assert failures == []

    def test_untracked_check_exempt_from_drift(self):
        base = make_payload(checks=[
            gates.check("err", 1e-7, "<=", 1e-5, track=False)])
        cur = make_payload(checks=[
            gates.check("err", 9e-6, "<=", 1e-5, track=False)])  # 90x worse
        rows, failures = check_regression.compare(cur, base, 0.10)
        assert failures == []
        assert rows[0]["status"] == "untracked"

    def test_untracked_check_still_gate_enforced(self):
        cur = make_payload(checks=[
            gates.check("err", 2e-5, "<=", 1e-5, track=False)])
        _, failures = check_regression.compare(cur, cur, 0.10)
        assert len(failures) == 1 and "gate failed" in failures[0]

    def test_boolean_true_to_false_fails(self):
        base = make_payload(checks=[gates.check("flag", True, "bool")])
        cur = make_payload(checks=[gates.check("flag", False, "bool")])
        _, failures = check_regression.compare(cur, base, 0.10)
        # once as a gate failure, once as a baseline flip
        assert len(failures) == 2
        assert any("now false" in msg for msg in failures)

    def test_failed_gate_fails_even_when_baseline_agrees(self):
        bad = make_payload(checks=[gates.check("speedup", 3.0, ">=", 4.0)])
        _, failures = check_regression.compare(bad, bad, 0.10)
        assert len(failures) == 1 and "gate failed" in failures[0]

    def test_check_missing_from_current_fails(self):
        base = make_payload(checks=[
            gates.check("speedup", 4.2, ">=", 4.0),
            gates.check("share", 0.05, "<=", 0.10)])
        cur = make_payload(checks=[gates.check("speedup", 4.2, ">=", 4.0)])
        rows, failures = check_regression.compare(cur, base, 0.10)
        assert len(failures) == 1 and "missing" in failures[0]
        assert any(r["status"] == "MISSING" for r in rows)

    def test_new_check_is_informational(self):
        base = make_payload(checks=[gates.check("speedup", 4.2, ">=", 4.0)])
        cur = make_payload(checks=[
            gates.check("speedup", 4.2, ">=", 4.0),
            gates.check("extra", 1.0, ">=", 0.5)])
        rows, failures = check_regression.compare(cur, base, 0.10)
        assert failures == []
        assert any(r["status"] == "new" for r in rows)

    def test_no_baseline_is_gate_only(self):
        _, failures = check_regression.compare(self.nominal(), None, 0.10)
        assert failures == []
        bad = make_payload(checks=[gates.check("speedup", 3.0, ">=", 4.0)])
        _, failures = check_regression.compare(bad, None, 0.10)
        assert len(failures) == 1


class TestCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, str(BENCHMARKS / "check_regression.py"),
             *map(str, argv)],
            capture_output=True, text=True)

    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_update_then_pass_then_injected_regression(self, tmp_path):
        """Acceptance: the committed-baseline workflow end to end — a CI
        run against fresh baselines passes, and an injected >10% perf
        regression makes the same command exit nonzero."""
        baselines = tmp_path / "baselines"
        payload = make_payload("engine", [
            gates.check("speedup", 4.2, ">=", 4.0),
            gates.check("share", 0.05, "<=", 0.10)])
        cur = self.write(tmp_path, "BENCH_engine.json", payload)

        updated = self.run_cli(cur, "--baselines", baselines, "--update")
        assert updated.returncode == 0
        assert (baselines / "BENCH_engine.json").exists()

        clean = self.run_cli(cur, "--baselines", baselines)
        assert clean.returncode == 0

        regressed = make_payload("engine", [
            gates.check("speedup", 4.1, ">=", 4.0),   # passes its gate...
            gates.check("share", 0.09, "<=", 0.10)])  # ...but +80% drift
        bad = self.write(tmp_path, "BENCH_regressed.json", regressed)
        run = self.run_cli(bad, "--baselines", baselines)
        assert run.returncode == 1
        assert "FAIL" in run.stdout and "share" in run.stdout

    def test_summary_markdown_written(self, tmp_path):
        baselines = tmp_path / "baselines"
        payload = make_payload("engine",
                               [gates.check("speedup", 4.2, ">=", 4.0)])
        cur = self.write(tmp_path, "BENCH_engine.json", payload)
        self.run_cli(cur, "--baselines", baselines, "--update")
        summary = tmp_path / "trend.md"
        run = self.run_cli(cur, "--baselines", baselines,
                           "--summary", summary)
        assert run.returncode == 0
        text = summary.read_text()
        assert "## engine" in text and "| speedup |" in text

    def test_baseline_stores_only_gates_section(self, tmp_path):
        baselines = tmp_path / "baselines"
        payload = make_payload("engine",
                               [gates.check("speedup", 4.2, ">=", 4.0)])
        cur = self.write(tmp_path, "BENCH_engine.json", payload)
        self.run_cli(cur, "--baselines", baselines, "--update")
        stored = json.loads((baselines / "BENCH_engine.json").read_text())
        assert set(stored) == {"benchmark", "gates"}
        assert "detail" not in stored  # machine-specific ms never compared
