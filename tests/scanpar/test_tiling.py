"""Zero-copy strided tiling: TileSource vs naive per-origin slicing."""

import numpy as np
import pytest

from repro.scanpar import TileSource


def raster(c=3, h=40, w=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(c, h, w)).astype(np.float32)


def naive_stack(image, origins, window):
    return np.stack([image[:, r:r + window, c:c + window]
                     for r, c in origins]).astype(np.float32)


class TestValidation:
    def test_rejects_non_chw_raster(self):
        with pytest.raises(ValueError, match="C, H, W"):
            TileSource(np.zeros((8, 8), dtype=np.float32), window=4)

    def test_rejects_oversized_window(self):
        with pytest.raises(ValueError, match="does not fit"):
            TileSource(raster(h=16, w=16), window=17)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            TileSource(raster(), window=8, batch_size=0)


class TestTile:
    def test_tile_is_a_view_of_the_raster(self):
        image = raster()
        source = TileSource(image, window=8)
        tile = source.tile((3, 5))
        assert tile.base is image or tile.base is image.base
        assert np.shares_memory(tile, image)

    def test_tile_matches_direct_slice(self):
        image = raster()
        source = TileSource(image, window=8)
        np.testing.assert_array_equal(source.tile((2, 7)),
                                      image[:, 2:10, 7:15])


class TestGather:
    def test_matches_naive_stack(self):
        image = raster()
        origins = [(0, 0), (5, 3), (32, 40), (17, 17)]
        source = TileSource(image, window=8, batch_size=8)
        np.testing.assert_array_equal(source.gather(origins),
                                      naive_stack(image, origins, 8))

    def test_reuses_one_buffer(self):
        source = TileSource(raster(), window=8, batch_size=4)
        first = source.gather([(0, 0), (1, 1)])
        second = source.gather([(2, 2), (3, 3)])
        assert np.shares_memory(first, second)

    def test_rejects_more_origins_than_batch(self):
        source = TileSource(raster(), window=8, batch_size=2)
        with pytest.raises(ValueError, match="exceed batch_size"):
            source.gather([(0, 0), (1, 1), (2, 2)])

    def test_buffer_is_bounded_by_batch_size(self):
        image = raster(c=4, h=64, w=64)
        source = TileSource(image, window=16, batch_size=5)
        assert source.tile_buffer_bytes == 5 * 4 * 16 * 16 * 4
        # independent of how many windows the raster actually contains
        assert source.tile_buffer_bytes < image.nbytes


class TestBatches:
    def test_covers_origins_in_order(self):
        image = raster()
        origins = [(r, c) for r in (0, 8, 16) for c in (0, 8, 16)]
        source = TileSource(image, window=8, batch_size=4)
        seen_starts = []
        chunks = []
        for start, stack in source.batches(origins):
            seen_starts.append(start)
            chunks.append(stack.copy())  # buffer is reused: snapshot it
        assert seen_starts == [0, 4, 8]
        assert [len(chunk) for chunk in chunks] == [4, 4, 1]
        np.testing.assert_array_equal(np.concatenate(chunks),
                                      naive_stack(image, origins, 8))

    def test_empty_origins_yield_nothing(self):
        source = TileSource(raster(), window=8)
        assert list(source.batches([])) == []
