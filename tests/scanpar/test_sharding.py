"""Batch-aligned origin sharding: the parallel scan's determinism linchpin."""

import pytest

from repro.scanpar import partition_origins


class TestValidation:
    def test_negative_origins_rejected(self):
        with pytest.raises(ValueError, match="n_origins"):
            partition_origins(-1, 2, 10)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            partition_origins(10, 0, 10)

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            partition_origins(10, 2, 0)

    def test_zero_origins_is_no_shards(self):
        assert partition_origins(0, 4, 10) == []


class TestContract:
    @pytest.mark.parametrize("n_origins,n_workers,batch_size", [
        (100, 4, 20), (99, 4, 20), (101, 4, 20), (1, 8, 20),
        (200, 3, 7), (45, 2, 45), (46, 2, 45), (1000, 16, 1),
    ])
    def test_shards_cover_origins_exactly_once(self, n_origins, n_workers,
                                               batch_size):
        shards = partition_origins(n_origins, n_workers, batch_size)
        assert shards[0].start == 0
        assert shards[-1].stop == n_origins
        for prev, nxt in zip(shards, shards[1:]):
            assert prev.stop == nxt.start
        assert [s.index for s in shards] == list(range(len(shards)))

    @pytest.mark.parametrize("n_origins,n_workers,batch_size", [
        (100, 4, 20), (99, 3, 20), (200, 3, 7), (1000, 16, 13),
    ])
    def test_boundaries_snap_to_batch_multiples(self, n_origins, n_workers,
                                                batch_size):
        # every boundary except the final ragged end is a batch multiple,
        # so each worker's micro-batches are exactly the sequential ones
        shards = partition_origins(n_origins, n_workers, batch_size)
        for shard in shards[:-1]:
            assert shard.stop % batch_size == 0

    def test_never_more_shards_than_batches(self):
        # 25 origins at batch 20 = 2 batches; 8 workers -> only 2 shards
        shards = partition_origins(25, 8, 20)
        assert len(shards) == 2
        assert [s.size for s in shards] == [20, 5]

    def test_balanced_at_batch_granularity(self):
        shards = partition_origins(200, 4, 10)  # 20 batches over 4 shards
        assert [s.size for s in shards] == [50, 50, 50, 50]

    def test_remainder_batches_lead(self):
        shards = partition_origins(100, 3, 10)  # 10 batches -> 4/3/3
        assert [s.size for s in shards] == [40, 30, 30]
