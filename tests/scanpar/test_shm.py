"""Shared-memory scene raster lifecycle."""

import numpy as np

from repro.scanpar import SharedArray, attach_array


def raster():
    rng = np.random.default_rng(3)
    return rng.normal(size=(4, 32, 32)).astype(np.float32)


class TestSharedArray:
    def test_roundtrip_through_spec(self):
        image = raster()
        with SharedArray(image) as shared:
            attached = attach_array(shared.spec())
            try:
                np.testing.assert_array_equal(attached.array, image)
                assert attached.array.dtype == image.dtype
            finally:
                attached.close()

    def test_parent_view_sees_block(self):
        image = raster()
        with SharedArray(image) as shared:
            np.testing.assert_array_equal(shared.array(), image)

    def test_spec_is_picklable_primitives(self):
        with SharedArray(raster()) as shared:
            spec = shared.spec()
            assert set(spec) == {"name", "shape", "dtype"}
            assert isinstance(spec["name"], str)
            assert all(isinstance(d, int) for d in spec["shape"])
            assert isinstance(spec["dtype"], str)

    def test_unlink_is_idempotent(self):
        shared = SharedArray(raster())
        shared.close()
        shared.unlink()
        shared.unlink()  # already gone: must not raise

    def test_attach_does_not_copy(self):
        image = raster()
        with SharedArray(image) as shared:
            attached = attach_array(shared.spec())
            try:
                # writes through one mapping are visible in the other
                attached.array[0, 0, 0] = 42.0
                assert shared.array()[0, 0, 0] == 42.0
            finally:
                attached.close()
