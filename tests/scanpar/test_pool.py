"""WorkerPool lifecycle, the adaptive worker policy, and failure paths."""

import multiprocessing as mp
import os
import signal
import threading
import time

import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.detect.scan import scan_origins
from repro.geo import WatershedConfig, build_scene
from repro.scanpar import (
    SharedArray,
    ShardTask,
    WorkerError,
    WorkerPool,
    default_start_method,
    parallel_scan_scene,
    resolve_n_workers,
    serialized_model,
)
from repro.scanpar.parallel import _MEASURED_SPAWN_MS
from repro.scanpar.sharding import partition_origins

WINDOW = 64
STRIDE = 32
BATCH = 8
SCENE_SIZE = 200


@pytest.fixture(scope="module")
def scene():
    return build_scene(WatershedConfig(size=SCENE_SIZE, road_spacing=64,
                                       stream_threshold=600, seed=5))


@pytest.fixture(scope="module")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="pool-test",
    )
    detector = SPPNetDetector(arch, seed=0)
    detector.eval()
    return detector


def scan(model, scene, **kwargs):
    kwargs.setdefault("window", WINDOW)
    kwargs.setdefault("stride", STRIDE)
    kwargs.setdefault("confidence_threshold", 0.3)
    kwargs.setdefault("batch_size", BATCH)
    return parallel_scan_scene(model, scene, **kwargs)


def make_tasks(scene, shared, model_hash, backend="engine"):
    origins = scan_origins(scene.size, WINDOW, STRIDE)
    shards = partition_origins(len(origins), 2, BATCH)
    assert len(shards) >= 2
    return [
        ShardTask(shard_index=s.index, start=s.start, stop=s.stop,
                  shm=shared.spec(), model_hash=model_hash,
                  scene_size=scene.size, window=WINDOW, stride=STRIDE,
                  batch_size=BATCH, backend=backend,
                  confidence_threshold=0.3)
        for s in shards
    ]


class ExplodingModel:
    """Picklable model stand-in that fails on any inference attempt."""

    def eval(self):
        return self

    def __call__(self, *args, **kwargs):
        raise RuntimeError("boom")


class HangingModel:
    """Picklable model stand-in that wedges its worker forever."""

    def eval(self):
        return self

    def __call__(self, *args, **kwargs):
        time.sleep(3600)


class SelfKillingModel:
    """Picklable model stand-in that SIGKILLs its worker mid-shard."""

    def eval(self):
        return self

    def __call__(self, *args, **kwargs):
        os.kill(os.getpid(), signal.SIGKILL)


class TestPoolReuse:
    def test_consecutive_scans_reuse_workers(self, model, scene):
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool:
            first = scan(model, scene, n_workers=2, pool=pool)
            pids = pool.worker_pids()
            sends = pool.stats["model_sends"]
            second = scan(model, scene, n_workers=2, pool=pool)
            # no respawn, no model re-send, same processes
            assert pool.worker_pids() == pids
            assert pool.stats["workers_spawned"] == 2
            assert pool.stats["model_sends"] == sends == 2
            assert pool.stats["runs"] == 2
        assert list(first) == list(second) == list(sequential)

    def test_second_run_hits_worker_model_cache(self, model, scene):
        with WorkerPool(2) as pool:
            model_hash = pool.ensure_model(model)
            with SharedArray(scene.image) as shared:
                first = pool.run(make_tasks(scene, shared, model_hash))
                second = pool.run(make_tasks(scene, shared, model_hash))
        # ensure_model pre-populated the cache: neither run re-unpickles
        assert all(p["model_cached"] for p in first + second)
        # the warmed engine survives between runs: re-warming a cached
        # program must not cost more than the original compile
        assert all(p["warmup_ms"] >= 0 for p in first)
        assert sum(p["warmup_ms"] for p in second) <= \
            sum(p["warmup_ms"] for p in first)

    def test_ensure_model_sends_bytes_once_per_worker(self, model):
        with WorkerPool(2) as pool:
            h1 = pool.ensure_model(model)
            assert pool.stats["model_sends"] == 2
            h2 = pool.ensure_model(model)
            assert h2 == h1
            assert pool.stats["model_sends"] == 2

    def test_serialized_model_caches_per_instance(self, model):
        data1, hash1 = serialized_model(model)
        data2, hash2 = serialized_model(model)
        assert data1 is data2 and hash1 == hash2

    def test_dead_worker_is_revived(self, model, scene):
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool:
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while victim in pool.worker_pids() \
                    and pool._workers[0].proc.is_alive():
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("killed worker never died")
                time.sleep(0.05)
            result = scan(model, scene, n_workers=2, pool=pool)
            assert pool.stats["workers_revived"] == 1
            assert victim not in pool.worker_pids()
        assert list(result) == list(sequential)


class TestAutotuneSync:
    """ensure_model ships the parent's conv-variant choices: a worker
    that measured a near-tie the other way would bind a kernel with
    different float rounding, breaking scan byte-identity."""

    @pytest.fixture()
    def seeded_key(self):
        from repro.engine import autotune
        from repro.engine.autotune import ConvKey

        # implausible geometry: never collides with a real tuned entry
        k = ConvKey(batch=1, height=7777, width=7777, in_channels=4,
                    out_channels=8, kernel=3, stride=1, padding=0,
                    pool=True, dtype="float32", mode="float32")
        autotune.seed({k: "im2col_tiled"})
        yield k
        with autotune._lock:
            autotune._cache.pop(k, None)

    def test_choices_ship_once_and_reship_to_replacements(self, model,
                                                          seeded_key):
        with WorkerPool(2) as pool:
            pool.ensure_model(model)
            assert all(seeded_key in w.tuned for w in pool._workers)
            shipped = [set(w.tuned) for w in pool._workers]
            pool.ensure_model(model)  # delta empty: nothing re-sent
            assert [set(w.tuned) for w in pool._workers] == shipped
            # a replacement worker starts untuned and gets the full
            # snapshot on the next ensure_model (the supervisor's
            # revive path calls exactly this)
            fresh = pool.replace_worker(pool._workers[0])
            assert fresh.tuned == set()
            pool.ensure_model(model)
            assert seeded_key in fresh.tuned

    def test_engine_scan_tunes_parent_before_shipping(self, model, scene):
        # the parallel engine scan must autotune the scan's conv
        # geometry in the PARENT and ship those choices before any
        # worker compiles — otherwise each worker measures the
        # near-tie itself and may bind a different kernel
        from repro.engine import autotune

        sequential = scan(model, scene, n_workers=1, backend="engine")
        with WorkerPool(2) as pool:
            pooled = scan(model, scene, n_workers=2, pool=pool,
                          backend="engine")
            scan_keys = {k for k in autotune.snapshot()
                         if k.height == WINDOW and k.width == WINDOW}
            assert scan_keys, "parent never tuned the scan geometry"
            assert all(scan_keys <= w.tuned for w in pool._workers)
        assert list(pooled) == list(sequential)


class TestScheduleSync:
    """ensure_model ships the parent's solved IOS schedules: a seeded
    worker warms its shard's engine programs without re-measuring step
    costs or re-running the DP, and the whole pool executes the
    parent's stage/group plan."""

    def warm_parent(self, model, scene, tasks):
        from repro.engine import compiled_for

        sizes = set()
        for task in tasks:
            span = task.stop - task.start
            sizes.add(min(BATCH, span))
            if span % BATCH:
                sizes.add(span % BATCH)
        channels = scene.image.shape[0]
        compiled_for(model).warmup(sorted(sizes),
                                   (channels, WINDOW, WINDOW))

    def test_seeded_worker_warms_with_zero_solves(self, model, scene):
        from repro.engine import sched

        with WorkerPool(2) as pool, SharedArray(scene.image) as shared:
            model_hash = pool.ensure_model(model)
            tasks = make_tasks(scene, shared, model_hash)
            self.warm_parent(model, scene, tasks)
            assert sched.snapshot(), "parent never solved the scan shapes"
            pool.ensure_model(model)  # ships the schedule delta
            assert all(set(sched.snapshot()) <= w.scheds
                       for w in pool._workers)
            for payload in pool.run(tasks):
                assert payload["sched_solves"] == 0

    def test_engine_scan_ships_parent_schedules(self, model, scene):
        from repro.engine import sched

        sequential = scan(model, scene, n_workers=1, backend="engine")
        with WorkerPool(2) as pool:
            pooled = scan(model, scene, n_workers=2, pool=pool,
                          backend="engine")
            shipped = {key for key in sched.snapshot()
                       if key.shape == (scene.image.shape[0],
                                        WINDOW, WINDOW)}
            assert shipped, "parent never solved the scan geometry"
            assert all(shipped <= w.scheds for w in pool._workers)
        assert list(pooled) == list(sequential)

    def test_replacement_worker_reships_schedules(self, model, scene):
        from repro.engine import sched

        with WorkerPool(2) as pool, SharedArray(scene.image) as shared:
            model_hash = pool.ensure_model(model)
            tasks = make_tasks(scene, shared, model_hash)
            self.warm_parent(model, scene, tasks)
            pool.ensure_model(model)
            solved = set(sched.snapshot())
            fresh = pool.replace_worker(pool._workers[0])
            assert fresh.scheds == set()
            pool.ensure_model(model)
            assert solved <= fresh.scheds


class TestAdaptivePolicy:
    def resolve(self, **kwargs):
        kwargs.setdefault("n_origins", 500)
        kwargs.setdefault("batch_size", 20)
        kwargs.setdefault("pool_warm", True)
        return resolve_n_workers("auto", **kwargs)

    def test_single_core_inlines(self):
        assert self.resolve(cpus=1) == 1

    def test_two_cores_parallelize(self):
        assert self.resolve(cpus=2) == 2

    def test_budget_capped_by_batches(self):
        # 120 origins / batch 20 = 6 micro-batches -> at most 3 workers
        assert self.resolve(cpus=8, n_origins=120) == 3

    def test_tiny_scene_inlines_even_on_many_cores(self):
        # 30 origins / batch 20 = 2 batches -> budget 1 -> sequential
        assert self.resolve(cpus=8, n_origins=30) == 1

    def test_cold_pool_needs_breakeven_scene(self, monkeypatch):
        monkeypatch.setitem(_MEASURED_SPAWN_MS, "spawn", 1000.0)
        kwargs = dict(cpus=2, start_method="spawn", pool_warm=False)
        # break-even = 1000 ms * 2 workers * 0.5 tiles/ms = 1000 tiles
        assert self.resolve(n_origins=500, **kwargs) == 1
        assert self.resolve(n_origins=5000, **kwargs) == 2
        # a warm pool has already sunk the spawn cost
        assert self.resolve(n_origins=500, cpus=2, pool_warm=True) == 2

    def test_int_passthrough_and_validation(self):
        assert resolve_n_workers(3, n_origins=10, batch_size=20) == 3
        with pytest.raises(ValueError, match="n_workers"):
            resolve_n_workers(0, n_origins=10, batch_size=20)


class TestStartMethod:
    def test_threaded_process_prefers_spawn(self):
        seen = {}
        thread = threading.Thread(
            target=lambda: seen.setdefault("method", default_start_method())
        )
        thread.start()
        thread.join()
        assert seen["method"] == "spawn"

    def test_single_threaded_prefers_fork_when_available(self):
        if "fork" not in mp.get_all_start_methods() \
                or threading.active_count() > 1:
            pytest.skip("no fork / runner already threaded")
        assert default_start_method() == "fork"


class TestFailurePaths:
    def test_uncached_model_error_names_shard(self, scene):
        with WorkerPool(1) as pool, SharedArray(scene.image) as shared:
            tasks = make_tasks(scene, shared, "0" * 40, backend="eager")
            with pytest.raises(WorkerError, match=r"shard 0 \(origins"):
                pool.run(tasks[:1])
            # the failure must not poison the pool
            assert pool.worker_pids() and not pool.closed

    def test_worker_failure_cleans_result_slabs(self, scene):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to observe")
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(WorkerError, match="boom|Error"):
            scan(ExplodingModel(), scene, n_workers=2, reuse_pool=False)
        after = set(os.listdir("/dev/shm"))
        leaked = {name for name in after - before if name.startswith("psm_")}
        assert leaked == set()

    def test_pool_survives_failed_scan(self, model, scene):
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerError):
                scan(ExplodingModel(), scene, n_workers=2, pool=pool)
            result = scan(model, scene, n_workers=2, pool=pool)
            assert pool.stats["workers_revived"] == 0
        assert list(result) == list(sequential)

    def test_closed_pool_rejects_work(self, model):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.ensure_model(model)


class TestDispatchDeadline:
    """Satellite fix: ``run`` must never block forever on a wedged worker."""

    def test_dispatch_timeout_validation(self):
        with pytest.raises(ValueError, match="dispatch_timeout_s"):
            WorkerPool(1, dispatch_timeout_s=0.0)

    def test_hung_workers_are_killed_and_revived(self, model, scene):
        with WorkerPool(2) as pool, SharedArray(scene.image) as shared:
            hang_hash = pool.ensure_model(HangingModel())
            tasks = make_tasks(scene, shared, hang_hash, backend="eager")
            t0 = time.monotonic()
            with pytest.raises(WorkerError,
                               match=r"missed the 1\.0s dispatch deadline"):
                pool.run(tasks, timeout_s=1.0)
            assert time.monotonic() - t0 < 30.0
            assert pool.stats["workers_killed"] == 2
            # the pool came back with fresh workers and stays usable
            model_hash = pool.ensure_model(model)
            payloads = pool.run(make_tasks(scene, shared, model_hash,
                                           backend="eager"))
            assert len(payloads) == len(tasks)

    def test_sigkill_mid_shard_raises_and_pool_recovers(self, model, scene):
        # satellite 3: worker death mid-shard (not merely hung) must
        # surface as WorkerError, revive on the next run, and re-warm
        # the replacement's model cache
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerError, match="died"):
                scan(SelfKillingModel(), scene, n_workers=2, pool=pool)
            sends_before = pool.stats["model_sends"]
            result = scan(model, scene, n_workers=2, pool=pool)
            assert pool.stats["workers_revived"] >= 1
            # revived workers hold no cached model: bytes were re-sent
            assert pool.stats["model_sends"] > sends_before
        assert list(result) == list(sequential)

    def test_sigkill_mid_shard_leaks_no_shm_slabs(self, scene):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to observe")
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(WorkerError, match="died"):
            scan(SelfKillingModel(), scene, n_workers=2, reuse_pool=False)
        after = set(os.listdir("/dev/shm"))
        leaked = {name for name in after - before if name.startswith("psm_")}
        assert leaked == set()
