"""Parallel sharded scanning reproduces the sequential scan exactly."""

from dataclasses import replace

import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, scan_scene
from repro.detect.scan import scan_origins
from repro.faults import corrupt_scene
from repro.geo import WatershedConfig, build_scene
from repro.robust import ScanJournal

WINDOW = 100
SCENE_SIZE = 200


@pytest.fixture(scope="module")
def scene():
    return build_scene(WatershedConfig(size=SCENE_SIZE, road_spacing=64,
                                       stream_threshold=600, seed=5))


@pytest.fixture(scope="module")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="scanpar-test",
    )
    detector = SPPNetDetector(arch, seed=0)
    detector.eval()
    return detector


def scan(model, scene, **kwargs):
    kwargs.setdefault("window", WINDOW)
    kwargs.setdefault("stride", 50)
    kwargs.setdefault("confidence_threshold", 0.3)
    # small batches so this 9-origin scene still splits into >= 2
    # micro-batch-aligned shards (one-shard scans inline to sequential)
    kwargs.setdefault("batch_size", 4)
    return scan_scene(model, scene, **kwargs)


def assert_identical(parallel, sequential):
    assert list(parallel) == list(sequential)
    assert parallel.coverage == sequential.coverage


class TestParity:
    def test_two_workers_match_sequential(self, model, scene):
        sequential = scan(model, scene)
        assert_identical(scan(model, scene, n_workers=2), sequential)

    def test_one_worker_is_the_sequential_scan(self, model, scene):
        assert_identical(scan(model, scene, n_workers=1), scan(model, scene))

    @pytest.mark.slow  # 3 strides x 2 backends x 3 worker counts
    @pytest.mark.parametrize("backend", ["eager", "engine"])
    @pytest.mark.parametrize("stride", [25, 50, 100])
    def test_sweep_matches_sequential(self, model, scene, backend, stride):
        sequential = scan(model, scene, stride=stride, backend=backend)
        assert len(scan_origins(scene.size, WINDOW, stride)) > 1
        for n_workers in (1, 2, 4):
            parallel = scan(model, scene, stride=stride, backend=backend,
                            n_workers=n_workers)
            assert_identical(parallel, sequential)

    def test_spawn_start_method_matches_fork(self, model, scene):
        from repro.scanpar import parallel_scan_scene

        sequential = scan(model, scene)
        spawned = parallel_scan_scene(
            model, scene, window=WINDOW, stride=50,
            confidence_threshold=0.3, batch_size=4, n_workers=2,
            start_method="spawn",
        )
        assert_identical(spawned, sequential)

    def test_cold_private_pool_matches_warm_shared_pool(self, model, scene):
        from repro.scanpar import parallel_scan_scene

        sequential = scan(model, scene)
        pooled = scan(model, scene, n_workers=2)  # shared persistent pool
        cold = parallel_scan_scene(
            model, scene, window=WINDOW, stride=50,
            confidence_threshold=0.3, batch_size=4, n_workers=2,
            reuse_pool=False,
        )
        assert_identical(pooled, sequential)
        assert_identical(cold, sequential)

    @pytest.mark.slow  # spawn pays an interpreter boot per worker
    @pytest.mark.parametrize("backend", ["eager", "engine"])
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pooled_backend_start_method_matrix(self, model, scene,
                                                backend, start_method):
        import multiprocessing as mp

        from repro.scanpar import parallel_scan_scene

        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        sequential = scan(model, scene, backend=backend)
        pooled = parallel_scan_scene(
            model, scene, window=WINDOW, stride=50,
            confidence_threshold=0.3, batch_size=4, backend=backend,
            n_workers=2, start_method=start_method,
        )
        assert_identical(pooled, sequential)


class TestValidation:
    def test_zero_workers_rejected(self, model, scene):
        with pytest.raises(ValueError, match="n_workers"):
            scan(model, scene, n_workers=0)

    def test_service_scan_cannot_shard(self, model, scene):
        class FakeService:
            pass

        with pytest.raises(ValueError, match="n_workers=1"):
            scan(model, scene, service=FakeService(), n_workers=2)


class TestRobustParallel:
    @pytest.fixture()
    def corrupted(self, scene):
        origins = scan_origins(scene.size, WINDOW, 50)
        image, applied = corrupt_scene(scene.image, origins, WINDOW,
                                       fraction=0.3, seed=7)
        assert applied
        return replace(scene, image=image)

    def test_corrupt_tiles_scan_identically(self, model, corrupted, tmp_path):
        sequential = scan(model, corrupted,
                          journal=str(tmp_path / "seq.jsonl"))
        parallel = scan(model, corrupted,
                        journal=str(tmp_path / "par.jsonl"), n_workers=2)
        assert_identical(parallel, sequential)
        assert parallel.coverage.tiles_repaired > 0

    def test_shard_journals_absorbed_into_main(self, model, corrupted,
                                               tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        result = scan(model, corrupted, journal=journal, n_workers=2)
        assert journal.shard_paths() == []
        _, records = journal.load()
        assert len(records) == result.coverage.tiles_total
        assert [rec.index for rec in records] == sorted(
            rec.index for rec in records
        )

    def test_parallel_journal_resumes_sequentially(self, model, corrupted,
                                                   tmp_path):
        # full parallel scan writes the reference journal
        full = scan(model, corrupted, journal=str(tmp_path / "full.jsonl"),
                    n_workers=2)
        # keep the header and half the records, as if killed mid-scan
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[:1 + (len(lines) - 1) // 2]) + "\n")

        resumed = scan(model, corrupted, journal=str(partial), resume=True)
        assert list(resumed) == list(full)
        assert resumed.coverage.tiles_resumed > 0

    def test_sequential_journal_resumes_in_parallel(self, model, corrupted,
                                                    tmp_path):
        full = scan(model, corrupted, journal=str(tmp_path / "full.jsonl"))
        lines = (tmp_path / "full.jsonl").read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[:1 + (len(lines) - 1) // 2]) + "\n")

        resumed = scan(model, corrupted, journal=str(partial), resume=True,
                       n_workers=2)
        assert list(resumed) == list(full)
        assert resumed.coverage.tiles_resumed > 0
