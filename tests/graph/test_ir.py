"""Graph IR: construction, validation, traversal."""

import pytest

from repro.graph import Graph, GraphError, Operator, OpType


def diamond() -> Graph:
    g = Graph("diamond")
    g.add(Operator("in", OpType.INPUT, out_shape=(4,)))
    g.add(Operator("a", OpType.RELU, ("in",), (4,)))
    g.add(Operator("b", OpType.RELU, ("a",), (4,)))
    g.add(Operator("c", OpType.RELU, ("a",), (4,)))
    g.add(Operator("d", OpType.CONCAT, ("b", "c"), (8,)))
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add(Operator("x", OpType.INPUT, out_shape=(1,)))
        with pytest.raises(GraphError):
            g.add(Operator("x", OpType.RELU, ("x",), (1,)))

    def test_unknown_dependency_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add(Operator("y", OpType.RELU, ("missing",), (1,)))

    def test_insertion_is_topological(self):
        g = diamond()
        names = g.names()
        for op in g.nodes():
            for dep in op.inputs:
                assert names.index(dep) < names.index(op.name)

    def test_contains_and_getitem(self):
        g = diamond()
        assert "a" in g and g["a"].op_type is OpType.RELU
        assert len(g) == 5


class TestTraversal:
    def test_successors_predecessors(self):
        g = diamond()
        assert set(g.successors("a")) == {"b", "c"}
        assert g.predecessors("d") == ("b", "c")

    def test_successor_map_matches_successors(self):
        g = diamond()
        smap = g.successor_map()
        for name in g.names():
            assert smap[name] == g.successors(name)

    def test_input_output_nodes(self):
        g = diamond()
        assert [op.name for op in g.input_nodes()] == ["in"]
        assert [op.name for op in g.output_nodes()] == ["d"]

    def test_compute_nodes_exclude_input(self):
        g = diamond()
        assert [op.name for op in g.compute_nodes()] == ["a", "b", "c", "d"]

    def test_ancestors(self):
        g = diamond()
        assert g.ancestors("d") == {"in", "a", "b", "c"}
        assert g.ancestors("a") == {"in"}


class TestValidation:
    def test_valid_graph_passes(self):
        diamond().validate()

    def test_empty_graph_fails(self):
        with pytest.raises(GraphError):
            Graph().validate()

    def test_no_input_fails(self):
        g = Graph()
        g.add(Operator("a", OpType.RELU, (), (1,)))
        with pytest.raises(GraphError):
            g.validate()

    def test_operator_attrs(self):
        op = Operator("c", OpType.CONV2D, ("in",), (8, 4, 4),
                      attrs={"kernel": 3})
        assert op.attr("kernel") == 3
        assert op.attr("missing", 7) == 7
        assert op.out_elems == 8 * 4 * 4
