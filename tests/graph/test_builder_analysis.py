"""SPP-Net graph lowering and static cost analysis."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import (
    GraphError,
    activation_bytes,
    build_inception_graph,
    build_sppnet_graph,
    graph_bytes,
    graph_flops,
    op_cost,
    weight_bytes,
)


class TestSPPNetBuilder:
    def test_structure_of_original(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        names = g.names()
        for expected in ("conv1", "pool3", "spp4", "spp2", "spp1",
                         "spp_concat", "fc1", "cls_head", "box_head"):
            assert expected in names

    def test_spp_branches_parallel(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        assert g.predecessors("spp5") == ("pool3",)
        assert g.predecessors("spp2") == ("pool3",)
        assert set(g.predecessors("spp_concat")) == {"spp5", "spp2", "spp1"}

    def test_spatial_shapes_100px(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"], input_size=100)
        assert g["conv1"].out_shape == (64, 98, 98)
        assert g["pool1"].out_shape == (64, 49, 49)
        assert g["pool3"].out_shape == (256, 10, 10)
        assert g["spp_concat"].out_shape == (256 * 21,)

    def test_fc_feature_sizes(self):
        cfg = TABLE1_MODELS["SPP-Net #2"]
        g = build_sppnet_graph(cfg)
        assert g["fc1"].attr("in_features") == cfg.spp_features
        assert g["fc1"].out_shape == (4096,)

    def test_head_branches(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"])
        assert g.predecessors("cls_head") == g.predecessors("box_head")

    def test_no_head_variant(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"], include_head=False)
        assert "cls_head" not in g.names()

    def test_too_small_input_raises(self):
        with pytest.raises(GraphError):
            build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"], input_size=20)

    def test_larger_input_still_fixed_fc(self):
        cfg = TABLE1_MODELS["SPP-Net #2"]
        g1 = build_sppnet_graph(cfg, input_size=100)
        g2 = build_sppnet_graph(cfg, input_size=220)
        assert g1["fc1"].attr("in_features") == g2["fc1"].attr("in_features")


class TestInceptionBuilder:
    def test_branch_count(self):
        g = build_inception_graph(branches=5, depth=3)
        tails = g.predecessors("concat")
        assert len(tails) == 5
        assert len(g.compute_nodes()) == 5 * 3 * 2 + 1

    def test_validation(self):
        with pytest.raises(GraphError):
            build_inception_graph(branches=1)


class TestCostAnalysis:
    def test_conv_flops_formula(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        cost = op_cost(g, g["conv1"], batch=1)
        assert cost.flops == 2 * 98 * 98 * 64 * 4 * 3 * 3

    def test_linear_weight_bytes(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        cost = op_cost(g, g["fc1"], batch=1)
        expected = (256 * 30 * 4096 + 4096) * 4
        assert cost.weight_bytes == expected

    def test_flops_scale_linearly_with_batch(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"])
        assert graph_flops(g, 8) == pytest.approx(8 * graph_flops(g, 1))

    def test_weight_bytes_batch_independent(self):
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"])
        c1 = op_cost(g, g["fc1"], 1).weight_bytes
        c64 = op_cost(g, g["fc1"], 64).weight_bytes
        assert c1 == c64

    def test_bytes_do_not_scale_linearly(self):
        """Weight streaming amortizes: bytes(64) < 64 * bytes(1)."""
        g = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        assert graph_bytes(g, 64) < 64 * graph_bytes(g, 1)

    def test_activation_bytes_positive_and_scaling(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        assert activation_bytes(g, 2) == pytest.approx(2 * activation_bytes(g, 1))

    def test_invalid_batch(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        with pytest.raises(ValueError):
            op_cost(g, g["conv1"], 0)

    def test_weight_bytes_ranking_matches_fc_width(self):
        wb = {name: weight_bytes(build_sppnet_graph(cfg))
              for name, cfg in TABLE1_MODELS.items()}
        assert wb["SPP-Net #2"] > wb["SPP-Net #3"] > wb["Original SPP-Net"]
