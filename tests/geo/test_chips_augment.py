"""Chip extraction, dataset building, splits, and augmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    ChipDataset,
    WatershedConfig,
    augment_dataset,
    build_dataset,
    build_scene,
    extract_chip,
    flip_horizontal,
    flip_vertical,
    radiometric_jitter,
    rotate90,
)

settings.register_profile("geo", deadline=None, max_examples=30)
settings.load_profile("geo")

SMALL = WatershedConfig(size=192, road_spacing=64, stream_threshold=600, seed=5)


@pytest.fixture(scope="module")
def scene():
    return build_scene(SMALL)


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(num_scenes=1, chips_per_crossing=2, chip_size=64,
                         seed=11, scene_size=256)


class TestExtractChip:
    def test_centered_chip(self, scene):
        image, found, origin = extract_chip(scene, (96, 96), 64)
        assert image.shape == (4, 64, 64)
        assert origin == (64, 64)

    def test_border_clamping(self, scene):
        _, _, origin = extract_chip(scene, (0, 0), 64)
        assert origin == (0, 0)
        _, _, origin = extract_chip(scene, (191, 191), 64)
        assert origin == (128, 128)

    def test_oversize_chip_rejected(self, scene):
        with pytest.raises(ValueError):
            extract_chip(scene, (10, 10), 500)

    def test_crossing_found_when_centered(self, scene):
        interior = [c for c in scene.crossings
                    if 40 <= c.row <= 152 and 40 <= c.col <= 152]
        assert interior, "test scene should have an interior crossing"
        c = interior[0]
        _, found, _ = extract_chip(scene, c.center, 64)
        assert found is not None
        assert found.center == c.center


class TestDataset:
    def test_balanced_and_typed(self, dataset):
        assert dataset.images.dtype == np.float32
        assert set(np.unique(dataset.labels)) <= {0, 1}
        assert dataset.num_positive > 0
        assert len(dataset) > dataset.num_positive  # negatives exist

    def test_positive_boxes_valid(self, dataset):
        pos = dataset.boxes[dataset.labels == 1]
        assert (pos[:, 2:] > 0).all()
        assert (pos[:, :2] > 0).all() and (pos[:, :2] < 1).all()

    def test_negative_boxes_zero(self, dataset):
        neg = dataset.boxes[dataset.labels == 0]
        assert np.allclose(neg, 0)

    def test_split_ratio_and_disjoint(self, dataset):
        train, test = dataset.split(0.8, seed=1)
        assert len(train) + len(test) == len(dataset)
        assert abs(len(train) - round(0.8 * len(dataset))) <= 1

    def test_split_deterministic(self, dataset):
        a1, _ = dataset.split(0.8, seed=2)
        a2, _ = dataset.split(0.8, seed=2)
        assert np.allclose(a1.images[0], a2.images[0])

    def test_split_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(1.5)

    def test_batches_cover_everything(self, dataset):
        seen = 0
        for images, labels, boxes in dataset.batches(7):
            assert len(images) == len(labels) == len(boxes)
            seen += len(images)
        assert seen == len(dataset)

    def test_batches_shuffle_with_seed(self, dataset):
        b1 = next(iter(dataset.batches(5, seed=3)))[1]
        b2 = next(iter(dataset.batches(5, seed=4)))[1]
        assert len(b1) == len(b2)

    def test_concatenate(self, dataset):
        both = ChipDataset.concatenate([dataset, dataset])
        assert len(both) == 2 * len(dataset)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ChipDataset(np.zeros((2, 4, 8, 8), np.float32), np.zeros(3),
                        np.zeros((2, 4), np.float32), 8)


def unit_box(cx, cy, w, h):
    return np.array([cx, cy, w, h], dtype=np.float32)


class TestAugmentTransforms:
    def test_hflip_involution(self):
        rng = np.random.default_rng(0)
        image = rng.random((4, 8, 8)).astype(np.float32)
        box = unit_box(0.3, 0.6, 0.2, 0.1)
        im2, b2 = flip_horizontal(*flip_horizontal(image, box))
        assert np.allclose(im2, image) and np.allclose(b2, box)

    def test_vflip_moves_cy(self):
        image = np.zeros((4, 8, 8), np.float32)
        _, box = flip_vertical(image, unit_box(0.3, 0.2, 0.1, 0.1))
        assert np.isclose(box[1], 0.8)

    def test_rot90_four_times_identity(self):
        rng = np.random.default_rng(1)
        image = rng.random((4, 8, 8)).astype(np.float32)
        box = unit_box(0.25, 0.7, 0.2, 0.1)
        im, b = image, box
        for _ in range(4):
            im, b = rotate90(im, b, k=1)
        assert np.allclose(im, image) and np.allclose(b, box, atol=1e-6)

    def test_rot90_swaps_wh(self):
        _, box = rotate90(np.zeros((4, 8, 8), np.float32),
                          unit_box(0.5, 0.5, 0.4, 0.2), k=1)
        assert np.isclose(box[2], 0.2) and np.isclose(box[3], 0.4)

    @given(st.floats(0.1, 0.9), st.floats(0.1, 0.9),
           st.floats(0.05, 0.3), st.floats(0.05, 0.3), st.integers(0, 3))
    def test_rotation_tracks_pixel(self, cx, cy, w, h, k):
        """The box centre transforms exactly like the marked pixel."""
        size = 32
        image = np.zeros((4, size, size), np.float32)
        px = min(int(cy * size), size - 1)
        py = min(int(cx * size), size - 1)
        image[0, px, py] = 1.0
        out_image, out_box = rotate90(image, unit_box(cx, cy, w, h), k=k)
        mr, mc = np.unravel_index(out_image[0].argmax(), (size, size))
        assert abs(out_box[1] * size - (mr + 0.5)) < 1.5
        assert abs(out_box[0] * size - (mc + 0.5)) < 1.5

    def test_negative_box_stays_zero(self):
        _, box = flip_horizontal(np.zeros((4, 4, 4), np.float32), np.zeros(4, np.float32))
        assert np.allclose(box, 0)

    def test_jitter_bounded(self):
        rng = np.random.default_rng(0)
        image = np.full((4, 8, 8), 0.5, np.float32)
        out = radiometric_jitter(image, rng, scale=0.05)
        assert out.min() >= 0 and out.max() <= 1
        assert not np.allclose(out, image)


class TestAugmentDataset:
    def test_doubles_size_same_balance(self, dataset):
        out = augment_dataset(dataset, seed=0)
        assert len(out) == 2 * len(dataset)
        assert out.num_positive == 2 * dataset.num_positive

    def test_deterministic(self, dataset):
        a = augment_dataset(dataset, seed=1)
        b = augment_dataset(dataset, seed=1)
        assert np.allclose(a.images, b.images)
