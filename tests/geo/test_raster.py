"""Georeferencing, raster windows, and GeoJSON export."""

import json

import numpy as np
import pytest

from repro.geo import Crossing, GeoRaster, GeoTransform, crossings_to_geojson
from repro.detect import SceneDetection


class TestGeoTransform:
    def test_identity_like_roundtrip(self):
        t = GeoTransform(x0=500000.0, dx=1.0, y0=4500000.0, dy=-1.0)
        x, y = t.pixel_to_world(10, 20)
        assert (x, y) == (500020.0, 4499990.0)
        r, c = t.world_to_pixel(x, y)
        assert (r, c) == (10.0, 20.0)

    def test_nonunit_pixels(self):
        t = GeoTransform(dx=2.5, dy=-2.5)
        assert t.pixel_to_world(4, 4) == (10.0, -10.0)

    def test_zero_pixel_size_rejected(self):
        with pytest.raises(ValueError):
            GeoTransform(dx=0.0)


class TestGeoRaster:
    def make(self):
        data = np.arange(100.0).reshape(10, 10)
        return GeoRaster(data, GeoTransform(x0=100.0, dx=1.0, y0=200.0, dy=-1.0))

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            GeoRaster(np.zeros(5))

    def test_bounds(self):
        r = self.make()
        assert r.bounds() == (100.0, 190.0, 110.0, 200.0)

    def test_window_shifts_transform(self):
        r = self.make()
        w = r.window(2, 3, 4, 5)
        assert w.shape == (4, 5)
        assert w.transform.pixel_to_world(0, 0) == r.transform.pixel_to_world(2, 3)
        assert np.allclose(w.data, r.data[2:6, 3:8])

    def test_window_out_of_bounds(self):
        with pytest.raises(IndexError):
            self.make().window(8, 8, 5, 5)

    def test_multiband_window(self):
        r = GeoRaster(np.zeros((4, 10, 10)))
        assert r.window(0, 0, 5, 5).shape == (4, 5, 5)

    def test_save_load_roundtrip(self, tmp_path):
        r = self.make()
        path = r.save(tmp_path / "dem.npz")
        loaded = GeoRaster.load(path)
        assert np.allclose(loaded.data, r.data)
        assert loaded.transform == r.transform
        assert loaded.crs == r.crs


class TestGeoJSON:
    def test_ground_truth_export(self):
        crossings = [Crossing(10, 20, 8, 8), Crossing(30, 40, 8, 8)]
        doc = json.loads(crossings_to_geojson(crossings))
        assert doc["type"] == "FeatureCollection"
        assert len(doc["features"]) == 2
        assert doc["features"][0]["geometry"]["coordinates"] == [20.0, -10.0]
        assert "confidence" not in doc["features"][0]["properties"]

    def test_detection_export_includes_confidence(self):
        dets = [SceneDetection(row=5, col=6, height=10, width=10, confidence=0.9)]
        doc = json.loads(crossings_to_geojson(dets))
        assert doc["features"][0]["properties"]["confidence"] == 0.9

    def test_custom_transform(self):
        crossings = [Crossing(1, 1, 4, 4)]
        t = GeoTransform(x0=1000.0, dx=2.0, y0=2000.0, dy=-2.0)
        doc = json.loads(crossings_to_geojson(crossings, transform=t))
        assert doc["features"][0]["geometry"]["coordinates"] == [1002.0, 1998.0]
