"""Landcover classification details and reflectance-table coverage."""

import numpy as np
import pytest

from repro.geo import (
    LandClass,
    REFLECTANCE,
    WatershedConfig,
    build_scene,
    classify_landcover,
)


@pytest.fixture(scope="module")
def scene():
    return build_scene(WatershedConfig(size=192, road_spacing=64,
                                       stream_threshold=600, seed=5))


class TestReflectanceTable:
    def test_every_class_has_reflectance(self):
        for land_class in LandClass:
            assert land_class in REFLECTANCE

    def test_reflectance_in_unit_range(self):
        for values in REFLECTANCE.values():
            assert len(values) == 4
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_water_nir_darkest(self):
        nir = {lc: v[3] for lc, v in REFLECTANCE.items()}
        assert nir[LandClass.WATER] == min(nir.values())

    def test_vegetation_ndvi_positive(self):
        """NDVI = (NIR-R)/(NIR+R) must be high for crops, low for roads."""
        def ndvi(lc):
            r, _, _, n = REFLECTANCE[lc]
            return (n - r) / (n + r)

        assert ndvi(LandClass.CROPLAND) > 0.2
        assert ndvi(LandClass.RIPARIAN) > 0.3
        assert ndvi(LandClass.ROAD) < 0.0


class TestLandcoverMap:
    def test_fraction_helper(self, scene):
        total = sum(scene.landcover.fraction(lc) for lc in LandClass)
        assert total == pytest.approx(1.0)

    def test_vigor_in_unit_range(self, scene):
        assert scene.landcover.vigor.min() >= 0.0
        assert scene.landcover.vigor.max() <= 1.0

    def test_riparian_near_streams(self, scene):
        """Riparian cells border stream cells."""
        from scipy import ndimage

        riparian = scene.landcover.classes == int(LandClass.RIPARIAN)
        if riparian.sum() == 0:
            pytest.skip("no riparian cells in this seed")
        near_stream = ndimage.binary_dilation(scene.streams, iterations=4)
        assert (riparian & near_stream).sum() / riparian.sum() > 0.9

    def test_roads_override_everything(self, scene):
        classes = scene.landcover.classes
        assert (classes[scene.roads] == int(LandClass.ROAD)).all()

    def test_deterministic_in_seed(self):
        a = classify_landcover(np.zeros((64, 64)), np.zeros((64, 64), bool),
                               np.zeros((64, 64), bool), seed=9)
        b = classify_landcover(np.zeros((64, 64)), np.zeros((64, 64), bool),
                               np.zeros((64, 64), bool), seed=9)
        assert np.array_equal(a.classes, b.classes)
        assert np.allclose(a.vigor, b.vigor)
