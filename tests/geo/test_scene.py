"""Synthetic watershed generation: DEM, roads, crossings, landcover, image."""

import numpy as np
import pytest

from repro.geo import (
    LandClass,
    WatershedConfig,
    build_scene,
    classify_landcover,
    find_crossings,
    imprint_embankments,
    render_orthophoto,
    road_mask,
    synthesize_dem,
)

SMALL = WatershedConfig(size=192, road_spacing=64, stream_threshold=600, seed=5)


@pytest.fixture(scope="module")
def scene():
    return build_scene(SMALL)


class TestDEM:
    def test_shape_and_determinism(self):
        a = synthesize_dem(SMALL)
        b = synthesize_dem(SMALL)
        assert a.shape == (192, 192)
        assert np.allclose(a, b)

    def test_seed_changes_terrain(self):
        from dataclasses import replace

        a = synthesize_dem(SMALL)
        b = synthesize_dem(replace(SMALL, seed=6))
        assert not np.allclose(a, b)

    def test_west_east_descent(self):
        dem = synthesize_dem(SMALL)
        west = dem[:, :20].mean()
        east = dem[:, -20:].mean()
        assert west > east + 0.5 * SMALL.gradient_m * 0.5

    def test_relief_bounded(self):
        dem = synthesize_dem(SMALL)
        assert dem.max() - dem.min() < SMALL.relief_m + SMALL.gradient_m + 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatershedConfig(size=8)
        with pytest.raises(ValueError):
            WatershedConfig(road_spacing=4)


class TestRoads:
    def test_mask_has_grid_roads(self):
        roads = road_mask(SMALL)
        assert 0.01 < roads.mean() < 0.2

    def test_embankments_raise_only_roads(self):
        dem = synthesize_dem(SMALL)
        roads = road_mask(SMALL)
        raised = imprint_embankments(dem, roads, 1.5)
        assert np.allclose(raised[roads] - dem[roads], 1.5)
        far = ~roads
        for shift in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            far &= ~np.roll(roads, shift, axis=(0, 1))
        assert np.allclose(raised[far], dem[far])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            imprint_embankments(np.zeros((4, 4)), np.zeros((5, 5), bool), 1.0)


class TestCrossings:
    def test_crossings_on_roads_and_streams(self, scene):
        assert len(scene.crossings) > 0
        for crossing in scene.crossings:
            window = scene.roads[
                max(0, crossing.row - 3):crossing.row + 4,
                max(0, crossing.col - 3):crossing.col + 4,
            ]
            assert window.any(), "crossing should sit on/near a road"

    def test_min_separation(self, scene):
        pts = [(c.row, c.col) for c in scene.crossings]
        for i, a in enumerate(pts):
            for b in pts[i + 1:]:
                assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) >= 12

    def test_bbox_geometry(self, scene):
        c = scene.crossings[0]
        r0, c0, r1, c1 = c.bbox()
        assert r1 - r0 == c.height and c1 - c0 == c.width
        assert c.center == (c.row, c.col)

    def test_no_roads_no_crossings(self):
        dem = synthesize_dem(SMALL)
        crossings = find_crossings(dem, np.zeros_like(dem, dtype=bool),
                                   stream_threshold=600)
        assert crossings == []


class TestLandcoverAndImage:
    def test_class_coverage(self, scene):
        classes = scene.landcover.classes
        assert (classes == int(LandClass.CROPLAND)).mean() > 0.3
        assert (classes == int(LandClass.ROAD)).any()
        assert (classes == int(LandClass.WATER)).any()

    def test_landcover_shape_validation(self):
        with pytest.raises(ValueError):
            classify_landcover(np.zeros((4, 4)), np.zeros((5, 5), bool),
                               np.zeros((4, 4), bool))

    def test_image_four_bands_in_range(self, scene):
        assert scene.image.shape == (4, 192, 192)
        assert scene.image.dtype == np.float32
        assert scene.image.min() >= 0.0 and scene.image.max() <= 1.0

    def test_water_is_nir_dark(self, scene):
        water = scene.landcover.classes == int(LandClass.WATER)
        if water.sum() > 10:
            nir = scene.image[3]
            assert nir[water].mean() < nir[~water].mean() - 0.1

    def test_roads_brighter_red_than_crops(self, scene):
        classes = scene.landcover.classes
        red = scene.image[0]
        road = classes == int(LandClass.ROAD)
        crop = classes == int(LandClass.CROPLAND)
        assert red[road].mean() > red[crop].mean()

    def test_crossing_signature_visible(self, scene):
        """The culvert apron brightens the red band at the crossing."""
        red = scene.image[0]
        diffs = []
        for c in scene.crossings:
            patch = red[max(0, c.row - 2):c.row + 3, max(0, c.col - 2):c.col + 3]
            diffs.append(patch.mean())
        assert np.mean(diffs) > red.mean() + 0.1

    def test_render_deterministic(self, scene):
        again = render_orthophoto(scene.landcover, scene.crossings,
                                  seed=scene.config.seed)
        assert np.allclose(again, scene.image)


class TestSceneAssembly:
    def test_scene_layers_consistent(self, scene):
        assert scene.dem.shape == scene.bare_dem.shape == scene.roads.shape
        assert (scene.dem >= scene.bare_dem - 1e-9).all()

    def test_build_scene_overrides(self):
        s = build_scene(SMALL, seed=9)
        assert s.config.seed == 9
        assert s.config.size == SMALL.size
