"""Device memory allocator and the traced CUDA runtime."""

import pytest

from repro.gpusim import (
    CudaRuntime,
    DeviceMemory,
    DeviceSpec,
    KernelSpec,
    OutOfMemoryError,
)


def spec(name="k", category="conv", solo=10.0, work=5.0):
    return KernelSpec(op_name=name, category=category, solo_us=solo,
                      work_us=work, blocks=10, flops=1e6, dram_bytes=1e5)


class TestDeviceMemory:
    def test_alloc_free_cycle(self):
        mem = DeviceMemory(capacity=1000)
        a = mem.alloc(400, time_us=0.0, tag="x")
        assert mem.used == 400 and mem.peak == 400
        mem.free(a, time_us=1.0)
        assert mem.used == 0 and mem.peak == 400

    def test_oom(self):
        mem = DeviceMemory(capacity=100)
        with pytest.raises(OutOfMemoryError):
            mem.alloc(101, 0.0)

    def test_double_free_raises(self):
        mem = DeviceMemory(capacity=100)
        a = mem.alloc(10, 0.0)
        mem.free(a, 0.0)
        with pytest.raises(KeyError):
            mem.free(a, 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory(capacity=10).alloc(-1, 0.0)

    def test_timeline_records_every_event(self):
        mem = DeviceMemory(capacity=100)
        a = mem.alloc(10, 1.0)
        b = mem.alloc(20, 2.0)
        mem.free(a, 3.0)
        assert [u for _, u in mem.timeline] == [10, 30, 20]
        assert len(mem.live_allocations()) == 1
        assert mem.utilization == pytest.approx(0.2)


class TestRuntime:
    def test_clock_advances_with_api_calls(self):
        rt = CudaRuntime(DeviceSpec())
        t0 = rt.host_time
        rt.malloc(100)
        assert rt.host_time == t0 + rt.device.malloc_us

    def test_init_session_idempotent(self):
        rt = CudaRuntime()
        rt.init_session()
        n = len(rt.trace.api)
        rt.init_session()
        assert len(rt.trace.api) == n

    def test_library_load_total_calibrated(self):
        rt = CudaRuntime()
        rt.init_session()
        totals = rt.trace.api_time_by_name()
        assert totals["cuLibraryLoadData"] == pytest.approx(
            rt.device.library_load_total_us, rel=1e-6
        )

    def test_kernel_starts_after_launch_and_stream(self):
        rt = CudaRuntime()
        e1 = rt.launch_kernel(spec("a"), duration_us=50.0, stream=0)
        e2 = rt.launch_kernel(spec("b"), duration_us=10.0, stream=0)
        assert e2.start_us >= e1.end_us  # same stream serializes

    def test_parallel_streams_overlap(self):
        rt = CudaRuntime()
        s1 = rt.stream_create()
        e1 = rt.launch_kernel(spec("a"), duration_us=100.0, stream=0)
        e2 = rt.launch_kernel(spec("b"), duration_us=100.0, stream=s1)
        assert e2.start_us < e1.end_us  # overlapping execution

    def test_unknown_stream_rejected(self):
        rt = CudaRuntime()
        with pytest.raises(ValueError):
            rt.launch_kernel(spec(), 1.0, stream=99)

    def test_device_synchronize_waits_for_work(self):
        rt = CudaRuntime()
        kernel = rt.launch_kernel(spec(), duration_us=500.0)
        t_before = rt.host_time
        wait = rt.device_synchronize()
        assert wait == pytest.approx(kernel.end_us - t_before)
        assert rt.host_time >= kernel.end_us

    def test_device_synchronize_idle_cheap(self):
        rt = CudaRuntime()
        rt.launch_kernel(spec(), duration_us=1.0)
        rt.device_synchronize()
        t = rt.host_time
        rt.device_synchronize()
        assert rt.host_time - t == pytest.approx(rt.device.device_sync_base_us)

    def test_memcpy_blocks_until_device_idle(self):
        rt = CudaRuntime()
        rt.launch_kernel(spec(), duration_us=300.0)
        rt.memcpy_d2h(1000)
        assert rt.trace.memcpy[-1].start_us >= 300.0

    def test_memcpy_duration_scales_with_bytes(self):
        rt = CudaRuntime()
        rt.memcpy_h2d(1_000_000)
        rt.memcpy_h2d(10_000_000)
        small, large = rt.trace.memcpy
        assert large.duration_us > small.duration_us

    def test_stage_sync_barriers_all_streams(self):
        rt = CudaRuntime()
        s1 = rt.stream_create()
        rt.launch_kernel(spec("a"), 200.0, stream=0)
        rt.launch_kernel(spec("b"), 100.0, stream=s1)
        rt.stage_sync([0, s1])
        e = rt.launch_kernel(spec("c"), 1.0, stream=s1)
        assert e.start_us >= 200.0

    def test_trace_aggregations(self):
        rt = CudaRuntime()
        rt.launch_kernel(spec("a", category="conv"), 10.0)
        rt.launch_kernel(spec("b", category="matmul"), 20.0)
        byname = rt.trace.kernel_time_by_category()
        assert byname == {"conv": 10.0, "matmul": 20.0}
        assert rt.trace.api_time_by_name()["cudaLaunchKernel"] == pytest.approx(
            2 * rt.device.kernel_launch_us
        )
