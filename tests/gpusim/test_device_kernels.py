"""Device spec and roofline kernel cost model."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_sppnet_graph
from repro.gpusim import RTX_A5500, DeviceSpec, KernelCostModel, categorize, kernel_name
from repro.graph.ir import OpType


class TestDeviceSpec:
    def test_a5500_headline_numbers(self):
        assert RTX_A5500.cuda_cores == 10240
        assert RTX_A5500.dram_capacity_gb == 24.0
        assert 30 < RTX_A5500.peak_fp32_tflops < 40

    def test_derived_units(self):
        assert RTX_A5500.dram_bandwidth == RTX_A5500.dram_bandwidth_gbs * 1e9
        assert RTX_A5500.dram_capacity_bytes == 24 * 1024**3

    def test_sync_constants_agree(self):
        """plan_stage uses stage_sync_us; the executor emits
        cudaDeviceSynchronize — the DP is only optimal if they match."""
        assert RTX_A5500.stage_sync_us == RTX_A5500.device_sync_base_us

    def test_custom_device(self):
        small = DeviceSpec(name="toy", sm_count=4, dram_bandwidth_gbs=100.0)
        assert small.cuda_cores == 4 * 128
        assert small.max_concurrent_blocks == 4 * small.concurrent_blocks_per_sm


class TestCategorize:
    def test_table3_categories(self):
        assert categorize(OpType.CONV2D) == "conv"
        assert categorize(OpType.LINEAR) == "matmul"
        assert categorize(OpType.MAXPOOL) == "pooling"
        assert categorize(OpType.ADAPTIVE_MAXPOOL) == "pooling"
        assert categorize(OpType.RELU) == "elementwise"

    def test_kernel_names_unique_per_op(self):
        g = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        names = [kernel_name(op) for op in g.compute_nodes()]
        assert len(set(names)) == len(names)


class TestKernelCostModel:
    @pytest.fixture()
    def model(self):
        return KernelCostModel(RTX_A5500)

    @pytest.fixture()
    def graph(self):
        return build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])

    def test_solo_at_least_work(self, model, graph):
        for op in graph.compute_nodes():
            spec = model.spec(graph, op, batch=1)
            assert spec.solo_us >= spec.work_us - 1e-12

    def test_minimum_kernel_duration(self, model, graph):
        spec = model.spec(graph, graph["spp1"], batch=1)
        assert spec.solo_us >= KernelCostModel.MIN_KERNEL_US

    def test_fc_memory_bound_at_batch1(self, model, graph):
        """Weight streaming dominates the batch-1 GEMM — Table 3's driver."""
        spec = model.spec(graph, graph["fc1"], batch=1)
        weight_time = 1e6 * spec.dram_bytes / RTX_A5500.dram_bandwidth
        assert spec.solo_us == pytest.approx(
            weight_time / RTX_A5500.memory_efficiency["matmul"], rel=0.05
        )

    def test_conv_cost_grows_linearly_with_batch(self, model, graph):
        s1 = model.spec(graph, graph["conv2"], batch=1)
        s8 = model.spec(graph, graph["conv2"], batch=8)
        assert s8.work_us == pytest.approx(8 * s1.work_us, rel=0.05)

    def test_fc_cost_sublinear_in_batch(self, model, graph):
        s1 = model.spec(graph, graph["fc1"], batch=1)
        s64 = model.spec(graph, graph["fc1"], batch=64)
        assert s64.solo_us < 16 * s1.solo_us

    def test_occupancy_monotone_in_threads(self, model):
        assert model.occupancy(100) <= model.occupancy(100_000)
        assert model.occupancy(10**9) == 1.0

    def test_specs_covers_all_compute_nodes(self, model, graph):
        specs = model.specs(graph, 4)
        assert set(specs) == {op.name for op in graph.compute_nodes()}
