"""Energy model and trace-consistency checking."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_inception_graph, build_sppnet_graph
from repro.gpusim import (
    EnergyModel,
    GraphExecutor,
    RTX_A5500,
    TraceInconsistency,
    check_trace_consistency,
    sequential_stages,
)
from repro.ios import dp_schedule, sequential_schedule


@pytest.fixture(scope="module")
def graph():
    return build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])


@pytest.fixture(scope="module")
def executor(graph):
    return GraphExecutor(graph)


class TestEnergyModel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(RTX_A5500, board_w=10.0, idle_w=20.0)
        with pytest.raises(ValueError):
            EnergyModel(RTX_A5500, idle_w=-1.0)

    def test_energy_positive_and_decomposed(self, executor, graph):
        result = executor.run(dp_schedule(graph, 4), 4)
        report = EnergyModel(RTX_A5500).report(result)
        assert report.idle_energy_mj > 0
        assert report.dynamic_energy_mj > 0
        assert report.total_mj == pytest.approx(
            report.idle_energy_mj + report.dynamic_energy_mj
        )

    def test_energy_per_image_amortizes_with_batch(self, executor, graph):
        model = EnergyModel(RTX_A5500)
        e1 = model.report(executor.run(dp_schedule(graph, 1), 1)).mj_per_image
        e32 = model.report(executor.run(dp_schedule(graph, 32), 32)).mj_per_image
        assert e32 < e1 / 2

    def test_average_power_bounded_by_board(self, executor, graph):
        report = EnergyModel(RTX_A5500).report(executor.run(dp_schedule(graph, 8), 8))
        assert 0 < report.average_power_w <= 230.0 + 1e-9

    def test_kernel_utilization_recorded(self, executor, graph):
        result = executor.run(sequential_stages(graph), 1)
        utils = [e.utilization for e in result.trace.kernels]
        assert all(0.0 < u <= 1.0 for u in utils)
        # occupancy-limited batch-1 kernels exist alongside saturating ones
        assert min(utils) < 0.9


class TestTraceConsistency:
    def test_dp_schedule_trace_consistent(self, executor, graph):
        for batch in (1, 64):
            sched = dp_schedule(graph, batch)
            result = executor.run(sched, batch)
            check_trace_consistency(result.trace, sched.stage_groups())

    def test_parallel_schedule_trace_consistent(self):
        graph = build_inception_graph(branches=4, depth=2)
        ex = GraphExecutor(graph)
        sched = dp_schedule(graph, 1)
        assert sched.max_parallelism > 1
        result = ex.run(sched, 1)
        check_trace_consistency(result.trace, sched.stage_groups())

    def test_sequential_trace_consistent(self, executor, graph):
        sched = sequential_schedule(graph, 2)
        result = executor.run(sched, 2)
        check_trace_consistency(result.trace, sched.stage_groups())

    def test_detects_wrong_schedule(self, executor, graph):
        sched = dp_schedule(graph, 1)
        result = executor.run(sched, 1)
        wrong = [[["conv1"]]]  # claims only one op ran
        with pytest.raises(TraceInconsistency, match="kernel set"):
            check_trace_consistency(result.trace, wrong)

    def test_detects_fabricated_barrier_violation(self):
        """Claiming sequential stages for an actually-parallel execution
        must fail the barrier check: overlapped branches cannot have been
        separated by a stage boundary."""
        graph = build_inception_graph(branches=3, depth=2)
        ex = GraphExecutor(graph)
        sched = dp_schedule(graph, 1)
        assert sched.max_parallelism >= 3
        result = ex.run(sched, 1)
        fabricated = sequential_stages(graph)
        with pytest.raises(TraceInconsistency):
            check_trace_consistency(result.trace, fabricated)
