"""Graph executor: schedule validation, timing model, memory accounting."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_sppnet_graph
from repro.gpusim import (
    GraphExecutor,
    KernelCostModel,
    RTX_A5500,
    ScheduleError,
    sequential_stages,
    validate_stages,
)
from repro.gpusim.executor import plan_stage


@pytest.fixture()
def graph():
    return build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])


class TestValidateStages:
    def test_sequential_valid(self, graph):
        validate_stages(graph, sequential_stages(graph))

    def test_missing_op_rejected(self, graph):
        stages = sequential_stages(graph)[:-1]
        with pytest.raises(ScheduleError, match="does not cover"):
            validate_stages(graph, stages)

    def test_duplicate_op_rejected(self, graph):
        stages = sequential_stages(graph)
        stages.append(stages[0])
        with pytest.raises(ScheduleError, match="twice"):
            validate_stages(graph, stages)

    def test_dependency_order_enforced(self, graph):
        stages = sequential_stages(graph)
        stages[0], stages[1] = stages[1], stages[0]
        with pytest.raises(ScheduleError, match="depends on"):
            validate_stages(graph, stages)

    def test_cross_group_dependency_rejected(self, graph):
        # conv1 and relu1 are dependent: cannot sit in sibling groups.
        stages = [[["conv1"], ["relu1"]]] + sequential_stages(graph)[2:]
        with pytest.raises(ScheduleError):
            validate_stages(graph, stages)

    def test_same_group_dependency_allowed(self, graph):
        stages = [[["conv1", "relu1"]]] + sequential_stages(graph)[2:]
        validate_stages(graph, stages)

    def test_unknown_op_rejected(self, graph):
        with pytest.raises(ScheduleError, match="unknown"):
            validate_stages(graph, [[["nonsense"]]])


class TestPlanStage:
    def make_specs(self, graph, batch=1):
        return KernelCostModel(RTX_A5500).specs(graph, batch)

    def test_single_group_span_is_sum(self, graph):
        specs = self.make_specs(graph)
        plan = plan_stage([["spp4", "spp2", "spp1"]], specs, RTX_A5500)
        total = sum(specs[n].solo_us for n in ("spp4", "spp2", "spp1"))
        assert plan.span_us >= total

    def test_parallel_groups_overlap(self, graph):
        specs = self.make_specs(graph)
        serial = plan_stage([["spp4", "spp2", "spp1"]], specs, RTX_A5500)
        parallel = plan_stage([["spp4"], ["spp2"], ["spp1"]], specs, RTX_A5500)
        assert parallel.span_us <= serial.span_us

    def test_work_floor_enforced(self, graph):
        specs = self.make_specs(graph, batch=64)
        plan = plan_stage([["spp4"], ["spp2"], ["spp1"]], specs, RTX_A5500)
        work = sum(specs[n].work_us for n in ("spp4", "spp2", "spp1"))
        assert plan.span_us >= work - 1e-9

    def test_empty_stage_rejected(self, graph):
        with pytest.raises(ValueError):
            plan_stage([], self.make_specs(graph), RTX_A5500)

    def test_latency_includes_barrier(self, graph):
        specs = self.make_specs(graph)
        plan = plan_stage([["conv1"]], specs, RTX_A5500)
        assert plan.latency_us == pytest.approx(
            max(plan.launch_us, plan.span_us) + RTX_A5500.stage_sync_us
        )


class TestExecutorRuns:
    def test_latency_positive_and_stages_counted(self, graph):
        ex = GraphExecutor(graph)
        res = ex.run(sequential_stages(graph), batch=1)
        assert res.latency_us > 0
        assert res.num_stages == len(graph.compute_nodes())
        assert len(res.stage_latencies_us) == res.num_stages

    def test_latency_scales_with_batch(self, graph):
        ex = GraphExecutor(graph)
        l1 = ex.run(sequential_stages(graph), 1).latency_us
        l32 = ex.run(sequential_stages(graph), 32).latency_us
        assert l32 > l1

    def test_efficiency_improves_with_batch(self, graph):
        ex = GraphExecutor(graph)
        e1 = ex.run(sequential_stages(graph), 1).efficiency_us_per_image
        e32 = ex.run(sequential_stages(graph), 32).efficiency_us_per_image
        assert e32 < e1

    def test_total_matches_stage_sum_plus_overheads(self, graph):
        ex = GraphExecutor(graph)
        res = ex.run(sequential_stages(graph), 4)
        assert sum(res.stage_latencies_us) <= res.latency_us

    def test_memory_far_below_capacity(self, graph):
        """The Figure 7 claim: inference memory << 24 GB."""
        ex = GraphExecutor(graph)
        res = ex.run(sequential_stages(graph), 64)
        assert res.peak_memory_bytes < 0.05 * RTX_A5500.dram_capacity_bytes

    def test_trace_window_only_contains_run(self, graph):
        ex = GraphExecutor(graph)
        ex.run(sequential_stages(graph), 1)
        res2 = ex.run(sequential_stages(graph), 1)
        assert all(e.name != "cuLibraryLoadData" for e in res2.trace.api)
        assert len(res2.trace.kernels) == len(graph.compute_nodes())

    def test_kernel_count_independent_of_batch(self, graph):
        ex = GraphExecutor(graph)
        k1 = len(ex.run(sequential_stages(graph), 1).trace.kernels)
        k8 = len(ex.run(sequential_stages(graph), 8).trace.kernels)
        assert k1 == k8

    def test_invalid_batch_rejected(self, graph):
        with pytest.raises(ValueError):
            GraphExecutor(graph).run(sequential_stages(graph), 0)

    def test_measure_median(self, graph):
        ex = GraphExecutor(graph)
        stages = sequential_stages(graph)
        med = ex.measure(stages, 1, repeats=3)
        assert med == pytest.approx(ex.run(stages, 1).latency_us, rel=0.01)

    def test_runs_leave_memory_balanced(self, graph):
        ex = GraphExecutor(graph)
        ex.run(sequential_stages(graph), 2)
        used_after_first = ex.runtime.memory.used
        ex.run(sequential_stages(graph), 2)
        assert ex.runtime.memory.used == used_after_first  # only weights persist
