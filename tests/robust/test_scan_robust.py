"""Robust full-scene scanning: quarantine, journal, resume, NMS hygiene."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import (
    SceneDetection,
    SPPNetDetector,
    evaluate_scene_detections,
    non_max_suppression,
    scan_origins,
    scan_scene,
)
from repro.faults import FatalOn, InjectedFault, corrupt_scene
from repro.geo import WatershedConfig, build_scene
from repro.robust import SanitizePolicy, ScanJournal, ScanJournalError

WINDOW = 64
STRIDE = 64


@pytest.fixture(scope="module")
def scene():
    return build_scene(WatershedConfig(size=192, road_spacing=64,
                                       stream_threshold=600, seed=5))


@pytest.fixture(scope="module")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="robust-scan-test",
    )
    return SPPNetDetector(arch, seed=0)


def corrupted(scene, fraction=0.25, seed=7):
    origins = scan_origins(scene.size, WINDOW, STRIDE)
    image, applied = corrupt_scene(scene.image, origins, WINDOW,
                                   fraction=fraction, seed=seed)
    return replace(scene, image=image), applied


def det(r, c, conf):
    return SceneDetection(row=r, col=c, height=12.0, width=12.0,
                          confidence=conf)


class TestNMSFiniteness:
    def test_nan_confidence_dropped_before_sorting(self):
        kept = non_max_suppression(
            [det(10, 10, float("nan")), det(80, 80, 0.9)], radius=10)
        assert [k.confidence for k in kept] == [0.9]

    def test_nan_coordinates_dropped(self):
        kept = non_max_suppression(
            [det(float("nan"), 10, 0.95), det(80, 80, 0.9)], radius=10)
        assert [k.confidence for k in kept] == [0.9]

    def test_inf_geometry_dropped(self):
        bad = SceneDetection(row=1.0, col=1.0, height=float("inf"),
                             width=12.0, confidence=0.99)
        assert non_max_suppression([bad, det(80, 80, 0.9)], radius=10) \
            == [det(80, 80, 0.9)]

    def test_survivors_serialize_with_allow_nan_false(self):
        kept = non_max_suppression(
            [det(10, 10, float("nan")), det(80, 80, 0.9)], radius=10)
        json.dumps([k.__dict__ for k in kept], allow_nan=False)


class TestRobustScan:
    def test_clean_scene_matches_plain_scan(self, scene, model):
        kwargs = dict(window=WINDOW, stride=STRIDE, confidence_threshold=0.6)
        plain = scan_scene(model, scene, **kwargs)
        robust = scan_scene(model, scene, sanitize=SanitizePolicy.for_scene(),
                            **kwargs)
        assert len(plain) == len(robust)
        for a, b in zip(sorted(plain, key=lambda d: d.center),
                        sorted(robust, key=lambda d: d.center)):
            assert a.center == b.center
            assert a.confidence == pytest.approx(b.confidence, abs=1e-5)
        cov = robust.coverage
        assert cov.coverage == 1.0 and cov.tiles_quarantined == 0

    def test_corrupted_scene_scans_to_completion(self, scene, model):
        bad_scene, applied = corrupted(scene)
        assert applied  # the injection actually happened
        result = scan_scene(model, bad_scene, window=WINDOW, stride=STRIDE,
                            confidence_threshold=0.6,
                            sanitize=SanitizePolicy.for_scene())
        cov = result.coverage
        assert cov.tiles_total == len(scan_origins(scene.size, WINDOW, STRIDE))
        assert cov.tiles_scanned + cov.tiles_quarantined == cov.tiles_total
        assert cov.tiles_repaired > 0
        for d in result:
            assert d.is_finite()

    def test_quarantine_only_policy_skips_damaged_tiles(self, scene, model):
        bad_scene, applied = corrupted(scene)
        result = scan_scene(
            model, bad_scene, window=WINDOW, stride=STRIDE,
            confidence_threshold=0.6,
            sanitize=SanitizePolicy.quarantine_only(
                valid_range=(0.0, 1.0), expected_bands=4),
        )
        assert result.coverage.tiles_quarantined == len(applied)
        assert result.coverage.tiles_repaired == 0

    def test_model_crash_is_contained_to_the_tile(self, scene, model,
                                                  monkeypatch):
        """A predict() that blows up on one tile quarantines that tile
        and the scan still completes."""
        import repro.detect.scan as scan_mod

        real = scan_mod.predict
        poisoned = FatalOn(real, poisoned={True},
                           key=lambda m, stack, **kw: bool(np.any(
                               stack[:, :, :8, :8] > 0.999)))
        # poison whichever tiles have a near-1 corner pixel; force some
        bad_image = scene.image.copy()
        bad_image[:, 64:72, 64:72] = 0.9999
        bad_scene = replace(scene, image=bad_image)
        monkeypatch.setattr(scan_mod, "predict", poisoned)
        result = scan_scene(model, bad_scene, window=WINDOW, stride=STRIDE,
                            confidence_threshold=0.6,
                            sanitize=SanitizePolicy.for_scene())
        assert poisoned.faults >= 1
        assert result.coverage.tiles_quarantined == poisoned.faults
        assert result.coverage.tiles_scanned \
            == result.coverage.tiles_total - poisoned.faults

    def test_non_finite_model_output_quarantines_tile(self, scene, model,
                                                      monkeypatch):
        import repro.detect.scan as scan_mod

        calls = {"n": 0}
        real = scan_mod.predict

        def nan_on_third(m, stack, **kw):
            calls["n"] += 1
            conf, boxes = real(m, stack, **kw)
            if calls["n"] == 3:
                conf = np.full_like(conf, np.nan)
            return conf, boxes

        monkeypatch.setattr(scan_mod, "predict", nan_on_third)
        result = scan_scene(model, scene, window=WINDOW, stride=STRIDE,
                            confidence_threshold=0.6,
                            sanitize=SanitizePolicy.for_scene())
        assert result.coverage.tiles_quarantined == 1
        for d in result:
            assert d.is_finite()

    def test_service_plus_robust_rejected(self, scene, model):
        with pytest.raises(ValueError):
            scan_scene(model, scene, sanitize=SanitizePolicy.for_scene(),
                       service=object())

    def test_resume_without_journal_rejected(self, scene, model):
        with pytest.raises(ValueError):
            scan_scene(model, scene, resume=True)

    def test_coverage_flows_into_scores(self, scene, model):
        bad_scene, _ = corrupted(scene)
        result = scan_scene(model, bad_scene, window=WINDOW, stride=STRIDE,
                            confidence_threshold=0.6,
                            sanitize=SanitizePolicy.for_scene())
        scores = evaluate_scene_detections(result, scene.crossings)
        assert scores.coverage is result.coverage


class TestJournalResume:
    def scan(self, model, scene, journal, resume=False):
        return scan_scene(model, scene, window=WINDOW, stride=STRIDE,
                          confidence_threshold=0.6,
                          sanitize=SanitizePolicy.for_scene(),
                          journal=journal, resume=resume)

    def test_journal_records_every_tile(self, scene, model, tmp_path):
        bad_scene, applied = corrupted(scene)
        path = tmp_path / "scan.jsonl"
        result = self.scan(model, bad_scene, path)
        meta, records = ScanJournal(path).load()
        assert meta["window"] == WINDOW and meta["scene_size"] == scene.size
        assert len(records) == result.coverage.tiles_total
        statuses = {rec.index: rec.status for rec in records}
        assert all(statuses[i] != "ok" for i in applied)

    def test_interrupted_scan_resumes_identically(self, scene, model,
                                                  tmp_path):
        """Truncating the journal after k tiles and resuming reproduces
        the uninterrupted scan's detections exactly (same bytes)."""
        bad_scene, _ = corrupted(scene)
        full_path = tmp_path / "full.jsonl"
        full = self.scan(model, bad_scene, full_path)

        lines = full_path.read_text().splitlines()
        for cut in (1, 4, len(lines) - 1):  # header + k tiles
            part_path = tmp_path / f"part{cut}.jsonl"
            part_path.write_text("\n".join(lines[:cut + 1]) + "\n")
            resumed = self.scan(model, bad_scene, part_path, resume=True)
            assert json.dumps([d.__dict__ for d in resumed]) \
                == json.dumps([d.__dict__ for d in full])
            assert resumed.coverage.tiles_resumed == cut
            # the resumed journal converges to the full one
            assert part_path.read_text().splitlines()[1:] == lines[1:]

    def test_resume_replays_without_running_the_model(self, scene, model,
                                                      tmp_path, monkeypatch):
        path = tmp_path / "scan.jsonl"
        self.scan(model, scene, path)

        import repro.detect.scan as scan_mod

        def boom(*a, **kw):
            raise AssertionError("model must not run on a complete journal")

        monkeypatch.setattr(scan_mod, "predict", boom)
        resumed = self.scan(model, scene, path, resume=True)
        assert resumed.coverage.tiles_resumed == resumed.coverage.tiles_total

    def test_resume_against_mismatched_scan_raises(self, scene, model,
                                                   tmp_path):
        path = tmp_path / "scan.jsonl"
        self.scan(model, scene, path)
        with pytest.raises(ScanJournalError):
            scan_scene(model, scene, window=WINDOW, stride=32,
                       confidence_threshold=0.6,
                       sanitize=SanitizePolicy.for_scene(),
                       journal=path, resume=True)

    def test_torn_final_line_is_dropped(self, scene, model, tmp_path):
        path = tmp_path / "scan.jsonl"
        self.scan(model, scene, path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "tile", "index":')  # the crash-torn write
        _, records = ScanJournal(path).load()
        assert len(records) == len(scan_origins(scene.size, WINDOW, STRIDE))

    def test_torn_record_is_rescanned_on_resume(self, scene, model,
                                                tmp_path):
        """Tearing the journal mid-way through its *last complete
        record* (what SIGKILL during an unflushed append leaves) loses
        exactly that tile; a resume rescans it and converges to the
        uninterrupted scan byte for byte."""
        from repro.faults import tear_trailing_line

        full_path = tmp_path / "full.jsonl"
        full = self.scan(model, scene, full_path)
        torn_path = tmp_path / "torn.jsonl"
        torn_path.write_text(full_path.read_text())
        assert tear_trailing_line(torn_path) > 0

        resumed = self.scan(model, scene, torn_path, resume=True)
        assert json.dumps([d.__dict__ for d in resumed]) \
            == json.dumps([d.__dict__ for d in full])
        assert resumed.coverage.tiles_resumed \
            == resumed.coverage.tiles_total - 1
        # the repaired journal converges to the full one
        assert torn_path.read_text() == full_path.read_text()

    def test_fresh_scan_truncates_stale_journal(self, scene, model, tmp_path):
        path = tmp_path / "scan.jsonl"
        path.write_text('{"kind": "scan_header", "window": 1}\n')
        result = self.scan(model, scene, path, resume=False)
        assert result.coverage.tiles_resumed == 0
        meta, _ = ScanJournal(path).load()
        assert meta["window"] == WINDOW


class TestJournalFaults:
    def test_fatalon_poisoned_tiles_quarantined_and_journaled(
            self, scene, model, tmp_path, monkeypatch):
        """The quarantine fault model end to end: deterministic poisoned
        inputs never succeed, and a resume does not retry them."""
        import repro.detect.scan as scan_mod

        origins = scan_origins(scene.size, WINDOW, STRIDE)
        poison_origin = origins[4]
        r, c = poison_origin
        key_tile = scene.image[:, r:r + WINDOW, c:c + WINDOW]

        real = scan_mod.predict
        poisoned = FatalOn(
            real, poisoned={key_tile[0, 0, 0].tobytes()},
            key=lambda m, stack, **kw: stack[0, 0, 0, 0].tobytes(),
            exc=InjectedFault,
        )
        monkeypatch.setattr(scan_mod, "predict", poisoned)
        path = tmp_path / "scan.jsonl"
        result = scan_scene(model, scene, window=WINDOW, stride=STRIDE,
                            confidence_threshold=0.6,
                            sanitize=SanitizePolicy.for_scene(),
                            journal=path)
        assert result.coverage.tiles_quarantined >= 1
        _, records = ScanJournal(path).load()
        quarantined = [rec for rec in records if rec.status == "quarantined"]
        assert any(rec.origin == poison_origin for rec in quarantined)
        assert all("InjectedFault" in (rec.reason or "")
                   for rec in quarantined)
