"""Chip/raster sanitization: detection, repair, quarantine."""

import numpy as np
import pytest

from repro.faults import (
    NODATA,
    DropBand,
    NaNPepper,
    NodataHoles,
    SaturateStripe,
    TruncateTile,
)
from repro.robust import SanitizePolicy, sanitize_chip, sanitize_scene, validate_chip


def chip(seed=0, shape=(4, 24, 24)):
    return np.random.default_rng(seed).random(shape).astype(np.float32)


def kinds(report):
    return {issue.kind for issue in report.issues}


class TestValidate:
    def test_clean_chip_is_ok(self):
        report = validate_chip(chip(), SanitizePolicy.for_scene())
        assert report.ok and report.repairable and report.issues == ()

    def test_detects_non_finite(self):
        bad = chip()
        bad[0, 3, 3] = np.nan
        bad[2, 5, 5] = np.inf
        report = validate_chip(bad)
        assert kinds(report) == {"non_finite"}
        assert report.issues[0].count == 2

    def test_detects_nodata_holes(self):
        report = validate_chip(NodataHoles(seed=0)(chip()))
        assert kinds(report) == {"nodata_hole"}

    def test_nodata_check_can_be_disabled(self):
        bad = NodataHoles(seed=0)(chip())
        assert validate_chip(bad, SanitizePolicy(nodata_value=None)).ok

    def test_detects_dropped_band_as_band_issue(self):
        """An all-NaN band is one missing band, not H*W pixel issues."""
        report = validate_chip(DropBand(band=2, seed=0)(chip()))
        assert kinds(report) == {"missing_band"}
        assert report.issues[0].band == 2

    def test_detects_constant_band(self):
        bad = chip()
        bad[1] = 0.5
        report = validate_chip(bad)
        assert kinds(report) == {"constant_band"}

    def test_detects_saturation_only_with_range(self):
        bad = SaturateStripe(value=4.0, seed=0)(chip())
        assert validate_chip(bad).ok  # no range configured
        report = validate_chip(bad, SanitizePolicy(valid_range=(0.0, 1.0)))
        assert kinds(report) == {"saturated"}

    def test_detects_truncation_via_expected_shape(self):
        small = TruncateTile(seed=0)(chip())
        policy = SanitizePolicy(expected_shape=(24, 24))
        report = validate_chip(small, policy)
        assert kinds(report) == {"wrong_shape"} and report.repairable

    def test_detects_missing_band_count(self):
        policy = SanitizePolicy(expected_bands=4)
        report = validate_chip(chip(shape=(3, 24, 24)), policy)
        assert kinds(report) == {"missing_band"}
        assert not report.repairable  # physically absent: nothing to impute

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            validate_chip(np.zeros((24, 24)))


class TestRepair:
    def test_ok_chip_returned_unchanged(self):
        x = chip()
        result = sanitize_chip(x, SanitizePolicy.for_scene())
        assert result.status == "ok" and result.chip is x

    def test_never_mutates_input(self):
        bad = NaNPepper(rate=0.1, seed=0)(chip())
        before = bad.copy()
        sanitize_chip(bad)
        assert np.array_equal(np.isnan(bad), np.isnan(before))

    def test_nan_pepper_infilled(self):
        bad = NaNPepper(rate=0.1, seed=0)(chip())
        result = sanitize_chip(bad)
        assert result.status == "repaired"
        assert np.isfinite(result.chip).all()
        untouched = ~np.isnan(bad)
        assert np.array_equal(result.chip[untouched], bad[untouched])

    def test_dropped_band_imputed_from_survivors(self):
        clean = chip()
        result = sanitize_chip(DropBand(band=1, seed=0)(clean))
        assert result.status == "repaired"
        donors = result.chip[[0, 2, 3]]
        assert np.allclose(result.chip[1], donors.mean(axis=0))
        # imputation keeps spatial structure, not a flat fill
        assert result.chip[1].std() > 0.0

    def test_saturation_clipped(self):
        bad = SaturateStripe(value=4.0, seed=0)(chip())
        result = sanitize_chip(bad, SanitizePolicy(valid_range=(0.0, 1.0)))
        assert result.status == "repaired"
        assert result.chip.max() <= 1.0

    def test_truncated_tile_padded_to_expected_shape(self):
        small = TruncateTile(seed=0)(chip())
        result = sanitize_chip(small, SanitizePolicy(expected_shape=(24, 24)))
        assert result.status == "repaired"
        assert result.chip.shape == (4, 24, 24)
        c, h, w = small.shape
        assert np.array_equal(result.chip[:, :h, :w], small)

    def test_oversized_chip_not_repairable(self):
        result = sanitize_chip(chip(shape=(4, 30, 30)),
                               SanitizePolicy(expected_shape=(24, 24)))
        assert result.status == "quarantined" and result.chip is None


class TestQuarantine:
    def test_quarantine_only_policy_never_repairs(self):
        bad = NaNPepper(rate=0.05, seed=0)(chip())
        result = sanitize_chip(bad, SanitizePolicy.quarantine_only())
        assert result.status == "quarantined" and result.chip is None
        assert not result.report.repairable

    def test_mostly_bad_chip_quarantined(self):
        """Beyond max_bad_fraction, repair would be invention."""
        bad = NaNPepper(rate=0.8, seed=0)(chip())
        result = sanitize_chip(bad, SanitizePolicy(max_bad_fraction=0.5))
        assert result.status == "quarantined"

    def test_all_bands_gone_quarantined(self):
        result = sanitize_chip(np.full((4, 24, 24), np.nan, dtype=np.float32))
        assert result.status == "quarantined"

    def test_report_summary_names_the_damage(self):
        result = sanitize_chip(DropBand(band=0, seed=0)(chip()),
                               SanitizePolicy.quarantine_only())
        assert "missing_band" in result.report.summary()


class TestPolicies:
    def test_for_serving_checks_only_finiteness(self):
        policy = SanitizePolicy.for_serving()
        assert validate_chip(NodataHoles(seed=0)(chip()), policy).ok
        bad = chip()
        bad[0, 0, 0] = np.nan
        assert not validate_chip(bad, policy).ok

    def test_validation(self):
        with pytest.raises(ValueError):
            SanitizePolicy(max_bad_fraction=0.0)
        with pytest.raises(ValueError):
            SanitizePolicy(valid_range=(1.0, 0.0))


class TestSanitizeScene:
    def test_scene_raster_repaired_in_one_pass(self):
        image = chip(seed=3, shape=(4, 64, 64))
        bad = NaNPepper(rate=0.02, seed=1)(image)
        fixed, result = sanitize_scene(bad)
        assert result.status == "repaired"
        assert np.isfinite(fixed).all()

    def test_unrepairable_scene_returned_unrepaired(self):
        image = np.full((4, 32, 32), np.nan, dtype=np.float32)
        fixed, result = sanitize_scene(image)
        assert result.status == "quarantined"
        assert np.isnan(fixed).all()  # caller quarantines per tile instead
