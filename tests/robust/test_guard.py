"""Guarded engine→eager fallback: output checks, breaker, serve wiring."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.detect.predict import predict
from repro.engine import compiled_for
from repro.robust import (
    FALLBACK_BREAKER_OPEN,
    FALLBACK_ENGINE_ERROR,
    FALLBACK_NON_FINITE,
    FALLBACK_SHAPE,
    GuardedEngine,
)
from repro.serve import BatchPolicy, InferenceService
from repro.serve.breaker import BreakerPolicy


@pytest.fixture(scope="module")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="guard-test",
    )
    m = SPPNetDetector(arch, seed=0)
    m.eval()
    return m


def chips(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, 4, 24, 24)).astype(np.float32)


class FaultyCompiled:
    """Compiled stand-in that misbehaves for the first `fail_first` calls."""

    def __init__(self, model, fail_first=1, mode="nan"):
        self.model = model
        self.fail_first = fail_first
        self.mode = mode
        self.calls = 0

    def predict(self, stack, batch_size=20):
        self.calls += 1
        n = len(stack)
        if self.calls <= self.fail_first:
            if self.mode == "nan":
                return np.full(n, np.nan), np.full((n, 4), np.nan)
            if self.mode == "shape":
                return np.zeros(n + 1), np.zeros((n + 1, 4))
            raise RuntimeError("injected engine crash")
        return predict(self.model, stack, batch_size=batch_size)


class TestGuardedEngine:
    def test_healthy_engine_matches_eager(self, model):
        guard = GuardedEngine(model, compiled=compiled_for(model))
        stack = chips()
        conf, boxes, backend = guard.predict_batch(stack)
        e_conf, e_boxes = predict(model, stack, batch_size=len(stack))
        assert backend == "engine"
        np.testing.assert_allclose(conf, e_conf, atol=1e-4)
        np.testing.assert_allclose(boxes, e_boxes, atol=1e-4)
        assert guard.fallback_by_reason == {}

    @pytest.mark.parametrize("mode,reason", [
        ("nan", FALLBACK_NON_FINITE),
        ("shape", FALLBACK_SHAPE),
        ("raise", FALLBACK_ENGINE_ERROR),
    ])
    def test_violation_falls_back_with_matching_answer(self, model, mode,
                                                       reason):
        guard = GuardedEngine(
            model, compiled=FaultyCompiled(model, fail_first=1, mode=mode))
        stack = chips()
        conf, boxes, backend = guard.predict_batch(stack)
        assert backend == "eager"
        assert guard.fallback_by_reason == {reason: 1}
        e_conf, e_boxes = predict(model, stack, batch_size=len(stack))
        np.testing.assert_array_equal(conf, e_conf)
        np.testing.assert_array_equal(boxes, e_boxes)
        # engine recovered: the next batch is served by the engine again
        _, _, backend2 = guard.predict_batch(stack)
        assert backend2 == "engine"

    def test_repeated_faults_trip_breaker_toward_eager_only(self, model):
        faulty = FaultyCompiled(model, fail_first=100, mode="nan")
        guard = GuardedEngine(
            model, compiled=faulty,
            breaker=BreakerPolicy(failure_threshold=3, reset_timeout_s=60.0))
        stack = chips()
        for _ in range(3):
            guard.predict_batch(stack)
        assert not guard.engine_available
        engine_calls = faulty.calls
        _, _, backend = guard.predict_batch(stack)
        assert backend == "eager"
        assert faulty.calls == engine_calls  # no doomed engine attempt
        tally = guard.fallback_by_reason
        assert tally[FALLBACK_NON_FINITE] == 3
        assert tally[FALLBACK_BREAKER_OPEN] == 1

    def test_fallback_listeners_fire(self, model):
        seen = []
        guard = GuardedEngine(
            model, compiled=FaultyCompiled(model, fail_first=1, mode="nan"),
            on_fallback=seen.append)
        guard.add_fallback_listener(seen.append)
        guard.predict_batch(chips())
        assert seen == [FALLBACK_NON_FINITE, FALLBACK_NON_FINITE]

    def test_predict_loop_isolates_micro_batches(self, model):
        """Only the poisoned micro-batch falls back; the rest stay on
        the engine, and the concatenated output equals eager."""
        guard = GuardedEngine(
            model, compiled=FaultyCompiled(model, fail_first=1, mode="nan"))
        stack = chips(n=6)
        conf, boxes = guard.predict(stack, batch_size=2)
        e_conf, e_boxes = predict(model, stack, batch_size=2)
        np.testing.assert_allclose(conf, e_conf, atol=1e-4)
        np.testing.assert_allclose(boxes, e_boxes, atol=1e-4)
        assert sum(guard.fallback_by_reason.values()) == 1


class TestServeIntegration:
    def test_injected_faulty_engine_surfaces_in_metrics(self, model):
        guard = GuardedEngine(
            model, compiled=FaultyCompiled(model, fail_first=1, mode="nan"))
        with InferenceService(model, BatchPolicy(max_batch=1, max_wait_ms=1.0),
                              cache_size=0, engine=guard) as svc:
            stack = chips(n=3)
            results = [svc.submit(c).result(timeout=10) for c in stack]
        backends = [r.backend for r in results]
        assert backends[0] == "eager" and backends[1:] == ["engine", "engine"]
        snap = svc.metrics.snapshot()
        assert snap["fallback_by_reason"] == {FALLBACK_NON_FINITE: 1}
        assert snap["completed_by_backend"] == {"eager": 1, "engine": 2}

    def test_engine_backend_defaults_to_guarded(self, model):
        with InferenceService(model, BatchPolicy(max_batch=1, max_wait_ms=1.0),
                              cache_size=0, backend="engine") as svc:
            assert isinstance(svc.engine, GuardedEngine)
            result = svc.submit(chips(n=1)[0]).result(timeout=10)
        assert result.backend == "engine"
        assert svc.metrics.snapshot()["fallback_by_reason"] == {}
