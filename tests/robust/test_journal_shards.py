"""Per-shard journal files and their merge into the main journal."""

import pytest

from repro.robust import ScanJournal, ScanJournalError
from repro.robust.journal import TileRecord

META = {"scene_size": 100, "window": 50, "stride": 25}


def rec(index, status="ok", detections=()):
    return TileRecord(index=index, origin=(index, 0), status=status,
                      detections=tuple(detections))


class TestExtend:
    def test_bulk_append_roundtrips(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        journal.extend([rec(0), rec(1), rec(2)])
        meta, records = journal.load()
        assert meta == META
        assert [r.index for r in records] == [0, 1, 2]

    def test_empty_extend_is_noop(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        journal.extend([])
        _, records = journal.load()
        assert records == []


class TestShardPaths:
    def test_shard_path_is_sibling_with_suffix(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        path = journal.shard_path(3)
        assert path.parent == journal.path.parent
        assert path.name == "scan.jsonl.shard003"

    def test_shard_paths_sorted(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        for index in (2, 0, 1):
            shard = ScanJournal(journal.shard_path(index))
            shard.start(META)
        assert [p.name for p in journal.shard_paths()] == [
            "scan.jsonl.shard000", "scan.jsonl.shard001",
            "scan.jsonl.shard002",
        ]


class TestAbsorb:
    def test_merges_and_removes_shards(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        for index, tiles in ((0, [rec(0), rec(1)]), (1, [rec(2), rec(3)])):
            shard = ScanJournal(journal.shard_path(index))
            shard.start(META)
            shard.extend(tiles)
        absorbed = journal.absorb_shards(META)
        assert absorbed == 4
        assert journal.shard_paths() == []
        _, records = journal.load()
        assert sorted(r.index for r in records) == [0, 1, 2, 3]

    def test_skips_records_already_in_main(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        journal.append(rec(0))
        shard = ScanJournal(journal.shard_path(0))
        shard.start(META)
        shard.extend([rec(0), rec(1)])
        assert journal.absorb_shards(META) == 1
        _, records = journal.load()
        assert sorted(r.index for r in records) == [0, 1]

    def test_rejects_shard_with_mismatched_meta(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        shard = ScanJournal(journal.shard_path(0))
        shard.start({**META, "stride": 999})
        with pytest.raises(ScanJournalError):
            journal.absorb_shards(META)

    def test_no_shards_absorbs_nothing(self, tmp_path):
        journal = ScanJournal(tmp_path / "scan.jsonl")
        journal.start(META)
        assert journal.absorb_shards(META) == 0
