"""Seeded severity sweep: degradation scales with damage, repair helps.

Two properties anchor the sanitizer's value:

* model error after sanitize+repair grows monotonically-ish with the
  corruption severity (small inversions from sampling noise allowed);
* on recoverable damage (``DropBand``, ``NodataHoles``) sanitize+repair
  keeps more accuracy than the quarantine-only baseline, which pays a
  full error for every discarded chip.
"""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.detect.predict import predict
from repro.faults import DropBand, NaNPepper, NodataHoles
from repro.robust import SanitizePolicy, sanitize_chip

N_CHIPS = 24
TOLERANCE = 0.02  # allowed monotonicity inversion between adjacent rates


@pytest.fixture(scope="module")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="severity-test",
    )
    return SPPNetDetector(arch, seed=0)


@pytest.fixture(scope="module")
def chips():
    rng = np.random.default_rng(42)
    return rng.random((N_CHIPS, 4, 24, 24)).astype(np.float32)


@pytest.fixture(scope="module")
def clean_conf(model, chips):
    conf, _ = predict(model, chips, batch_size=N_CHIPS)
    return conf


def sweep_error(model, chips, clean_conf, injector, policy):
    """Mean per-chip error vs the clean prediction.

    A repaired chip contributes |conf - conf_clean|; a quarantined chip
    contributes 1.0 — the full confidence range, the cost of having no
    answer at all for that tile.
    """
    errors = []
    for i, clean in enumerate(chips):
        result = sanitize_chip(injector(clean), policy)
        if result.chip is None:
            errors.append(1.0)
            continue
        conf, _ = predict(model, result.chip[None], batch_size=1)
        errors.append(abs(float(conf[0]) - float(clean_conf[i])))
    return float(np.mean(errors))


class TestMonotonicDegradation:
    def test_nan_pepper_error_grows_with_rate(self, model, chips, clean_conf):
        policy = SanitizePolicy(max_bad_fraction=0.95)
        rates = (0.02, 0.1, 0.3, 0.6)
        errors = [
            sweep_error(model, chips, clean_conf,
                        NaNPepper(rate=rate, seed=11), policy)
            for rate in rates
        ]
        for lo, hi in zip(errors, errors[1:]):
            assert hi >= lo - TOLERANCE, (rates, errors)
        assert errors[-1] > errors[0], (rates, errors)

    def test_nodata_holes_error_grows_with_hole_count(self, model, chips,
                                                      clean_conf):
        policy = SanitizePolicy(max_bad_fraction=0.95)
        counts = (1, 4, 10)
        errors = [
            sweep_error(model, chips, clean_conf,
                        NodataHoles(holes=holes, radius=5, seed=13), policy)
            for holes in counts
        ]
        for lo, hi in zip(errors, errors[1:]):
            assert hi >= lo - TOLERANCE, (counts, errors)
        assert errors[-1] > errors[0], (counts, errors)


class TestRepairBeatsQuarantine:
    @pytest.mark.parametrize("injector", [
        DropBand(seed=21),
        NodataHoles(holes=3, radius=6, seed=22),
    ], ids=["drop_band", "nodata_holes"])
    def test_repair_recovers_at_least_quarantine_baseline(
            self, model, chips, clean_conf, injector):
        repair_err = sweep_error(model, chips, clean_conf, injector,
                                 SanitizePolicy())
        quarantine_err = sweep_error(model, chips, clean_conf, injector,
                                     SanitizePolicy.quarantine_only())
        # quarantine-only discards every damaged chip: error is exactly 1
        assert quarantine_err == 1.0
        assert repair_err <= quarantine_err
        # and the repairs are genuinely informative, not just "an answer"
        assert repair_err < 0.5

    @pytest.mark.filterwarnings("ignore:overflow encountered in exp")
    def test_repaired_chip_closer_than_raw_damage(self, model, chips,
                                                  clean_conf):
        """Repair must beat feeding the damaged pixels straight to the
        model (NaN in, garbage out)."""
        injector = NodataHoles(holes=3, radius=6, seed=23)
        repaired_err = sweep_error(model, chips, clean_conf, injector,
                                   SanitizePolicy())
        raw_errors = []
        for i, clean in enumerate(chips):
            conf, _ = predict(model, injector(clean)[None], batch_size=1)
            delta = abs(float(conf[0]) - float(clean_conf[i]))
            raw_errors.append(min(delta, 1.0) if np.isfinite(delta) else 1.0)
        assert repaired_err <= float(np.mean(raw_errors))
