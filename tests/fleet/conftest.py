"""Shared fixtures for the fleet supervision / job-queue / sweep tests."""

import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.geo import WatershedConfig, build_scene

SCENE_CONFIG = WatershedConfig(size=200, road_spacing=64,
                               stream_threshold=600, seed=5)


@pytest.fixture(scope="package")
def scene():
    return build_scene(SCENE_CONFIG)


@pytest.fixture(scope="package")
def model():
    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
        spp_levels=(2, 1), fc_sizes=(32,), name="fleet-test",
    )
    detector = SPPNetDetector(arch, seed=0)
    detector.eval()
    return detector
