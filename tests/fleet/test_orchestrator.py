"""ScanFleet: durable multi-scene sweeps, retries, dead-letter, resume."""

import pytest

from repro.detect import scan_scene
from repro.fleet import DEAD, DONE, PENDING, JobQueue, ScanFleet
from repro.nas.retry import RetryPolicy

from .conftest import SCENE_CONFIG

SCAN_KWARGS = dict(window=64, stride=32, batch_size=8,
                   confidence_threshold=0.3)


def make_fleet(tmp_path, model, scene, **kwargs):
    kwargs.setdefault("queue", JobQueue(tmp_path / "queue.jsonl"))
    kwargs.setdefault("n_workers", 1)
    kwargs.setdefault("scene_provider", lambda payload: scene)
    queue = kwargs.pop("queue")
    return ScanFleet(queue, model, workdir=tmp_path / "work", **kwargs)


class TestSweep:
    def test_sweep_drains_and_matches_direct_scan(self, tmp_path, model,
                                                  scene):
        fleet = make_fleet(tmp_path, model, scene)
        assert fleet.submit_scene("j1", SCENE_CONFIG, **SCAN_KWARGS)
        assert fleet.submit_scene("j2", SCENE_CONFIG, **SCAN_KWARGS)
        summary = fleet.run()
        direct = scan_scene(model, scene,
                            journal=str(tmp_path / "direct.jsonl"),
                            **SCAN_KWARGS)
        assert summary["jobs_run"] == 2
        assert summary["counts"][DONE] == 2
        assert summary["dead_letters"] == {}
        assert summary["outcomes"] == {"j1": ["done"], "j2": ["done"]}
        for job_id in ("j1", "j2"):
            result = summary["results"][job_id]
            assert result["detections"] == len(direct)
            assert result["tiles_scanned"] == result["tiles_total"] \
                == direct.coverage.tiles_total
            assert result["tiles_quarantined"] == 0
            assert fleet.journal_path(job_id).exists()
        assert fleet.queue.drained()

    def test_run_one_returns_none_when_idle(self, tmp_path, model, scene):
        fleet = make_fleet(tmp_path, model, scene)
        assert fleet.run_one() is None

    def test_submit_rejects_unknown_scan_kwargs(self, tmp_path, model,
                                                scene):
        fleet = make_fleet(tmp_path, model, scene)
        with pytest.raises(ValueError, match="unsupported scan parameters"):
            fleet.submit_scene("j1", SCENE_CONFIG, n_workers=4)

    def test_default_provider_rebuilds_scene_from_payload(
            self, tmp_path, model, scene):
        # no injected provider: the payload's WatershedConfig rebuilds
        # the exact pixels, so detections match the prebuilt scene's
        fleet = ScanFleet(JobQueue(tmp_path / "q2.jsonl"), model,
                          workdir=tmp_path / "work2", n_workers=1)
        fleet.submit_scene("j1", SCENE_CONFIG, **SCAN_KWARGS)
        summary = fleet.run()
        direct = scan_scene(model, scene,
                            journal=str(tmp_path / "direct2.jsonl"),
                            **SCAN_KWARGS)
        assert summary["counts"][DONE] == 1
        assert summary["results"]["j1"]["detections"] == len(direct)


class TestFailures:
    def test_broken_scene_retries_then_dead_letters(self, tmp_path, model,
                                                    scene):
        def broken_provider(payload):
            raise RuntimeError("no such raster")

        queue = JobQueue(tmp_path / "queue.jsonl",
                         retry=RetryPolicy(max_attempts=2, backoff_s=0.0,
                                           jitter=0.0))
        fleet = make_fleet(tmp_path, model, scene, queue=queue,
                           scene_provider=broken_provider)
        fleet.submit_scene("bad", SCENE_CONFIG, **SCAN_KWARGS)
        summary = fleet.run()
        assert summary["outcomes"]["bad"] == ["failed", "dead"]
        assert summary["counts"][DEAD] == 1
        assert "RuntimeError: no such raster" in \
            summary["dead_letters"]["bad"]
        assert queue.drained()

    def test_one_broken_scene_does_not_block_the_sweep(self, tmp_path,
                                                       model, scene):
        def provider(payload):
            if payload["scene"]["seed"] == 999:
                raise RuntimeError("poisoned scene")
            return scene

        queue = JobQueue(tmp_path / "queue.jsonl",
                         retry=RetryPolicy(max_attempts=1, backoff_s=0.0,
                                           jitter=0.0))
        fleet = make_fleet(tmp_path, model, scene, queue=queue,
                           scene_provider=provider)
        fleet.submit_scene("good", SCENE_CONFIG, **SCAN_KWARGS)
        from dataclasses import replace
        fleet.submit_scene("bad", replace(SCENE_CONFIG, seed=999),
                           **SCAN_KWARGS)
        summary = fleet.run()
        assert summary["counts"][DONE] == 1
        assert summary["counts"][DEAD] == 1
        assert summary["counts"][PENDING] == 0
        assert "good" in summary["results"]


class TestResume:
    def test_retried_job_resumes_its_journal(self, tmp_path, model, scene):
        # sweep once to completion, then re-run the same job id against
        # the same workdir through a fresh queue: the scan must resume
        # the finished journal instead of rescanning a single tile
        first = make_fleet(tmp_path, model, scene)
        first.submit_scene("j1", SCENE_CONFIG, **SCAN_KWARGS)
        before = first.run()["results"]["j1"]
        assert before["tiles_resumed"] == 0

        second = make_fleet(tmp_path, model, scene,
                            queue=JobQueue(tmp_path / "queue2.jsonl"))
        second.submit_scene("j1", SCENE_CONFIG, **SCAN_KWARGS)
        after = second.run()["results"]["j1"]
        assert after["tiles_resumed"] == after["tiles_total"]
        assert after["detections"] == before["detections"]
