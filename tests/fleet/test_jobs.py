"""JobQueue: leases, heartbeats, backoff, dead-letter, crash replay.

All timing runs on an injected fake clock, so lease expiry and backoff
gates are exact instead of sleep-based.
"""

import json

import pytest

from repro.faults import tear_trailing_line
from repro.fleet import DEAD, DONE, LEASED, PENDING, JobQueue, JobQueueError
from repro.nas.retry import RetryPolicy

PAYLOAD = {"scene": {"size": 64}, "scan": {}}


@pytest.fixture
def clock():
    """Mutable fake wall clock: ``clock.now`` is the current time."""

    class _Clock:
        now = 1_000.0

        def __call__(self):
            return self.now

    return _Clock()


def make_queue(tmp_path, clock, **kwargs):
    kwargs.setdefault("retry", RetryPolicy(max_attempts=3, backoff_s=10.0,
                                           multiplier=2.0, jitter=0.0,
                                           max_backoff_s=100.0))
    kwargs.setdefault("lease_ttl_s", 60.0)
    return JobQueue(tmp_path / "queue.jsonl", clock=clock, **kwargs)


class TestSubmit:
    def test_submit_then_claim_in_order(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        assert queue.submit("a", PAYLOAD)
        assert queue.submit("b", PAYLOAD)
        first = queue.claim("w1")
        second = queue.claim("w1")
        assert (first.job_id, second.job_id) == ("a", "b")
        assert first.payload == PAYLOAD
        assert first.attempts == 1
        assert queue.claim("w1") is None

    def test_resubmit_same_payload_is_noop(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        assert queue.submit("a", PAYLOAD)
        assert not queue.submit("a", PAYLOAD)
        assert queue.job_ids() == ["a"]

    def test_resubmit_different_payload_raises(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        with pytest.raises(JobQueueError, match="different payload"):
            queue.submit("a", {"scene": {"size": 128}, "scan": {}})

    def test_lease_ttl_validation(self, tmp_path, clock):
        with pytest.raises(ValueError, match="lease_ttl_s"):
            make_queue(tmp_path, clock, lease_ttl_s=0.0)


class TestLifecycle:
    def test_complete_records_result(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        job = queue.claim("w1")
        queue.complete(job.job_id, "w1", result={"detections": 3})
        assert queue.status("a") == DONE
        assert queue.result("a") == {"detections": 3}
        assert queue.counts() == {PENDING: 0, LEASED: 0, DONE: 1, DEAD: 0}
        assert queue.drained()

    def test_complete_requires_the_lease(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        with pytest.raises(JobQueueError, match="not leased by"):
            queue.complete("a", "w2")

    def test_heartbeat_extends_lease(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        clock.now += 50.0          # lease would die at +60
        queue.heartbeat("a", "w1")
        clock.now += 50.0          # +100: dead without the heartbeat
        assert queue.status("a") == LEASED
        queue.complete("a", "w1")
        assert queue.status("a") == DONE

    def test_expired_lease_is_reclaimable_and_attempt_stays_spent(
            self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        clock.now += 61.0
        assert queue.status("a") == PENDING
        reclaimed = queue.claim("w2")
        assert reclaimed.job_id == "a"
        assert reclaimed.attempts == 2       # the crashed run counted
        # the original owner lost the job and must not complete it
        with pytest.raises(JobQueueError, match="not leased by"):
            queue.complete("a", "w1")
        with pytest.raises(JobQueueError):
            queue.heartbeat("a", "w1")

    def test_heartbeat_after_expiry_raises(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        clock.now += 61.0
        with pytest.raises(JobQueueError, match="expired"):
            queue.heartbeat("a", "w1")


class TestRetries:
    def test_fail_gates_retry_behind_backoff(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        assert queue.fail("a", "w1", "boom") == PENDING
        assert queue.claim("w1") is None        # not_before = now + 10
        clock.now += 10.0
        job = queue.claim("w1")
        assert job is not None and job.attempts == 2

    def test_backoff_grows_exponentially(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        queue.fail("a", "w1", "boom")
        clock.now += 10.0
        queue.claim("w1")
        queue.fail("a", "w1", "boom again")
        clock.now += 10.0                       # second delay is 20 s
        assert queue.claim("w1") is None
        clock.now += 10.0
        assert queue.claim("w1") is not None

    def test_budget_exhaustion_dead_letters(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock,
                           retry=RetryPolicy(max_attempts=2, backoff_s=0.0,
                                             jitter=0.0))
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        assert queue.fail("a", "w1", "first") == PENDING
        queue.claim("w1")
        assert queue.fail("a", "w1", "second") == DEAD
        assert queue.status("a") == DEAD
        assert queue.dead_letters() == {"a": "second"}
        assert queue.claim("w1") is None
        assert queue.drained()

    def test_lost_leases_spend_the_budget(self, tmp_path, clock):
        """A job whose final attempt died with its lease is dead-lettered
        at the next claim — never silently stuck pending."""
        queue = make_queue(tmp_path, clock,
                           retry=RetryPolicy(max_attempts=1, backoff_s=0.0,
                                             jitter=0.0))
        queue.submit("a", PAYLOAD)
        queue.claim("w1")
        clock.now += 61.0
        assert queue.claim("w2") is None
        assert queue.status("a") == DEAD
        assert "a" in queue.dead_letters()


class TestDurability:
    def test_replay_restores_full_state(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.submit("b", PAYLOAD)
        queue.submit("c", PAYLOAD)
        queue.claim("w1")
        queue.complete("a", "w1", result={"detections": 2})
        queue.claim("w1")
        queue.fail("b", "w1", "boom")
        reopened = make_queue(tmp_path, clock)
        assert reopened.job_ids() == ["a", "b", "c"]
        assert reopened.status("a") == DONE
        assert reopened.result("a") == {"detections": 2}
        assert reopened.status("b") == PENDING
        assert reopened.attempts("b") == 1
        assert reopened.status("c") == PENDING

    def test_torn_trailing_event_is_dropped_on_reopen(self, tmp_path, clock):
        queue = make_queue(tmp_path, clock)
        queue.submit("a", PAYLOAD)
        queue.submit("b", PAYLOAD)
        assert tear_trailing_line(queue.path) > 0
        reopened = make_queue(tmp_path, clock)
        # the torn submit of "b" is gone; resubmitting it works
        assert reopened.job_ids() == ["a"]
        assert reopened.submit("b", PAYLOAD)
        assert reopened.job_ids() == ["a", "b"]

    def test_foreign_file_is_rejected(self, tmp_path, clock):
        path = tmp_path / "queue.jsonl"
        path.write_text(json.dumps({"kind": "scan_journal"}) + "\n")
        with pytest.raises(JobQueueError, match="not a fleet queue"):
            JobQueue(path, clock=clock)

    def test_unsupported_version_is_rejected(self, tmp_path, clock):
        path = tmp_path / "queue.jsonl"
        path.write_text(
            json.dumps({"kind": "fleet_queue", "version": 99}) + "\n")
        with pytest.raises(JobQueueError, match="version"):
            JobQueue(path, clock=clock)
