"""ShardSupervisor: deadlines, revival, redispatch, poison quarantine.

Every recovery test asserts the core contract — detections byte-identical
to the fault-free sequential scan — because recovery that changes the
merge is worse than no recovery at all.
"""

import os
import time

import pytest

from repro.detect.scan import ScanDeadlineError, scan_origins
from repro.faults import FaultyDetector, WorkerFaultPlan
from repro.fleet import ShardSupervisor, SupervisionPolicy
from repro.scanpar import (
    SharedArray,
    ShardTask,
    WorkerError,
    WorkerPool,
    parallel_scan_scene,
)
from repro.scanpar.sharding import partition_origins

WINDOW = 64
STRIDE = 32
BATCH = 8


def scan(model, scene, **kwargs):
    kwargs.setdefault("window", WINDOW)
    kwargs.setdefault("stride", STRIDE)
    kwargs.setdefault("confidence_threshold", 0.3)
    kwargs.setdefault("batch_size", BATCH)
    kwargs.setdefault("backend", "eager")
    return parallel_scan_scene(model, scene, **kwargs)


def make_tasks(scene, shared, model_hash):
    origins = scan_origins(scene.size, WINDOW, STRIDE)
    shards = partition_origins(len(origins), 2, BATCH)
    assert len(shards) >= 2
    return [
        ShardTask(shard_index=s.index, start=s.start, stop=s.stop,
                  shm=shared.spec(), model_hash=model_hash,
                  scene_size=scene.size, window=WINDOW, stride=STRIDE,
                  batch_size=BATCH, backend="eager",
                  confidence_threshold=0.3)
        for s in shards
    ]


class ExplodingModel:
    """Picklable model stand-in that fails everywhere, parent included."""

    def eval(self):
        return self

    def __call__(self, *args, **kwargs):
        raise RuntimeError("boom")


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="shard_deadline_s"):
            SupervisionPolicy(shard_deadline_s=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="probe_interval_s"):
            SupervisionPolicy(probe_interval_s=0.0)
        assert SupervisionPolicy(shard_deadline_s=None).shard_deadline_s is None


class TestCleanRuns:
    def test_supervised_scan_matches_sequential(self, model, scene):
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool:
            result = scan(model, scene, n_workers=2, pool=pool,
                          supervision=True)
        report = result.supervision
        assert list(result) == list(sequential)
        assert result.coverage == sequential.coverage
        assert report is not None and report.clean
        assert report.shards_total >= 2
        assert all(n == 1 for n in report.attempts.values())

    def test_unsupervised_scan_carries_no_report(self, model, scene):
        with WorkerPool(2) as pool:
            result = scan(model, scene, n_workers=2, pool=pool)
        assert getattr(result, "supervision", None) is None

    def test_report_json_roundtrip(self, model, scene):
        with WorkerPool(2) as pool:
            result = scan(model, scene, n_workers=2, pool=pool,
                          supervision=SupervisionPolicy())
        snap = result.supervision.to_json()
        assert snap["shards_total"] == result.supervision.shards_total
        assert snap["deadline_kills"] == 0
        assert snap["poison_shards"] == []
        import json
        json.dumps(snap)  # must be JSON-safe for queue result summaries


class TestFaultRecovery:
    def test_hung_worker_is_killed_and_shard_redispatched(
            self, model, scene, tmp_path):
        sequential = scan(model, scene, n_workers=1)
        plan = WorkerFaultPlan(faults={0: "hang"},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        policy = SupervisionPolicy(shard_deadline_s=1.5,
                                   probe_interval_s=0.25)
        t0 = time.monotonic()
        with WorkerPool(2) as pool:
            result = scan(faulty, scene, n_workers=2, pool=pool,
                          supervision=policy)
        elapsed = time.monotonic() - t0
        report = result.supervision
        assert list(result) == list(sequential)
        assert report.deadline_kills >= 1
        assert report.redispatches >= 1
        assert report.workers_replaced >= 1
        assert not report.clean
        # the hung worker must never stall dispatch much past its
        # deadline: kill latency is bounded by the probe interval
        assert report.max_overshoot_s <= 1.0
        assert elapsed < 30.0
        assert plan.fired() == 1

    def test_sigkilled_worker_is_replaced_without_leaks(
            self, model, scene, tmp_path):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm to observe")
        sequential = scan(model, scene, n_workers=1)
        before = set(os.listdir("/dev/shm"))
        plan = WorkerFaultPlan(faults={0: "kill"},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        with WorkerPool(2) as pool:
            result = scan(faulty, scene, n_workers=2, pool=pool,
                          supervision=True)
            report = result.supervision
            # re-warm: 2 initial model sends + 1 to the replacement
            assert pool.stats["model_sends"] == 3
            # the revived pool keeps working on a clean follow-up scan
            again = scan(faulty, scene, n_workers=2, pool=pool,
                         supervision=True)
        after = set(os.listdir("/dev/shm"))
        leaked = {n for n in after - before if n.startswith("psm_")}
        assert leaked == set()
        assert list(result) == list(sequential)
        assert list(again) == list(sequential)
        assert report.worker_deaths >= 1
        assert report.workers_replaced >= 1
        assert again.supervision.clean  # the kill fuse fired exactly once

    def test_erroring_shard_redispatches_and_recovers(
            self, model, scene, tmp_path):
        sequential = scan(model, scene, n_workers=1)
        plan = WorkerFaultPlan(faults={0: "error"},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        with WorkerPool(2) as pool:
            result = scan(faulty, scene, n_workers=2, pool=pool,
                          supervision=True)
        report = result.supervision
        assert list(result) == list(sequential)
        assert report.redispatches >= 1
        # the worker survived its shard's exception: no kills, no deaths
        assert report.worker_deaths == 0
        assert report.deadline_kills == 0
        assert report.workers_replaced == 0

    def test_slow_worker_needs_no_recovery(self, model, scene, tmp_path):
        sequential = scan(model, scene, n_workers=1)
        plan = WorkerFaultPlan(faults={0: "slow"}, slow_s=0.2,
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        policy = SupervisionPolicy(shard_deadline_s=30.0)
        with WorkerPool(2) as pool:
            result = scan(faulty, scene, n_workers=2, pool=pool,
                          supervision=policy)
        assert list(result) == list(sequential)
        assert result.supervision.clean

    def test_poison_shard_degrades_to_inline(self, model, scene, tmp_path):
        sequential = scan(model, scene, n_workers=1)
        # enough error fuses that every worker attempt fails: both
        # shards exhaust max_attempts and must run inline in the parent
        # (where FaultyDetector never faults, by construction)
        plan = WorkerFaultPlan(faults={n: "error" for n in range(12)},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        policy = SupervisionPolicy(max_attempts=2)
        with WorkerPool(2) as pool:
            result = scan(faulty, scene, n_workers=2, pool=pool,
                          supervision=policy)
        report = result.supervision
        assert list(result) == list(sequential)
        assert sorted(report.poison_shards) == sorted(report.inline_shards)
        assert len(report.poison_shards) >= 1
        assert all(n == 2 for n in report.attempts.values())

    def test_inline_failure_raises_worker_error(self, scene):
        policy = SupervisionPolicy(max_attempts=1)
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerError, match="again inline"):
                scan(ExplodingModel(), scene, n_workers=2, pool=pool,
                     supervision=policy)


class TestDeadlines:
    def test_expired_deadline_aborts_and_pool_survives(self, model, scene):
        with WorkerPool(2) as pool, SharedArray(scene.image) as shared:
            model_hash = pool.ensure_model(model)
            tasks = make_tasks(scene, shared, model_hash)
            supervisor = ShardSupervisor(
                pool, model, SupervisionPolicy(shard_deadline_s=None))
            with pytest.raises(ScanDeadlineError, match="shards unfinished"):
                supervisor.run(tasks, deadline_at=time.monotonic() - 1.0)
            # abort cleared the stragglers: the pool can scan again
            payloads, report = supervisor.run(make_tasks(scene, shared,
                                                         model_hash))
            assert len(payloads) == len(tasks)
        sequential = scan(model, scene, n_workers=1)
        with WorkerPool(2) as pool2:
            result = scan(model, scene, n_workers=2, pool=pool2)
        assert list(result) == list(sequential)

    def test_hung_scan_hits_overall_deadline(self, model, scene, tmp_path):
        plan = WorkerFaultPlan(faults={0: "hang", 1: "hang"},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        policy = SupervisionPolicy(shard_deadline_s=None,
                                   probe_interval_s=0.1)
        t0 = time.monotonic()
        with WorkerPool(2) as pool:
            with pytest.raises(ScanDeadlineError):
                scan(faulty, scene, n_workers=2, pool=pool,
                     supervision=policy, deadline_s=0.8)
        assert time.monotonic() - t0 < 15.0

    def test_deadline_abort_is_resumable(self, model, scene, tmp_path):
        """Crash-resume across a deadline abort: the journaled retry
        completes and matches a fault-free robust scan byte for byte."""
        plan = WorkerFaultPlan(faults={0: "hang", 1: "hang"},
                               fuse_dir=str(tmp_path / "fuses"))
        faulty = FaultyDetector(model, plan)
        policy = SupervisionPolicy(shard_deadline_s=None,
                                   probe_interval_s=0.1)
        journal = tmp_path / "scan.journal.jsonl"
        with WorkerPool(2) as pool:
            with pytest.raises(ScanDeadlineError):
                scan(faulty, scene, n_workers=2, pool=pool,
                     journal=str(journal), resume=True,
                     supervision=policy, deadline_s=0.8)
            # both hang fuses burned in attempt one: the resume is clean
            resumed = scan(faulty, scene, n_workers=2, pool=pool,
                           journal=str(journal), resume=True,
                           supervision=policy)
        reference = scan(faulty, scene, n_workers=1,
                         journal=str(tmp_path / "ref.journal.jsonl"))
        assert list(resumed) == list(reference)
        assert resumed.coverage.tiles_total == reference.coverage.tiles_total
        assert resumed.coverage.tiles_quarantined == 0
