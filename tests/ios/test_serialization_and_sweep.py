"""Schedule JSON round-trips and the input-size sweep."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.experiments import run_input_size_sweep
from repro.graph import build_sppnet_graph
from repro.gpusim import validate_stages
from repro.ios import Schedule, dp_schedule, measure_latency


class TestScheduleSerialization:
    def test_json_roundtrip(self):
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        original = dp_schedule(graph, 4)
        restored = Schedule.from_json(original.to_json())
        assert restored.stage_groups() == original.stage_groups()
        assert restored.batch == 4
        assert restored.strategy == original.strategy
        assert restored.latency_us == pytest.approx(original.latency_us)

    def test_restored_schedule_executes_identically(self):
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"])
        original = dp_schedule(graph, 1)
        restored = Schedule.from_json(original.to_json())
        validate_stages(graph, restored.stage_groups())
        assert measure_latency(graph, restored) == pytest.approx(
            measure_latency(graph, original)
        )

    def test_save_load_file(self, tmp_path):
        graph = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        schedule = dp_schedule(graph, 2)
        path = schedule.save(tmp_path / "plans" / "sched.json")
        assert path.exists()
        loaded = Schedule.load(path)
        assert loaded.stage_groups() == schedule.stage_groups()

    def test_single_op_groups_with_annotations_roundtrip(self):
        from repro.ios import sequential_schedule

        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #1"])
        original = sequential_schedule(graph, 3)
        assert all(len(group.ops) == 1 for stage in original.stages
                   for group in stage.groups)
        restored = Schedule.from_json(original.to_json())
        assert restored.stage_groups() == original.stage_groups()
        assert restored.latency_us == pytest.approx(original.latency_us)
        assert restored.strategy == original.strategy


class TestScheduleHash:
    def plan(self, batch=2):
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        return dp_schedule(graph, batch)

    def test_hash_survives_roundtrip(self):
        original = self.plan()
        restored = Schedule.from_json(original.to_json())
        assert restored.schedule_hash == original.schedule_hash

    def test_hash_covers_plan_not_annotations(self):
        """Two schedules with equal stage structure hash equal even when
        latency/strategy annotations differ — pool workers verify the
        *plan*, not the parent's measurement noise."""
        import dataclasses

        original = self.plan()
        relabeled = dataclasses.replace(
            original, latency_us=12345.0, strategy="other")
        assert relabeled.schedule_hash == original.schedule_hash
        assert self.plan(batch=7).schedule_hash != original.schedule_hash

    def test_tampered_payload_rejected(self):
        import json

        payload = json.loads(self.plan().to_json())
        first_group = payload["stages"][0][0]
        first_group.append("injected_op")
        with pytest.raises(ValueError, match="hash mismatch"):
            Schedule.from_json(json.dumps(payload))

    def test_payload_without_hash_still_loads(self):
        import json

        payload = json.loads(self.plan().to_json())
        del payload["schedule_hash"]
        restored = Schedule.from_json(json.dumps(payload))
        assert restored.stage_groups() == self.plan().stage_groups()


class TestInputSizeSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_input_size_sweep(input_sizes=(100, 200, 400))

    def test_latency_grows_with_input(self, result):
        seq = [float(r[1].split()[0]) for r in result.rows]
        assert seq == sorted(seq)
        # conv work is quadratic in edge length: 4x area -> >2x latency
        assert seq[-1] > 2 * seq[0]

    def test_optimized_never_slower(self, result):
        for row in result.rows:
            assert float(row[2].split()[0]) <= float(row[1].split()[0])

    def test_ios_gain_shrinks_with_size(self, result):
        """Bigger inputs saturate the device: fixed sync savings matter
        less, so the IOS speedup falls — the same shape as Figure 6."""
        speedups = [float(r[3].rstrip("x")) for r in result.rows]
        assert speedups[0] > speedups[-1]
