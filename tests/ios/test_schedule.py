"""Schedule data structures and group derivation."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_sppnet_graph
from repro.ios import Group, Schedule, Stage, groups_from_ops


@pytest.fixture()
def graph():
    return build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])


class TestTypes:
    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Group(())

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            Stage(())

    def test_stage_counts(self):
        stage = Stage((Group(("a", "b")), Group(("c",))))
        assert stage.num_ops == 3 and stage.parallelism == 2

    def test_schedule_accessors(self, graph):
        sched = Schedule("g", 1, (Stage((Group(("conv1",)),)),
                                  Stage((Group(("relu1",)), Group(("relu1x",))))))
        assert sched.num_stages == 2
        assert sched.num_ops == 3
        assert sched.max_parallelism == 2
        assert sched.stage_groups() == [[["conv1"]], [["relu1"], ["relu1x"]]]

    def test_with_latency_preserves(self):
        sched = Schedule("g", 4, (Stage((Group(("a",)),)),), strategy="x")
        out = sched.with_latency(12.5)
        assert out.latency_us == 12.5 and out.strategy == "x" and out.batch == 4

    def test_describe_renders_groups(self, graph):
        from repro.ios import dp_schedule

        text = dp_schedule(graph, 1).describe()
        assert "stage 0" in text and "conv1" in text


class TestGroupsFromOps:
    def test_spp_branches_become_separate_groups(self, graph):
        groups = groups_from_ops(graph, {"spp5", "spp2", "spp1"})
        assert len(groups) == 3
        assert {g.ops for g in groups} == {("spp5",), ("spp2",), ("spp1",)}

    def test_chain_is_one_group_in_topo_order(self, graph):
        groups = groups_from_ops(graph, {"relu1", "conv1", "pool1"})
        assert len(groups) == 1
        assert groups[0].ops == ("conv1", "relu1", "pool1")

    def test_mixed_components(self, graph):
        groups = groups_from_ops(graph, {"spp5", "spp2", "cls_head", "box_head"})
        # heads connect only through fc1_relu (outside the set) -> 4 groups
        assert len(groups) == 4

    def test_connected_through_concat(self, graph):
        groups = groups_from_ops(graph, {"spp5", "spp2", "spp1", "spp_concat"})
        assert len(groups) == 1  # concat joins all branches

    def test_deterministic_order(self, graph):
        a = groups_from_ops(graph, {"spp1", "spp2", "spp5"})
        b = groups_from_ops(graph, {"spp5", "spp1", "spp2"})
        assert [g.ops for g in a] == [g.ops for g in b]
