"""Multi-GPU scheduling and ahead-of-time baselines (extensions)."""

import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import build_inception_graph, build_sppnet_graph
from repro.gpusim import validate_stages
from repro.ios import (
    dp_schedule,
    measure_latency,
    multigpu_schedule,
    nimble_style_schedule,
    rammer_style_schedule,
    scheduling_cost_comparison,
)


@pytest.fixture(scope="module")
def inception():
    return build_inception_graph(branches=4, depth=2)


@pytest.fixture(scope="module")
def sppnet():
    return build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])


class TestMultiGpu:
    def test_two_gpus_beat_one_on_branched_graph(self, inception):
        one = multigpu_schedule(inception, 1, num_devices=1)
        two = multigpu_schedule(inception, 1, num_devices=2)
        assert two.latency_us < one.latency_us
        assert two.transfer_us > 0

    def test_scaling_saturates_at_branch_count(self, inception):
        l4 = multigpu_schedule(inception, 1, num_devices=4).latency_us
        l8 = multigpu_schedule(inception, 1, num_devices=8).latency_us
        assert l8 == pytest.approx(l4, rel=0.05)  # only 4 branches exist

    def test_linear_chain_gains_nothing(self, sppnet):
        one = multigpu_schedule(sppnet, 1, num_devices=1)
        two = multigpu_schedule(sppnet, 1, num_devices=2)
        assert two.latency_us >= one.latency_us - 1e-9

    def test_single_device_pays_no_transfers(self, inception):
        assert multigpu_schedule(inception, 1, num_devices=1).transfer_us == 0.0

    def test_every_op_placed_exactly_once(self, inception):
        sched = multigpu_schedule(inception, 1, num_devices=2)
        placed = [name for stage in sched.stages
                  for p in stage.placements for name in p.ops]
        expected = [op.name for op in inception.compute_nodes()]
        assert sorted(placed) == sorted(expected)

    def test_device_of_lookup(self, inception):
        sched = multigpu_schedule(inception, 1, num_devices=2)
        devices = {sched.device_of(f"b{b}_conv0") for b in range(4)}
        assert devices == {0, 1}
        with pytest.raises(KeyError):
            sched.device_of("nope")

    def test_describe_mentions_gpus(self, inception):
        text = multigpu_schedule(inception, 1, num_devices=2).describe()
        assert "gpu0" in text and "gpu1" in text

    def test_validation(self, inception):
        with pytest.raises(ValueError):
            multigpu_schedule(inception, 1, num_devices=0)


class TestAheadOfTime:
    def test_rammer_schedule_valid(self, sppnet):
        sched = rammer_style_schedule(sppnet, 1)
        validate_stages(sppnet, sched.stage_groups())

    def test_rammer_groups_parallel_branches(self, inception):
        sched = rammer_style_schedule(inception, 1)
        assert sched.max_parallelism >= 4

    def test_nimble_reuses_pilot_structure(self, sppnet):
        pilot = dp_schedule(sppnet, 1)
        reused = nimble_style_schedule(sppnet, 64, pilot_batch=1)
        assert reused.stages == pilot.stages
        assert reused.batch == 64
        validate_stages(sppnet, reused.stage_groups())

    def test_dp_never_loses_to_static_baselines(self, inception):
        dp = measure_latency(inception, dp_schedule(inception, 1))
        rammer = measure_latency(inception, rammer_style_schedule(inception, 1))
        assert dp <= rammer + 1e-9

    def test_cost_comparison_rows(self, inception):
        rows = scheduling_cost_comparison(inception, 1)
        names = [r.strategy for r in rows]
        assert "ios-dp" in names and "rammer-style" in names
        by = {r.strategy: r for r in rows}
        # Static scheduling is orders of magnitude cheaper to *produce*...
        assert by["rammer-style"].scheduling_ms < by["ios-dp"].scheduling_ms
        # ... but the DP's schedule is at least as fast to *run*.
        assert by["ios-dp"].latency_us <= by["rammer-style"].latency_us + 1e-9
