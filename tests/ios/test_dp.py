"""IOS dynamic program: validity, optimality vs brute force, behavior."""

import numpy as np
import pytest

from repro.arch import TABLE1_MODELS
from repro.graph import Graph, Operator, OpType, build_inception_graph, build_sppnet_graph
from repro.gpusim import validate_stages
from repro.gpusim.executor import plan_stage
from repro.ios import (
    DPScheduler,
    compare_strategies,
    count_downsets,
    dp_schedule,
    greedy_schedule,
    measure_latency,
    sequential_schedule,
    single_stage_schedule,
)


def random_dag(num_nodes: int, seed: int, edge_prob: float = 0.4) -> Graph:
    """Random layered DAG of RELU ops with one input."""
    rng = np.random.default_rng(seed)
    g = Graph(f"rand{seed}")
    g.add(Operator("in", OpType.INPUT, out_shape=(64, 16, 16)))
    names = []
    for i in range(num_nodes):
        deps = [n for n in names if rng.random() < edge_prob]
        if not deps:
            deps = ["in"]
        # Vary op weight via output channels so costs differ.
        channels = int(rng.integers(8, 256))
        g.add(Operator(f"n{i}", OpType.RELU, tuple(deps), (channels, 16, 16)))
        names.append(f"n{i}")
    g.validate()
    return g


def brute_force_best(graph: Graph, batch: int) -> float:
    """Minimum DP objective over ALL valid stage partitions (small graphs)."""
    scheduler = DPScheduler(graph, batch)
    n = scheduler._n
    specs = scheduler._specs
    best = [float("inf")]

    def rec(remaining: int, acc: float) -> None:
        if acc >= best[0]:
            return
        if remaining == 0:
            best[0] = min(best[0], acc)
            return
        for stage_mask in scheduler._downsets(remaining):
            cost = scheduler.stage_cost(stage_mask)
            rec(remaining & ~stage_mask, acc + cost)

    rec((1 << n) - 1, 0.0)
    return best[0]


class TestDPValidity:
    @pytest.mark.parametrize("model", list(TABLE1_MODELS))
    def test_schedule_valid_for_all_models(self, model):
        graph = build_sppnet_graph(TABLE1_MODELS[model])
        sched = dp_schedule(graph, 1)
        validate_stages(graph, sched.stage_groups())

    @pytest.mark.parametrize("batch", [1, 8, 64])
    def test_schedule_valid_across_batches(self, batch):
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        sched = dp_schedule(graph, batch)
        validate_stages(graph, sched.stage_groups())

    @pytest.mark.parametrize("seed", range(6))
    def test_schedule_valid_on_random_dags(self, seed):
        graph = random_dag(7, seed)
        sched = dp_schedule(graph, 1)
        validate_stages(graph, sched.stage_groups())


class TestDPOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_dags(self, seed):
        graph = random_dag(5, seed)
        sched = dp_schedule(graph, 1)
        assert sched.latency_us == pytest.approx(brute_force_best(graph, 1), rel=1e-9)

    def test_matches_brute_force_on_inception(self):
        graph = build_inception_graph(branches=3, depth=1)
        sched = dp_schedule(graph, 1)
        assert sched.latency_us == pytest.approx(brute_force_best(graph, 1), rel=1e-9)

    def test_never_worse_than_named_baselines(self):
        graph = build_inception_graph(branches=4, depth=2)
        scheduler = DPScheduler(graph, 1)
        dp = scheduler.solve()

        def objective(stages) -> float:
            total = 0.0
            for stage in stages:
                total += plan_stage(stage, scheduler._specs, scheduler.device).latency_us
            return total

        for baseline in (sequential_schedule, greedy_schedule, single_stage_schedule):
            sched = baseline(graph, 1)
            assert dp.latency_us <= objective(sched.stage_groups()) + 1e-9

    def test_dp_objective_tracks_measured_latency(self):
        """Measured executor latency = DP objective + schedule-independent
        fixed costs (session h2d/d2h, arena, final sync residual)."""
        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #3"])
        dp = dp_schedule(graph, 1)
        seq = sequential_schedule(graph, 1)
        offsets = []
        for sched in (dp, seq):
            scheduler = DPScheduler(graph, 1)
            objective = sum(
                plan_stage(stage, scheduler._specs, scheduler.device).latency_us
                for stage in sched.stage_groups()
            )
            offsets.append(measure_latency(graph, sched) - objective)
        assert offsets[0] == pytest.approx(offsets[1], abs=2.0)


class TestDPBehavior:
    def test_parallel_groups_on_inception_at_batch1(self):
        sched = dp_schedule(build_inception_graph(branches=4, depth=2), 1)
        assert sched.max_parallelism >= 3

    def test_dp_beats_baselines_on_inception(self):
        graph = build_inception_graph(branches=4, depth=2)
        results = compare_strategies(graph, 1)
        dp = results["ios-dp"].latency_us
        assert dp < results["sequential"].latency_us
        assert dp < results["greedy"].latency_us
        assert dp < results["single-stage"].latency_us

    def test_optimized_beats_sequential_on_all_models(self):
        for config in TABLE1_MODELS.values():
            graph = build_sppnet_graph(config)
            dp = measure_latency(graph, dp_schedule(graph, 1))
            seq = measure_latency(graph, sequential_schedule(graph, 1))
            assert dp < seq

    def test_max_stage_ops_respected(self):
        graph = build_sppnet_graph(TABLE1_MODELS["Original SPP-Net"])
        sched = dp_schedule(graph, 1, max_stage_ops=3)
        assert all(stage.num_ops <= 3 for stage in sched.stages)

    def test_max_groups_respected(self):
        graph = build_inception_graph(branches=5, depth=1)
        sched = dp_schedule(graph, 1, max_groups=2)
        assert sched.max_parallelism <= 2

    def test_count_downsets_small_chain(self):
        g = Graph("chain")
        g.add(Operator("in", OpType.INPUT, out_shape=(4,)))
        prev = "in"
        for i in range(4):
            g.add(Operator(f"c{i}", OpType.RELU, (prev,), (4,)))
            prev = f"c{i}"
        assert count_downsets(g) == 5  # chain of 4: prefixes incl. empty

    def test_empty_graph_rejected(self):
        g = Graph("only-input")
        g.add(Operator("in", OpType.INPUT, out_shape=(1,)))
        with pytest.raises(ValueError):
            dp_schedule(g, 1)


class TestDPRandomCosts:
    """Optimality must hold for arbitrary (not just physical) kernel costs."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force_with_random_costs(self, seed):
        from repro.gpusim.kernels import KernelSpec

        graph = random_dag(5, seed + 100)
        scheduler = DPScheduler(graph, 1)
        rng = np.random.default_rng(seed)
        fuzzed = {}
        for name, spec in scheduler._specs.items():
            solo = float(rng.uniform(1.0, 50.0))
            fuzzed[name] = KernelSpec(
                op_name=spec.op_name, category=spec.category,
                solo_us=solo, work_us=float(rng.uniform(0.1, 1.0) * solo),
                blocks=spec.blocks, flops=spec.flops,
                dram_bytes=spec.dram_bytes,
            )
        scheduler._specs = fuzzed
        scheduler._stage_cost_cache.clear()
        solved = scheduler.solve()

        best = [float("inf")]

        def rec(remaining, acc):
            if acc >= best[0]:
                return
            if remaining == 0:
                best[0] = min(best[0], acc)
                return
            for mask in scheduler._downsets(remaining):
                rec(remaining & ~mask, acc + scheduler.stage_cost(mask))

        rec((1 << scheduler._n) - 1, 0.0)
        assert solved.latency_us == pytest.approx(best[0], rel=1e-9)
