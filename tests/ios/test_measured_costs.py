"""Measured-cost scheduling: the MeasuredCosts stage pricer, the DP's
cost_source seam, and the measured variants of measure_schedule /
schedule_overheads."""

import pytest

from repro.graph.ir import Graph, Operator, OpType
from repro.ios import (
    MeasuredCosts,
    MeasuredRunResult,
    dp_schedule,
    measure_latency,
    measure_schedule,
    schedule_overheads,
    sequential_schedule,
)


def diamond_graph() -> Graph:
    """input -> a -> (b, c) -> d: two independent mid ops."""
    g = Graph(name="diamond")
    g.add(Operator("input", OpType.INPUT, (), (4, 8, 8), {}))
    g.add(Operator("a", OpType.RELU, ("input",), (4, 8, 8), {}))
    g.add(Operator("b", OpType.RELU, ("a",), (4, 8, 8), {}))
    g.add(Operator("c", OpType.RELU, ("a",), (4, 8, 8), {}))
    g.add(Operator("d", OpType.CONCAT, ("b", "c"), (8, 8, 8), {}))
    return g


COSTS = {"a": 10.0, "b": 100.0, "c": 100.0, "d": 10.0}


class TestStagePricing:
    def test_single_group_costs_exact_sum_no_barrier(self):
        source = MeasuredCosts(COSTS, workers=4, dispatch_us=50.0,
                               sync_us=25.0)
        assert source.stage_cost([["a", "b"]]) == pytest.approx(110.0)

    def test_parallel_stage_is_makespan_plus_overheads(self):
        source = MeasuredCosts(COSTS, workers=4, dispatch_us=50.0,
                               sync_us=25.0)
        # two 100us groups on >=2 lanes: max(100,100) + 1*50 + 25
        assert source.stage_cost([["b"], ["c"]]) == pytest.approx(175.0)

    def test_worker_bound_packs_lpt(self):
        source = MeasuredCosts({"x": 30.0, "y": 20.0, "z": 10.0},
                               workers=2)
        # LPT on 2 lanes: [30] and [20+10] -> makespan 30
        assert source.stage_cost([["x"], ["y"], ["z"]]) == pytest.approx(30.0)

    def test_one_worker_serializes_groups(self):
        source = MeasuredCosts(COSTS, workers=1)
        assert source.stage_cost([["b"], ["c"]]) == pytest.approx(200.0)

    def test_rejects_bad_workers_and_empty_stage(self):
        with pytest.raises(ValueError):
            MeasuredCosts(COSTS, workers=0)
        with pytest.raises(ValueError):
            MeasuredCosts(COSTS).stage_cost([])


class TestDPWithMeasuredCosts:
    def test_parallelizes_when_overlap_beats_overheads(self):
        source = MeasuredCosts(COSTS, workers=2, dispatch_us=5.0,
                               sync_us=5.0)
        schedule = dp_schedule(diamond_graph(), 1, cost_source=source)
        assert schedule.strategy == "ios-dp-measured"
        assert schedule.max_parallelism == 2
        # 10 + (100 + 5 + 5) + 10
        assert schedule.latency_us == pytest.approx(130.0)

    def test_stays_sequential_on_one_worker(self):
        source = MeasuredCosts(COSTS, workers=1, dispatch_us=0.0,
                               sync_us=0.0)
        schedule = dp_schedule(diamond_graph(), 1, cost_source=source)
        assert schedule.max_parallelism == 1
        assert schedule.latency_us == pytest.approx(220.0)

    def test_conservative_overheads_suppress_thin_parallelism(self):
        source = MeasuredCosts(COSTS, workers=2, dispatch_us=150.0,
                               sync_us=50.0)
        schedule = dp_schedule(diamond_graph(), 1, cost_source=source)
        assert schedule.max_parallelism == 1

    def test_optimal_vs_sequential_never_worse(self):
        source = MeasuredCosts(COSTS, workers=2, dispatch_us=5.0,
                               sync_us=5.0)
        graph = diamond_graph()
        dp = dp_schedule(graph, 1, cost_source=source)
        seq = sequential_schedule(graph, 1)
        assert (source.schedule_latency(dp)
                <= source.schedule_latency(seq))


class TestMeasuredRunSeam:
    def source(self):
        return MeasuredCosts(COSTS, workers=2, dispatch_us=5.0,
                             sync_us=5.0)

    def test_measure_schedule_returns_measured_result(self):
        source = self.source()
        schedule = dp_schedule(diamond_graph(), 3, cost_source=source)
        result = measure_schedule(diamond_graph(), schedule, source=source)
        assert isinstance(result, MeasuredRunResult)
        assert result.batch == 3
        assert result.latency_us == pytest.approx(schedule.latency_us)
        assert result.kernel_us == pytest.approx(sum(COSTS.values()))
        assert result.num_stages == schedule.num_stages
        assert len(result.stage_latencies_us) == schedule.num_stages

    def test_measure_latency_kwarg(self):
        source = self.source()
        schedule = dp_schedule(diamond_graph(), 1, cost_source=source)
        assert measure_latency(diamond_graph(), schedule,
                               source=source) == pytest.approx(130.0)

    def test_schedule_overheads_decomposes_measured_result(self):
        # Overhead-dominated stage: two 1us ops behind a 50us dispatch
        # and 5us barrier — everything beyond kernel time reports as sync.
        from repro.ios import Group, Schedule, Stage

        source = MeasuredCosts({"b": 1.0, "c": 1.0}, workers=2,
                               dispatch_us=50.0, sync_us=5.0)
        schedule = Schedule(
            graph_name="pair", batch=1,
            stages=(Stage((Group(("b",)), Group(("c",)))),))
        result = measure_schedule(diamond_graph(), schedule, source=source)
        decomp = schedule_overheads(result)
        assert decomp["kernel"] == pytest.approx(2.0)
        assert decomp["sync"] == pytest.approx(54.0)  # dispatch + join
        assert decomp["launch"] == decomp["memcpy"] == 0.0
        assert decomp["total"] == pytest.approx(56.0)

    def test_parallel_win_overlaps_kernel_time(self):
        """When overlap wins, measured total drops below summed kernel
        time and the overhead decomposition clamps sync at zero."""
        source = self.source()
        schedule = dp_schedule(diamond_graph(), 1, cost_source=source)
        result = measure_schedule(diamond_graph(), schedule, source=source)
        assert result.kernel_us > result.latency_us
        assert schedule_overheads(result)["sync"] == 0.0

    def test_simulated_path_unchanged(self):
        """The old signature (no source) still runs the gpusim executor
        and schedule_overheads still reads its API trace."""
        from repro.arch import TABLE1_MODELS
        from repro.graph import build_sppnet_graph
        from repro.ios import dp_schedule as dp

        graph = build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"])
        schedule = dp(graph, 1)
        result = measure_schedule(graph, schedule)
        assert not isinstance(result, MeasuredRunResult)
        decomp = schedule_overheads(result)
        assert decomp["kernel"] > 0
        assert decomp["total"] == pytest.approx(result.latency_us)
