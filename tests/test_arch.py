"""Architecture grammar (Table 1) parsing and derived quantities."""

import pytest

from repro.arch import (
    TABLE1_MODELS,
    TABLE1_PAPER_AP,
    TABLE2_PAPER_LATENCY_MS,
    ConvSpec,
    PoolSpec,
    SPPNetConfig,
    parse_grammar,
)


class TestSpecs:
    def test_conv_spec_validation(self):
        with pytest.raises(ValueError):
            ConvSpec(0, 3, 1)
        with pytest.raises(ValueError):
            ConvSpec(64, 3, 0)

    def test_pool_spec_validation(self):
        with pytest.raises(ValueError):
            PoolSpec(0, 2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SPPNetConfig(spp_levels=())
        with pytest.raises(ValueError):
            SPPNetConfig(spp_levels=(2, 2))
        with pytest.raises(ValueError):
            SPPNetConfig(fc_sizes=())
        with pytest.raises(ValueError):
            SPPNetConfig(convs=(ConvSpec(64, 3, 1),))  # pools mismatch


class TestDerived:
    def test_spp_features(self):
        cfg = TABLE1_MODELS["Original SPP-Net"]
        assert cfg.spp_features == 256 * (16 + 4 + 1)
        cfg2 = TABLE1_MODELS["SPP-Net #2"]
        assert cfg2.spp_features == 256 * (25 + 4 + 1)

    def test_trunk_spatial_size_100(self):
        for cfg in TABLE1_MODELS.values():
            assert cfg.trunk_spatial_size(100) >= max(cfg.spp_levels)

    def test_trunk_collapse_raises(self):
        with pytest.raises(ValueError):
            TABLE1_MODELS["Original SPP-Net"].trunk_spatial_size(4)

    def test_min_input_size_is_minimal(self):
        cfg = TABLE1_MODELS["SPP-Net #2"]
        m = cfg.min_input_size()
        assert cfg.trunk_spatial_size(m) >= max(cfg.spp_levels)
        with pytest.raises(ValueError):
            size = cfg.trunk_spatial_size(m - 1)
            assert size < max(cfg.spp_levels)
            raise ValueError  # smaller input is invalid either way

    def test_with_name(self):
        out = TABLE1_MODELS["SPP-Net #1"].with_name("renamed")
        assert out.name == "renamed"
        assert out.convs == TABLE1_MODELS["SPP-Net #1"].convs


class TestGrammar:
    def test_render_roundtrip(self):
        for cfg in TABLE1_MODELS.values():
            text = cfg.grammar()
            parsed = parse_grammar(text, name=cfg.name)
            assert parsed.convs == cfg.convs
            assert parsed.pools == cfg.pools
            assert parsed.spp_levels == cfg.spp_levels
            assert parsed.fc_sizes == cfg.fc_sizes

    def test_parse_paper_string(self):
        text = ("C_{64,3,1} - P_{2,2} - C_{128,3,1} - P_{2,2} - "
                "C_{256,3,1} - P_{2,2} - SPP_{4,2,1} - F_{1024}")
        cfg = parse_grammar(text)
        assert cfg == TABLE1_MODELS["Original SPP-Net"].with_name(cfg.name)

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_grammar("garbage")
        with pytest.raises(ValueError):
            parse_grammar("C_{64,3,1} - P_{2,2}")  # missing SPP
        with pytest.raises(ValueError):
            parse_grammar("C_{64,3} - SPP_{2,1}")  # C arity


class TestPaperConstants:
    def test_four_models(self):
        assert set(TABLE1_MODELS) == set(TABLE1_PAPER_AP) == set(TABLE2_PAPER_LATENCY_MS)

    def test_table1_values(self):
        assert TABLE1_PAPER_AP["SPP-Net #3"] == 0.974
        assert TABLE1_PAPER_AP["Original SPP-Net"] == 0.95

    def test_table2_optimized_always_faster(self):
        for seq, opt in TABLE2_PAPER_LATENCY_MS.values():
            assert opt < seq

    def test_model_distinctions(self):
        assert TABLE1_MODELS["SPP-Net #1"].convs[0].kernel == 5
        assert TABLE1_MODELS["SPP-Net #2"].spp_levels == (5, 2, 1)
        assert TABLE1_MODELS["SPP-Net #3"].fc_sizes == (2048,)
