"""Batch policy validation and Figure-6-driven tuning."""

import json

import pytest

from repro.serve import BatchPolicy, policy_from_fig6

pytestmark = pytest.mark.fast


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch >= 1
        assert policy.max_wait_s == policy.max_wait_ms / 1e3

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait_ms=-1.0)


class TestPolicyFromFig6:
    def test_repo_artifact(self):
        """The checked-in fig6.json picks the paper's diminishing-gains
        knee (batch 16 for the recorded optimized column)."""
        policy = policy_from_fig6()
        assert policy.max_batch == 16

    def test_custom_artifact(self, tmp_path):
        artifact = tmp_path / "fig6.json"
        artifact.write_text(json.dumps({
            "rows": [[1, "400.0", "300.0", "1.3x"],
                     [2, "250.0", "200.0", "1.2x"],
                     [4, "240.0", "195.0", "1.2x"]],
        }))
        # 1 -> 2 improves 33%, 2 -> 4 improves 2.5% < 10%: knee is 2
        policy = policy_from_fig6(artifact, max_wait_ms=7.5)
        assert policy.max_batch == 2
        assert policy.max_wait_ms == 7.5

    def test_empty_rows_falls_back_with_warning(self, tmp_path):
        artifact = tmp_path / "fig6.json"
        artifact.write_text(json.dumps({"rows": []}))
        with pytest.warns(RuntimeWarning, match="falling back"):
            policy = policy_from_fig6(artifact)
        assert policy == BatchPolicy()

    def test_missing_artifact_falls_back_with_warning(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="falling back"):
            policy = policy_from_fig6(tmp_path / "nope.json", max_wait_ms=5.0)
        assert policy.max_batch == BatchPolicy().max_batch
        assert policy.max_wait_ms == 5.0

    def test_malformed_artifact_falls_back_with_warning(self, tmp_path):
        artifact = tmp_path / "fig6.json"
        artifact.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert policy_from_fig6(artifact) == BatchPolicy()
        artifact.write_text(json.dumps({"wrong_key": 1}))
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert policy_from_fig6(artifact) == BatchPolicy()
