"""Inference service behavior: batching, caching, backpressure, timeouts,
shutdown semantics.

Uses a deliberately tiny SPP-Net so each micro-batch costs ~1 ms, and a
sleep-wrapped model where the tests need the worker pool to stay busy.
"""

import threading
import time

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, predict
from repro.serve import (
    BatchPolicy,
    InferenceService,
    QueueFullError,
    RequestTimeoutError,
    ServiceStoppedError,
)

ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
    spp_levels=(2, 1), fc_sizes=(32,), name="serve-test",
)


@pytest.fixture(scope="module")
def model():
    return SPPNetDetector(ARCH, seed=0)


class SlowModel:
    """Delegates to a real detector after a fixed sleep, to keep the
    worker pool occupied while tests fill the queue."""

    def __init__(self, model, delay_s: float) -> None:
        self._model = model
        self.delay_s = delay_s

    def __call__(self, x):
        time.sleep(self.delay_s)
        return self._model(x)

    def __getattr__(self, name):
        return getattr(self._model, name)


def chips(n, size=24, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 4, size, size)).astype(np.float32)


class TestBatchingCore:
    def test_results_match_direct_predict(self, model):
        batch = chips(12)
        conf, boxes = predict(model, batch, batch_size=12)
        with InferenceService(model, BatchPolicy(max_batch=4,
                                                 max_wait_ms=2.0)) as svc:
            results = [f.result(timeout=10) for f in svc.submit_many(batch)]
        for i, res in enumerate(results):
            assert res.confidence == pytest.approx(float(conf[i]), abs=1e-6)
            np.testing.assert_allclose(res.box, boxes[i], atol=1e-6)

    def test_requests_are_coalesced(self, model):
        """A burst larger than max_batch dispatches in micro-batches, not
        one request at a time."""
        with InferenceService(model, BatchPolicy(max_batch=8,
                                                 max_wait_ms=50.0)) as svc:
            futures = svc.submit_many(chips(16))
            for f in futures:
                f.result(timeout=10)
            hist = svc.metrics.batch_size_histogram
        assert max(hist) > 1
        assert sum(size * n for size, n in hist.items()) == 16

    def test_max_wait_flushes_partial_batch(self, model):
        """A lone request must not wait for a full batch."""
        with InferenceService(model, BatchPolicy(max_batch=64,
                                                 max_wait_ms=10.0)) as svc:
            result = svc.submit(chips(1)[0]).result(timeout=10)
        assert result.batch_size == 1

    def test_mixed_shapes_batched_separately(self, model):
        """SPP accepts any chip size, but one stacked batch must share a
        spatial shape — mixed submissions still all complete."""
        small, large = chips(3, size=24), chips(3, size=32)
        with InferenceService(model, BatchPolicy(max_batch=8,
                                                 max_wait_ms=5.0)) as svc:
            futures = svc.submit_many([*small, *large])
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 6

    def test_invalid_chip_rejected(self, model):
        with InferenceService(model) as svc:
            with pytest.raises(ValueError):
                svc.submit(np.zeros((4, 24, 24, 1), dtype=np.float32))


class TestCaching:
    def test_repeat_chip_hits_cache(self, model):
        batch = chips(4)
        with InferenceService(model, BatchPolicy(max_batch=4,
                                                 max_wait_ms=2.0)) as svc:
            first = [f.result(timeout=10) for f in svc.submit_many(batch)]
            again = [f.result(timeout=10) for f in svc.submit_many(batch)]
            assert svc.metrics.cache_hits.value == 4
        assert not any(r.cached for r in first)
        assert all(r.cached for r in again)
        for a, b in zip(first, again):
            assert a.confidence == b.confidence

    def test_cache_disabled(self, model):
        batch = chips(2)
        with InferenceService(model, cache_size=0) as svc:
            [f.result(timeout=10) for f in svc.submit_many(batch)]
            results = [f.result(timeout=10) for f in svc.submit_many(batch)]
            assert svc.metrics.cache_hits.value == 0
        assert not any(r.cached for r in results)


class TestTimeout:
    def test_request_timeout_expires_queued_request(self, model):
        """A deadline shorter than the batcher's flush window fails the
        future with RequestTimeoutError instead of serving stale work."""
        slow = SlowModel(model, delay_s=0.3)
        with InferenceService(slow, BatchPolicy(max_batch=1,
                                                max_wait_ms=0.0),
                              num_workers=1) as svc:
            # occupy the single worker, then queue a request that expires
            # while it waits behind the slow batch
            blocker = svc.submit(chips(1, seed=1)[0])
            doomed = svc.submit(chips(1, seed=2)[0], timeout_s=0.05)
            with pytest.raises(RequestTimeoutError):
                doomed.result(timeout=10)
            blocker.result(timeout=10)  # unaffected by its neighbor
            assert svc.metrics.timeouts.value == 1

    def test_no_timeout_without_deadline(self, model):
        slow = SlowModel(model, delay_s=0.1)
        with InferenceService(slow, BatchPolicy(max_batch=1,
                                                max_wait_ms=0.0)) as svc:
            futures = svc.submit_many(chips(3))
            for f in futures:
                f.result(timeout=10)
            assert svc.metrics.timeouts.value == 0


class TestBackpressure:
    def test_full_queue_rejects_submit(self, model):
        """With the single worker pinned and the queue bounded, excess
        submissions fail fast with QueueFullError."""
        slow = SlowModel(model, delay_s=0.5)
        svc = InferenceService(slow, BatchPolicy(max_batch=1, max_wait_ms=0.0),
                               max_queue=2, num_workers=1)
        try:
            accepted = []
            with pytest.raises(QueueFullError):
                for i in range(16):
                    accepted.append(svc.submit(chips(1, seed=i)[0]))
            assert svc.metrics.rejected.value >= 1
            # accepted work is unaffected by the rejections
            for f in accepted:
                f.result(timeout=30)
        finally:
            svc.shutdown()

    def test_queue_capacity_validated(self, model):
        with pytest.raises(ValueError):
            InferenceService(model, max_queue=0)


class TestShutdown:
    def test_shutdown_drains_inflight_work(self, model):
        """Default shutdown completes every already-submitted request."""
        slow = SlowModel(model, delay_s=0.05)
        svc = InferenceService(slow, BatchPolicy(max_batch=4, max_wait_ms=50.0))
        futures = svc.submit_many(chips(10))
        svc.shutdown()  # drain=True
        results = [f.result(timeout=0) for f in futures]  # already resolved
        assert len(results) == 10
        assert svc.metrics.completed.value == 10

    def test_submit_after_shutdown_rejected(self, model):
        svc = InferenceService(model)
        svc.shutdown()
        with pytest.raises(ServiceStoppedError):
            svc.submit(chips(1)[0])

    def test_abort_fails_undispatched_requests(self, model):
        """drain=False fails queued work instead of running it."""
        slow = SlowModel(model, delay_s=0.3)
        svc = InferenceService(slow, BatchPolicy(max_batch=1, max_wait_ms=0.0),
                               num_workers=1)
        futures = svc.submit_many(chips(6))
        time.sleep(0.05)  # let the first batch reach the worker
        svc.shutdown(drain=False)
        outcomes = []
        for f in futures:
            try:
                f.result(timeout=10)
                outcomes.append("ok")
            except ServiceStoppedError:
                outcomes.append("stopped")
        assert "ok" in outcomes and "stopped" in outcomes

    def test_shutdown_idempotent(self, model):
        svc = InferenceService(model)
        svc.shutdown()
        svc.shutdown()

    def test_concurrent_submitters(self, model):
        """Many client threads sharing one service all get answers."""
        results = []
        errors = []
        with InferenceService(model, BatchPolicy(max_batch=8,
                                                 max_wait_ms=2.0)) as svc:
            def client(seed):
                try:
                    futs = svc.submit_many(chips(4, seed=seed))
                    results.extend(f.result(timeout=30) for f in futs)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(s,))
                       for s in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert len(results) == 24
