"""Service-side fleet integration: request deadlines, supervision
metrics, and the scan_many sweep."""

import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector
from repro.detect.scan import ScanDeadlineError, scan_origins
from repro.fleet import SupervisionReport
from repro.geo import WatershedConfig, build_scene
from repro.serve import BatchPolicy, InferenceService
from repro.serve.metrics import ServiceMetrics

ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
    spp_levels=(2, 1), fc_sizes=(32,), name="scan-fleet-test",
)
SCENE_CONFIG = WatershedConfig(size=192, road_spacing=64,
                               stream_threshold=600, seed=5)
KWARGS = dict(window=64, stride=64, confidence_threshold=0.3)


@pytest.fixture(scope="module")
def model():
    detector = SPPNetDetector(ARCH, seed=0)
    detector.eval()
    return detector


@pytest.fixture(scope="module")
def scene():
    return build_scene(SCENE_CONFIG)


class TestRequestDeadline:
    def test_expired_timeout_raises_and_counts(self, model, scene):
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            with pytest.raises(ScanDeadlineError):
                service.scan_scene(scene, timeout_s=1e-4, **KWARGS)
            snap = service.metrics.snapshot()
        assert snap["scan_deadline_expired"] == 1

    def test_generous_timeout_scans_normally(self, model, scene):
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            result = service.scan_scene(scene, timeout_s=300.0, **KWARGS)
            snap = service.metrics.snapshot()
        assert len(list(result)) >= 0
        assert snap["scan_deadline_expired"] == 0
        assert snap["scans"] == 1

    def test_timeout_validation(self, model, scene):
        with InferenceService(model, BatchPolicy(max_batch=8)) as service:
            with pytest.raises(ValueError, match="timeout_s"):
                service.scan_scene(scene, timeout_s=0.0, **KWARGS)


class TestSupervisionMetrics:
    def test_record_supervision_folds_report(self):
        metrics = ServiceMetrics()
        report = SupervisionReport(
            shards_total=4, deadline_kills=1, worker_deaths=2,
            workers_replaced=3, redispatches=3,
            poison_shards=[1], inline_shards=[1],
        )
        metrics.record_supervision(report)
        snap = metrics.snapshot()
        assert snap["scan_redispatches"] == 3
        assert snap["scan_workers_killed"] == 1
        assert snap["scan_worker_deaths"] == 2
        assert snap["scan_poison_shards"] == 1
        assert snap["scan_inline_shards"] == 1
        assert snap["scan_deadline_expired"] == 0

    def test_record_supervision_none_is_noop(self):
        metrics = ServiceMetrics()
        metrics.record_supervision(None)
        snap = metrics.snapshot()
        assert snap["scan_redispatches"] == 0
        assert snap["scan_worker_deaths"] == 0

    def test_supervised_bulk_scan_reports_clean(self, model, scene):
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            result = service.scan_scene(scene, n_workers=2,
                                        supervision=True,
                                        batch_size=4, **KWARGS)
            snap = service.metrics.snapshot()
        assert result.supervision is not None
        assert snap["scan_redispatches"] == 0
        assert snap["scan_worker_deaths"] == 0
        assert snap["scan_poison_shards"] == 0


class TestScanMany:
    def test_sweep_completes_and_feeds_metrics(self, model, scene,
                                               tmp_path):
        n_tiles = len(scan_origins(scene.size, 100, 50))
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            summary = service.scan_many({"j1": SCENE_CONFIG},
                                        workdir=tmp_path, n_workers=1)
            snap = service.metrics.snapshot()
        assert summary["counts"]["done"] == 1
        assert summary["dead_letters"] == {}
        assert summary["results"]["j1"]["tiles_total"] == n_tiles
        assert snap["scans"] == 1
        assert snap["scan_tiles"] == n_tiles
        assert (tmp_path / "queue.jsonl").exists()
        assert (tmp_path / "j1.journal.jsonl").exists()

    def test_resubmitted_sweep_is_idempotent(self, model, scene, tmp_path):
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            first = service.scan_many({"j1": SCENE_CONFIG},
                                      workdir=tmp_path, n_workers=1)
            again = service.scan_many({"j1": SCENE_CONFIG},
                                      workdir=tmp_path, n_workers=1)
        assert first["counts"]["done"] == 1
        # the drained queue replays: nothing reruns, nothing double-counts
        assert again["counts"]["done"] == 1
        assert again["jobs_run"] == 0

    def test_custom_backend_is_rejected(self, model, tmp_path):
        import numpy as np

        def fake_predict(model, stack, batch_size):
            n = len(stack)
            return (np.zeros(n, dtype=np.float32),
                    np.zeros((n, 4), dtype=np.float32))

        with InferenceService(model, BatchPolicy(max_batch=8),
                              predict_fn=fake_predict) as service:
            with pytest.raises(ValueError, match="fleet scanning"):
                service.scan_many({"j1": SCENE_CONFIG}, workdir=tmp_path)
