"""InferenceService.scan_scene: request-path and bulk-parallel scans."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, scan_scene
from repro.geo import WatershedConfig, build_scene
from repro.serve import BatchPolicy, InferenceService

ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
    spp_levels=(2, 1), fc_sizes=(32,), name="scan-method-test",
)
KWARGS = dict(window=64, stride=64, confidence_threshold=0.3)


@pytest.fixture(scope="module")
def model():
    detector = SPPNetDetector(ARCH, seed=0)
    detector.eval()
    return detector


@pytest.fixture(scope="module")
def scene():
    return build_scene(WatershedConfig(size=192, road_spacing=64,
                                       stream_threshold=600, seed=5))


class TestScanMethod:
    def test_request_path_matches_local_scan(self, model, scene):
        local = scan_scene(model, scene, **KWARGS)
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            served = service.scan_scene(scene, **KWARGS)
            snap = service.metrics.snapshot()
        assert list(served) == list(local)
        assert snap["scans"] == 1
        assert snap["scan_tiles"] == served.coverage.tiles_total

    def test_bulk_path_matches_local_scan(self, model, scene):
        local = scan_scene(model, scene, **KWARGS)
        with InferenceService(model, BatchPolicy(max_batch=8),
                              cache_size=0) as service:
            served = service.scan_scene(scene, n_workers=2, **KWARGS)
            snap = service.metrics.snapshot()
        assert list(served) == list(local)
        assert served.coverage == local.coverage
        assert snap["scans"] == 1
        assert snap["scan_tiles"] == served.coverage.tiles_total

    def test_bulk_path_rejects_custom_backend(self, model, scene):
        def fake_predict(model, stack, batch_size):
            n = len(stack)
            return (np.zeros(n, dtype=np.float32),
                    np.zeros((n, 4), dtype=np.float32))

        with InferenceService(model, BatchPolicy(max_batch=8),
                              predict_fn=fake_predict) as service:
            with pytest.raises(ValueError, match="bulk parallel"):
                service.scan_scene(scene, n_workers=2, **KWARGS)


class TestScanPool:
    """The service-owned persistent pool and thread-safe start methods."""

    # small batches so the 9-origin scene shards across 2 workers
    # instead of inlining (shards snap to micro-batch boundaries)
    POOL_KWARGS = dict(KWARGS, batch_size=4)

    def test_scan_from_threaded_service_prefers_spawn(self, model):
        # regression: the batcher/worker threads make fork unsafe, so a
        # scan issued while the service runs must pick spawn
        from repro.scanpar import default_start_method

        with InferenceService(model, BatchPolicy(max_batch=8)):
            assert default_start_method() == "spawn"

    def test_startup_pool_is_warm_and_closed_on_shutdown(self, model, scene):
        local = scan_scene(model, scene, **self.POOL_KWARGS)
        with InferenceService(model, BatchPolicy(max_batch=8),
                              scan_workers=2) as service:
            pool = service._scan_pool
            assert pool is not None and pool.n_workers == 2
            # the model was delivered at startup, before any scan
            assert pool.stats["model_sends"] == 2
            served = service.scan_scene(scene, n_workers=2,
                                        **self.POOL_KWARGS)
            assert list(served) == list(local)
            assert pool.stats["runs"] == 1
            assert pool.stats["model_sends"] == 2  # no re-send
        assert pool.closed
        assert service._scan_pool is None

    def test_lazy_pool_created_once_and_closed(self, model, scene):
        local = scan_scene(model, scene, **self.POOL_KWARGS)
        with InferenceService(model, BatchPolicy(max_batch=8)) as service:
            assert service._scan_pool is None
            first = service.scan_scene(scene, n_workers=2,
                                       **self.POOL_KWARGS)
            pool = service._scan_pool
            assert pool is not None
            second = service.scan_scene(scene, n_workers=2,
                                        **self.POOL_KWARGS)
            assert service._scan_pool is pool
            assert pool.stats["workers_spawned"] == 2
            assert pool.stats["runs"] == 2
        assert pool.closed
        assert list(first) == list(second) == list(local)

    def test_scan_workers_validation(self, model):
        with pytest.raises(ValueError, match="scan_workers"):
            InferenceService(model, BatchPolicy(max_batch=8),
                             scan_workers=0)
