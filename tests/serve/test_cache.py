"""Content-hash LRU cache semantics."""

import numpy as np
import pytest

from repro.serve import LRUCache, chip_key


class TestChipKey:
    def test_deterministic(self):
        chip = np.arange(12, dtype=np.float32).reshape(3, 2, 2)
        assert chip_key(chip) == chip_key(chip.copy())

    def test_content_sensitive(self):
        chip = np.zeros((3, 2, 2), dtype=np.float32)
        other = chip.copy()
        other[0, 0, 0] = 1.0
        assert chip_key(chip) != chip_key(other)

    def test_shape_mixed_into_digest(self):
        """Same bytes, different layout must not collide."""
        flat = np.arange(16, dtype=np.float32)
        assert chip_key(flat.reshape(4, 2, 2)) != chip_key(flat.reshape(1, 4, 4))

    def test_dtype_mixed_into_digest(self):
        zeros32 = np.zeros((1, 2, 2), dtype=np.float32)
        zeros64 = np.zeros((1, 1, 2), dtype=np.float64)  # identical bytes
        assert chip_key(zeros32) != chip_key(zeros64)

    def test_non_contiguous_view(self):
        chip = np.arange(32, dtype=np.float32).reshape(2, 4, 4)
        view = chip[:, ::2, ::2]
        assert chip_key(view) == chip_key(np.ascontiguousarray(view))


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counted(self):
        cache = LRUCache(capacity=4)
        assert cache.get("nope") is None
        assert cache.misses == 1
        assert cache.hit_rate == 0.0

    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_capacity_zero_disables(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=-1)

    def test_overwrite_same_key(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2 and len(cache) == 1


class TestConcurrentHitRate:
    def test_hit_rate_never_torn_under_concurrent_traffic(self):
        """hit_rate is snapshotted under the writers' lock: a concurrent
        scan must never see a ratio outside [0, 1] or inconsistent
        counters (the unlocked read could observe hits newer than the
        total it divides by)."""
        import threading

        cache = LRUCache(capacity=64)
        for i in range(64):
            cache.put(f"k{i}", i)
        stop = threading.Event()
        torn = []

        def hammer(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                key = f"k{int(rng.integers(0, 128))}"  # ~50% hits
                cache.get(key)

        def scan():
            while not stop.is_set():
                rate = cache.hit_rate
                hits, misses = cache.stats
                if not 0.0 <= rate <= 1.0:
                    torn.append(("rate", rate))
                if hits < 0 or misses < 0:
                    torn.append(("counts", hits, misses))

        workers = [threading.Thread(target=hammer, args=(s,)) for s in range(4)]
        scanner = threading.Thread(target=scan)
        for t in workers + [scanner]:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in workers + [scanner]:
            t.join()
        assert torn == []
        hits, misses = cache.stats
        assert hits + misses > 0

    def test_stats_snapshot_is_atomic_pair(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)
