"""Circuit breaker: state machine, degraded cache-only serving, recovery."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, predict
from repro.faults import FailFirst, InjectedFault
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BatchPolicy,
    BreakerPolicy,
    CircuitBreaker,
    DegradedServiceError,
    InferenceService,
)

ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
    spp_levels=(2, 1), fc_sizes=(32,), name="breaker-test",
)


@pytest.fixture(scope="module")
def model():
    return SPPNetDetector(ARCH, seed=0)


def chips(n, size=24, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 4, size, size)).astype(np.float32)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            BreakerPolicy(**kwargs),
            on_transition=lambda old, new: transitions.append((old, new)),
            clock=clock,
        )
        return breaker, clock, transitions

    def test_trips_after_consecutive_failures(self):
        breaker, _, transitions = self.make(failure_threshold=3)
        assert breaker.state == CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert transitions == [(CLOSED, OPEN)]

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self.make(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, clock, transitions = self.make(
            failure_threshold=1, reset_timeout_s=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # only one probe admitted
        breaker.record_success()
        assert breaker.state == CLOSED
        assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                               (HALF_OPEN, CLOSED)]

    def test_half_open_probe_failure_reopens(self):
        breaker, clock, _ = self.make(failure_threshold=1, reset_timeout_s=5.0)
        breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # timer restarted
        clock.advance(6.0)
        assert breaker.state == HALF_OPEN

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_s=-1.0)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_probes=0)


def failing_predict(n_failures):
    """predict_fn that fails its first ``n_failures`` executions."""
    return FailFirst(predict, n_failures)


class TestServiceResilience:
    def policy(self):
        return BatchPolicy(max_batch=4, max_wait_ms=1.0)

    def test_transient_batch_failure_is_retried(self, model):
        fn = failing_predict(1)
        with InferenceService(model, self.policy(), predict_fn=fn,
                              max_batch_retries=2) as service:
            result = service.submit(chips(1)[0]).result(timeout=5)
            assert 0.0 <= result.confidence <= 1.0
            snap = service.metrics.snapshot()
        assert snap["worker_failures"] == 1
        assert snap["worker_retries"] == 1
        assert snap["breaker_state"] == "closed"

    def test_exhausted_retries_fail_the_batch_futures(self, model):
        fn = failing_predict(10**6)
        with InferenceService(model, self.policy(), predict_fn=fn,
                              max_batch_retries=1,
                              breaker=BreakerPolicy(failure_threshold=50)
                              ) as service:
            future = service.submit(chips(1)[0])
            with pytest.raises(InjectedFault):
                future.result(timeout=5)
            snap = service.metrics.snapshot()
        assert snap["worker_failures"] >= 2  # initial + retry
        assert snap["worker_retries"] == 1

    def test_breaker_trips_and_serves_cache_only(self, model):
        batch = chips(6)
        warm, cold = batch[0], batch[5]
        fn = FailFirst(predict, 0)
        breaker = BreakerPolicy(failure_threshold=2, reset_timeout_s=60.0)
        with InferenceService(model, self.policy(), predict_fn=fn,
                              max_batch_retries=0, breaker=breaker) as service:
            service.submit(warm).result(timeout=5)  # cache the warm chip

            fn.calls = 0
            fn.n = 10**6  # outage begins
            for chip in batch[1:3]:
                with pytest.raises(InjectedFault):
                    service.submit(chip).result(timeout=5)
            snap = service.metrics.snapshot()
            assert snap["breaker_state"] == "open"

            # degraded mode: cached chip still served, uncached fails fast
            hit = service.submit(warm).result(timeout=5)
            assert hit.cached
            with pytest.raises(DegradedServiceError):
                service.submit(cold)
            snap = service.metrics.snapshot()
        assert snap["degraded_served"] == 1
        assert snap["degraded_rejected"] == 1
        assert snap["breaker_transitions"].get("closed->open") == 1

    def test_breaker_recovers_via_half_open_probe(self, model):
        fn = FailFirst(predict, 2)  # two failures, then healthy forever
        breaker = BreakerPolicy(failure_threshold=2, reset_timeout_s=0.05)
        with InferenceService(model, self.policy(), predict_fn=fn,
                              max_batch_retries=0, breaker=breaker) as service:
            batch = chips(4)
            for chip in batch[:2]:
                with pytest.raises(InjectedFault):
                    service.submit(chip).result(timeout=5)
            assert service.metrics.breaker_state == "open"

            import time
            time.sleep(0.08)  # past the reset timeout -> half-open probe
            result = service.submit(batch[2]).result(timeout=5)
            assert 0.0 <= result.confidence <= 1.0
            snap = service.metrics.snapshot()
        assert snap["breaker_state"] == "closed"
        assert snap["breaker_transitions"].get("open->half_open") == 1
        assert snap["breaker_transitions"].get("half_open->closed") == 1

    def test_snapshot_has_resilience_fields(self, model):
        with InferenceService(model, self.policy()) as service:
            service.submit(chips(1)[0]).result(timeout=5)
            snap = service.metrics.snapshot()
        for key in ("worker_failures", "worker_retries", "degraded_served",
                    "degraded_rejected", "breaker_state", "breaker_transitions"):
            assert key in snap
        assert snap["worker_failures"] == 0
        assert snap["breaker_state"] == "closed"
