"""Service metrics registry: counters, gauges, quantiles, report text."""

import json

import pytest

from repro.serve import Counter, Gauge, Histogram, ServiceMetrics, format_service_report


class TestPrimitives:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_tracks_peak(self):
        g = Gauge()
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2 and g.peak == 10

    def test_histogram_quantiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.5)
        assert h.quantile(0.99) == pytest.approx(99.01)
        assert h.mean() == pytest.approx(50.5)

    def test_histogram_empty(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0 and h.mean() == 0.0

    def test_histogram_window_bounds_memory(self):
        h = Histogram(window=8)
        for v in range(100):
            h.observe(float(v))
        # only the last 8 observations remain
        assert h.quantile(0.0) == 92.0
        assert h.count == 100


class TestServiceMetrics:
    def test_batch_histogram_and_mean(self):
        m = ServiceMetrics()
        m.observe_batch(4, 1.0)
        m.observe_batch(4, 1.5)
        m.observe_batch(8, 2.0)
        assert m.batch_size_histogram == {4: 2, 8: 1}
        assert m.mean_batch_size() == pytest.approx((4 + 4 + 8) / 3)

    def test_cache_hit_rate(self):
        m = ServiceMetrics()
        assert m.cache_hit_rate() == 0.0
        m.cache_hits.inc(3)
        m.cache_misses.inc()
        assert m.cache_hit_rate() == pytest.approx(0.75)

    def test_snapshot_is_strict_json(self):
        """Snapshot must serialize without NaN/Inf or numpy scalars."""
        m = ServiceMetrics()
        m.submitted.inc(2)
        m.latency_ms.observe(1.25)
        m.observe_batch(2, 0.5)
        payload = json.dumps(m.snapshot(), allow_nan=False)
        restored = json.loads(payload)
        assert restored["submitted"] == 2
        assert restored["batch_size_histogram"] == {"2": 1}

    def test_report_renders_profiling_style(self):
        m = ServiceMetrics()
        m.submitted.inc()
        m.completed.inc()
        m.latency_ms.observe(2.0)
        m.observe_batch(1, 2.0)
        text = format_service_report(m, label="unit")
        assert "Serving session: unit" in text
        assert "Request Statistics:" in text
        assert "Latency Statistics (ms):" in text
        assert "Cache Statistics:" in text
        assert "-" * 78 in text  # same rule as repro.profiling reports


class TestConcurrentCacheHitRate:
    def test_hit_rate_bounded_under_concurrent_increments(self):
        """cache_hit_rate must read each counter exactly once: re-reading
        hits for the numerator under concurrent traffic reported > 1."""
        import threading

        m = ServiceMetrics()
        stop = threading.Event()
        bad = []

        def writer():
            while not stop.is_set():
                m.cache_hits.inc()
                m.cache_misses.inc()

        def scanner():
            while not stop.is_set():
                rate = m.cache_hit_rate()
                if not 0.0 <= rate <= 1.0:
                    bad.append(rate)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=scanner))
        for t in threads:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert bad == []


class TestBreakerTelemetry:
    def test_transitions_tallied_and_state_tracked(self):
        m = ServiceMetrics()
        assert m.breaker_state == "closed"
        m.record_breaker_transition("closed", "open")
        m.record_breaker_transition("open", "half_open")
        m.record_breaker_transition("half_open", "open")
        m.record_breaker_transition("open", "half_open")
        m.record_breaker_transition("half_open", "closed")
        assert m.breaker_state == "closed"
        assert m.breaker_transitions == {
            "closed->open": 1,
            "half_open->closed": 1,
            "half_open->open": 1,
            "open->half_open": 2,
        }
        snap = m.snapshot()
        assert snap["breaker_state"] == "closed"
        assert snap["breaker_transitions"]["open->half_open"] == 2

    def test_resilience_section_in_report(self):
        m = ServiceMetrics()
        m.worker_failures.inc(3)
        m.worker_retries.inc(2)
        m.degraded_served.inc()
        text = format_service_report(m, label="unit")
        assert "Resilience Statistics:" in text
        assert "closed" in text
