"""max_batch=1 inline dispatch and service warmup telemetry."""

import numpy as np
import pytest

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, predict
from repro.serve import BatchPolicy, InferenceService

ARCH = SPPNetConfig(
    convs=(ConvSpec(8, 3, 1),), pools=(PoolSpec(2, 2),),
    spp_levels=(2, 1), fc_sizes=(32,), name="inline-test",
)


@pytest.fixture(scope="module")
def model():
    return SPPNetDetector(ARCH, seed=0)


def chips(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, 4, 24, 24)).astype(np.float32)


class TestPolicy:
    def test_inline_single_requires_max_batch_one(self):
        with pytest.raises(ValueError, match="inline_single"):
            BatchPolicy(max_batch=2, inline_single=True)

    def test_default_is_off(self):
        assert BatchPolicy(max_batch=1).inline_single is False


class TestInlineDispatch:
    def test_future_resolves_synchronously(self, model):
        policy = BatchPolicy(max_batch=1, inline_single=True)
        with InferenceService(model, policy, cache_size=0,
                              validate=False) as service:
            future = service.submit(chips(1)[0])
            # inline dispatch completed the work on this thread already
            assert future.done()
            assert future.result(timeout=0).batch_size == 1

    def test_results_match_predict(self, model):
        batch = chips(8, seed=3)
        conf_ref, boxes_ref = predict(model, batch, batch_size=1)
        policy = BatchPolicy(max_batch=1, inline_single=True)
        with InferenceService(model, policy, cache_size=0,
                              validate=False) as service:
            results = [f.result(timeout=5)
                       for f in service.submit_many(batch)]
        np.testing.assert_allclose([r.confidence for r in results], conf_ref,
                                   rtol=1e-6)
        np.testing.assert_allclose(np.stack([r.box for r in results]),
                                   boxes_ref, rtol=1e-6)

    def test_counts_in_metrics(self, model):
        policy = BatchPolicy(max_batch=1, inline_single=True)
        with InferenceService(model, policy, cache_size=0,
                              validate=False) as service:
            for future in service.submit_many(chips(5)):
                future.result(timeout=5)
            snap = service.metrics.snapshot()
        assert snap["completed"] == 5
        assert snap["batch_size_histogram"] == {"1": 5}

    def test_rejected_after_shutdown(self, model):
        policy = BatchPolicy(max_batch=1, inline_single=True)
        service = InferenceService(model, policy, cache_size=0,
                                   validate=False)
        service.shutdown()
        from repro.serve import ServiceStoppedError

        with pytest.raises(ServiceStoppedError):
            service.submit(chips(1)[0])

    def test_queued_path_still_used_when_busy(self, model):
        # occupying the only worker slot forces the fall-through to the
        # batcher queue; the request must still complete
        policy = BatchPolicy(max_batch=1, max_wait_ms=0.0,
                             inline_single=True)
        with InferenceService(model, policy, cache_size=0, num_workers=1,
                              validate=False) as service:
            acquired = service._inflight.acquire(blocking=False)
            assert acquired
            try:
                future = service.submit(chips(1)[0])
                assert not future.done()
            finally:
                service._inflight.release()
            assert future.result(timeout=5).batch_size == 1


class TestWarmupMetric:
    def test_engine_service_records_warmup(self, model):
        with InferenceService(model, BatchPolicy(max_batch=4),
                              backend="engine") as service:
            warmup_ms = service.metrics.snapshot()["warmup_ms"]
        assert warmup_ms > 0.0

    def test_eager_service_has_no_warmup(self, model):
        with InferenceService(model, BatchPolicy(max_batch=4)) as service:
            assert service.metrics.snapshot()["warmup_ms"] == 0.0
