"""BatchNorm2d and the module buffer mechanism."""

import numpy as np
import pytest

from repro.tensor import BatchNorm2d, Conv2d, Sequential, Tensor, gradcheck

RNG = np.random.default_rng(3)


class TestBatchNormForward:
    def test_normalizes_batch_statistics(self):
        bn = BatchNorm2d(3)
        x = Tensor(RNG.standard_normal((8, 3, 6, 6)) * 5 + 2)
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0, atol=1e-8)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1, atol=1e-6)

    def test_affine_applied(self):
        bn = BatchNorm2d(2)
        bn.weight.data[:] = [2.0, 3.0]
        bn.bias.data[:] = [1.0, -1.0]
        x = Tensor(RNG.standard_normal((4, 2, 5, 5)))
        out = bn(x)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), [1.0, -1.0], atol=1e-8)

    def test_running_stats_track_input(self):
        bn = BatchNorm2d(1, momentum=0.5)
        x = Tensor(np.full((2, 1, 4, 4), 10.0) + RNG.standard_normal((2, 1, 4, 4)))
        bn(x)
        bn(x)
        assert bn.running_mean[0] > 5.0

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1, momentum=1.0)  # running = last batch exactly
        x = Tensor(RNG.standard_normal((16, 1, 8, 8)))
        train_out = bn(x)
        bn.eval()
        eval_out = bn(x)
        # biased vs unbiased variance causes a small, bounded difference
        assert np.allclose(train_out.data, eval_out.data, atol=0.05)

    def test_gradcheck(self):
        bn = BatchNorm2d(2)
        x = Tensor(RNG.standard_normal((3, 2, 4, 4)), requires_grad=True)
        assert gradcheck(lambda t: bn(t), [x], atol=1e-5)

    def test_parameter_gradients_flow(self):
        bn = BatchNorm2d(2)
        x = Tensor(RNG.standard_normal((3, 2, 4, 4)))
        bn(x).sum().backward()
        assert bn.weight.grad is not None and bn.bias.grad is not None

    def test_input_validation(self):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 4, 5, 5))))
        with pytest.raises(ValueError):
            BatchNorm2d(0)


class TestBuffers:
    def test_state_dict_includes_buffers(self):
        bn = BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffers_roundtrip_through_checkpoint(self, tmp_path):
        from repro.tensor import load_checkpoint, save_checkpoint

        net = Sequential(Conv2d(1, 2, 3, rng=RNG), BatchNorm2d(2))
        net(Tensor(RNG.standard_normal((4, 1, 8, 8))))  # move running stats
        path = save_checkpoint(net, tmp_path / "bn.npz")

        fresh = Sequential(Conv2d(1, 2, 3, rng=RNG), BatchNorm2d(2))
        load_checkpoint(fresh, path)
        bn_a = net.layers[1]
        bn_b = fresh.layers[1]
        assert np.allclose(bn_a.running_mean, bn_b.running_mean)
        assert np.allclose(bn_a.running_var, bn_b.running_var)

    def test_buffer_shape_mismatch_raises(self):
        bn = BatchNorm2d(2)
        state = bn.state_dict()
        state["running_mean"] = np.zeros(5)
        with pytest.raises(ValueError):
            bn.load_state_dict(state)

    def test_set_unknown_buffer_raises(self):
        bn = BatchNorm2d(2)
        with pytest.raises(KeyError):
            bn._set_buffer("nope", np.zeros(2))

    def test_buffers_receive_no_gradients(self):
        bn = BatchNorm2d(2)
        names = {n for n, _ in bn.named_parameters()}
        assert "running_mean" not in names
