"""Optimizers, LR schedules, and loss functions."""

import numpy as np
import pytest

from repro.tensor import Tensor, losses
from repro.tensor.modules import Parameter
from repro.tensor.optim import SGD, Adam, CosineLR, StepLR


def quad_param(value=5.0):
    return Parameter(np.array([value]))


def step_once(opt, p):
    opt.zero_grad()
    (p * p).sum().backward()
    opt.step()


class TestSGD:
    def test_plain_descent(self):
        p = quad_param()
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.0)
        step_once(opt, p)  # grad = 2*5 = 10
        assert np.allclose(p.data, [4.0])

    def test_momentum_accumulates(self):
        p = quad_param()
        opt = SGD([p], lr=0.1, momentum=0.9, weight_decay=0.0)
        step_once(opt, p)
        v1 = p.data.copy()
        step_once(opt, p)
        # second step larger than a momentum-free step from v1
        assert (5.0 - v1[0]) < (v1[0] - p.data[0])

    def test_weight_decay_pulls_to_zero(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()
        Tensor.zeros(1).sum().backward() if False else None
        # no data gradient: decay alone shrinks the weight
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_converges_on_quadratic(self):
        p = quad_param()
        opt = SGD([p], lr=0.05, momentum=0.9, weight_decay=0.0)
        for _ in range(300):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_skips_gradless_params(self):
        p, q = quad_param(), Parameter(np.array([7.0]))
        opt = SGD([p, q], lr=0.1)
        step_once(opt, p)
        assert np.allclose(q.data, [7.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([quad_param()], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([quad_param()], momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quad_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-2

    def test_bias_correction_first_step(self):
        p = quad_param(1.0)
        opt = Adam([p], lr=0.1)
        step_once(opt, p)
        # first Adam step magnitude ~ lr regardless of gradient scale
        assert abs(1.0 - p.data[0] - 0.1) < 1e-6


class TestSchedules:
    def test_step_lr(self):
        opt = SGD([quad_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert np.isclose(opt.lr, 1.0)
        sched.step()
        assert np.isclose(opt.lr, 0.1)

    def test_cosine_endpoints(self):
        opt = SGD([quad_param()], lr=1.0)
        sched = CosineLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert opt.lr < 1e-9

    def test_schedule_validation(self):
        opt = SGD([quad_param()], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(opt, t_max=0)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)), requires_grad=True)
        loss = losses.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert np.isclose(loss.item(), np.log(3))

    def test_cross_entropy_perfect(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = losses.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-6

    def test_cross_entropy_validation(self):
        with pytest.raises(ValueError):
            losses.cross_entropy(Tensor(np.zeros((2, 2))), np.array([0, 5]))
        with pytest.raises(ValueError):
            losses.cross_entropy(Tensor(np.zeros(4)), np.array([0]))

    def test_bce_logits_matches_reference(self):
        x = np.array([0.5, -1.2, 3.0])
        t = np.array([1.0, 0.0, 1.0])
        loss = losses.binary_cross_entropy_with_logits(Tensor(x), t)
        p = 1 / (1 + np.exp(-x))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert np.isclose(loss.item(), ref)

    def test_smooth_l1_regions(self):
        pred = Tensor(np.array([0.05, 2.0]))
        target = np.zeros(2)
        loss = losses.smooth_l1(pred, target, beta=1.0)
        expected = (0.5 * 0.05**2 + (2.0 - 0.5)) / 2
        assert np.isclose(loss.item(), expected)

    def test_smooth_l1_validation(self):
        with pytest.raises(ValueError):
            losses.smooth_l1(Tensor(np.zeros(2)), np.zeros(2), beta=0.0)

    def test_mse(self):
        loss = losses.mse_loss(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert np.isclose(loss.item(), 5.0)

    def test_detection_loss_negative_only_has_no_box_term(self):
        logits = Tensor(np.zeros((2, 2)), requires_grad=True)
        boxes = Tensor(np.zeros((2, 4)), requires_grad=True)
        labels = np.array([0, 0])
        loss = losses.detection_loss(logits, boxes, labels, np.zeros((2, 4)))
        loss.backward()
        assert boxes.grad is None or np.allclose(boxes.grad, 0)

    def test_detection_loss_positive_includes_box(self):
        logits = Tensor(np.zeros((2, 2)))
        boxes = Tensor(np.full((2, 4), 0.5), requires_grad=True)
        labels = np.array([1, 0])
        gt = np.zeros((2, 4))
        loss = losses.detection_loss(logits, boxes, labels, gt, box_weight=1.0)
        loss.backward()
        assert boxes.grad is not None
        assert np.allclose(boxes.grad[1], 0)  # negative row untouched
        assert not np.allclose(boxes.grad[0], 0)
