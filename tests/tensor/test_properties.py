"""Hypothesis property tests for the tensor substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F, unbroadcast

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


@st.composite
def small_images(draw, max_hw=16, max_c=4, max_n=3):
    n = draw(st.integers(1, max_n))
    c = draw(st.integers(1, max_c))
    h = draw(st.integers(5, max_hw))
    w = draw(st.integers(5, max_hw))
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).standard_normal((n, c, h, w))


class TestSPPInvariants:
    @given(small_images(), st.integers(1, 4))
    def test_spp_output_length_independent_of_spatial_size(self, x, top):
        """The defining SPP property: fixed-length output for any H, W."""
        levels = tuple(range(top, 0, -1))
        if min(x.shape[2], x.shape[3]) < top:
            return
        out = F.spatial_pyramid_pool(Tensor(x), levels)
        expected = x.shape[1] * sum(lv * lv for lv in levels)
        assert out.shape == (x.shape[0], expected)

    @given(small_images())
    def test_spp_values_subset_of_input(self, x):
        """Max pooling only selects existing activations."""
        out = F.spatial_pyramid_pool(Tensor(x), (2, 1))
        for n in range(x.shape[0]):
            assert np.isin(np.round(out.data[n], 10),
                           np.round(x[n], 10)).all()

    @given(small_images(), st.integers(1, 3))
    def test_adaptive_pool_monotone(self, x, size):
        """Pooling a pointwise-larger input never decreases any output."""
        a = F.adaptive_max_pool2d(Tensor(x), size).data
        b = F.adaptive_max_pool2d(Tensor(x + 1.0), size).data
        assert (b >= a).all()


class TestConvInvariants:
    @given(small_images(max_c=3), st.integers(1, 3), st.integers(1, 2),
           st.integers(0, 2))
    def test_conv_shape_algebra(self, x, k, stride, padding):
        h, w = x.shape[2], x.shape[3]
        if h + 2 * padding < k or w + 2 * padding < k:
            return
        weight = np.zeros((2, x.shape[1], k, k))
        out = F.conv2d(Tensor(x), Tensor(weight), stride=stride, padding=padding)
        assert out.shape[2] == (h + 2 * padding - k) // stride + 1
        assert out.shape[3] == (w + 2 * padding - k) // stride + 1

    @given(small_images(max_c=2, max_hw=10), st.integers(0, 2**31 - 1))
    def test_conv_linearity(self, x, seed):
        """conv(a*x) == a*conv(x) (convolution without bias is linear)."""
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((2, x.shape[1], 3, 3))
        if x.shape[2] < 3 or x.shape[3] < 3:
            return
        a = 2.5
        out1 = F.conv2d(Tensor(a * x), Tensor(w)).data
        out2 = a * F.conv2d(Tensor(x), Tensor(w)).data
        assert np.allclose(out1, out2, atol=1e-8)


class TestSoftmaxInvariants:
    @given(st.integers(1, 6), st.integers(2, 8), st.integers(0, 2**31 - 1),
           st.floats(-50, 50))
    def test_softmax_shift_invariance(self, n, k, seed, shift):
        x = np.random.default_rng(seed).standard_normal((n, k))
        a = F.softmax(Tensor(x), axis=1).data
        b = F.softmax(Tensor(x + shift), axis=1).data
        assert np.allclose(a, b, atol=1e-10)

    @given(st.integers(1, 6), st.integers(2, 8), st.integers(0, 2**31 - 1))
    def test_softmax_is_distribution(self, n, k, seed):
        x = np.random.default_rng(seed).standard_normal((n, k)) * 20
        p = F.softmax(Tensor(x), axis=1).data
        assert (p >= 0).all() and np.allclose(p.sum(axis=1), 1.0)


class TestAutogradInvariants:
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_sum_gradient_is_ones(self, n, m, seed):
        x = Tensor(np.random.default_rng(seed).standard_normal((n, m)),
                   requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones((n, m)))

    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=8))
    def test_relu_grad_zero_one(self, values):
        x = Tensor(np.array(values), requires_grad=True)
        x.relu().sum().backward()
        assert set(np.unique(x.grad)) <= {0.0, 1.0}

    @given(st.integers(0, 2**31 - 1))
    def test_unbroadcast_inverts_broadcast(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(rng.integers(1, 4, size=rng.integers(1, 4)))
        target = tuple(1 if rng.random() < 0.5 else s for s in shape)
        g = rng.standard_normal(shape)
        out = unbroadcast(g, target)
        assert out.shape == target
        assert np.isclose(out.sum(), g.sum())
