"""Core autograd engine tests: arithmetic, broadcasting, tape mechanics."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, is_grad_enabled, no_grad, unbroadcast


def t(data, grad=True):
    return Tensor(data, requires_grad=grad)


class TestConstruction:
    def test_wraps_array(self):
        x = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert x.shape == (2, 2)
        assert x.dtype == np.float64

    def test_from_tensor_shares_data(self):
        x = Tensor([1.0, 2.0])
        y = Tensor(x)
        assert np.shares_memory(x.data, y.data)

    def test_factories(self):
        assert Tensor.zeros(2, 3).data.sum() == 0
        assert Tensor.ones(4).data.sum() == 4
        assert Tensor.randn(2, 2, rng=np.random.default_rng(0)).shape == (2, 2)

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        x = Tensor.zeros(3, 4)
        assert len(x) == 3 and x.size == 12 and x.ndim == 2


class TestArithmeticGradients:
    def test_add_backward(self):
        x, y = t([1.0, 2.0]), t([3.0, 4.0])
        (x + y).sum().backward()
        assert np.allclose(x.grad, [1, 1]) and np.allclose(y.grad, [1, 1])

    def test_mul_backward(self):
        x, y = t([2.0, 3.0]), t([5.0, 7.0])
        (x * y).sum().backward()
        assert np.allclose(x.grad, [5, 7]) and np.allclose(y.grad, [2, 3])

    def test_div_backward(self):
        x, y = t([6.0]), t([2.0])
        (x / y).backward()
        assert np.allclose(x.grad, [0.5]) and np.allclose(y.grad, [-1.5])

    def test_pow_backward(self):
        x = t([3.0])
        (x ** 2).backward()
        assert np.allclose(x.grad, [6.0])

    def test_neg_and_sub(self):
        x, y = t([1.0]), t([4.0])
        (x - y).backward()
        assert np.allclose(x.grad, [1.0]) and np.allclose(y.grad, [-1.0])

    def test_rsub_rdiv_radd(self):
        x = t([2.0])
        (5.0 - x).backward()
        assert np.allclose(x.grad, [-1.0])
        x.zero_grad()
        (8.0 / x).backward()
        assert np.allclose(x.grad, [-2.0])

    def test_matmul_backward(self):
        a, b = t([[1.0, 2.0], [3.0, 4.0]]), t([[5.0, 6.0], [7.0, 8.0]])
        (a @ b).sum().backward()
        assert np.allclose(a.grad, [[11, 15], [11, 15]])
        assert np.allclose(b.grad, [[4, 4], [6, 6]])

    def test_gradient_accumulates_on_reuse(self):
        x = t([2.0])
        y = x * x  # x used twice
        y.backward()
        assert np.allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = t([3.0])
        a = x * 2.0
        b = x + 1.0
        (a * b).backward()  # d/dx (2x(x+1)) = 4x + 2
        assert np.allclose(x.grad, [14.0])


class TestBroadcasting:
    def test_unbroadcast_sums_leading(self):
        g = np.ones((4, 3, 2))
        assert unbroadcast(g, (3, 2)).shape == (3, 2)
        assert unbroadcast(g, (3, 2))[0, 0] == 4

    def test_unbroadcast_singleton(self):
        g = np.ones((3, 5))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1) and out[0, 0] == 5

    def test_broadcast_add_grad(self):
        x, b = t(np.ones((4, 3))), t(np.zeros(3))
        (x + b).sum().backward()
        assert np.allclose(b.grad, [4, 4, 4])

    def test_scalar_broadcast(self):
        x = t(np.ones((2, 2)))
        (x * 3.0).sum().backward()
        assert np.allclose(x.grad, 3 * np.ones((2, 2)))


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = t(np.arange(6.0).reshape(2, 3))
        x.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = t(np.ones((2, 5)))
        x.mean().backward()
        assert np.allclose(x.grad, np.full((2, 5), 0.1))

    def test_max_splits_ties(self):
        x = t([2.0, 2.0, 1.0])
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        x = t([[1.0, 5.0], [7.0, 2.0]])
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0, 1], [1, 0]])

    def test_reshape_roundtrip(self):
        x = t(np.arange(6.0))
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_transpose_grad(self):
        x = t(np.arange(6.0).reshape(2, 3))
        (x.T * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_getitem_scatter(self):
        x = t(np.arange(5.0))
        x[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(x.grad, [2, 0, 1, 0, 0])

    def test_concat_grad(self):
        a, b = t(np.ones((2, 2))), t(np.ones((3, 2)))
        Tensor.concat([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (3, 2)

    def test_stack_grad(self):
        a, b = t([1.0, 2.0]), t([3.0, 4.0])
        Tensor.stack([a, b]).sum().backward()
        assert np.allclose(a.grad, [1, 1]) and np.allclose(b.grad, [1, 1])

    def test_pad2d(self):
        x = t(np.ones((1, 1, 2, 2)))
        y = x.pad2d(1)
        assert y.shape == (1, 1, 4, 4)
        y.sum().backward()
        assert np.allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_flatten_start_dim(self):
        x = Tensor.zeros(2, 3, 4)
        assert x.flatten(start_dim=1).shape == (2, 12)


class TestUnaryOps:
    @pytest.mark.parametrize("op,deriv", [
        ("exp", lambda v: np.exp(v)),
        ("tanh", lambda v: 1 - np.tanh(v) ** 2),
        ("sigmoid", lambda v: (1 / (1 + np.exp(-v))) * (1 - 1 / (1 + np.exp(-v)))),
    ])
    def test_unary_derivatives(self, op, deriv):
        v = np.array([0.3, -0.7, 1.2])
        x = t(v)
        getattr(x, op)().sum().backward()
        assert np.allclose(x.grad, deriv(v), atol=1e-10)

    def test_log_grad(self):
        x = t([2.0, 4.0])
        x.log().sum().backward()
        assert np.allclose(x.grad, [0.5, 0.25])

    def test_relu_masks(self):
        x = t([-1.0, 0.0, 2.0])
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0, 0, 1])

    def test_abs_sign(self):
        x = t([-2.0, 3.0])
        x.abs().sum().backward()
        assert np.allclose(x.grad, [-1, 1])

    def test_clip_gradient_gate(self):
        x = t([-2.0, 0.5, 2.0])
        x.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(x.grad, [0, 1, 0])

    def test_sqrt(self):
        x = t([4.0])
        x.sqrt().backward()
        assert np.allclose(x.grad, [0.25])


class TestTapeMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2).backward()
        (x * 2).backward(np.ones(2))
        assert np.allclose(x.grad, [2, 2])

    def test_no_grad_blocks_tape(self):
        x = t([1.0])
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_detach(self):
        x = t([1.0])
        assert not x.detach().requires_grad

    def test_comparison_returns_arrays(self):
        x = Tensor([1.0, 3.0])
        assert (x > 2.0).tolist() == [False, True]
        assert (x <= 1.0).tolist() == [True, False]

    def test_as_tensor_identity(self):
        x = Tensor([1.0])
        assert as_tensor(x) is x
        assert isinstance(as_tensor([1.0]), Tensor)

    def test_deep_chain_no_recursion_error(self):
        x = t([1.0])
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.backward()
        assert np.allclose(x.grad, [1.0])
