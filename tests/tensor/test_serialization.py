"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.tensor import (
    Linear,
    Sequential,
    ReLU,
    load_checkpoint,
    load_state,
    save_checkpoint,
    set_default_dtype,
    default_dtype,
)


def make_net(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        a = make_net(seed=1)
        path = save_checkpoint(a, tmp_path / "model.npz", metadata={"epoch": 3})
        b = make_net(seed=2)
        meta = load_checkpoint(b, path)
        assert meta == {"epoch": 3}
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_load_state_raw(self, tmp_path):
        net = make_net()
        path = save_checkpoint(net, tmp_path / "m.npz")
        state, meta = load_state(path)
        assert meta == {}
        assert set(state) == {n for n, _ in net.named_parameters()}

    def test_creates_parent_dirs(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "a" / "b" / "m.npz")
        assert path.exists()

    def test_mismatched_model_raises(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "m.npz")
        other = Sequential(Linear(3, 3))
        with pytest.raises(KeyError):
            load_checkpoint(other, path)


class TestDefaultDtype:
    def test_set_and_restore(self):
        previous = set_default_dtype(np.float32)
        try:
            assert default_dtype() == np.float32
            from repro.tensor import Tensor

            assert Tensor([1.0]).dtype == np.float32
        finally:
            set_default_dtype(previous)
        assert default_dtype() == previous

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)
