"""Conv/pool/SPP kernels: shapes, values, and gradient checks."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, gradcheck

RNG = np.random.default_rng(42)


def rt(*shape, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)


class TestConv2d:
    def test_output_shape(self):
        x = Tensor(RNG.standard_normal((2, 3, 10, 10)))
        w = Tensor(RNG.standard_normal((5, 3, 3, 3)))
        assert F.conv2d(x, w).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w, padding=1).shape == (2, 5, 10, 10)

    def test_identity_kernel(self):
        x = Tensor(RNG.standard_normal((1, 1, 5, 5)))
        w = Tensor(np.ones((1, 1, 1, 1)))
        assert np.allclose(F.conv2d(x, w).data, x.data)

    def test_known_value(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = Tensor(np.ones((1, 1, 2, 2)))
        out = F.conv2d(x, w)
        assert out.data[0, 0, 0, 0] == 0 + 1 + 4 + 5

    def test_bias_added(self):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([3.0, -1.0]))
        out = F.conv2d(x, w, b)
        assert np.allclose(out.data[0, :, 0, 0], [3.0, -1.0])

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((1, 3, 3, 3))))

    def test_collapsed_output_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 2, 2))), Tensor(np.zeros((1, 1, 5, 5))))

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 2)])
    def test_gradcheck(self, stride, padding):
        x = rt(2, 2, 7, 7, scale=0.5)
        w = rt(3, 2, 3, 3, scale=0.3)
        b = rt(3, scale=0.1)
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=stride, padding=padding),
            [x, w, b],
        )

    def test_matches_direct_convolution(self):
        x = RNG.standard_normal((1, 2, 6, 6))
        w = RNG.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        # brute-force cross-correlation
        for f in range(3):
            for i in range(4):
                for j in range(4):
                    ref = (x[0, :, i:i + 3, j:j + 3] * w[f]).sum()
                    assert abs(out[0, f, i, j] - ref) < 1e-10


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        assert np.allclose(x.grad[0, 0], expected)

    def test_max_pool_gradient_on_noncontiguous_input(self):
        # Pool inputs in real models are transposed conv outputs; the
        # disjoint-window scatter must not lose writes when the gradient
        # buffer inherits a non-C layout.
        base = np.random.default_rng(0).standard_normal((2, 6, 6, 3))
        x = Tensor(base.transpose(0, 3, 1, 2), requires_grad=True)
        assert not x.data.flags["C_CONTIGUOUS"]
        out = F.max_pool2d(x, 2, 2)
        out.backward(np.ones_like(out.data))
        assert np.count_nonzero(x.grad) == out.data.size

    def test_avg_pool_values(self):
        x = Tensor(np.ones((1, 1, 4, 4)))
        assert np.allclose(F.avg_pool2d(x, 2).data, np.ones((1, 1, 2, 2)))

    def test_avg_pool_gradcheck(self):
        x = rt(2, 2, 6, 6)
        assert gradcheck(lambda t: F.avg_pool2d(t, 2, 2), [x])

    def test_strided_overlapping_pool_gradcheck(self):
        x = rt(1, 2, 7, 7)
        assert gradcheck(lambda t: F.max_pool2d(t, 3, 2), [x])

    def test_pool_output_size_error(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 2, 2))), 4, 4)


class TestAdaptiveAndSPP:
    def test_adaptive_fixed_output(self):
        for h, w in [(7, 9), (10, 10), (13, 5)]:
            x = Tensor(RNG.standard_normal((2, 3, h, w)))
            assert F.adaptive_max_pool2d(x, 4).shape == (2, 3, 4, 4)

    def test_adaptive_level1_is_global_max(self):
        x = Tensor(RNG.standard_normal((2, 3, 6, 8)))
        out = F.adaptive_max_pool2d(x, 1)
        assert np.allclose(out.data[..., 0, 0], x.data.max(axis=(2, 3)))

    def test_adaptive_too_small_raises(self):
        with pytest.raises(ValueError):
            F.adaptive_max_pool2d(Tensor(np.zeros((1, 1, 3, 3))), 4)

    def test_adaptive_gradcheck(self):
        x = rt(2, 2, 9, 7)
        assert gradcheck(lambda t: F.adaptive_max_pool2d(t, 3), [x])

    def test_spp_fixed_length_any_size(self):
        levels = (4, 2, 1)
        expected = 3 * (16 + 4 + 1)
        for h, w in [(8, 8), (11, 9), (16, 23)]:
            x = Tensor(RNG.standard_normal((2, 3, h, w)))
            assert F.spatial_pyramid_pool(x, levels).shape == (2, expected)

    def test_spp_single_level(self):
        x = Tensor(RNG.standard_normal((2, 3, 8, 8)))
        assert F.spatial_pyramid_pool(x, (2,)).shape == (2, 12)

    def test_spp_empty_levels_raises(self):
        with pytest.raises(ValueError):
            F.spatial_pyramid_pool(Tensor(np.zeros((1, 1, 4, 4))), ())

    def test_spp_gradcheck(self):
        x = rt(2, 2, 8, 6)
        assert gradcheck(lambda t: F.spatial_pyramid_pool(t, (3, 2, 1)), [x])


class TestSoftmaxAndLinear:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((5, 7)) * 10)
        assert np.allclose(F.softmax(x, axis=1).data.sum(axis=1), 1.0)

    def test_softmax_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.softmax(x, axis=1)
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistent(self):
        x = Tensor(RNG.standard_normal((3, 4)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_log_softmax_gradcheck(self):
        x = rt(3, 5)
        assert gradcheck(lambda t: F.log_softmax(t, axis=1), [x])

    def test_linear_shapes_and_values(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((4, 3)))
        b = Tensor(np.arange(4.0))
        out = F.linear(x, w, b)
        assert out.shape == (2, 4)
        assert np.allclose(out.data[0], [3, 4, 5, 6])


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=np.random.default_rng(0))
        assert out is x

    def test_training_scales_kept(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.4 < (out.data > 0).mean() < 0.6

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, True, np.random.default_rng(0))


class TestShapeHelpers:
    def test_conv_output_size(self):
        assert F.conv_output_size(100, 3, 1, 0) == 98
        assert F.conv_output_size(10, 3, 2, 1) == 5

    def test_pool_output_size(self):
        assert F.pool_output_size(98, 2, 2) == 49

    def test_helpers_raise_on_collapse(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)
        with pytest.raises(ValueError):
            F.pool_output_size(1, 2, 2)
