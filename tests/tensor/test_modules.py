"""Module system: registration, train/eval, state dicts, layer behavior."""

import numpy as np
import pytest

from repro.tensor import (
    AdaptiveMaxPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SpatialPyramidPooling,
    Tensor,
)

RNG = np.random.default_rng(7)


def small_net():
    return Sequential(
        Conv2d(2, 4, 3, rng=np.random.default_rng(0)),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(4 * 3 * 3, 5, rng=np.random.default_rng(1)),
    )


class TestRegistration:
    def test_parameters_discovered(self):
        net = small_net()
        names = [n for n, _ in net.named_parameters()]
        assert "0.weight" in names and "0.bias" in names
        assert "4.weight" in names and "4.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        lin = Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2

    def test_nested_modules(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.inner = small_net()

            def forward(self, x):
                return self.inner(x)

        w = Wrapper()
        assert any(name.startswith("inner.0") for name, _ in w.named_parameters())

    def test_modules_iterator(self):
        net = small_net()
        assert len(list(net.modules())) == 6  # Sequential + 5 layers


class TestTrainEval:
    def test_mode_propagates(self):
        net = Sequential(Dropout(0.5), ReLU())
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_dropout_respects_mode(self):
        drop = Dropout(0.9, rng=np.random.default_rng(0))
        x = Tensor(np.ones((10, 10)))
        drop.eval()
        assert np.allclose(drop(x).data, 1.0)

    def test_zero_grad(self):
        net = small_net()
        x = Tensor(RNG.standard_normal((1, 2, 8, 8)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = small_net(), small_net()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_state_dict_copies(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"][:] = 99.0
        assert not np.allclose(dict(net.named_parameters())["0.weight"].data, 99.0)


class TestLayers:
    def test_conv_layer_shape(self):
        conv = Conv2d(3, 8, 5, stride=2, padding=2)
        out = conv(Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_conv_no_bias(self):
        conv = Conv2d(1, 1, 3, bias=False)
        assert conv.bias is None
        assert len(list(conv.parameters())) == 1

    def test_linear_forward(self):
        lin = Linear(4, 3)
        assert lin(Tensor(np.ones((2, 4)))).shape == (2, 3)

    def test_spp_layer_output_features(self):
        spp = SpatialPyramidPooling((4, 2, 1))
        assert spp.output_features(256) == 256 * 21
        out = spp(Tensor(RNG.standard_normal((2, 8, 10, 12))))
        assert out.shape == (2, 8 * 21)

    def test_spp_invalid_levels(self):
        with pytest.raises(ValueError):
            SpatialPyramidPooling(())
        with pytest.raises(ValueError):
            SpatialPyramidPooling((0, 2))

    def test_adaptive_pool_module(self):
        pool = AdaptiveMaxPool2d(3)
        assert pool(Tensor(RNG.standard_normal((1, 2, 9, 11)))).shape == (1, 2, 3, 3)

    def test_sequential_iteration(self):
        net = small_net()
        assert len(net) == 5
        assert isinstance(list(net)[0], Conv2d)

    def test_forward_base_raises(self):
        with pytest.raises(NotImplementedError):
            Module().forward(None)

    def test_parameter_is_tensor(self):
        p = Parameter(np.zeros(3))
        assert isinstance(p, Tensor) and p.requires_grad


class TestDefaultInitStream:
    """Layers built without an explicit rng must not share identical
    weights (the old per-layer ``default_rng(0)`` gave every same-shape
    layer byte-identical, symmetric init)."""

    def test_default_conv_layers_differ(self):
        a, b = Conv2d(2, 4, 3), Conv2d(2, 4, 3)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_default_linear_layers_differ(self):
        a, b = Linear(8, 8), Linear(8, 8)
        assert not np.allclose(a.weight.data, b.weight.data)

    def test_default_dropout_masks_differ(self):
        a, b = Dropout(0.5), Dropout(0.5)
        x = Tensor(np.ones((64, 64)))
        assert not np.allclose(a(x).data, b(x).data)

    def test_seed_module_rng_restores_reproducibility(self):
        from repro.tensor import seed_module_rng

        seed_module_rng(123)
        first = [Linear(6, 6).weight.data.copy(), Conv2d(1, 2, 3).weight.data.copy()]
        seed_module_rng(123)
        second = [Linear(6, 6).weight.data.copy(), Conv2d(1, 2, 3).weight.data.copy()]
        for w1, w2 in zip(first, second):
            assert np.array_equal(w1, w2)

    def test_explicit_rng_still_reproducible(self):
        a = Linear(5, 5, rng=np.random.default_rng(9))
        b = Linear(5, 5, rng=np.random.default_rng(9))
        assert np.array_equal(a.weight.data, b.weight.data)


class TestEndToEndTraining:
    def test_small_net_learns_linear_map(self):
        """A 1-layer net fits a random linear teacher (sanity of the stack)."""
        rng = np.random.default_rng(0)
        teacher_w = rng.standard_normal((3, 6))
        x = rng.standard_normal((64, 6))
        y = x @ teacher_w.T
        model = Linear(6, 3, rng=rng)
        from repro.tensor.optim import SGD

        opt = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=0.0)
        first = None
        for _ in range(200):
            opt.zero_grad()
            pred = model(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.01 * first
