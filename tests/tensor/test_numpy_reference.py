"""Fuzz the autograd ops against plain NumPy reference computations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor

settings.register_profile("ref", deadline=None, max_examples=50)
settings.load_profile("ref")


@st.composite
def array_pairs(draw, max_dim=4):
    """Two broadcast-compatible random arrays."""
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, max_dim)) for _ in range(ndim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(shape)
    # b broadcasts: randomly squeeze axes to 1
    b_shape = tuple(1 if rng.random() < 0.4 else s for s in shape)
    b = rng.standard_normal(b_shape)
    return a, b


class TestForwardAgainstNumpy:
    @given(array_pairs())
    def test_add(self, pair):
        a, b = pair
        assert np.allclose((Tensor(a) + Tensor(b)).data, a + b)

    @given(array_pairs())
    def test_mul(self, pair):
        a, b = pair
        assert np.allclose((Tensor(a) * Tensor(b)).data, a * b)

    @given(array_pairs())
    def test_sub_div(self, pair):
        a, b = pair
        b = np.where(np.abs(b) < 0.1, 0.5, b)
        assert np.allclose((Tensor(a) - Tensor(b)).data, a - b)
        assert np.allclose((Tensor(a) / Tensor(b)).data, a / b)

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
           st.integers(0, 2**31 - 1))
    def test_matmul(self, n, k, m, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.standard_normal((n, k)), rng.standard_normal((k, m))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    @given(array_pairs())
    def test_unary(self, pair):
        a, _ = pair
        assert np.allclose(Tensor(a).exp().data, np.exp(a))
        assert np.allclose(Tensor(a).tanh().data, np.tanh(a))
        assert np.allclose(Tensor(a).relu().data, np.maximum(a, 0))
        assert np.allclose(Tensor(a).abs().data, np.abs(a))

    @given(array_pairs())
    def test_reductions(self, pair):
        a, _ = pair
        assert np.allclose(Tensor(a).sum().data, a.sum())
        assert np.allclose(Tensor(a).mean().data, a.mean())
        assert np.allclose(Tensor(a).max().data, a.max())
        for axis in range(a.ndim):
            assert np.allclose(Tensor(a).sum(axis=axis).data, a.sum(axis=axis))
            assert np.allclose(Tensor(a).mean(axis=axis).data, a.mean(axis=axis))


class TestGradientSumRule:
    """d/dx sum(f(x)) summed over all elements equals the numeric total
    derivative — a cheap whole-op gradient sanity independent of gradcheck."""

    @given(array_pairs())
    def test_product_rule_total(self, pair):
        a, b = pair
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        assert ta.grad.shape == a.shape
        # grad of sum(a*b) w.r.t. a is broadcast(b)
        assert np.allclose(ta.grad, np.broadcast_to(b, a.shape))

    @given(array_pairs())
    def test_chain_rule_scale(self, pair):
        a, _ = pair
        t = Tensor(a, requires_grad=True)
        ((t * 3.0) + 1.0).sum().backward()
        assert np.allclose(t.grad, 3.0 * np.ones_like(a))

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    def test_softmax_grad_rows_sum_zero(self, k, seed):
        """Softmax outputs sum to 1, so row gradients of any per-row pick
        sum to ~0."""
        from repro.tensor import functional as F

        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((3, k)), requires_grad=True)
        F.softmax(x, axis=1)[np.arange(3), np.zeros(3, dtype=int)].sum().backward()
        assert np.allclose(x.grad.sum(axis=1), 0.0, atol=1e-10)
