"""Resource-aware neural architecture search (§4 + §5.4, Figure 5).

Explores the paper's §4.2 search space with the multi-trial random-search
experiment, then applies the accuracy-constrained efficiency optimization:
maximize inference efficiency e(n) subject to accuracy a(n) > A, with
efficiency measured by IOS on the simulated RTX A5500.

By default each trial trains a real (small) detector on synthetic chips;
``--surrogate`` switches to the deterministic accuracy surrogate for an
instant demonstration of the search mechanics.

Usage::

    python examples/nas_search.py --trials 4
    python examples/nas_search.py --surrogate --trials 30
"""

import argparse

from repro.detect import TrainConfig, evaluate_detector, train_detector
from repro.experiments import surrogate_accuracy
from repro.geo import build_dataset
from repro.nas import (
    Experiment,
    FunctionalEvaluator,
    RandomStrategy,
    TrainingEvaluator,
    config_from_sample,
    resource_aware_selection,
    sppnet_search_space,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=None,
                        help="accuracy constraint A (default: median of trials)")
    parser.add_argument("--surrogate", action="store_true",
                        help="use the deterministic surrogate instead of training")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    space = sppnet_search_space()
    print(f"Search space: {space.size} architectures "
          f"({', '.join(c.name for c in space.choices)})\n")

    if args.surrogate:
        evaluator = FunctionalEvaluator(surrogate_accuracy)
    else:
        print("Building chip dataset for trial training ...")
        dataset = build_dataset(num_scenes=1, chips_per_crossing=2, seed=3)
        train_set, test_set = dataset.split(0.8, seed=3)
        print(f"  {len(train_set)} train / {len(test_set)} test chips\n")

        def train_trial(config):
            result = train_detector(
                config, train_set, test_set,
                TrainConfig(epochs=args.epochs, seed=1, box_weight=3.0),
            )
            scores = evaluate_detector(result.model, test_set, iou_threshold=0.35)
            print(f"  [trial] {config.name}: AP={100 * scores.ap:.2f}%")
            return {"value": scores.ap, "accuracy": scores.accuracy}

        evaluator = TrainingEvaluator(train_trial)

    experiment = Experiment(
        space=space,
        evaluator=evaluator,
        strategy=RandomStrategy(),
        max_trials=args.trials,
        seed=args.seed,
    )
    experiment.run()

    print("\n== Tuning results (aggregated & compared, as with NNI) ==")
    print(experiment.results_table())

    values = sorted(t.value for t in experiment.trials)
    threshold = args.threshold if args.threshold is not None else values[len(values) // 2]
    print(f"\n== Accuracy-constrained efficiency optimization (A = {threshold:.4f}) ==")
    candidates = [(config_from_sample(t.sample), t.value) for t in experiment.trials]
    try:
        winner, profiles = resource_aware_selection(candidates, threshold, batch=1)
    except ValueError as exc:
        print(f"  no feasible candidate: {exc}")
        return
    for p in sorted(profiles, key=lambda p: -p.efficiency):
        tag = "  <== selected" if p.config.name == winner.config.name else ""
        feasible = "ok " if p.accuracy > threshold else "cut"
        print(f"  [{feasible}] {p.config.name:32s} a(n)={p.accuracy:.4f} "
              f"IOS latency={p.optimized_latency_us / 1e3:.3f} ms "
              f"e(n)={p.efficiency:7.0f} img/s{tag}")


if __name__ == "__main__":
    main()
