"""Deployment pipeline: detect crossings in a whole watershed, then fix
the DEM with the *detected* (not ground-truth) locations.

This is the paper's end use case stitched together:

1. train an SPP-Net detector on chips from training watersheds;
2. slide it across an unseen watershed scene (window + NMS);
3. score detections against ground truth by center distance;
4. breach the embanked DEM at the detected locations and show the
   connectivity improvement breaching delivers.

Usage::

    python examples/full_scene_detection.py [--epochs 8]
"""

import argparse

from repro.arch import TABLE1_MODELS
from repro.detect import (
    TrainConfig,
    evaluate_scene_detections,
    scan_scene,
    train_detector,
)
from repro.geo import WatershedConfig, build_dataset, build_scene
from repro.hydro import (
    assess_connectivity,
    breach_dem,
    delineate_streams,
    priority_flood_fill,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--confidence", type=float, default=0.7)
    args = parser.parse_args()

    print("== 1. Training on chips from training watersheds ==")
    dataset = build_dataset(num_scenes=2, chips_per_crossing=3, seed=3)
    train_set, val_set = dataset.split(0.8, seed=3)
    result = train_detector(
        TABLE1_MODELS["Original SPP-Net"], train_set, val_set,
        TrainConfig(epochs=args.epochs, seed=1, verbose=True, box_weight=3.0),
    )

    print("\n== 2. Scanning an unseen watershed ==")
    scene = build_scene(WatershedConfig(seed=77))
    detections = scan_scene(result.model, scene,
                            confidence_threshold=args.confidence)
    print(f"   {len(detections)} detections "
          f"(ground truth: {len(scene.crossings)} crossings)")

    print("\n== 3. Detection quality (center-distance matching) ==")
    scores = evaluate_scene_detections(detections, scene.crossings)
    print(f"   precision {scores.precision:.3f}  recall {scores.recall:.3f}  "
          f"F1 {scores.f1:.3f}")
    print(f"   mean center error of matches: {scores.mean_center_error:.1f} m")

    print("\n== 4. Breaching the DEM at *detected* crossings ==")
    threshold = scene.config.stream_threshold

    def connectivity(dem):
        net = delineate_streams(priority_flood_fill(dem, 1e-4), threshold)
        return assess_connectivity(dem, net)

    before = connectivity(scene.dem)
    breached = breach_dem(scene.dem, [d.center for d in detections], radius=4)
    after = connectivity(breached)
    print(f"   depression cells : {before.depression_cells} -> "
          f"{after.depression_cells}")
    print(f"   mean flow path   : {before.mean_path_length:.1f} -> "
          f"{after.mean_path_length:.1f} cells")
    print(f"   largest segment  : {before.largest_segment_cells} -> "
          f"{after.largest_segment_cells} cells")


if __name__ == "__main__":
    main()
