"""Quickstart: train an SPP-Net crossing detector and optimize its inference.

Runs the whole story of the paper on a small budget (~2 minutes):

1. generate a synthetic watershed and clip 4-band 100x100 chips;
2. train the Table-1 "Original SPP-Net" with the paper's §6.1 recipe;
3. evaluate average precision (Equation 1);
4. lower the trained architecture to the computation-graph IR and run the
   Inter-Operator Scheduler on the simulated RTX A5500;
5. print the sequential-vs-optimized latency comparison.

Usage::

    python examples/quickstart.py [--epochs N] [--full]
"""

import argparse

from repro.arch import TABLE1_MODELS
from repro.detect import TrainConfig, evaluate_detector, train_detector
from repro.geo import build_dataset
from repro.graph import build_sppnet_graph
from repro.ios import optimize_schedule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--full", action="store_true",
                        help="larger dataset + more epochs (paper-scale)")
    args = parser.parse_args()

    scenes = 2 if args.full else 1
    chips = 4 if args.full else 2
    epochs = 14 if args.full else args.epochs

    print("== 1. Building the synthetic watershed chip dataset ==")
    dataset = build_dataset(num_scenes=scenes, chips_per_crossing=chips, seed=3)
    train_set, test_set = dataset.split(0.8, seed=3)
    print(f"   {len(train_set)} training / {len(test_set)} test chips "
          f"({dataset.num_positive} positives total)\n")

    arch = TABLE1_MODELS["Original SPP-Net"]
    print(f"== 2. Training {arch.name}: {arch.grammar()} ==")
    result = train_detector(
        arch, train_set, test_set,
        TrainConfig(epochs=epochs, seed=1, verbose=True, box_weight=3.0),
    )

    print("\n== 3. Evaluation (Equation 1 average precision) ==")
    for iou in (0.5, 0.35):
        scores = evaluate_detector(result.model, test_set, iou_threshold=iou)
        print(f"   AP@IoU>={iou}: {100 * scores.ap:6.2f}%   "
              f"classification accuracy: {100 * scores.accuracy:5.1f}%")

    print("\n== 4. IOS schedule optimization on the simulated RTX A5500 ==")
    graph = build_sppnet_graph(arch)
    opt = optimize_schedule(graph, batch=1)
    print(opt.optimized.describe())

    print("\n== 5. Sequential vs optimized (Table 2 for this model) ==")
    print(f"   sequential : {opt.sequential_latency_us / 1e3:.3f} ms")
    print(f"   optimized  : {opt.optimized_latency_us / 1e3:.3f} ms")
    print(f"   speedup    : {opt.speedup:.2f}x")


if __name__ == "__main__":
    main()
