"""Inter-Operator Scheduler walkthrough (§5).

Shows the IOS dynamic program at work: lowers SPP-Net candidates to the
computation-graph IR, searches the stage/group schedule space, prints the
chosen plans, and decomposes *where* the time goes (kernels vs launches
vs synchronization) — the mechanism behind Table 2's speedups.  Also runs
the scheduler on an Inception-style block where multi-stream parallelism
strictly wins.

Usage::

    python examples/ios_scheduling.py [--batch 1]
"""

import argparse

from repro.arch import TABLE1_MODELS
from repro.graph import build_inception_graph, build_sppnet_graph
from repro.ios import (
    compare_strategies,
    dp_schedule,
    measure_schedule,
    schedule_overheads,
    sequential_schedule,
)
from repro.profiling import ascii_gantt


def show_overheads(label: str, graph, schedule) -> None:
    result = measure_schedule(graph, schedule)
    parts = schedule_overheads(result)
    print(f"   {label:12s} total={parts['total'] / 1e3:7.3f} ms | "
          f"kernels={parts['kernel']:7.1f} us  sync={parts['sync']:6.1f} us  "
          f"launch={parts['launch']:6.1f} us  memcpy={parts['memcpy']:6.1f} us")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=1)
    args = parser.parse_args()

    print("== IOS on the Table 1 SPP-Net candidates ==")
    for name, config in TABLE1_MODELS.items():
        graph = build_sppnet_graph(config)
        seq = sequential_schedule(graph, args.batch)
        opt = dp_schedule(graph, args.batch)
        print(f"\n{name} ({len(graph.compute_nodes())} operators)")
        show_overheads("sequential", graph, seq)
        show_overheads("ios-dp", graph, opt)
        print(f"   plan: {opt.num_stages} stage(s), "
              f"max parallelism {opt.max_parallelism}")

    print("\n== Where inter-operator parallelism pays: Inception block ==")
    graph = build_inception_graph(branches=4, depth=2)
    for strategy, schedule in compare_strategies(graph, args.batch).items():
        print(f"   {strategy:14s} {schedule.latency_us:8.1f} us  "
              f"stages={schedule.num_stages}  parallel={schedule.max_parallelism}")
    print()
    best = dp_schedule(graph, args.batch)
    print(best.describe())

    print("\n== Kernel timeline of the DP schedule (one stream per group) ==")
    result = measure_schedule(graph, best)
    print(ascii_gantt(result.trace, width=64))


if __name__ == "__main__":
    main()
