"""Serving: run crossing detection behind the dynamic-batching service.

Stands up an :class:`repro.serve.InferenceService` over a compact
detector and demonstrates the serving features end to end:

1. tune the batcher from the Figure 6 batch-efficiency artifact
   (``results/fig6.json``) when available;
2. scan a synthetic watershed scene through the service — windows are
   micro-batched instead of looped;
3. scan it again to show repeat tiles answered by the content-hash LRU
   cache;
4. print the metrics report (queue depth, batch-size histogram,
   latency quantiles, cache hit rate) in the profiling-report style.

Usage::

    python examples/serving.py [--scene-size N] [--window N] [--workers N]
"""

import argparse

from repro.arch import ConvSpec, PoolSpec, SPPNetConfig
from repro.detect import SPPNetDetector, scan_scene
from repro.geo import WatershedConfig, build_scene
from repro.serve import (
    BatchPolicy,
    InferenceService,
    format_service_report,
    policy_from_fig6,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene-size", type=int, default=192)
    parser.add_argument("--window", type=int, default=64)
    parser.add_argument("--stride", type=int, default=48)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    print("== 1. Batching policy from the Figure 6 efficiency curve ==")
    try:
        policy = policy_from_fig6()
        print(f"   knee of fig6.json -> max_batch={policy.max_batch}, "
              f"max_wait={policy.max_wait_ms} ms")
    except (OSError, ValueError):
        policy = BatchPolicy()
        print(f"   fig6.json unavailable, defaults -> max_batch="
              f"{policy.max_batch}, max_wait={policy.max_wait_ms} ms")

    arch = SPPNetConfig(
        convs=(ConvSpec(8, 3, 1), ConvSpec(16, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=(2, 1), fc_sizes=(32,), name="serving-demo",
    )
    model = SPPNetDetector(arch, seed=0)
    scene = build_scene(WatershedConfig(size=args.scene_size, seed=5))

    with InferenceService(model, policy, num_workers=args.workers) as service:
        print("\n== 2. Scene scan through the service ==")
        detections = scan_scene(model, scene, window=args.window,
                                stride=args.stride,
                                confidence_threshold=0.5, service=service)
        print(f"   {service.metrics.completed.value} windows served, "
              f"{len(detections)} detections after NMS")

        print("\n== 3. Repeat scan: tiles come back from the LRU cache ==")
        scan_scene(model, scene, window=args.window, stride=args.stride,
                   confidence_threshold=0.5, service=service)
        print(f"   cache hit rate now "
              f"{100 * service.metrics.cache_hit_rate():.1f}%")

        print("\n== 4. Service metrics ==")
        print(format_service_report(service.metrics, label="serving-demo"))


if __name__ == "__main__":
    main()
