"""Hydrologic connectivity with and without drainage crossings (Figure 1).

The motivating claim of the paper: DEM-derived drainage networks break at
road embankments ("digital dams"), and incorporating drainage-crossing
locations repairs them.  This example demonstrates that end to end on a
synthetic watershed:

1. build a scene whose roads imprint embankments on the DEM;
2. delineate streams on the embanked DEM — flow paths die at the roads;
3. breach the DEM at the ground-truth crossing locations (as a deployed
   detector would provide) and delineate again;
4. compare connectivity metrics before/after.

Usage::

    python examples/connectivity_pipeline.py [--size 384] [--seed 5]
"""

import argparse

from repro.geo import WatershedConfig, build_scene
from repro.hydro import (
    assess_connectivity,
    breach_dem,
    delineate_streams,
    priority_flood_fill,
)


def analyze(dem, threshold: int):
    conditioned = priority_flood_fill(dem, epsilon=1e-4)
    network = delineate_streams(conditioned, threshold=threshold)
    return assess_connectivity(dem, network)


def show(label: str, report) -> None:
    print(f"  {label}")
    print(f"    stream cells        : {report.num_stream_cells}")
    print(f"    segments            : {report.num_segments} "
          f"(fragmentation {report.fragmentation:.2f} per 1000 cells)")
    print(f"    largest segment     : {report.largest_segment_cells} cells")
    print(f"    premature terminations: {report.num_terminations}")
    print(f"    mean flow-path length : {report.mean_path_length:.1f} cells")
    print(f"    depression cells      : {report.depression_cells}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=384)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    config = WatershedConfig(size=args.size, road_spacing=128,
                             stream_threshold=1500, seed=args.seed)
    print(f"Building synthetic watershed ({args.size}x{args.size} m, "
          f"seed {args.seed}) ...")
    scene = build_scene(config)
    print(f"  {len(scene.crossings)} ground-truth drainage crossings, "
          f"{int(scene.roads.sum())} road cells\n")

    print("(A) Without crossing information — embanked DEM as-is:")
    before = analyze(scene.dem, config.stream_threshold)
    show("digital dams intact", before)

    print("\n(B) With crossing locations — DEM breached at each crossing:")
    breached = breach_dem(scene.dem, [c.center for c in scene.crossings], radius=4)
    after = analyze(breached, config.stream_threshold)
    show("crossings incorporated", after)

    print("\nSummary:")
    fewer = before.depression_cells - after.depression_cells
    print(f"  breaching removed {fewer} digital-dam depression cells "
          f"({before.depression_cells} -> {after.depression_cells})")
    delta = after.mean_path_length - before.mean_path_length
    print(f"  mean flow-path length changed by {delta:+.1f} cells")
    print(f"  premature terminations: {before.num_terminations} -> "
          f"{after.num_terminations}")


if __name__ == "__main__":
    main()
