"""Nsight-Systems-style GPU profiling of CNN inference (§7).

Profiles a full benchmark session of SPP-Net #2 on the simulated RTX
A5500 — the equivalent of the paper's::

    nsys profile --stats=true python IOS_Model.py

and prints the three summaries §7 reads off the profiler: CUDA API
statistics (Figure 8), kernel statistics by operator category (Table 3),
and memory-operation statistics (Figure 7).

Usage::

    python examples/gpu_profiling.py --batch 32
    python examples/gpu_profiling.py --sweep
"""

import argparse

from repro.arch import TABLE1_MODELS
from repro.graph import build_sppnet_graph
from repro.ios import dp_schedule
from repro.profiling import format_report, profile_session


def profile_one(graph, batch: int, iterations: int) -> None:
    schedule = dp_schedule(graph, batch)
    report = profile_session(graph, schedule, batch,
                             iterations=iterations, warmup=10)
    print(format_report(report))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="SPP-Net #2",
                        choices=list(TABLE1_MODELS))
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=500)
    parser.add_argument("--sweep", action="store_true",
                        help="profile every batch size of §7 (1..64)")
    args = parser.parse_args()

    graph = build_sppnet_graph(TABLE1_MODELS[args.model])
    batches = (1, 2, 4, 8, 16, 32, 64) if args.sweep else (args.batch,)
    for batch in batches:
        profile_one(graph, batch, args.iterations)

    if args.sweep:
        print("Observations (paper §7):")
        print(" * cuLibraryLoadData dominates small-batch sessions; "
              "cudaDeviceSynchronize overtakes it as batch grows (Fig. 8).")
        print(" * Matmul kernel share falls with batch while Conv rises to "
              "dominance at batch 64 (Table 3).")
        print(" * GPU memory stays far below the 24 GB capacity (Fig. 7).")


if __name__ == "__main__":
    main()
