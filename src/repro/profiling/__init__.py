"""repro.profiling — Nsight-Systems-style profiler for the simulated GPU."""

from .categories import DISPLAY_NAMES, TABLE3_CATEGORIES, display_name
from .nsys import ApiStat, KernelStat, MemopsStat, ProfileReport, profile_session
from .report import (
    format_api_table,
    format_kernel_table,
    format_memops,
    format_report,
    rule,
)
from .timeline import ascii_gantt, save_chrome_trace, to_chrome_trace

__all__ = [
    "DISPLAY_NAMES",
    "TABLE3_CATEGORIES",
    "display_name",
    "ApiStat",
    "KernelStat",
    "MemopsStat",
    "ProfileReport",
    "profile_session",
    "rule",
    "format_report",
    "format_api_table",
    "format_kernel_table",
    "format_memops",
    "ascii_gantt",
    "to_chrome_trace",
    "save_chrome_trace",
]
