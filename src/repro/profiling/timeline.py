"""Execution-timeline views of a simulated run.

Two consumers:

* :func:`ascii_gantt` — a terminal Gantt chart of one inference's kernel
  placement per CUDA stream, which makes IOS's stage/group overlap
  visible at a glance (used by the scheduling example);
* :func:`to_chrome_trace` — Chrome trace-event JSON (``chrome://tracing``
  / Perfetto) of a full session, mirroring how nsys exports timelines.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..gpusim.runtime import Trace

__all__ = ["ascii_gantt", "to_chrome_trace", "save_chrome_trace"]


def ascii_gantt(trace: Trace, width: int = 72, max_label: int = 14) -> str:
    """Render kernel execution per stream as a fixed-width Gantt chart.

    Each row is one CUDA stream; ``#`` spans mark kernel execution, ``.``
    marks idle time.  A per-kernel legend follows, in launch order.
    """
    if not trace.kernels:
        return "(no kernels in trace)"
    t0 = min(e.start_us for e in trace.kernels)
    t1 = max(e.end_us for e in trace.kernels)
    span = max(t1 - t0, 1e-9)
    streams = sorted({e.stream for e in trace.kernels})

    lines = [f"timeline: {span:.1f} us across {len(streams)} stream(s)"]
    for stream in streams:
        row = ["."] * width
        for event in trace.kernels:
            if event.stream != stream:
                continue
            lo = int((event.start_us - t0) / span * (width - 1))
            hi = max(lo + 1, int((event.end_us - t0) / span * (width - 1)) + 1)
            for i in range(lo, min(hi, width)):
                row[i] = "#"
        lines.append(f"stream {stream}: |{''.join(row)}|")
    lines.append("kernels (launch order):")
    for event in trace.kernels:
        name = event.op_name[:max_label]
        lines.append(f"  {name:<{max_label}} stream {event.stream} "
                     f"[{event.start_us - t0:8.1f} .. {event.end_us - t0:8.1f}] us "
                     f"({event.category})")
    return "\n".join(lines)


def to_chrome_trace(trace: Trace) -> dict:
    """Convert a :class:`Trace` to the Chrome trace-event format.

    Host API calls go on pid 0 ("CPU"), kernels on pid 1 ("GPU") with one
    tid per stream, memory operations on pid 1 tid 999.  Timestamps are
    microseconds, as the format expects.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0,
         "args": {"name": "CPU (CUDA API)"}},
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "GPU (simulated RTX A5500)"}},
    ]
    for api in trace.api:
        events.append({
            "name": api.name, "ph": "X", "pid": 0, "tid": 0,
            "ts": api.start_us, "dur": api.duration_us, "cat": "cuda_api",
        })
    for kernel in trace.kernels:
        events.append({
            "name": kernel.kernel, "ph": "X", "pid": 1, "tid": kernel.stream,
            "ts": kernel.start_us, "dur": kernel.duration_us,
            "cat": f"kernel,{kernel.category}",
            "args": {"op": kernel.op_name},
        })
    for op in trace.memcpy:
        events.append({
            "name": f"memcpy{op.kind}", "ph": "X", "pid": 1, "tid": 999,
            "ts": op.start_us, "dur": op.duration_us, "cat": "memops",
            "args": {"bytes": op.nbytes},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write the Chrome trace JSON to ``path`` (open in chrome://tracing)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(trace)))
    return path
