"""Text rendering of profile reports, mirroring ``nsys --stats=true``."""

from __future__ import annotations

from .nsys import ProfileReport

__all__ = ["rule", "format_report", "format_api_table", "format_kernel_table",
           "format_memops"]


def rule(width: int = 78) -> str:
    """Horizontal separator shared by every fixed-width report table."""
    return "-" * width


def format_api_table(report: ProfileReport, top: int = 10) -> str:
    """CUDA API Statistics table (Figure 8's raw view)."""
    lines = [
        "CUDA API Statistics:",
        f"{'Time (%)':>9}  {'Total Time (us)':>16}  {'Num Calls':>10}  "
        f"{'Avg (us)':>12}  Name",
        rule(),
    ]
    for stat in report.api[:top]:
        lines.append(
            f"{100 * stat.share:9.1f}  {stat.total_us:16.1f}  {stat.calls:10d}  "
            f"{stat.avg_us:12.2f}  {stat.name}"
        )
    return "\n".join(lines)


def format_kernel_table(report: ProfileReport) -> str:
    """CUDA Kernel Statistics table by operator category (Table 3's view)."""
    lines = [
        "CUDA Kernel Statistics (by category):",
        f"{'Time (%)':>9}  {'Total Time (us)':>16}  {'Instances':>10}  Category",
        rule(),
    ]
    for stat in report.kernels:
        lines.append(
            f"{100 * stat.share:9.1f}  {stat.total_us:16.1f}  {stat.count:10d}  "
            f"{stat.display}"
        )
    return "\n".join(lines)


def format_memops(report: ProfileReport) -> str:
    """CUDA Memory Operation Statistics (Figure 7's view)."""
    mem = report.memops
    return "\n".join([
        "CUDA Memory Operation Statistics:",
        rule(),
        f"  total memop time : {mem.total_us:12.1f} us over {mem.count} operations",
        f"  total bytes      : {mem.total_bytes / 1e6:12.1f} MB",
        f"  per-image timing : {mem.per_image_ns:12.0f} ns",
        f"  peak device mem  : {report.peak_memory_bytes / 1024**3:12.3f} GiB "
        f"of {report.device_capacity_bytes / 1024**3:.0f} GiB "
        f"({100 * report.memory_utilization:.2f}%)",
    ])


def format_report(report: ProfileReport, top_api: int = 10) -> str:
    """Full ``nsys --stats=true``-style report."""
    header = (
        f"Profiling session: {report.label} | batch {report.batch} | "
        f"{report.iterations} iterations | mean latency "
        f"{report.mean_latency_us / 1e3:.3f} ms"
    )
    return "\n\n".join([
        header,
        format_api_table(report, top=top_api),
        format_kernel_table(report),
        format_memops(report),
    ])
