"""Nsight-Systems-style profiling of the simulated CUDA runtime.

``nsys profile --stats=true python IOS_Model.py`` profiles a *whole
process*: CUDA context creation, kernel-module loading, the benchmark
loop, every API call, kernel, and memory operation.
:func:`profile_session` reproduces that: it builds a fresh runtime, runs
session initialization, a warmup, then ``iterations`` inferences of the
given schedule, and aggregates the trace into the three summaries the
paper reads off nsys:

* **CUDA API statistics** (Figure 8): time share per API, dominated by
  ``cuLibraryLoadData`` at small batches and ``cudaDeviceSynchronize``
  at large ones;
* **kernel statistics by category** (Table 3): matmul / pooling / conv
  time shares;
* **memory-operation statistics** (Figure 7): GPU memops timing.  The
  paper plots a per-inference-image quantity that falls and then flattens
  as per-transfer overhead amortizes; we report exactly
  ``total memop time / images processed`` in nanoseconds and record the
  interpretation in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..gpusim.executor import GraphExecutor
from ..gpusim.runtime import CudaRuntime, Trace
from ..graph.ir import Graph
from .categories import TABLE3_CATEGORIES, display_name

__all__ = ["ApiStat", "KernelStat", "MemopsStat", "ProfileReport", "profile_session"]


@dataclass(frozen=True)
class ApiStat:
    """One row of the CUDA API summary."""

    name: str
    total_us: float
    calls: int
    share: float  # fraction of total API time

    @property
    def avg_us(self) -> float:
        return self.total_us / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class KernelStat:
    """One row of the kernel summary, aggregated by category."""

    category: str
    total_us: float
    count: int
    share: float  # fraction of total kernel time

    @property
    def display(self) -> str:
        return display_name(self.category)


@dataclass(frozen=True)
class MemopsStat:
    """GPU memory-operation summary (Figure 7's data)."""

    total_us: float
    count: int
    total_bytes: int
    images: int

    @property
    def per_image_ns(self) -> float:
        """Average GPU memops time attributable to one inferred image."""
        return 1e3 * self.total_us / self.images if self.images else 0.0

    @property
    def avg_call_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


@dataclass
class ProfileReport:
    """Aggregated profile of one benchmark session."""

    label: str
    batch: int
    iterations: int
    api: list[ApiStat]
    kernels: list[KernelStat]
    memops: MemopsStat
    peak_memory_bytes: int
    device_capacity_bytes: int
    mean_latency_us: float

    def api_share(self, name: str) -> float:
        for stat in self.api:
            if stat.name == name:
                return stat.share
        return 0.0

    def kernel_share(self, category: str) -> float:
        for stat in self.kernels:
            if stat.category == category:
                return stat.share
        return 0.0

    def table3_row(self) -> dict[str, float]:
        """Matmul/pooling/conv kernel-time percentages (one Table 3 row)."""
        return {c: 100.0 * self.kernel_share(c) for c in TABLE3_CATEGORIES}

    @property
    def memory_utilization(self) -> float:
        return self.peak_memory_bytes / self.device_capacity_bytes


def _aggregate_api(trace: Trace) -> list[ApiStat]:
    totals: dict[str, list[float]] = {}
    for event in trace.api:
        entry = totals.setdefault(event.name, [0.0, 0])
        entry[0] += event.duration_us
        entry[1] += 1
    grand = sum(v[0] for v in totals.values()) or 1.0
    stats = [
        ApiStat(name, total, int(calls), total / grand)
        for name, (total, calls) in totals.items()
    ]
    stats.sort(key=lambda s: s.total_us, reverse=True)
    return stats


def _aggregate_kernels(trace: Trace) -> list[KernelStat]:
    totals: dict[str, list[float]] = {}
    for event in trace.kernels:
        entry = totals.setdefault(event.category, [0.0, 0])
        entry[0] += event.duration_us
        entry[1] += 1
    grand = sum(v[0] for v in totals.values()) or 1.0
    stats = [
        KernelStat(category, total, int(count), total / grand)
        for category, (total, count) in totals.items()
    ]
    stats.sort(key=lambda s: s.total_us, reverse=True)
    return stats


def profile_session(
    graph: Graph,
    schedule,
    batch: int,
    device: DeviceSpec | None = None,
    iterations: int = 1000,
    warmup: int = 10,
    label: str | None = None,
) -> ProfileReport:
    """Profile a full benchmark session of ``iterations`` inferences.

    The returned report covers *everything* the process did — session
    initialization (module loading), warmup, and the timed loop — exactly
    like ``nsys profile`` on the paper's ``IOS_Model.py``.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    runtime = CudaRuntime(device)
    executor = GraphExecutor(graph, runtime=runtime)
    executor.prepare()
    for _ in range(warmup):
        executor.run(schedule, batch)
    latencies = [executor.run(schedule, batch).latency_us for _ in range(iterations)]

    trace = runtime.trace
    memops = MemopsStat(
        total_us=trace.memcpy_time(),
        count=len(trace.memcpy),
        total_bytes=trace.memcpy_bytes(),
        images=(iterations + warmup) * batch,
    )
    return ProfileReport(
        label=label or graph.name,
        batch=batch,
        iterations=iterations,
        api=_aggregate_api(trace),
        kernels=_aggregate_kernels(trace),
        memops=memops,
        peak_memory_bytes=runtime.memory.peak,
        device_capacity_bytes=runtime.device.dram_capacity_bytes,
        mean_latency_us=sum(latencies) / len(latencies),
    )
