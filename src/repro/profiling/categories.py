"""Kernel-category taxonomy for the profiler.

Maps the simulator's kernel categories to the display names the paper
uses in Table 3 ("Matrix Multiplication", "Pooling", "Conv") plus the
remaining categories nsys would show.
"""

from __future__ import annotations

__all__ = ["DISPLAY_NAMES", "TABLE3_CATEGORIES", "display_name"]

#: simulator category -> human-readable display name.
DISPLAY_NAMES: dict[str, str] = {
    "matmul": "Matrix Multiplication",
    "pooling": "Pooling",
    "conv": "Conv",
    "elementwise": "Elementwise",
    "reduction": "Reduction",
}

#: The three operator classes Table 3 reports, in column order.
TABLE3_CATEGORIES: tuple[str, ...] = ("matmul", "pooling", "conv")


def display_name(category: str) -> str:
    """Display name for a kernel category (falls back to the raw name)."""
    return DISPLAY_NAMES.get(category, category)
