"""Drainage-crossing placement: where streams pass under roads.

Ground truth for the detection task: the true hydrography (streams
delineated on the *bare-earth* DEM, before embankments break them)
intersected with the road surface.  Each connected intersection blob is
one culvert/bridge, with a bounding box covering the structure extent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..hydro import delineate_streams

__all__ = ["Crossing", "find_crossings"]


@dataclass(frozen=True)
class Crossing:
    """One drainage crossing (culvert or bridge)."""

    row: int
    col: int
    height: int  # bbox extent in rows (cells)
    width: int   # bbox extent in cols (cells)

    @property
    def center(self) -> tuple[int, int]:
        return (self.row, self.col)

    def bbox(self) -> tuple[int, int, int, int]:
        """(row0, col0, row1, col1), half-open, clipped by caller."""
        return (
            self.row - self.height // 2,
            self.col - self.width // 2,
            self.row + (self.height + 1) // 2,
            self.col + (self.width + 1) // 2,
        )


def find_crossings(
    bare_dem: np.ndarray,
    roads: np.ndarray,
    stream_threshold: int = 150,
    pad: int = 10,
    min_separation: int = 12,
) -> list[Crossing]:
    """Locate stream-under-road crossings on the bare-earth DEM.

    Parameters
    ----------
    bare_dem : DEM *without* embankments (true hydrography).
    roads : road surface mask.
    pad : bbox padding (cells) around the raw intersection extent, so the
        box covers the visible structure, not just the overlap pixels.
    min_separation : crossings closer than this (Chebyshev) to an already
        accepted crossing are dropped, mirroring the digitization rule of
        one structure per road/stream encounter.
    """
    from ..hydro import priority_flood_fill

    filled = priority_flood_fill(np.asarray(bare_dem, dtype=float), epsilon=1e-4)
    network = delineate_streams(filled, threshold=stream_threshold)
    overlap = network.mask & roads
    labels, count = ndimage.label(overlap, structure=np.ones((3, 3)))
    crossings: list[Crossing] = []
    if count == 0:
        return crossings
    slices = ndimage.find_objects(labels)
    centers = ndimage.center_of_mass(overlap, labels, range(1, count + 1))
    for (rs, cs), (cr, cc) in zip(slices, centers):
        height = (rs.stop - rs.start) + 2 * pad
        width = (cs.stop - cs.start) + 2 * pad
        candidate = Crossing(int(round(cr)), int(round(cc)), height, width)
        if any(
            max(abs(candidate.row - c.row), abs(candidate.col - c.col)) < min_separation
            for c in crossings
        ):
            continue
        crossings.append(candidate)
    return crossings
