"""Geometric and radiometric augmentation for chip datasets.

Flips and 90-degree rotations with consistent bounding-box transforms
(boxes are normalized (cx, cy, w, h) in chip coordinates), plus mild
per-band radiometric jitter.  All transforms are exact involutions /
rotations so property tests can verify box consistency.
"""

from __future__ import annotations

import numpy as np

from .chips import ChipDataset

__all__ = [
    "flip_horizontal",
    "flip_vertical",
    "rotate90",
    "radiometric_jitter",
    "augment_dataset",
]


def flip_horizontal(image: np.ndarray, box: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mirror left-right; cx -> 1 - cx."""
    out_box = box.copy()
    if out_box.any():
        out_box[0] = 1.0 - out_box[0]
    return image[:, :, ::-1].copy(), out_box


def flip_vertical(image: np.ndarray, box: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mirror top-bottom; cy -> 1 - cy."""
    out_box = box.copy()
    if out_box.any():
        out_box[1] = 1.0 - out_box[1]
    return image[:, ::-1, :].copy(), out_box


def rotate90(image: np.ndarray, box: np.ndarray, k: int = 1
             ) -> tuple[np.ndarray, np.ndarray]:
    """Rotate ``k`` quarter-turns counter-clockwise with box transform."""
    k = k % 4
    out_image = np.rot90(image, k=k, axes=(1, 2)).copy()
    out_box = box.copy()
    if out_box.any():
        cx, cy, w, h = out_box
        for _ in range(k):
            # CCW quarter turn in image coords: (cx, cy) -> (cy, 1 - cx).
            cx, cy = cy, 1.0 - cx
            w, h = h, w
        out_box = np.array([cx, cy, w, h], dtype=box.dtype)
    return out_image, out_box


def radiometric_jitter(image: np.ndarray, rng: np.random.Generator,
                       scale: float = 0.03) -> np.ndarray:
    """Per-band gain/offset jitter, clipped to [0, 1]."""
    gains = 1.0 + rng.uniform(-scale, scale, size=(image.shape[0], 1, 1))
    offsets = rng.uniform(-scale, scale, size=(image.shape[0], 1, 1))
    return np.clip(image * gains + offsets, 0.0, 1.0).astype(image.dtype)


def augment_dataset(dataset: ChipDataset, seed: int = 0,
                    include_rotations: bool = True) -> ChipDataset:
    """Return the dataset extended with flipped/rotated/jittered copies.

    Each original chip contributes one extra randomly-chosen transform, so
    the output is exactly twice the input size with the same class balance.
    """
    rng = np.random.default_rng(seed)
    images, labels, boxes = [dataset.images], [dataset.labels], [dataset.boxes]
    new_images, new_boxes = [], []
    choices = 4 if include_rotations else 2
    for i in range(len(dataset)):
        image, box = dataset.images[i], dataset.boxes[i]
        pick = rng.integers(choices)
        if pick == 0:
            image, box = flip_horizontal(image, box)
        elif pick == 1:
            image, box = flip_vertical(image, box)
        else:
            image, box = rotate90(image, box, k=int(pick - 1))
        new_images.append(radiometric_jitter(image, rng))
        new_boxes.append(box)
    images.append(np.stack(new_images))
    labels.append(dataset.labels.copy())
    boxes.append(np.stack(new_boxes))
    return ChipDataset(
        np.concatenate(images).astype(np.float32),
        np.concatenate(labels),
        np.concatenate(boxes).astype(np.float32),
        dataset.chip_size,
    )
