"""Landcover classification of the synthetic scene.

Assigns each cell one of the classes the orthophoto renderer knows how to
color: cropland parcels (the dominant cover — "intensive agriculture"),
riparian buffers along streams, open water, wetlands in depressional
flats, and road surface.  Also produces a continuous vegetation-vigor
field that modulates the rendered NDVI.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np
from scipy import ndimage

__all__ = ["LandClass", "LandcoverMap", "classify_landcover"]


class LandClass(IntEnum):
    CROPLAND = 0
    RIPARIAN = 1
    WATER = 2
    WETLAND = 3
    ROAD = 4
    BARE = 5


@dataclass(frozen=True)
class LandcoverMap:
    """Per-cell class raster plus a continuous vigor (greenness) field."""

    classes: np.ndarray  # uint8 LandClass codes
    vigor: np.ndarray    # float in [0, 1]

    def fraction(self, land_class: LandClass) -> float:
        return float((self.classes == int(land_class)).mean())


def _parcels(size: int, rng: np.random.Generator, parcel: int = 32) -> np.ndarray:
    """Quarter-section field parcels with per-parcel vigor."""
    rows = int(np.ceil(size / parcel))
    values = rng.uniform(0.35, 0.95, size=(rows, rows))
    return np.kron(values, np.ones((parcel, parcel)))[:size, :size]


def classify_landcover(
    dem: np.ndarray,
    streams: np.ndarray,
    roads: np.ndarray,
    seed: int = 0,
    riparian_radius: int = 3,
) -> LandcoverMap:
    """Build the :class:`LandcoverMap` for a scene.

    Parameters
    ----------
    dem : conditioned DEM (used to find depressional wetlands).
    streams : boolean stream raster (true hydrography).
    roads : boolean road-surface raster.
    """
    if not (dem.shape == streams.shape == roads.shape):
        raise ValueError("dem/streams/roads shapes must match")
    size = dem.shape[0]
    rng = np.random.default_rng(seed + 15485863)

    classes = np.full(dem.shape, int(LandClass.CROPLAND), dtype=np.uint8)

    # Depressional wetlands: local flats well below their neighborhood mean.
    smooth = ndimage.uniform_filter(dem, size=15)
    wet = (dem - smooth) < -0.35
    classes[wet] = int(LandClass.WETLAND)

    # Riparian buffer, then water on the stream cells themselves.
    buffer = ndimage.binary_dilation(streams, iterations=riparian_radius)
    classes[buffer] = int(LandClass.RIPARIAN)
    classes[streams] = int(LandClass.WATER)

    # Sparse bare patches (farmyards) away from streams.
    bare_seeds = rng.random(dem.shape) > 0.9995
    bare = ndimage.binary_dilation(bare_seeds, iterations=4) & ~buffer & ~wet
    classes[bare] = int(LandClass.BARE)

    # Roads paved last: embankments override everything they cross.
    classes[roads] = int(LandClass.ROAD)

    vigor = _parcels(size, rng)
    vigor = np.clip(vigor + 0.08 * rng.standard_normal(dem.shape), 0.0, 1.0)
    return LandcoverMap(classes=classes, vigor=vigor)
