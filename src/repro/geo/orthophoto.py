"""4-band orthophoto rendering (NAIP stand-in).

Produces a ``(4, H, W)`` float32 image in [0, 1] with bands ordered
R, G, B, NIR at 1 m resolution.  Rendering layers:

1. per-class base reflectance modulated by the vegetation vigor field
   (greener fields: lower red, higher NIR — the NDVI signal CNNs key on);
2. correlated texture noise and a broad illumination gradient;
3. the *crossing signature*: a bright concrete culvert apron where the
   road crosses the channel, with darkened pooled water immediately up-
   and downstream — the visual pattern a human digitizer looks for and
   the pattern the detector must learn.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from .crossings import Crossing
from .landcover import LandClass, LandcoverMap

__all__ = ["BANDS", "REFLECTANCE", "render_orthophoto"]

#: Band order of the rendered image.
BANDS: tuple[str, ...] = ("red", "green", "blue", "nir")

#: Base reflectance per land class: (R, G, B, NIR).
REFLECTANCE: dict[LandClass, tuple[float, float, float, float]] = {
    LandClass.CROPLAND: (0.30, 0.34, 0.22, 0.52),
    LandClass.RIPARIAN: (0.14, 0.26, 0.15, 0.46),
    LandClass.WATER: (0.08, 0.11, 0.14, 0.04),
    LandClass.WETLAND: (0.17, 0.24, 0.20, 0.30),
    LandClass.ROAD: (0.46, 0.45, 0.43, 0.24),
    LandClass.BARE: (0.41, 0.36, 0.30, 0.34),
}


def _vigor_modulation(band: int, vigor: np.ndarray) -> np.ndarray:
    """Healthy vegetation darkens red and brightens NIR."""
    centered = vigor - 0.5
    if band == 0:  # red
        return -0.12 * centered
    if band == 3:  # nir
        return 0.25 * centered
    if band == 1:  # green
        return 0.06 * centered
    return np.zeros_like(vigor)


def render_orthophoto(
    landcover: LandcoverMap,
    crossings: list[Crossing],
    seed: int = 0,
    noise_scale: float = 0.035,
) -> np.ndarray:
    """Render the scene image; deterministic in ``seed``."""
    classes = landcover.classes
    h, w = classes.shape
    rng = np.random.default_rng(seed + 32452843)
    image = np.zeros((4, h, w), dtype=np.float64)

    vegetated = np.isin(
        classes,
        (int(LandClass.CROPLAND), int(LandClass.RIPARIAN), int(LandClass.WETLAND)),
    )
    for b in range(4):
        base = np.zeros((h, w))
        for land_class, refl in REFLECTANCE.items():
            base[classes == int(land_class)] = refl[b]
        base += np.where(vegetated, _vigor_modulation(b, landcover.vigor), 0.0)
        # Correlated speckle: smoothed white noise keeps texture realistic.
        speckle = ndimage.gaussian_filter(rng.standard_normal((h, w)), sigma=1.2)
        base += noise_scale * speckle
        # Broad illumination gradient (sun angle / atmospheric falloff).
        illum = 1.0 + 0.04 * np.linspace(-1, 1, w)[None, :]
        image[b] = base * illum

    _paint_crossings(image, classes, crossings, rng)
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def _paint_crossings(
    image: np.ndarray,
    classes: np.ndarray,
    crossings: list[Crossing],
    rng: np.random.Generator,
) -> None:
    """Overlay the culvert signature at each crossing (in place)."""
    _, h, w = image.shape
    for crossing in crossings:
        r, c = crossing.center
        if not (0 <= r < h and 0 <= c < w):
            continue
        # Concrete apron: a bright 3x3-ish blob on the road over the channel.
        rr0, rr1 = max(0, r - 2), min(h, r + 3)
        cc0, cc1 = max(0, c - 2), min(w, c + 3)
        apron = rng.uniform(0.55, 0.68)
        image[0, rr0:rr1, cc0:cc1] = apron
        image[1, rr0:rr1, cc0:cc1] = apron - 0.02
        image[2, rr0:rr1, cc0:cc1] = apron - 0.04
        image[3, rr0:rr1, cc0:cc1] = 0.20
        # Pooled water up/down the channel: dark NIR streaks beside the road.
        half_h = max(2, crossing.height // 2)
        half_w = max(2, crossing.width // 2)
        for dr in range(-half_h, half_h + 1):
            for dc in range(-half_w, half_w + 1):
                nr, nc = r + dr, c + dc
                if not (0 <= nr < h and 0 <= nc < w):
                    continue
                if classes[nr, nc] == int(LandClass.WATER):
                    image[3, nr, nc] = min(image[3, nr, nc], 0.03)
                    image[2, nr, nc] = min(image[2, nr, nc] + 0.02, 1.0)
