"""Chip dataset construction (§3.2 of the paper).

The paper clips 100 x 100-pixel 4-band samples centred on each digitized
crossing.  We do the same on synthetic scenes — with location jitter so
the crossing is *not* always dead-centre (otherwise box regression would
be trivial) — and add negatives sampled away from any crossing, half of
them "hard" (on a road or stream, but not at a crossing).  The dataset
carries (image, label, box) triples with boxes in normalized
(cx, cy, w, h) chip coordinates, and splits 80/20 like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .crossings import Crossing
from .scene import Scene, build_scene
from .synthesis import WatershedConfig

__all__ = ["ChipDataset", "extract_chip", "build_dataset"]


@dataclass
class ChipDataset:
    """Arrays-of-chips detection dataset."""

    images: np.ndarray  # (N, 4, S, S) float32
    labels: np.ndarray  # (N,) int64, 1 = crossing present
    boxes: np.ndarray   # (N, 4) float32 normalized (cx, cy, w, h); zeros when negative
    chip_size: int

    def __post_init__(self) -> None:
        n = len(self.images)
        if not (len(self.labels) == len(self.boxes) == n):
            raise ValueError("images/labels/boxes length mismatch")
        if self.images.ndim != 4 or self.images.shape[2] != self.chip_size:
            raise ValueError(f"bad image array shape {self.images.shape}")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def num_positive(self) -> int:
        return int((self.labels == 1).sum())

    def subset(self, indices: np.ndarray) -> "ChipDataset":
        return ChipDataset(
            self.images[indices], self.labels[indices], self.boxes[indices], self.chip_size
        )

    def split(self, train_fraction: float = 0.8, seed: int = 0
              ) -> tuple["ChipDataset", "ChipDataset"]:
        """Shuffled train/test split (paper: 80/20)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self))
        cut = int(round(train_fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def batches(self, batch_size: int, seed: int | None = None):
        """Yield (images, labels, boxes) minibatches; shuffles when seeded."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self))
        if seed is not None:
            np.random.default_rng(seed).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start:start + batch_size]
            yield self.images[idx], self.labels[idx], self.boxes[idx]

    @staticmethod
    def concatenate(parts: list["ChipDataset"]) -> "ChipDataset":
        if not parts:
            raise ValueError("no datasets to concatenate")
        size = parts[0].chip_size
        if any(p.chip_size != size for p in parts):
            raise ValueError("chip sizes differ")
        return ChipDataset(
            np.concatenate([p.images for p in parts]),
            np.concatenate([p.labels for p in parts]),
            np.concatenate([p.boxes for p in parts]),
            size,
        )


def _normalized_box(crossing: Crossing, r0: int, c0: int, size: int) -> np.ndarray:
    cx = (crossing.col - c0) / size
    cy = (crossing.row - r0) / size
    w = crossing.width / size
    h = crossing.height / size
    return np.array([cx, cy, w, h], dtype=np.float32)


def extract_chip(scene: Scene, center: tuple[int, int], size: int
                 ) -> tuple[np.ndarray, Crossing | None, tuple[int, int]]:
    """Clip one ``size`` x ``size`` chip around ``center``.

    Returns (image, contained crossing or None, chip origin).  The chip is
    shifted inward when it would overflow the scene.  If several crossings
    fall inside, the one nearest the chip centre is the label (the others
    make the task slightly noisy, like real digitized data).
    """
    n = scene.size
    if size > n:
        raise ValueError(f"chip size {size} exceeds scene size {n}")
    r0 = int(np.clip(center[0] - size // 2, 0, n - size))
    c0 = int(np.clip(center[1] - size // 2, 0, n - size))
    image = scene.image[:, r0:r0 + size, c0:c0 + size]

    inside = [
        cr for cr in scene.crossings
        if r0 + 2 <= cr.row < r0 + size - 2 and c0 + 2 <= cr.col < c0 + size - 2
    ]
    if not inside:
        return image, None, (r0, c0)
    mid = (r0 + size / 2, c0 + size / 2)
    best = min(inside, key=lambda cr: (cr.row - mid[0]) ** 2 + (cr.col - mid[1]) ** 2)
    return image, best, (r0, c0)


def build_dataset(
    num_scenes: int = 4,
    chips_per_crossing: int = 6,
    negative_ratio: float = 1.0,
    chip_size: int = 100,
    jitter: int = 14,
    seed: int = 0,
    scene_size: int = 512,
) -> ChipDataset:
    """Generate the full detection dataset from synthetic watersheds.

    Positives: ``chips_per_crossing`` jittered chips per ground-truth
    crossing.  Negatives: ``negative_ratio`` x as many, half sampled on
    road/stream cells away from crossings (hard negatives), half uniform.
    """
    rng = np.random.default_rng(seed)
    images: list[np.ndarray] = []
    labels: list[int] = []
    boxes: list[np.ndarray] = []

    for s in range(num_scenes):
        scene = build_scene(WatershedConfig(size=scene_size, seed=seed * 1000 + s))
        n = scene.size
        for crossing in scene.crossings:
            for _ in range(chips_per_crossing):
                dr, dc = rng.integers(-jitter, jitter + 1, size=2)
                image, found, origin = extract_chip(
                    scene, (crossing.row + int(dr), crossing.col + int(dc)), chip_size
                )
                if found is None:
                    continue
                images.append(image)
                labels.append(1)
                boxes.append(_normalized_box(found, origin[0], origin[1], chip_size))

        wanted = int(round(negative_ratio * chips_per_crossing * len(scene.crossings)))
        hard_pool = np.argwhere(scene.roads | scene.streams)
        produced = 0
        attempts = 0
        while produced < wanted and attempts < 50 * wanted:
            attempts += 1
            if produced % 2 == 0 and len(hard_pool):
                r, c = hard_pool[rng.integers(len(hard_pool))]
            else:
                r, c = rng.integers(0, n, size=2)
            image, found, _ = extract_chip(scene, (int(r), int(c)), chip_size)
            if found is not None:
                continue
            images.append(image)
            labels.append(0)
            boxes.append(np.zeros(4, dtype=np.float32))
            produced += 1

    if not images:
        raise RuntimeError("dataset generation produced no chips; check scene config")
    return ChipDataset(
        np.stack(images).astype(np.float32),
        np.asarray(labels, dtype=np.int64),
        np.stack(boxes).astype(np.float32),
        chip_size,
    )
