"""repro.geo — synthetic watershed scenes and 4-band chip datasets
(the NAIP-imagery stand-in; see DESIGN.md substitution table)."""

from .augment import (
    augment_dataset,
    flip_horizontal,
    flip_vertical,
    radiometric_jitter,
    rotate90,
)
from .chips import ChipDataset, build_dataset, extract_chip
from .crossings import Crossing, find_crossings
from .landcover import LandClass, LandcoverMap, classify_landcover
from .orthophoto import BANDS, REFLECTANCE, render_orthophoto
from .raster import GeoRaster, GeoTransform, crossings_to_geojson
from .roads import imprint_embankments, road_mask
from .scene import Scene, build_scene
from .synthesis import WatershedConfig, synthesize_dem

__all__ = [
    "WatershedConfig",
    "synthesize_dem",
    "road_mask",
    "imprint_embankments",
    "Crossing",
    "find_crossings",
    "LandClass",
    "LandcoverMap",
    "classify_landcover",
    "BANDS",
    "REFLECTANCE",
    "render_orthophoto",
    "Scene",
    "build_scene",
    "ChipDataset",
    "build_dataset",
    "extract_chip",
    "flip_horizontal",
    "flip_vertical",
    "rotate90",
    "radiometric_jitter",
    "augment_dataset",
    "GeoTransform",
    "GeoRaster",
    "crossings_to_geojson",
]
