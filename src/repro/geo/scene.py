"""Full scene assembly: DEM -> roads -> hydrography -> landcover -> image.

:func:`build_scene` is the one-call generator behind the dataset builder,
the connectivity example, and the hydro integration tests.  Everything is
deterministic in ``WatershedConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hydro import delineate_streams, priority_flood_fill
from .crossings import Crossing, find_crossings
from .landcover import LandcoverMap, classify_landcover
from .orthophoto import render_orthophoto
from .roads import imprint_embankments, road_mask
from .synthesis import WatershedConfig, synthesize_dem

__all__ = ["Scene", "build_scene"]


@dataclass(frozen=True)
class Scene:
    """One synthetic watershed scene with all derived layers."""

    config: WatershedConfig
    bare_dem: np.ndarray       # before embankments (true hydrography)
    dem: np.ndarray            # with road embankments (what LiDAR would see)
    roads: np.ndarray          # bool road-surface mask
    streams: np.ndarray        # bool true-hydrography stream mask
    crossings: list[Crossing]  # ground-truth drainage crossings
    landcover: LandcoverMap
    image: np.ndarray          # (4, H, W) float32 orthophoto

    @property
    def size(self) -> int:
        return self.config.size


def build_scene(config: WatershedConfig | None = None, **overrides) -> Scene:
    """Generate a complete scene from a :class:`WatershedConfig`.

    Keyword overrides are applied on top of the supplied (or default)
    config, e.g. ``build_scene(seed=7, size=192)``.
    """
    if config is None:
        config = WatershedConfig(**overrides)
    elif overrides:
        from dataclasses import replace

        config = replace(config, **overrides)

    bare = synthesize_dem(config)
    roads = road_mask(config)
    dem = imprint_embankments(bare, roads, config.embankment_m)

    # Epsilon-fill enforces drainable gradients across filled flats so D8
    # routing leaves no artificial interior pits.
    filled_bare = priority_flood_fill(bare, epsilon=1e-4)
    network = delineate_streams(filled_bare, threshold=config.stream_threshold)

    crossings = find_crossings(
        bare, roads, stream_threshold=config.stream_threshold
    )
    landcover = classify_landcover(
        dem, network.mask, roads, seed=config.seed
    )
    image = render_orthophoto(landcover, crossings, seed=config.seed)
    return Scene(
        config=config,
        bare_dem=bare,
        dem=dem,
        roads=roads,
        streams=network.mask,
        crossings=crossings,
        landcover=landcover,
        image=image,
    )
