"""Procedural DEM synthesis for the study-area stand-in.

The West Fork Big Blue watershed is a gently undulating loess plain
descending west to east.  We reproduce that morphology with spectral
synthesis: a Gaussian random field with a power-law (1/f^beta) spectrum —
the standard fractal-terrain model — superimposed on a regional gradient,
plus broad low-relief undulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WatershedConfig", "synthesize_dem"]


@dataclass(frozen=True)
class WatershedConfig:
    """Parameters of one synthetic watershed scene.

    size : raster edge length in cells (1 cell = 1 m, NAIP resolution).
    relief_m : peak-to-peak amplitude of the fractal component.
    gradient_m : total west-to-east elevation loss across the scene.
    beta : spectral exponent (2.0 ≈ smooth loess plain).
    road_spacing : cells between grid roads (dense rural section grid).
    embankment_m : how much road embankments rise above grade.
    stream_threshold : D8 support (cells) for stream delineation.
    seed : RNG seed; every derived artifact is deterministic in it.
    """

    size: int = 512
    relief_m: float = 6.0
    gradient_m: float = 10.0
    beta: float = 2.2
    road_spacing: int = 170
    road_width: int = 3
    embankment_m: float = 1.6
    stream_threshold: int = 4000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 32:
            raise ValueError("scene size must be >= 32 cells")
        if self.road_spacing < 16:
            raise ValueError("road spacing must be >= 16 cells")


def synthesize_dem(config: WatershedConfig) -> np.ndarray:
    """Generate the bare-earth DEM (before road embankments).

    Returns a ``(size, size)`` float array in meters.  Elevation descends
    from the west (column 0) to the east edge, as in the study area.
    """
    n = config.size
    rng = np.random.default_rng(config.seed)

    # Power-law Gaussian random field via FFT filtering of white noise.
    noise = rng.standard_normal((n, n))
    spectrum = np.fft.fft2(noise)
    fy = np.fft.fftfreq(n)[:, None]
    fx = np.fft.fftfreq(n)[None, :]
    radius = np.sqrt(fx**2 + fy**2)
    radius[0, 0] = radius.flat[np.abs(radius).argmax()]  # avoid div-by-zero at DC
    falloff = radius ** (-config.beta / 2.0)
    falloff[0, 0] = 0.0
    field = np.real(np.fft.ifft2(spectrum * falloff))
    field -= field.min()
    peak = field.max()
    if peak > 0:
        field *= config.relief_m / peak

    # Regional west -> east descent plus one broad undulation band.
    cols = np.linspace(1.0, 0.0, n)[None, :]
    regional = config.gradient_m * cols
    undulation = 0.3 * config.relief_m * np.sin(
        np.linspace(0, 2.5 * np.pi, n)[:, None] + 0.8
    )
    return field + regional + undulation
