"""Georeferencing and interchange for synthetic scenes.

Real drainage-crossing workflows live in GIS: rasters carry an affine
geotransform and detections ship as point features.  This module provides
the minimal, dependency-free equivalents so downstream users can hand the
reproduction's outputs to real tooling:

* :class:`GeoTransform` — the 6-coefficient affine (GDAL convention)
  mapping pixel (row, col) to world (x, y);
* :class:`GeoRaster` — an array + transform + CRS label, with window
  reads and npz round-trips;
* :func:`crossings_to_geojson` — detections/ground truth as a GeoJSON
  FeatureCollection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["GeoTransform", "GeoRaster", "crossings_to_geojson"]


@dataclass(frozen=True)
class GeoTransform:
    """GDAL-style affine: x = x0 + col*dx, y = y0 + row*dy (dy < 0 north-up)."""

    x0: float = 0.0
    dx: float = 1.0
    y0: float = 0.0
    dy: float = -1.0

    def __post_init__(self) -> None:
        if self.dx == 0 or self.dy == 0:
            raise ValueError("pixel sizes must be non-zero")

    def pixel_to_world(self, row: float, col: float) -> tuple[float, float]:
        return (self.x0 + col * self.dx, self.y0 + row * self.dy)

    def world_to_pixel(self, x: float, y: float) -> tuple[float, float]:
        return ((y - self.y0) / self.dy, (x - self.x0) / self.dx)


@dataclass
class GeoRaster:
    """A 2-D or (bands, H, W) array with georeferencing."""

    data: np.ndarray
    transform: GeoTransform = GeoTransform()
    crs: str = "EPSG:32614"  # UTM 14N — Nebraska study area

    def __post_init__(self) -> None:
        if self.data.ndim not in (2, 3):
            raise ValueError(f"raster must be 2-D or 3-D, got {self.data.ndim}-D")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def height(self) -> int:
        return self.data.shape[-2]

    @property
    def width(self) -> int:
        return self.data.shape[-1]

    def bounds(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) of the raster extent."""
        corners = [
            self.transform.pixel_to_world(r, c)
            for r in (0, self.height) for c in (0, self.width)
        ]
        xs = [p[0] for p in corners]
        ys = [p[1] for p in corners]
        return (min(xs), min(ys), max(xs), max(ys))

    def window(self, row0: int, col0: int, height: int, width: int) -> "GeoRaster":
        """Read a sub-raster; the transform is shifted accordingly."""
        if row0 < 0 or col0 < 0 or row0 + height > self.height \
                or col0 + width > self.width:
            raise IndexError("window outside raster extent")
        x0, y0 = self.transform.pixel_to_world(row0, col0)
        sub = self.data[..., row0:row0 + height, col0:col0 + width]
        return GeoRaster(sub, GeoTransform(x0, self.transform.dx,
                                           y0, self.transform.dy), self.crs)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path, data=self.data,
            transform=np.array([self.transform.x0, self.transform.dx,
                                self.transform.y0, self.transform.dy]),
            crs=np.frombuffer(self.crs.encode(), dtype=np.uint8),
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GeoRaster":
        with np.load(Path(path)) as data:
            x0, dx, y0, dy = data["transform"]
            return cls(
                data["data"],
                GeoTransform(float(x0), float(dx), float(y0), float(dy)),
                bytes(data["crs"].tobytes()).decode(),
            )


def crossings_to_geojson(
    crossings,
    transform: GeoTransform = GeoTransform(),
    crs: str = "EPSG:32614",
) -> str:
    """Serialize crossings/detections to a GeoJSON FeatureCollection.

    Accepts anything with ``row``/``col`` attributes; ``confidence`` is
    included when present (detections), omitted for ground truth.
    """
    features = []
    for i, crossing in enumerate(crossings):
        x, y = transform.pixel_to_world(crossing.row, crossing.col)
        properties: dict = {"id": i}
        confidence = getattr(crossing, "confidence", None)
        if confidence is not None:
            properties["confidence"] = round(float(confidence), 4)
        features.append({
            "type": "Feature",
            "geometry": {"type": "Point", "coordinates": [x, y]},
            "properties": properties,
        })
    return json.dumps({
        "type": "FeatureCollection",
        "crs": {"type": "name", "properties": {"name": crs}},
        "features": features,
    }, indent=2)
