"""Synthetic road network and embankment imprinting.

The study watershed's "dense road networks" follow the Public Land Survey
section grid; we generate gently meandering horizontal and vertical roads
at a configurable spacing, then raise the DEM beneath them — creating the
flow barriers ("digital dams") that drainage crossings must reopen.
"""

from __future__ import annotations

import numpy as np

from .synthesis import WatershedConfig

__all__ = ["road_mask", "imprint_embankments"]


def _centerlines(config: WatershedConfig, rng: np.random.Generator) -> list[np.ndarray]:
    """Row index of each horizontal road / col index of each vertical road,
    as arrays of per-column (per-row) positions with gentle meander."""
    n = config.size
    lines: list[np.ndarray] = []
    t = np.arange(n)
    offset = config.road_spacing // 2
    for base in range(offset, n - 4, config.road_spacing):
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(0.0, 2.0)
        meander = amp * np.sin(2 * np.pi * t / n + phase)
        lines.append(np.clip(np.round(base + meander).astype(int), 0, n - 1))
    return lines


def road_mask(config: WatershedConfig) -> np.ndarray:
    """Boolean raster of road surface cells (grid roads, ``road_width`` wide)."""
    n = config.size
    rng = np.random.default_rng(config.seed + 104729)  # independent substream
    mask = np.zeros((n, n), dtype=bool)
    half = config.road_width // 2

    for line in _centerlines(config, rng):          # horizontal roads
        for c in range(n):
            r = line[c]
            mask[max(0, r - half):min(n, r + half + 1), c] = True
    for line in _centerlines(config, rng):          # vertical roads
        for r in range(n):
            c = line[r]
            mask[r, max(0, c - half):min(n, c + half + 1)] = True
    return mask


def imprint_embankments(dem: np.ndarray, roads: np.ndarray,
                        height_m: float) -> np.ndarray:
    """Raise the DEM under road cells by ``height_m`` (returns a copy).

    A one-cell shoulder at half height softens the profile, as graded
    embankments do; the crest still blocks D8 flow across the road.
    """
    if dem.shape != roads.shape:
        raise ValueError(f"shape mismatch: dem {dem.shape} vs roads {roads.shape}")
    out = np.asarray(dem, dtype=float).copy()
    out[roads] += height_m
    shoulder = np.zeros_like(roads)
    shoulder[1:, :] |= roads[:-1, :]
    shoulder[:-1, :] |= roads[1:, :]
    shoulder[:, 1:] |= roads[:, :-1]
    shoulder[:, :-1] |= roads[:, 1:]
    shoulder &= ~roads
    out[shoulder] += 0.5 * height_m
    return out
