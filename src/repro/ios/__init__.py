"""repro.ios — Inter-Operator Scheduler (Ding et al., MLSys 2021) rebuilt
on the simulated GPU: DP schedule search, baselines, and measurement."""

from .aot import (
    SchedulerCostRow,
    nimble_style_schedule,
    rammer_style_schedule,
    scheduling_cost_comparison,
)
from .baselines import greedy_schedule, sequential_schedule, single_stage_schedule
from .cost import (
    MeasuredCosts,
    MeasuredRunResult,
    measure_latency,
    measure_schedule,
    schedule_overheads,
)
from .dp import DPScheduler, count_downsets, dp_schedule
from .multigpu import (
    GroupPlacement,
    MultiGpuSchedule,
    MultiGpuStagePlan,
    multigpu_schedule,
)
from .optimizer import OptimizationResult, compare_strategies, optimize_schedule
from .schedule import Group, Schedule, Stage, groups_from_ops

__all__ = [
    "Group",
    "Stage",
    "Schedule",
    "groups_from_ops",
    "DPScheduler",
    "dp_schedule",
    "count_downsets",
    "sequential_schedule",
    "greedy_schedule",
    "single_stage_schedule",
    "measure_schedule",
    "measure_latency",
    "schedule_overheads",
    "MeasuredCosts",
    "MeasuredRunResult",
    "OptimizationResult",
    "optimize_schedule",
    "compare_strategies",
    "rammer_style_schedule",
    "nimble_style_schedule",
    "SchedulerCostRow",
    "scheduling_cost_comparison",
    "GroupPlacement",
    "MultiGpuStagePlan",
    "MultiGpuSchedule",
    "multigpu_schedule",
]
