"""End-to-end schedule optimization entry points.

``optimize_schedule`` is the library's main IOS API: give it a graph and a
batch size, get back the measured optimal schedule next to the sequential
baseline — the two columns of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..graph.ir import Graph
from .baselines import greedy_schedule, sequential_schedule, single_stage_schedule
from .cost import measure_latency
from .dp import dp_schedule
from .schedule import Schedule

__all__ = ["OptimizationResult", "optimize_schedule", "compare_strategies"]

_STRATEGIES = {
    "sequential": sequential_schedule,
    "greedy": greedy_schedule,
    "single-stage": single_stage_schedule,
}


@dataclass(frozen=True)
class OptimizationResult:
    """Sequential-vs-optimized outcome for one graph and batch size."""

    graph_name: str
    batch: int
    sequential: Schedule
    optimized: Schedule

    @property
    def sequential_latency_us(self) -> float:
        assert self.sequential.latency_us is not None
        return self.sequential.latency_us

    @property
    def optimized_latency_us(self) -> float:
        assert self.optimized.latency_us is not None
        return self.optimized.latency_us

    @property
    def speedup(self) -> float:
        return self.sequential_latency_us / self.optimized_latency_us


def optimize_schedule(
    graph: Graph,
    batch: int,
    device: DeviceSpec | None = None,
    max_stage_ops: int | None = None,
) -> OptimizationResult:
    """Run IOS on ``graph`` and measure both schedules on the simulator."""
    device = device if device is not None else DeviceSpec()
    seq = sequential_schedule(graph, batch)
    seq = seq.with_latency(measure_latency(graph, seq, device))
    opt = dp_schedule(graph, batch, device, max_stage_ops=max_stage_ops)
    opt = opt.with_latency(measure_latency(graph, opt, device))
    return OptimizationResult(graph.name, batch, seq, opt)


def compare_strategies(
    graph: Graph,
    batch: int,
    device: DeviceSpec | None = None,
) -> dict[str, Schedule]:
    """Measure every scheduling strategy (ablation A1's raw data)."""
    device = device if device is not None else DeviceSpec()
    out: dict[str, Schedule] = {}
    for name, build in _STRATEGIES.items():
        schedule = build(graph, batch)
        out[name] = schedule.with_latency(measure_latency(graph, schedule, device))
    dp = dp_schedule(graph, batch, device)
    out["ios-dp"] = dp.with_latency(measure_latency(graph, dp, device))
    return out
