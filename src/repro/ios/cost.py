"""Schedule latency measurement on the simulated GPU.

The IOS paper *measures* candidate stages on the device rather than
trusting an analytic model; here the measured quantity is a fresh
:class:`~repro.gpusim.GraphExecutor` run, so DP cost (built from
``plan_stage``) and measured cost agree by construction — a property the
test suite asserts.
"""

from __future__ import annotations

from ..gpusim.device import DeviceSpec
from ..gpusim.executor import GraphExecutor, RunResult
from ..graph.ir import Graph
from .schedule import Schedule

__all__ = ["measure_schedule", "measure_latency", "schedule_overheads"]


def measure_schedule(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec | None = None,
) -> RunResult:
    """Run ``schedule`` once on a fresh simulated device and return the
    full :class:`RunResult` (latency, stage breakdown, trace, memory)."""
    executor = GraphExecutor(graph, device=device)
    return executor.run(schedule, schedule.batch)


def measure_latency(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec | None = None,
) -> float:
    """End-to-end inference latency of ``schedule`` in microseconds."""
    return measure_schedule(graph, schedule, device).latency_us


def schedule_overheads(result: RunResult) -> dict[str, float]:
    """Decompose a run into device kernel time vs host overheads (us).

    Returns keys ``kernel``, ``sync``, ``launch``, ``memcpy``, ``other``;
    useful for explaining *where* IOS wins over the sequential schedule.
    """
    kernel = sum(e.duration_us for e in result.trace.kernels)
    api = result.trace.api_time_by_name()
    sync = api.get("cudaStreamSynchronize", 0.0) + api.get("cudaDeviceSynchronize", 0.0)
    launch = api.get("cudaLaunchKernel", 0.0)
    memcpy = api.get("cudaMemcpyAsync", 0.0)
    other = sum(api.values()) - sync - launch - memcpy
    return {
        "kernel": kernel,
        "sync": sync,
        "launch": launch,
        "memcpy": memcpy,
        "other": other,
        "total": result.latency_us,
    }
