"""Schedule latency measurement: simulated GPU or measured kernel costs.

The IOS paper *measures* candidate stages on the device rather than
trusting an analytic model.  Two cost sources implement that idea here:

* the original path runs a fresh :class:`~repro.gpusim.GraphExecutor`
  over the simulated device, so DP cost (built from ``plan_stage``) and
  measured cost agree by construction — a property the test suite
  asserts;
* :class:`MeasuredCosts` wraps *real* per-operator timings (the compiled
  engine's per-step wall clocks, see :mod:`repro.engine.sched`) and
  prices a stage as its makespan over a bounded worker pool plus the
  thread dispatch/join overheads concurrency actually costs on the host.

Both feed the same :class:`~repro.ios.dp.DPScheduler` (via its
``cost_source`` parameter) and the same :func:`measure_schedule` /
:func:`schedule_overheads` reporting seam — existing gpusim callers keep
their signatures, engine callers pass ``source=MeasuredCosts(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..gpusim.device import DeviceSpec
from ..gpusim.executor import GraphExecutor, RunResult
from ..graph.ir import Graph
from .schedule import Schedule

__all__ = [
    "MeasuredCosts",
    "MeasuredRunResult",
    "measure_schedule",
    "measure_latency",
    "schedule_overheads",
]


class MeasuredCosts:
    """Stage-cost source built from measured per-operator latencies.

    Parameters
    ----------
    costs_us   : operator name -> measured solo latency in microseconds.
    workers    : concurrency bound — how many groups can genuinely run
                 at once (host threads on CPU, streams on GPU).  Groups
                 beyond the bound are packed longest-first (LPT), so a
                 3-group stage on 2 workers is priced honestly instead
                 of assuming infinite parallelism.
    dispatch_us: overhead of handing one extra group to a worker
                 (thread-pool submit + wakeup).  Charged per group
                 beyond the first, only on parallel stages.
    sync_us    : stage-barrier join overhead, charged once per parallel
                 stage.  Sequential (single-group) stages cost exactly
                 the sum of their operator times — matching how a
                 sequential program actually executes, with no barrier.
    """

    strategy = "ios-dp-measured"

    def __init__(self, costs_us: Mapping[str, float], workers: int = 1,
                 dispatch_us: float = 0.0, sync_us: float = 0.0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.costs_us = {name: float(us) for name, us in costs_us.items()}
        self.workers = int(workers)
        self.dispatch_us = float(dispatch_us)
        self.sync_us = float(sync_us)

    def op_cost(self, name: str) -> float:
        return self.costs_us[name]

    def _group_span(self, group) -> float:
        ops = getattr(group, "ops", group)
        return sum(self.costs_us[name] for name in ops)

    def stage_cost(self, groups: Sequence) -> float:
        """Host-observed latency of one stage in microseconds.

        Single-group stages run inline on the calling thread (no
        dispatch, no barrier).  Multi-group stages run concurrently:
        latency is the LPT makespan over ``workers`` lanes plus the
        dispatch/join overheads.
        """
        spans = sorted((self._group_span(g) for g in groups), reverse=True)
        if not spans:
            raise ValueError("empty stage")
        if len(spans) == 1:
            return spans[0]
        lanes = [0.0] * min(self.workers, len(spans))
        for span in spans:
            lanes[lanes.index(min(lanes))] += span
        return (max(lanes)
                + self.dispatch_us * (len(spans) - 1)
                + self.sync_us)

    def stage_latencies(self, schedule: Schedule) -> list[float]:
        return [self.stage_cost(stage.groups) for stage in schedule.stages]

    def schedule_latency(self, schedule: Schedule) -> float:
        """End-to-end latency of ``schedule`` under these costs (us)."""
        return sum(self.stage_latencies(schedule))


@dataclass(frozen=True)
class MeasuredRunResult:
    """Measured-cost counterpart of :class:`~repro.gpusim.executor.RunResult`.

    Carries what :func:`schedule_overheads` needs to decompose the run:
    total operator (kernel) time vs the concurrency overheads the
    schedule added.
    """

    batch: int
    latency_us: float
    stage_latencies_us: list[float]
    num_stages: int
    kernel_us: float

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1e3

    @property
    def overhead_us(self) -> float:
        return max(0.0, self.latency_us - self.kernel_us)


def measure_schedule(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec | None = None,
    *,
    source: MeasuredCosts | None = None,
) -> RunResult | MeasuredRunResult:
    """Measure ``schedule`` once and return the full result.

    Without ``source`` this is the original simulated-GPU path: a fresh
    :class:`GraphExecutor` run (latency, stage breakdown, trace,
    memory).  With ``source`` the schedule is priced under the measured
    per-operator costs instead and a :class:`MeasuredRunResult` comes
    back — no simulator involved.
    """
    if source is not None:
        stage_latencies = source.stage_latencies(schedule)
        kernel = sum(
            source.op_cost(name)
            for stage in schedule.stages
            for group in stage.groups
            for name in group.ops
        )
        return MeasuredRunResult(
            batch=schedule.batch,
            latency_us=sum(stage_latencies),
            stage_latencies_us=stage_latencies,
            num_stages=schedule.num_stages,
            kernel_us=kernel,
        )
    executor = GraphExecutor(graph, device=device)
    return executor.run(schedule, schedule.batch)


def measure_latency(
    graph: Graph,
    schedule: Schedule,
    device: DeviceSpec | None = None,
    *,
    source: MeasuredCosts | None = None,
) -> float:
    """End-to-end inference latency of ``schedule`` in microseconds."""
    return measure_schedule(graph, schedule, device, source=source).latency_us


def schedule_overheads(result: RunResult | MeasuredRunResult) -> dict[str, float]:
    """Decompose a run into device kernel time vs host overheads (us).

    Returns keys ``kernel``, ``sync``, ``launch``, ``memcpy``, ``other``;
    useful for explaining *where* IOS wins over the sequential schedule.
    Accepts both the simulated :class:`RunResult` (overheads read from
    the CUDA API trace) and a :class:`MeasuredRunResult` (everything
    beyond operator time is barrier/dispatch overhead, reported as
    ``sync``).
    """
    if isinstance(result, MeasuredRunResult):
        return {
            "kernel": result.kernel_us,
            "sync": result.overhead_us,
            "launch": 0.0,
            "memcpy": 0.0,
            "other": 0.0,
            "total": result.latency_us,
        }
    kernel = sum(e.duration_us for e in result.trace.kernels)
    api = result.trace.api_time_by_name()
    sync = api.get("cudaStreamSynchronize", 0.0) + api.get("cudaDeviceSynchronize", 0.0)
    launch = api.get("cudaLaunchKernel", 0.0)
    memcpy = api.get("cudaMemcpyAsync", 0.0)
    other = sum(api.values()) - sync - launch - memcpy
    return {
        "kernel": kernel,
        "sync": sync,
        "launch": launch,
        "memcpy": memcpy,
        "other": other,
        "total": result.latency_us,
    }
