"""Ahead-of-time / compiler-style scheduling baselines (§8.3).

The paper contrasts IOS with Rammer and Nimble: those systems avoid IOS's
measurement-driven dynamic program by generating a static schedule ahead
of time, trading schedule quality for near-zero scheduling cost.  Two
analogues are provided for the scheduling-cost ablation:

* :func:`rammer_style_schedule` — a purely static heuristic: wavefront
  stages whose co-resident operators are grouped by dependency component
  (inter- + intra-operator parallelism, no cost model, no measurement);
* :func:`nimble_style_schedule` — schedule *reuse*: run the IOS DP once
  at a pilot batch size and re-apply the stage structure at every other
  batch size (ahead-of-time scheduling amortized across deployments).

:func:`scheduling_cost_comparison` measures both axes — time spent
scheduling and the latency of the produced schedule — for each approach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..graph.ir import Graph
from .baselines import greedy_schedule
from .cost import measure_latency
from .dp import dp_schedule
from .schedule import Schedule, Stage, groups_from_ops

__all__ = ["rammer_style_schedule", "nimble_style_schedule",
           "SchedulerCostRow", "scheduling_cost_comparison"]


def rammer_style_schedule(graph: Graph, batch: int) -> Schedule:
    """Static wavefront schedule with component grouping (no cost model).

    Each stage takes every operator whose dependencies are satisfied,
    grouped into dependency components — the kind of static rTask plan a
    compile-time scheduler emits without measuring anything.
    """
    done: set[str] = {op.name for op in graph.input_nodes()}
    pending = [op.name for op in graph.compute_nodes()]
    stages: list[Stage] = []
    while pending:
        ready = {n for n in pending if all(d in done for d in graph[n].inputs)}
        if not ready:
            raise RuntimeError("dependency cycle in wavefront construction")
        stages.append(Stage(groups_from_ops(graph, ready)))
        done |= ready
        pending = [n for n in pending if n not in done]
    return Schedule(graph.name, batch, tuple(stages), strategy="rammer-style")


def nimble_style_schedule(graph: Graph, batch: int, pilot_batch: int = 1,
                          device: DeviceSpec | None = None) -> Schedule:
    """Reuse the DP schedule found at ``pilot_batch`` for ``batch``.

    Ahead-of-time scheduling: the (expensive) search runs once; deployment
    batches inherit the stage structure.  Quality degrades exactly where
    the optimal structure is batch-dependent, which the ablation shows.
    """
    pilot = dp_schedule(graph, pilot_batch, device)
    return Schedule(graph.name, batch, pilot.stages, strategy="nimble-style")


@dataclass(frozen=True)
class SchedulerCostRow:
    """One (strategy, scheduling cost, schedule quality) measurement."""

    strategy: str
    scheduling_ms: float
    latency_us: float
    num_stages: int


def scheduling_cost_comparison(
    graph: Graph,
    batch: int,
    device: DeviceSpec | None = None,
) -> list[SchedulerCostRow]:
    """Measure scheduling time vs produced-schedule latency per approach."""
    rows: list[SchedulerCostRow] = []

    def add(name: str, build) -> None:
        start = time.perf_counter()
        schedule = build()
        elapsed_ms = 1e3 * (time.perf_counter() - start)
        latency = measure_latency(graph, schedule, device)
        rows.append(SchedulerCostRow(name, elapsed_ms, latency,
                                     schedule.num_stages))

    add("ios-dp", lambda: dp_schedule(graph, batch, device))
    add("rammer-style", lambda: rammer_style_schedule(graph, batch))
    add("nimble-style(reuse@1)",
        lambda: nimble_style_schedule(graph, batch, pilot_batch=1, device=device))
    add("greedy", lambda: greedy_schedule(graph, batch))
    return rows
