"""Hierarchical multi-GPU inter-operator scheduling (HIOS-style extension).

The paper flags multi-GPU scheduling as future work and cites HIOS (Kundu
& Shu, Cluster 2023), which extends IOS with *inter-GPU* operator
parallelism: independent branches of a DAG run on different GPUs, paying
PCIe transfer costs whenever an edge crosses devices.

This module implements that extension analytically on top of the same
stage DP: stages are chosen by the single-GPU down-set enumeration, and
within each stage the parallel groups are placed onto devices with a
longest-processing-time (LPT) assignment.  Stage latency becomes::

    max_over_devices(device span) + serialized cross-device transfers + sync

so multi-GPU wins exactly when branch compute dominates transfer cost —
wide Inception-style blocks — and loses on linear chains, which the tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..gpusim.kernels import KernelSpec
from ..graph.ir import Graph
from .dp import DPScheduler
from .schedule import Schedule

__all__ = ["GroupPlacement", "MultiGpuStagePlan", "MultiGpuSchedule",
           "multigpu_schedule"]

#: Effective GPU<->GPU transfer bandwidth (PCIe p2p, bytes/s).
_P2P_BANDWIDTH = 22e9
_P2P_OVERHEAD_US = 5.0
_DTYPE_BYTES = 4


@dataclass(frozen=True)
class GroupPlacement:
    """One group of one stage pinned to a device."""

    ops: tuple[str, ...]
    device_index: int
    span_us: float


@dataclass(frozen=True)
class MultiGpuStagePlan:
    """Placed stage with its latency decomposition."""

    placements: tuple[GroupPlacement, ...]
    compute_us: float
    transfer_us: float
    sync_us: float

    @property
    def latency_us(self) -> float:
        return self.compute_us + self.transfer_us + self.sync_us


@dataclass(frozen=True)
class MultiGpuSchedule:
    """A multi-device execution plan."""

    graph_name: str
    batch: int
    num_devices: int
    stages: tuple[MultiGpuStagePlan, ...]

    @property
    def latency_us(self) -> float:
        return sum(stage.latency_us for stage in self.stages)

    @property
    def transfer_us(self) -> float:
        return sum(stage.transfer_us for stage in self.stages)

    def device_of(self, op: str) -> int:
        for stage in self.stages:
            for placement in stage.placements:
                if op in placement.ops:
                    return placement.device_index
        raise KeyError(op)

    def describe(self) -> str:
        lines = [f"MultiGpuSchedule[{self.num_devices} GPUs] for "
                 f"{self.graph_name} @ batch {self.batch} "
                 f"({self.latency_us:.1f} us, {self.transfer_us:.1f} us transfers)"]
        for i, stage in enumerate(self.stages):
            cells = "  |  ".join(
                f"gpu{p.device_index}: {' -> '.join(p.ops)}"
                for p in stage.placements
            )
            lines.append(f"  stage {i}: {cells}")
        return "\n".join(lines)


def _group_span(ops: tuple[str, ...], specs: dict[str, KernelSpec],
                device: DeviceSpec) -> float:
    return sum(specs[name].solo_us + device.kernel_launch_us for name in ops)


def _lpt_assign(group_spans: list[float], num_devices: int) -> list[int]:
    """Longest-processing-time first assignment; returns device per group."""
    order = sorted(range(len(group_spans)), key=lambda i: -group_spans[i])
    loads = [0.0] * num_devices
    assignment = [0] * len(group_spans)
    for i in order:
        device = min(range(num_devices), key=loads.__getitem__)
        assignment[i] = device
        loads[device] += group_spans[i]
    return assignment


def multigpu_schedule(
    graph: Graph,
    batch: int,
    num_devices: int = 2,
    device: DeviceSpec | None = None,
) -> MultiGpuSchedule:
    """Place the IOS-DP stages of ``graph`` across ``num_devices`` GPUs.

    Uses the single-GPU DP to find the stage structure (which already
    maximizes mergeable parallelism), then LPT-balances each stage's
    groups over the devices and charges PCIe transfers for every edge
    whose producer lives on a different device — including the edges
    *between* stages.
    """
    if num_devices < 1:
        raise ValueError("need at least one device")
    device = device if device is not None else DeviceSpec()
    scheduler = DPScheduler(graph, batch, device)
    single: Schedule = scheduler.solve()
    specs = scheduler._specs

    op_device: dict[str, int] = {op.name: 0 for op in graph.input_nodes()}
    stages: list[MultiGpuStagePlan] = []
    for stage in single.stages:
        groups = [g.ops for g in stage.groups]
        spans = [_group_span(ops, specs, device) for ops in groups]
        assignment = _lpt_assign(spans, min(num_devices, len(groups)))

        placements = tuple(
            GroupPlacement(ops=ops, device_index=dev, span_us=span)
            for ops, span, dev in zip(groups, spans, assignment)
        )
        loads: dict[int, float] = {}
        for p in placements:
            loads[p.device_index] = loads.get(p.device_index, 0.0) + p.span_us
            for name in p.ops:
                op_device[name] = p.device_index
        compute = max(loads.values())

        # Cross-device input edges pay a serialized PCIe p2p transfer.
        transfer = 0.0
        for p in placements:
            group_set = set(p.ops)
            for name in p.ops:
                for dep in graph[name].inputs:
                    if dep in group_set:
                        continue
                    src = op_device.get(dep, 0)
                    if src != p.device_index:
                        nbytes = batch * graph[dep].out_elems * _DTYPE_BYTES
                        transfer += _P2P_OVERHEAD_US + 1e6 * nbytes / _P2P_BANDWIDTH

        stages.append(MultiGpuStagePlan(
            placements=placements,
            compute_us=compute,
            transfer_us=transfer,
            sync_us=device.stage_sync_us,
        ))
    return MultiGpuSchedule(
        graph_name=graph.name,
        batch=batch,
        num_devices=num_devices,
        stages=tuple(stages),
    )
