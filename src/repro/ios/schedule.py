"""Stage/Group/Schedule data structures for the Inter-Operator Scheduler.

IOS (Ding et al., MLSys 2021) describes an execution plan as a sequence of
*stages*; each stage holds *groups* that run concurrently on separate CUDA
streams; operators inside a group run sequentially.  Stages are separated
by synchronization barriers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..graph.ir import Graph

__all__ = ["Group", "Stage", "Schedule", "groups_from_ops"]


@dataclass(frozen=True)
class Group:
    """Operators executed sequentially on one stream."""

    ops: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("empty group")

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class Stage:
    """Concurrent groups bounded by a synchronization barrier."""

    groups: tuple[Group, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("empty stage")

    @property
    def num_ops(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def parallelism(self) -> int:
        return len(self.groups)


@dataclass(frozen=True)
class Schedule:
    """A complete execution plan for one graph at one batch size."""

    graph_name: str
    batch: int
    stages: tuple[Stage, ...]
    latency_us: float | None = None
    strategy: str = ""

    def stage_groups(self) -> list[list[list[str]]]:
        """Nested-list form consumed by :class:`repro.gpusim.GraphExecutor`."""
        return [[list(g.ops) for g in stage.groups] for stage in self.stages]

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_ops(self) -> int:
        return sum(stage.num_ops for stage in self.stages)

    @property
    def max_parallelism(self) -> int:
        return max(stage.parallelism for stage in self.stages)

    def with_latency(self, latency_us: float) -> "Schedule":
        return Schedule(self.graph_name, self.batch, self.stages, latency_us, self.strategy)

    @property
    def schedule_hash(self) -> str:
        """Content hash of the *plan* (graph, batch, stage structure).

        Annotations — measured latency, strategy label — are excluded,
        so a schedule keeps its hash when re-annotated.  Pool workers
        compare this against the parent's hash to verify they adopted
        the exact schedule that was shipped (``from_json`` checks it
        automatically when the serialized form carries one).
        """
        canon = json.dumps(
            {"graph": self.graph_name, "batch": self.batch,
             "stages": self.stage_groups()},
            separators=(",", ":"),
        )
        return hashlib.sha1(canon.encode()).hexdigest()

    # -- serialization (deploy a found schedule without re-searching) ----
    def to_json(self) -> str:
        return json.dumps({
            "graph_name": self.graph_name,
            "batch": self.batch,
            "strategy": self.strategy,
            "latency_us": self.latency_us,
            "schedule_hash": self.schedule_hash,
            "stages": self.stage_groups(),
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        data = json.loads(text)
        stages = tuple(
            Stage(tuple(Group(tuple(group)) for group in stage))
            for stage in data["stages"]
        )
        schedule = cls(
            graph_name=data["graph_name"],
            batch=int(data["batch"]),
            stages=stages,
            latency_us=data.get("latency_us"),
            strategy=data.get("strategy", ""),
        )
        expected = data.get("schedule_hash")
        if expected is not None and expected != schedule.schedule_hash:
            raise ValueError(
                f"schedule hash mismatch: payload says {expected}, "
                f"reconstructed plan hashes to {schedule.schedule_hash} "
                "(corrupted or hand-edited schedule)"
            )
        return schedule

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Schedule":
        return cls.from_json(Path(path).read_text())

    def describe(self) -> str:
        """Human-readable plan, one stage per line."""
        lines = [
            f"Schedule[{self.strategy}] for {self.graph_name} @ batch {self.batch} "
            f"({self.num_stages} stages"
            + (f", {self.latency_us:.1f} us)" if self.latency_us is not None else ")")
        ]
        for i, stage in enumerate(self.stages):
            rendered = "  |  ".join(" -> ".join(g.ops) for g in stage.groups)
            lines.append(f"  stage {i}: {rendered}")
        return "\n".join(lines)


def groups_from_ops(graph: Graph, ops: frozenset[str] | set[str]) -> tuple[Group, ...]:
    """Partition a stage's operator set into its parallel groups.

    Groups are the weakly-connected components of the dependency subgraph
    induced by ``ops``; each is ordered topologically (graph insertion
    order restricted to the component), making it a valid sequential
    stream program.  Components are emitted in topological order of their
    first operator so output is deterministic.
    """
    ops = set(ops)
    parent: dict[str, str] = {name: name for name in ops}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for name in ops:
        for dep in graph[name].inputs:
            if dep in ops:
                union(name, dep)

    ordered = [name for name in graph.names() if name in ops]
    components: dict[str, list[str]] = {}
    for name in ordered:
        components.setdefault(find(name), []).append(name)
    return tuple(Group(tuple(members)) for members in components.values())
