"""Baseline schedulers: sequential (the paper's comparison point) and a
greedy max-parallel heuristic (used by the scheduler ablation A1).
"""

from __future__ import annotations

from ..graph.ir import Graph
from .schedule import Group, Schedule, Stage, groups_from_ops

__all__ = ["sequential_schedule", "greedy_schedule", "single_stage_schedule"]


def sequential_schedule(graph: Graph, batch: int) -> Schedule:
    """One operator per stage — how an eager framework with a sync after
    every op behaves, and Table 2's 'Sequential Inference Latency' column."""
    stages = tuple(
        Stage((Group((op.name,)),)) for op in graph.compute_nodes()
    )
    return Schedule(graph.name, batch, stages, strategy="sequential")


def greedy_schedule(graph: Graph, batch: int) -> Schedule:
    """Maximal-parallelism greedy: every stage takes *all* currently ready
    operators, one group per operator.

    This exposes all inter-operator parallelism but pays a barrier per
    wavefront and never amortizes launches inside a group — the classic
    heuristic the IOS paper argues against.
    """
    done: set[str] = {op.name for op in graph.input_nodes()}
    pending = [op.name for op in graph.compute_nodes()]
    stages: list[Stage] = []
    while pending:
        ready = [n for n in pending if all(d in done for d in graph[n].inputs)]
        if not ready:
            raise RuntimeError("dependency cycle while building greedy schedule")
        stages.append(Stage(tuple(Group((n,)) for n in ready)))
        done.update(ready)
        pending = [n for n in pending if n not in done]
    return Schedule(graph.name, batch, tuple(stages), strategy="greedy")


def single_stage_schedule(graph: Graph, batch: int) -> Schedule:
    """Everything in one stage, grouped by dependency components.

    For a connected graph this degenerates to one sequential group with a
    single barrier — the minimum-synchronization plan.  Useful as the
    other extreme in the scheduler ablation.
    """
    ops = frozenset(op.name for op in graph.compute_nodes())
    return Schedule(
        graph.name, batch, (Stage(groups_from_ops(graph, ops)),),
        strategy="single-stage",
    )
