"""The IOS dynamic program: optimal stage/group partitioning of a DAG.

Following Ding et al. (MLSys 2021), the scheduler minimizes total stage
latency over all feasible partitions of the computation graph into stages
of parallel groups.  State = the set of still-unscheduled operators
(always an *up-set* of the DAG); transition = choosing the next stage,
which must be a *down-set* of the remaining operators (all external
dependencies already completed).  The parallel groups of a candidate
stage are its weakly-connected dependency components, and the stage cost
comes from the same :func:`repro.gpusim.executor.plan_stage` model the
executor uses to run the plan — so "optimal" here is optimal with respect
to the measured simulator, which tests verify by exhaustive comparison on
small random DAGs.

Sets are bitmasks over the compute nodes, and candidate down-sets are
enumerated with topological include/exclude pruning (excluding a node
prunes all of its successors), which keeps enumeration linear in the
number of *valid* down-sets rather than 2^n.
"""

from __future__ import annotations

from functools import lru_cache
from ..gpusim.device import DeviceSpec
from ..gpusim.executor import plan_stage
from ..gpusim.kernels import KernelCostModel, KernelSpec
from ..graph.ir import Graph
from .schedule import Group, Schedule, Stage, groups_from_ops

__all__ = ["DPScheduler", "dp_schedule", "count_downsets"]


class DPScheduler:
    """Latency-optimal IOS scheduling of one graph at one batch size."""

    def __init__(
        self,
        graph: Graph,
        batch: int,
        device: DeviceSpec | None = None,
        max_stage_ops: int | None = None,
        max_groups: int | None = None,
        cost_source=None,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.batch = batch
        self.device = device if device is not None else DeviceSpec()
        self.max_stage_ops = max_stage_ops
        self.max_groups = max_groups
        #: alternative stage-cost provider (``stage_cost(groups) -> us``),
        #: e.g. :class:`repro.ios.cost.MeasuredCosts` built from real
        #: engine kernel timings.  When set, the analytic gpusim kernel
        #: model is bypassed entirely — the DP optimizes the measured
        #: quantity instead.
        self.cost_source = cost_source
        self._names = [op.name for op in graph.compute_nodes()]
        self._index = {name: i for i, name in enumerate(self._names)}
        self._n = len(self._names)
        # Predecessor bitmasks restricted to compute nodes (INPUTs are free).
        self._pred_mask = [0] * self._n
        for name in self._names:
            i = self._index[name]
            for dep in graph[name].inputs:
                j = self._index.get(dep)
                if j is not None:
                    self._pred_mask[i] |= 1 << j
        self._specs: dict[str, KernelSpec] = (
            {} if cost_source is not None
            else KernelCostModel(self.device).specs(graph, batch)
        )
        self._stage_cost_cache: dict[int, float] = {}
        self._stage_cost_calls = 0

    # -- candidate enumeration ------------------------------------------
    def _downsets(self, remaining: int) -> list[int]:
        """All non-empty down-sets of the ``remaining`` node set."""
        members = [i for i in range(self._n) if remaining >> i & 1]
        results: list[int] = []
        cap = self.max_stage_ops

        def rec(pos: int, current: int, size: int) -> None:
            if pos == len(members):
                if current:
                    results.append(current)
                return
            i = members[pos]
            # Include i only if all its remaining predecessors are included.
            if (self._pred_mask[i] & remaining & ~current) == 0 and (cap is None or size < cap):
                rec(pos + 1, current | (1 << i), size + 1)
            rec(pos + 1, current, size)

        rec(0, 0, 0)
        return results

    # -- costing ---------------------------------------------------------
    def _mask_names(self, mask: int) -> frozenset[str]:
        return frozenset(self._names[i] for i in range(self._n) if mask >> i & 1)

    def _stage_groups(self, mask: int) -> tuple[Group, ...]:
        return groups_from_ops(self.graph, self._mask_names(mask))

    def stage_cost(self, mask: int) -> float:
        """Latency of a candidate stage (memoized plan_stage evaluation)."""
        cached = self._stage_cost_cache.get(mask)
        if cached is not None:
            return cached
        groups = self._stage_groups(mask)
        if self.max_groups is not None and len(groups) > self.max_groups:
            cost = float("inf")
        elif self.cost_source is not None:
            cost = float(self.cost_source.stage_cost(groups))
        else:
            plan = plan_stage([g.ops for g in groups], self._specs, self.device)
            cost = plan.latency_us
        self._stage_cost_cache[mask] = cost
        self._stage_cost_calls += 1
        return cost

    # -- dynamic program ----------------------------------------------------
    def solve(self) -> Schedule:
        """Run the DP and return the latency-optimal schedule."""
        if self._n == 0:
            raise ValueError("graph has no compute nodes to schedule")
        full = (1 << self._n) - 1
        best_cost: dict[int, float] = {0: 0.0}
        best_stage: dict[int, int] = {}

        @lru_cache(maxsize=None)
        def downsets_of(remaining: int) -> tuple[int, ...]:
            return tuple(self._downsets(remaining))

        def f(remaining: int) -> float:
            known = best_cost.get(remaining)
            if known is not None:
                return known
            best = float("inf")
            choice = 0
            for stage_mask in downsets_of(remaining):
                cost = self.stage_cost(stage_mask)
                if cost >= best:
                    continue
                tail = f(remaining & ~stage_mask)
                total = cost + tail
                if total < best:
                    best = total
                    choice = stage_mask
            best_cost[remaining] = best
            best_stage[remaining] = choice
            return best

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 10 * self._n + 1000))
        try:
            total = f(full)
        finally:
            sys.setrecursionlimit(old_limit)

        stages: list[Stage] = []
        remaining = full
        while remaining:
            mask = best_stage[remaining]
            stages.append(Stage(self._stage_groups(mask)))
            remaining &= ~mask
        strategy = (getattr(self.cost_source, "strategy", None)
                    if self.cost_source is not None else None)
        return Schedule(
            graph_name=self.graph.name,
            batch=self.batch,
            stages=tuple(stages),
            latency_us=total,
            strategy=strategy or "ios-dp",
        )


def dp_schedule(
    graph: Graph,
    batch: int,
    device: DeviceSpec | None = None,
    max_stage_ops: int | None = None,
    max_groups: int | None = None,
    cost_source=None,
) -> Schedule:
    """Convenience wrapper: build a :class:`DPScheduler` and solve."""
    return DPScheduler(graph, batch, device, max_stage_ops, max_groups,
                       cost_source=cost_source).solve()


def count_downsets(graph: Graph) -> int:
    """Number of down-sets of the compute DAG (DP search-space diagnostic)."""
    scheduler = DPScheduler(graph, batch=1)
    full = (1 << scheduler._n) - 1
    return len(scheduler._downsets(full)) + 1  # + empty set
