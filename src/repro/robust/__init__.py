"""repro.robust — degraded-input robustness layer.

Production NAIP tiles arrive with NaN pixels, nodata holes, dropped
bands, sensor saturation, and truncated edges.  This package keeps the
inference path standing on such inputs:

* :mod:`~repro.robust.sanitize` — detect/repair/quarantine damaged
  chips and scene rasters under a :class:`SanitizePolicy`;
* :mod:`~repro.robust.journal` — append-only JSONL scan journal backing
  ``scan_scene``'s per-tile quarantine and crash-resume;
* :mod:`~repro.robust.guard` — :class:`GuardedEngine`, the validated
  engine→eager fallback used by ``backend="engine"`` serving.

See ``docs/robustness.md``.
"""

from .guard import (
    FALLBACK_BREAKER_OPEN,
    FALLBACK_ENGINE_ERROR,
    FALLBACK_NON_FINITE,
    FALLBACK_SHAPE,
    EngineGuardError,
    GuardedEngine,
)
from .journal import ScanJournal, ScanJournalError, TileRecord, load_jsonl_repaired
from .sanitize import (
    ChipIssue,
    ChipReport,
    SanitizePolicy,
    SanitizeResult,
    sanitize_chip,
    sanitize_scene,
    validate_chip,
)

__all__ = [
    "SanitizePolicy",
    "ChipIssue",
    "ChipReport",
    "SanitizeResult",
    "validate_chip",
    "sanitize_chip",
    "sanitize_scene",
    "ScanJournal",
    "ScanJournalError",
    "TileRecord",
    "load_jsonl_repaired",
    "GuardedEngine",
    "EngineGuardError",
    "FALLBACK_NON_FINITE",
    "FALLBACK_SHAPE",
    "FALLBACK_ENGINE_ERROR",
    "FALLBACK_BREAKER_OPEN",
]
