"""Guarded engine execution: validate compiled outputs, fall back to eager.

The compiled engine (:mod:`repro.engine`) is several times faster than
the eager autograd path, but it is also the component with the most
machinery to go wrong — packed weights, recycled arena slots, fused
kernels.  :class:`GuardedEngine` wraps it with a numerical safety net:
every engine batch is checked for non-finite values and for shape
agreement with the traced program's contract, and on any violation (or
an outright exception) the *same* batch transparently re-executes on the
eager backend, so the caller always gets a valid answer.

Repeated engine faults trip a :class:`~repro.serve.breaker.CircuitBreaker`
scoped to the engine: while it is open every batch goes straight to
eager (no doomed engine attempt per batch), and the breaker's usual
half-open probe lets the engine earn its way back.  Every fallback is
tallied by reason — ``repro.serve.InferenceService`` feeds the tally
into ``ServiceMetrics.fallback_by_reason``.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable

import numpy as np

from ..serve.breaker import OPEN, BreakerPolicy, CircuitBreaker

__all__ = [
    "GuardedEngine",
    "EngineGuardError",
    "FALLBACK_NON_FINITE",
    "FALLBACK_SHAPE",
    "FALLBACK_ENGINE_ERROR",
    "FALLBACK_BREAKER_OPEN",
]

FALLBACK_NON_FINITE = "non_finite"
FALLBACK_SHAPE = "shape_mismatch"
FALLBACK_ENGINE_ERROR = "engine_error"
FALLBACK_BREAKER_OPEN = "breaker_open"


class EngineGuardError(RuntimeError):
    """An engine output violated the traced program's contract."""


def _check_outputs(confidences: np.ndarray, boxes: np.ndarray,
                   n: int) -> str | None:
    """Return a fallback reason when (confidences, boxes) is invalid for
    an n-chip batch, else None."""
    confidences = np.asarray(confidences)
    boxes = np.asarray(boxes)
    if confidences.shape != (n,) or boxes.shape != (n, 4):
        return FALLBACK_SHAPE
    if not (np.isfinite(confidences).all() and np.isfinite(boxes).all()):
        return FALLBACK_NON_FINITE
    return None


class GuardedEngine:
    """Engine-first, eager-on-violation detector execution.

    Parameters
    ----------
    model       : the detector; both backends run this same instance
    breaker     : engine-scoped breaker policy.  Defaults to tripping
                  after 3 engine faults and re-probing after 60 s —
                  "toward eager-only": a persistently broken engine
                  stops being attempted, a transiently broken one gets
                  periodic chances to recover.
    on_fallback : callback fired with the reason string every time a
                  batch is answered by eager instead of the engine
    compiled    : pre-built compiled model (tests inject faulty ones);
                  default compiles via :func:`repro.engine.compiled_for`
    """

    def __init__(self, model, breaker: BreakerPolicy | None = None,
                 on_fallback: Callable[[str], None] | None = None,
                 compiled=None) -> None:
        self.model = model
        self._listeners: list[Callable[[str], None]] = []
        if on_fallback is not None:
            self._listeners.append(on_fallback)
        self.breaker = CircuitBreaker(
            breaker if breaker is not None
            else BreakerPolicy(failure_threshold=3, reset_timeout_s=60.0)
        )
        if compiled is None:
            from ..engine import compiled_for

            model.eval()
            compiled = compiled_for(model)
        self.compiled = compiled
        self._fallbacks: Counter[str] = Counter()
        self._lock = threading.Lock()

    @property
    def fallback_by_reason(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._fallbacks.items()))

    @property
    def engine_available(self) -> bool:
        """False while the engine breaker is open (eager-only mode)."""
        return self.breaker.state != OPEN

    def warmup(self, batch_sizes,
               sample_shape: tuple[int, ...] | None = None) -> float:
        """Pre-build the compiled engine's programs for ``batch_sizes``
        (see :meth:`repro.engine.CompiledModel.warmup`); returns ms."""
        return self.compiled.warmup(batch_sizes, sample_shape)

    def add_fallback_listener(self, callback: Callable[[str], None]) -> None:
        """Also notify ``callback`` on every fallback (the service chains
        its metrics registry onto an injected engine this way)."""
        self._listeners.append(callback)

    def _fallback(self, reason: str) -> None:
        with self._lock:
            self._fallbacks[reason] += 1
        for listener in self._listeners:
            listener(reason)

    def _eager(self, stack: np.ndarray,
               batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        from ..detect.predict import predict

        return predict(self.model, stack, batch_size=batch_size)

    def predict_batch(self, stack: np.ndarray, batch_size: int | None = None
                      ) -> tuple[np.ndarray, np.ndarray, str]:
        """Run one (N, C, H, W) batch; returns (confidences, boxes,
        backend-that-answered)."""
        n = len(stack)
        batch_size = batch_size if batch_size is not None else n
        if not self.breaker.allow():
            self._fallback(FALLBACK_BREAKER_OPEN)
            conf, boxes = self._eager(stack, batch_size)
            return conf, boxes, "eager"
        try:
            conf, boxes = self.compiled.predict(stack, batch_size=batch_size)
        except Exception:
            reason = FALLBACK_ENGINE_ERROR
        else:
            reason = _check_outputs(conf, boxes, n)
            if reason is None:
                self.breaker.record_success()
                return conf, boxes, "engine"
        self.breaker.record_failure()
        self._fallback(reason)
        conf, boxes = self._eager(stack, batch_size)
        return conf, boxes, "eager"

    def predict(self, images: np.ndarray, batch_size: int = 20
                ) -> tuple[np.ndarray, np.ndarray]:
        """Drop-in for :func:`repro.detect.predict`: the fault boundary
        is per micro-batch, so one poisoned batch falls back alone."""
        confidences: list[np.ndarray] = []
        boxes: list[np.ndarray] = []
        for start in range(0, len(images), batch_size):
            conf, box, _ = self.predict_batch(
                images[start:start + batch_size], batch_size=batch_size
            )
            confidences.append(np.asarray(conf))
            boxes.append(np.asarray(box))
        return np.concatenate(confidences), np.concatenate(boxes)
