"""Append-only JSONL scan journal: per-tile checkpoint/resume for
full-scene scans.

Same pattern as :mod:`repro.nas.journal`, one level lower: every scanned
*tile* (clean, repaired, or quarantined) is appended as one JSON line and
flushed, so a scan killed at tile k has lost nothing — a resumed scan
replays the journaled tiles verbatim and only runs the model on the
remainder.  Line 1 is a header describing the scan (window, stride,
threshold, scene size, backend); resuming against a journal whose header
disagrees with the requested scan raises instead of silently mixing two
different scans' detections.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TileRecord", "ScanJournal", "ScanJournalError",
           "load_jsonl_repaired"]

_HEADER_KIND = "scan_header"
_TILE_KIND = "tile"


class ScanJournalError(RuntimeError):
    """Corrupt journal, or a resume against a mismatched scan."""


def load_jsonl_repaired(path: str | Path, *, repair: bool = True) -> list[dict]:
    """Parse a JSONL file, tolerating — and repairing — a torn final write.

    A process killed mid-append leaves one of two crash artifacts at the
    end of the file: a partial line that is not valid JSON, or a valid
    line missing its terminating newline.  Both are repaired in place
    (``repair=True``): the torn partial line is truncated away, the
    unterminated valid line gets its newline — so a later append can
    never concatenate onto damaged bytes and turn a recoverable crash
    artifact into mid-file corruption.  A malformed line *followed by
    more data* is genuine corruption (no crash produces it) and raises
    :class:`ScanJournalError`.

    Shared by :class:`ScanJournal` and the fleet job queue
    (``repro.fleet.jobs``), so every durable JSONL log in the repo has
    the same crash-recovery contract.
    """
    path = Path(path)
    if not path.exists():
        return []
    raw = path.read_bytes()
    records: list[dict] = []
    good_end = 0              # bytes known to hold intact, terminated lines
    tail_valid_unterminated = False
    pos = 0
    line_no = 0
    n = len(raw)
    while pos < n:
        line_no += 1
        nl = raw.find(b"\n", pos)
        end = n if nl < 0 else nl
        terminated = nl >= 0
        chunk = raw[pos:end].strip()
        if chunk:
            try:
                record = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if terminated:
                    raise ScanJournalError(
                        f"{path}: corrupt journal line {line_no}"
                    ) from None
                break  # torn trailing write from a crash — recoverable
            records.append(record)
            if terminated:
                good_end = nl + 1
            else:
                tail_valid_unterminated = True
        elif terminated:      # blank line: harmless, keep it as intact bytes
            good_end = nl + 1
        pos = end + 1
    if repair:
        if tail_valid_unterminated:
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
        elif good_end < n:
            with open(path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
    return records


@dataclass(frozen=True)
class TileRecord:
    """One tile's outcome.

    detections holds post-threshold, pre-NMS detections in *scene*
    coordinates as (row, col, height, width, confidence) tuples — enough
    to rebuild the exact NMS input without re-running the model.
    """

    index: int
    origin: tuple[int, int]
    status: str                   # "ok" | "repaired" | "quarantined"
    reason: str | None = None
    detections: tuple[tuple[float, float, float, float, float], ...] = field(
        default=())

    def to_json(self) -> dict:
        return {
            "kind": _TILE_KIND,
            "index": self.index,
            "origin": list(self.origin),
            "status": self.status,
            "reason": self.reason,
            "detections": [list(d) for d in self.detections],
        }

    @staticmethod
    def from_json(payload: dict) -> "TileRecord":
        return TileRecord(
            index=int(payload["index"]),
            origin=(int(payload["origin"][0]), int(payload["origin"][1])),
            status=str(payload["status"]),
            reason=payload.get("reason"),
            detections=tuple(tuple(float(v) for v in d)
                             for d in payload.get("detections", ())),
        )


class ScanJournal:
    """Crash-safe JSONL log of per-tile scan outcomes."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        return self.path.exists()

    def start(self, meta: dict) -> None:
        """Begin a fresh journal (truncates any previous file)."""
        line = json.dumps({"kind": _HEADER_KIND, **meta}, allow_nan=False)
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, record: TileRecord) -> None:
        """Write one tile record and force it to disk before returning.

        Open/append/fsync/close per tile, like the trial journal: a tile
        takes milliseconds of model time, and the whole point is that a
        kill between tiles loses at most the tile in flight.
        """
        line = json.dumps(record.to_json(), allow_nan=False)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def extend(self, records: list[TileRecord]) -> None:
        """Append many records with one open/fsync.

        The bulk form of :meth:`append`, for merges: the records already
        survived a crash once (in a shard journal), so per-record fsync
        durability buys nothing here.
        """
        if not records:
            return
        lines = [json.dumps(rec.to_json(), allow_nan=False)
                 for rec in records]
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- sharded scans ---------------------------------------------------
    def shard_path(self, index: int) -> Path:
        """Path of worker ``index``'s shard journal (zero-padded so the
        lexical order of :meth:`shard_paths` is the shard order)."""
        return self.path.with_name(f"{self.path.name}.shard{index:03d}")

    def shard_paths(self) -> list[Path]:
        """Existing shard journals next to this one, in shard order."""
        return sorted(self.path.parent.glob(f"{self.path.name}.shard*"))

    def absorb_shards(self, meta: dict) -> int:
        """Merge per-shard journals into this one and delete them.

        A parallel scan's workers each journal their shard separately;
        this folds every shard record whose tile index is not already
        here into the main journal (one durable append per shard, in
        shard order), then unlinks the shard file.  Called after a
        completed parallel scan — and before any resume, so tiles a
        *crashed* parallel scan finished are never re-run.  Returns the
        number of records absorbed.  A shard journal whose header
        disagrees with ``meta`` raises rather than mixing scans.
        """
        shards = self.shard_paths()
        if not shards:
            return 0
        _, existing = self.load()
        seen = {rec.index for rec in existing}
        absorbed = 0
        for path in shards:
            shard_meta, records = ScanJournal(path).load()
            if shard_meta and shard_meta != meta:
                raise ScanJournalError(
                    f"{path}: shard journal belongs to a different scan"
                )
            fresh = [rec for rec in records if rec.index not in seen]
            self.extend(fresh)
            seen.update(rec.index for rec in fresh)
            absorbed += len(fresh)
            path.unlink()
        return absorbed

    def load(self) -> tuple[dict, list[TileRecord]]:
        """(header meta, tile records in completion order).

        A trailing torn line (the write the crash interrupted) is
        dropped *and truncated from the file* — leaving it in place
        would let the next append concatenate onto the damaged bytes
        and turn a recoverable crash artifact into mid-file corruption
        (see :func:`load_jsonl_repaired`).  A journal reduced to a torn
        header alone loads as empty (``({}, [])``), which the resume
        paths treat as a fresh scan; a torn line anywhere else is
        corruption and raises.
        """
        parsed = load_jsonl_repaired(self.path)
        if not parsed:
            return {}, []
        if parsed[0].get("kind") != _HEADER_KIND:
            raise ScanJournalError(f"{self.path}: missing scan header")
        meta = {k: v for k, v in parsed[0].items() if k != "kind"}
        records = [TileRecord.from_json(p) for p in parsed[1:]
                   if p.get("kind") == _TILE_KIND]
        return meta, records

    def resume_or_start(self, meta: dict) -> "dict[int, TileRecord]":
        """Resume this journal against ``meta``, or begin it fresh.

        Returns the already-journaled tile records keyed by index.  A
        journal that does not exist — or whose header write itself was
        torn by a crash (it loads as empty) — starts fresh.  Per-shard
        journals a crashed parallel scan left behind are absorbed first,
        so no finished tile ever re-runs; a header that disagrees with
        ``meta`` still raises.  One shared entry point for the
        sequential, parallel, and fleet resume paths.
        """
        if self.exists():
            header, _ = self.load()
            if header:
                self.check_meta(meta)
                self.absorb_shards(meta)
                _, replayed = self.load()
                return {rec.index: rec for rec in replayed}
        self.start(meta)
        return {}

    def check_meta(self, meta: dict) -> None:
        """Raise unless the journal's header matches ``meta`` exactly."""
        existing, _ = self.load()
        if existing != meta:
            diffs = sorted(set(existing) | set(meta))
            detail = ", ".join(
                f"{k}: journal={existing.get(k)!r} scan={meta.get(k)!r}"
                for k in diffs if existing.get(k) != meta.get(k)
            )
            raise ScanJournalError(
                f"{self.path}: journal belongs to a different scan ({detail})"
            )
