"""Raster/chip sanitization for degraded production imagery.

Real NAIP tiles arrive broken in a handful of recurring ways: NaN/Inf
pixels from failed radiometric processing, nodata holes where the camera
footprint ends, whole bands dropped or stuck at a constant, sensor
saturation, and truncated edge tiles.  The eager and compiled inference
paths both assume pristine float32 chips, and a single NaN window can
silently poison whole-scene scores — so every degraded chip must be
*detected* and then either *repaired*, *quarantined*, or *rejected*
before it reaches the model.

:func:`validate_chip` inspects one (C, H, W) chip and returns a
:class:`ChipReport` listing every issue found.  :func:`sanitize_chip`
applies a :class:`SanitizePolicy`: repairable damage (band imputation
from the surviving bands, hole infill, saturation clipping, edge
padding) is fixed in a copy; damage beyond ``max_bad_fraction`` — or any
damage under a no-repair policy — quarantines the chip instead.
:func:`sanitize_scene` runs the same machinery over a whole (C, H, W)
scene raster in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SanitizePolicy",
    "ChipIssue",
    "ChipReport",
    "SanitizeResult",
    "validate_chip",
    "sanitize_chip",
    "sanitize_scene",
]

# Issue kinds, in the order validate_chip reports them.
WRONG_SHAPE = "wrong_shape"
NON_FINITE = "non_finite"
NODATA_HOLE = "nodata_hole"
MISSING_BAND = "missing_band"
CONSTANT_BAND = "constant_band"
SATURATED = "saturated"


@dataclass(frozen=True)
class SanitizePolicy:
    """What counts as damage and what to do about it.

    nodata_value     : exact pixel value treated as a nodata hole
                       (None disables the check); -9999 is the common
                       GDAL convention
    valid_range      : inclusive (lo, hi) of physically meaningful
                       values; pixels outside are saturation (None
                       disables the check)
    expected_bands   : band count the model was trained on (None skips
                       the check); fewer bands is unrepairable, an
                       all-bad band is imputed
    expected_shape   : (H, W) a chip must have; a *smaller* chip
                       (truncated tile) is repaired by edge replication,
                       anything else is rejected
    repair           : attempt repairs at all; False quarantines every
                       damaged chip untouched
    max_bad_fraction : when more than this fraction of pixels is
                       damaged, repair would be invention — quarantine
    """

    nodata_value: float | None = -9999.0
    valid_range: tuple[float, float] | None = None
    expected_bands: int | None = None
    expected_shape: tuple[int, int] | None = None
    repair: bool = True
    max_bad_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.max_bad_fraction <= 1.0:
            raise ValueError("max_bad_fraction must be in (0, 1]")
        if self.valid_range is not None and self.valid_range[0] >= self.valid_range[1]:
            raise ValueError("valid_range must be (lo, hi) with lo < hi")

    @classmethod
    def quarantine_only(cls, **overrides) -> "SanitizePolicy":
        """Detect everything, repair nothing."""
        overrides.setdefault("repair", False)
        return cls(**overrides)

    @classmethod
    def for_serving(cls) -> "SanitizePolicy":
        """Cheap request-admission check: non-finite pixels only.

        The service rejects rather than repairs — a caller sending NaN
        gets a typed error back instead of a silently imputed answer.
        """
        return cls(nodata_value=None, valid_range=None, repair=False)

    @classmethod
    def for_scene(cls, bands: int = 4, **overrides) -> "SanitizePolicy":
        """Defaults matched to the synthetic orthophoto: 4 reflectance
        bands in [0, 1], GDAL-style -9999 nodata."""
        overrides.setdefault("valid_range", (0.0, 1.0))
        overrides.setdefault("expected_bands", bands)
        return cls(**overrides)


@dataclass(frozen=True)
class ChipIssue:
    """One kind of damage found in a chip.

    band is the affected band index for band-scoped issues (-1 when the
    issue spans bands); count/fraction measure affected pixels.
    """

    kind: str
    band: int = -1
    count: int = 0
    fraction: float = 0.0

    def describe(self) -> str:
        where = f" band {self.band}" if self.band >= 0 else ""
        return f"{self.kind}{where}: {self.count} px ({100 * self.fraction:.1f}%)"


@dataclass(frozen=True)
class ChipReport:
    """Everything validate_chip found, plus the repair verdict."""

    ok: bool                      # no issues at all
    repairable: bool              # all issues fixable under the policy
    issues: tuple[ChipIssue, ...] = ()
    bad_fraction: float = 0.0     # fraction of pixels needing infill

    def summary(self) -> str:
        if self.ok:
            return "clean"
        return "; ".join(issue.describe() for issue in self.issues)


@dataclass(frozen=True)
class SanitizeResult:
    """Outcome of sanitize_chip.

    status : "ok" (untouched), "repaired" (chip is a fixed copy), or
             "quarantined" (chip is None — do not run the model on it)
    """

    status: str
    chip: np.ndarray | None
    report: ChipReport
    repairs: tuple[str, ...] = field(default=())


def _bad_pixel_mask(chip: np.ndarray, policy: SanitizePolicy) -> np.ndarray:
    """Boolean (C, H, W) mask of pixels that carry no usable signal."""
    bad = ~np.isfinite(chip)
    if policy.nodata_value is not None:
        bad |= chip == policy.nodata_value
    return bad


def validate_chip(chip: np.ndarray,
                  policy: SanitizePolicy | None = None) -> ChipReport:
    """Inspect one (C, H, W) chip and report every issue found.

    Never raises on damaged *content*; a non-array or wrong-rank input
    raises ValueError because no policy can repair it.
    """
    policy = policy if policy is not None else SanitizePolicy()
    chip = np.asarray(chip)
    if chip.ndim != 3:
        raise ValueError(f"expected a (C, H, W) chip, got shape {chip.shape}")

    issues: list[ChipIssue] = []
    c, h, w = chip.shape
    pixels_per_band = h * w
    total = chip.size

    truncated = False
    if policy.expected_bands is not None and c != policy.expected_bands:
        issues.append(ChipIssue(MISSING_BAND, count=pixels_per_band
                                * abs(policy.expected_bands - c),
                                fraction=1.0))
    if policy.expected_shape is not None and (h, w) != tuple(policy.expected_shape):
        eh, ew = policy.expected_shape
        missing = eh * ew - h * w
        truncated = h <= eh and w <= ew
        issues.append(ChipIssue(WRONG_SHAPE, count=max(missing, 0) * c,
                                fraction=max(missing, 0) / (eh * ew)))

    nonfinite = ~np.isfinite(chip)
    nodata = np.zeros_like(nonfinite)
    if policy.nodata_value is not None:
        nodata = chip == policy.nodata_value
    bad = nonfinite | nodata

    # Band-level damage first: a band that is entirely bad (or constant)
    # is one dropped band, not H*W individual pixel holes.
    band_bad = bad.reshape(c, -1).all(axis=1)
    for b in np.flatnonzero(band_bad):
        issues.append(ChipIssue(MISSING_BAND, band=int(b),
                                count=pixels_per_band, fraction=1.0 / c))
    finite = np.where(bad, np.nan, chip.astype(np.float64, copy=False))
    for b in range(c):
        if band_bad[b]:
            continue
        vals = finite[b][~bad[b]]
        if vals.size and float(vals.min()) == float(vals.max()):
            issues.append(ChipIssue(CONSTANT_BAND, band=int(b),
                                    count=pixels_per_band, fraction=1.0 / c))

    # Pixel-level damage, excluding fully-bad bands already reported.
    pixel_bad = bad & ~band_bad[:, None, None]
    n_nonfinite = int((nonfinite & pixel_bad).sum())
    if n_nonfinite:
        issues.append(ChipIssue(NON_FINITE, count=n_nonfinite,
                                fraction=n_nonfinite / total))
    n_nodata = int((nodata & ~nonfinite & pixel_bad).sum())
    if n_nodata:
        issues.append(ChipIssue(NODATA_HOLE, count=n_nodata,
                                fraction=n_nodata / total))

    if policy.valid_range is not None:
        lo, hi = policy.valid_range
        saturated = (~bad) & ((chip < lo) | (chip > hi))
        n_sat = int(saturated.sum())
        if n_sat:
            issues.append(ChipIssue(SATURATED, count=n_sat,
                                    fraction=n_sat / total))

    bad_fraction = float(bad.mean()) if total else 1.0
    repairable = _repairable(issues, bad, band_bad, truncated, policy)
    return ChipReport(ok=not issues, repairable=repairable,
                      issues=tuple(issues), bad_fraction=bad_fraction)


def _repairable(issues: list[ChipIssue], bad: np.ndarray,
                band_bad: np.ndarray, truncated: bool,
                policy: SanitizePolicy) -> bool:
    if not issues:
        return True
    if not policy.repair:
        return False
    for issue in issues:
        if issue.kind == MISSING_BAND and issue.band < 0:
            return False  # physically absent band: nothing to impute from
        if issue.kind == WRONG_SHAPE and not truncated:
            return False  # bigger than expected: not a truncation
    if band_bad.all():
        return False  # every band gone — no donor signal anywhere
    # Repair must interpolate from real signal, not invent most of a chip.
    pixel_bad = bad & ~band_bad[:, None, None]
    surviving = pixel_bad[~band_bad]
    if surviving.size and float(surviving.mean()) > policy.max_bad_fraction:
        return False
    return True


def _infill_band(band: np.ndarray, bad: np.ndarray) -> None:
    """Replace bad pixels with the band's finite median (in place).

    Median over surviving pixels is deterministic, cheap, and robust to
    the very outliers (saturation spikes) that co-occur with holes; a
    neighborhood interpolation would read nicer but can chain-propagate
    corrupted neighbors.
    """
    good = band[~bad]
    fill = float(np.median(good)) if good.size else 0.0
    band[bad] = fill


def sanitize_chip(chip: np.ndarray,
                  policy: SanitizePolicy | None = None) -> SanitizeResult:
    """Validate and, when the policy allows, repair one chip.

    The input array is never modified; a repaired chip is a float32
    copy.  Quarantined results carry ``chip=None`` so a caller cannot
    accidentally run the model on known-bad data.
    """
    policy = policy if policy is not None else SanitizePolicy()
    chip = np.asarray(chip)
    report = validate_chip(chip, policy)
    if report.ok:
        return SanitizeResult("ok", chip, report)
    if not report.repairable:
        return SanitizeResult("quarantined", None, report)

    repairs: list[str] = []
    fixed = chip.astype(np.float32, copy=True)

    if policy.expected_shape is not None \
            and fixed.shape[1:] != tuple(policy.expected_shape):
        eh, ew = policy.expected_shape
        pad_h, pad_w = eh - fixed.shape[1], ew - fixed.shape[2]
        fixed = np.pad(fixed, ((0, 0), (0, pad_h), (0, pad_w)), mode="edge")
        repairs.append(f"padded truncated tile by ({pad_h}, {pad_w}) px")

    bad = _bad_pixel_mask(fixed, policy)
    band_bad = bad.reshape(len(fixed), -1).all(axis=1)
    constant = [i.band for i in report.issues if i.kind == CONSTANT_BAND]
    for b in constant:
        band_bad[b] = True
        bad[b] = True

    # Dropped/constant bands: impute each from the per-pixel mean of the
    # surviving bands (after their own holes are filled), preserving
    # spatial structure the classifier keys on — a flat fill would not.
    if band_bad.any():
        donors = [b for b in range(len(fixed)) if not band_bad[b]]
        for b in donors:
            if bad[b].any():
                _infill_band(fixed[b], bad[b])
        donor_mean = fixed[donors].mean(axis=0)
        for b in np.flatnonzero(band_bad):
            fixed[b] = donor_mean
            repairs.append(f"imputed band {b} from {len(donors)} surviving bands")
        bad[:] = False
    elif bad.any():
        for b in range(len(fixed)):
            if bad[b].any():
                _infill_band(fixed[b], bad[b])
        repairs.append(f"infilled {int(bad.sum())} hole px")

    if policy.valid_range is not None:
        lo, hi = policy.valid_range
        n_sat = int(((fixed < lo) | (fixed > hi)).sum())
        if n_sat:
            np.clip(fixed, lo, hi, out=fixed)
            repairs.append(f"clipped {n_sat} saturated px into [{lo}, {hi}]")

    return SanitizeResult("repaired", fixed, report, tuple(repairs))


def sanitize_scene(image: np.ndarray,
                   policy: SanitizePolicy | None = None
                   ) -> tuple[np.ndarray, SanitizeResult]:
    """Sanitize a whole (C, H, W) scene raster in one pass.

    Returns the (possibly repaired) image and the full
    :class:`SanitizeResult`.  A quarantined scene comes back *unrepaired*
    but is still returned (callers scan scenes tile by tile and apply the
    per-tile quarantine there; refusing the whole scene would throw away
    its clean tiles).
    """
    policy = policy if policy is not None else SanitizePolicy.for_scene()
    result = sanitize_chip(image, policy)
    if result.chip is None:
        return np.asarray(image), result
    return result.chip, result
