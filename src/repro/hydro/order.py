"""Stream ordering and basin delineation.

Two classic derived products of a D8 routing that downstream users of a
drainage-network library expect:

* **Strahler order** — hierarchical stream magnitude: headwater segments
  are order 1; where two segments of equal order meet, the order
  increments; otherwise the maximum continues downstream.
* **Watershed (basin) labeling** — every cell labeled by the terminal
  cell its flow ultimately reaches, partitioning the raster into
  contributing areas (used to report per-basin connectivity).
"""

from __future__ import annotations

import numpy as np

from .flow import downstream_index

__all__ = ["strahler_order", "basin_labels", "basin_sizes"]


def strahler_order(direction: np.ndarray, stream_mask: np.ndarray) -> np.ndarray:
    """Strahler order per stream cell (0 for non-stream cells).

    Processes stream cells in topological (upstream-first) order: a cell's
    order is 1 if it has no stream donors; otherwise the maximum donor
    order, +1 when two or more donors share that maximum.
    """
    direction = np.asarray(direction)
    stream_mask = np.asarray(stream_mask, dtype=bool)
    if direction.shape != stream_mask.shape:
        raise ValueError("direction and stream mask shapes must match")
    rows, cols = direction.shape
    down = downstream_index(direction).ravel()
    stream_flat = stream_mask.ravel()

    # Donor counts restricted to stream cells.
    indegree = np.zeros(direction.size, dtype=np.int32)
    for idx in np.flatnonzero(stream_flat):
        target = down[idx]
        if target >= 0 and stream_flat[target]:
            indegree[target] += 1

    order = np.zeros(direction.size, dtype=np.int32)
    max_donor = np.zeros(direction.size, dtype=np.int32)
    max_donor_count = np.zeros(direction.size, dtype=np.int32)
    queue = [int(i) for i in np.flatnonzero(stream_flat) if indegree[i] == 0]
    processed = 0
    while queue:
        idx = queue.pop()
        processed += 1
        if max_donor[idx] == 0:
            order[idx] = 1
        elif max_donor_count[idx] >= 2:
            order[idx] = max_donor[idx] + 1
        else:
            order[idx] = max_donor[idx]
        target = down[idx]
        if target >= 0 and stream_flat[target]:
            if order[idx] > max_donor[target]:
                max_donor[target] = order[idx]
                max_donor_count[target] = 1
            elif order[idx] == max_donor[target]:
                max_donor_count[target] += 1
            indegree[target] -= 1
            if indegree[target] == 0:
                queue.append(int(target))
    if processed != int(stream_flat.sum()):
        raise RuntimeError("stream network contains a flow cycle")
    return order.reshape(rows, cols)


def basin_labels(direction: np.ndarray) -> np.ndarray:
    """Label every cell by its terminal (pit or off-grid exit) cell.

    Terminal cells get their own flat index as the label; off-grid flow is
    labeled by the last in-grid cell of the path.  Path compression keeps
    the pass O(n).
    """
    direction = np.asarray(direction)
    down = downstream_index(direction).ravel()
    n = down.size
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] >= 0:
            continue
        path = []
        idx = start
        while labels[idx] < 0:
            path.append(idx)
            target = down[idx]
            if target < 0:
                labels[idx] = idx  # terminal labels itself
                break
            idx = int(target)
        terminal = labels[idx]
        for cell in path:
            labels[cell] = terminal
    return labels.reshape(direction.shape)


def basin_sizes(labels: np.ndarray) -> dict[int, int]:
    """Cells per basin, keyed by terminal label."""
    values, counts = np.unique(np.asarray(labels).ravel(), return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}
