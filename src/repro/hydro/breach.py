"""Crossing-aware DEM breaching.

Incorporating detected drainage-crossing locations into the elevation
model (Figure 1(B)): at each crossing, the embankment is cut by lowering
a short transect of cells to a monotone ramp between the upstream and
downstream toe elevations, restoring the hydraulic connection the culvert
provides in reality.
"""

from __future__ import annotations

import numpy as np

__all__ = ["breach_at_crossing", "breach_dem"]


def _transect(center: tuple[int, int], radius: int, axis: str) -> list[tuple[int, int]]:
    r, c = center
    if axis == "ns":
        return [(r + d, c) for d in range(-radius, radius + 1)]
    if axis == "ew":
        return [(r, c + d) for d in range(-radius, radius + 1)]
    raise ValueError(f"axis must be 'ns' or 'ew', got {axis!r}")


def breach_at_crossing(
    dem: np.ndarray,
    center: tuple[int, int],
    radius: int = 3,
    drop: float = 0.05,
) -> np.ndarray:
    """Breach one crossing in place and return the modified DEM.

    The barrier axis is chosen automatically: the transect (N-S or E-W
    through ``center``) whose endpoints are *lowest* relative to its crest
    is the flow direction; cells along it are lowered onto a monotone ramp
    slightly below the lower endpoint to guarantee drainage.
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    rows, cols = dem.shape
    r, c = center
    if not (0 <= r < rows and 0 <= c < cols):
        raise IndexError(f"crossing {center} outside DEM of shape {dem.shape}")

    best_axis, best_score = None, None
    for axis in ("ns", "ew"):
        cells = _transect(center, radius, axis)
        if any(not (0 <= rr < rows and 0 <= cc < cols) for rr, cc in cells):
            continue
        ends = dem[cells[0]], dem[cells[-1]]
        crest = max(dem[rr, cc] for rr, cc in cells)
        score = crest - min(ends)  # embankment relief along this axis
        if best_score is None or score > best_score:
            best_axis, best_score = axis, score
    if best_axis is None:
        return dem  # crossing too close to the border to breach

    cells = _transect(center, radius, best_axis)
    lo = min(dem[cells[0]], dem[cells[-1]]) - drop
    hi_end, lo_end = ((cells[0], cells[-1]) if dem[cells[0]] > dem[cells[-1]]
                      else (cells[-1], cells[0]))
    n = len(cells)
    for i, (rr, cc) in enumerate(cells):
        # Monotone ramp from the higher toe down to just below the lower toe.
        frac = i / (n - 1)
        if cells[0] == hi_end:
            target = dem[hi_end] * (1 - frac) + lo * frac
        else:
            target = lo * (1 - frac) + dem[hi_end] * frac
        if dem[rr, cc] > target:
            dem[rr, cc] = target
    return dem


def breach_dem(
    dem: np.ndarray,
    crossings: list[tuple[int, int]],
    radius: int = 3,
    drop: float = 0.05,
) -> np.ndarray:
    """Breach every crossing on a *copy* of ``dem`` and return it."""
    out = np.asarray(dem, dtype=float).copy()
    for center in crossings:
        breach_at_crossing(out, center, radius=radius, drop=drop)
    return out
