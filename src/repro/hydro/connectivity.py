"""Drainage connectivity metrics.

Quantifies the Figure 1 comparison: how fragmented is the delineated
stream network, and how far does flow actually travel before dying in a
digital dam?  Used by the connectivity example and the hydro integration
tests to show that crossing-aware breaching improves every metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .delineate import StreamNetwork, trace_flow_path
from .fill import depression_mask

__all__ = ["ConnectivityReport", "assess_connectivity"]


@dataclass(frozen=True)
class ConnectivityReport:
    """Summary statistics of a delineated stream network."""

    num_stream_cells: int
    num_segments: int
    largest_segment_cells: int
    num_terminations: int
    mean_path_length: float
    depression_cells: int

    @property
    def fragmentation(self) -> float:
        """Segments per 1000 stream cells (lower = better connected)."""
        if self.num_stream_cells == 0:
            return 0.0
        return 1000.0 * self.num_segments / self.num_stream_cells

    def better_than(self, other: "ConnectivityReport") -> bool:
        """True when this network is strictly better connected than ``other``
        on the headline criteria (fewer terminations, longer flow paths)."""
        return (
            self.num_terminations <= other.num_terminations
            and self.mean_path_length >= other.mean_path_length
            and (
                self.num_terminations < other.num_terminations
                or self.mean_path_length > other.mean_path_length
            )
        )


def assess_connectivity(
    dem: np.ndarray,
    network: StreamNetwork,
    sample_paths: int = 64,
    seed: int = 0,
) -> ConnectivityReport:
    """Compute a :class:`ConnectivityReport` for ``network`` over ``dem``.

    ``mean_path_length`` is estimated by tracing the D8 path from a
    deterministic sample of stream cells until it exits the grid or pits.
    """
    labels, count = network.components()
    sizes = np.bincount(labels.ravel())[1:] if count else np.array([0])
    terminations = network.terminations()

    stream_cells = np.argwhere(network.mask)
    rng = np.random.default_rng(seed)
    if len(stream_cells) == 0:
        mean_len = 0.0
    else:
        take = min(sample_paths, len(stream_cells))
        picks = rng.choice(len(stream_cells), size=take, replace=False)
        lengths = []
        for idx in picks:
            start = (int(stream_cells[idx][0]), int(stream_cells[idx][1]))
            path = trace_flow_path(network.direction, start)
            lengths.append(len(path))
        mean_len = float(np.mean(lengths))

    return ConnectivityReport(
        num_stream_cells=network.num_cells,
        num_segments=int(count),
        largest_segment_cells=int(sizes.max(initial=0)),
        num_terminations=len(terminations),
        mean_path_length=mean_len,
        depression_cells=int(depression_mask(dem).sum()),
    )
