"""D8 flow routing: flow direction and flow accumulation.

Vectorized D8: for each cell, the flow direction is the steepest
descending drop among its 8 neighbors (drops across diagonals divided by
sqrt(2)).  Accumulation processes cells once, from highest to lowest, so
the whole routing is O(n log n) with a single Python loop over the sorted
order.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "D8_OFFSETS",
    "FLOW_NONE",
    "flow_direction",
    "flow_accumulation",
    "downstream_index",
]

#: D8 neighbor offsets in code order 0..7 (E, NE, N, NW, W, SW, S, SE).
D8_OFFSETS: tuple[tuple[int, int], ...] = (
    (0, 1), (-1, 1), (-1, 0), (-1, -1), (0, -1), (1, -1), (1, 0), (1, 1),
)

#: Direction code for pits / cells with no descending neighbor.
FLOW_NONE: int = -1

_DIST = np.array([1.0, np.sqrt(2), 1.0, np.sqrt(2), 1.0, np.sqrt(2), 1.0, np.sqrt(2)])


def flow_direction(dem: np.ndarray) -> np.ndarray:
    """D8 flow direction codes (0..7 into :data:`D8_OFFSETS`, -1 = pit).

    Border cells may drain off-grid: a virtual off-grid neighbor at a
    slightly lower elevation is assumed, so edge cells prefer in-grid
    descents but never become artificial pits.
    """
    dem = np.asarray(dem, dtype=float)
    if dem.ndim != 2:
        raise ValueError(f"expected 2-D DEM, got shape {dem.shape}")
    rows, cols = dem.shape
    padded = np.pad(dem, 1, mode="constant", constant_values=np.inf)
    best_drop = np.full(dem.shape, 0.0)
    best_dir = np.full(dem.shape, FLOW_NONE, dtype=np.int8)
    for code, (dr, dc) in enumerate(D8_OFFSETS):
        neighbor = padded[1 + dr:1 + dr + rows, 1 + dc:1 + dc + cols]
        drop = (dem - neighbor) / _DIST[code]
        better = drop > best_drop
        best_drop = np.where(better, drop, best_drop)
        best_dir = np.where(better, np.int8(code), best_dir)

    # Edge cells with no in-grid descent drain off-grid (keep FLOW_NONE but
    # mark them as border sinks rather than interior pits via a tiny drop):
    return best_dir


def downstream_index(direction: np.ndarray) -> np.ndarray:
    """Flat index of each cell's downstream cell (-1 for pits/off-grid).

    Useful for path tracing and for vectorized accumulation.
    """
    direction = np.asarray(direction)
    rows, cols = direction.shape
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    down = np.full(direction.shape, -1, dtype=np.int64)
    for code, (dr, dc) in enumerate(D8_OFFSETS):
        mask = direction == code
        nr = rr[mask] + dr
        nc = cc[mask] + dc
        inside = (nr >= 0) & (nr < rows) & (nc >= 0) & (nc < cols)
        flat = np.full(mask.sum(), -1, dtype=np.int64)
        flat[inside] = nr[inside] * cols + nc[inside]
        down[mask] = flat
    return down


def flow_accumulation(dem: np.ndarray, direction: np.ndarray | None = None) -> np.ndarray:
    """Number of upstream cells draining through each cell (self included).

    Cells are visited from highest to lowest elevation, pushing their
    accumulated count downstream — a topological order for D8 routing on a
    depression-filled DEM.
    """
    dem = np.asarray(dem, dtype=float)
    if direction is None:
        direction = flow_direction(dem)
    down = downstream_index(direction).ravel()
    acc = np.ones(dem.size, dtype=np.int64)
    order = np.argsort(dem.ravel(), kind="stable")[::-1]
    for idx in order:
        target = down[idx]
        if target >= 0:
            acc[target] += acc[idx]
    return acc.reshape(dem.shape)
