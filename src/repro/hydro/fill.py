"""Priority-flood depression filling (Barnes, Lehman & Mulla 2014).

DEM conditioning is the first step of elevation-based hydrologic
delineation: interior depressions (including the artificial ones the
paper calls "digital dams") trap simulated flow, so they are raised to
their pour-point elevation before flow routing.  The breaching pipeline
(:mod:`repro.hydro.breach`) is the *crossing-aware* alternative that cuts
through embankments instead of flooding behind them.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["priority_flood_fill", "depression_mask"]

_NEIGHBORS = [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]


def priority_flood_fill(dem: np.ndarray, epsilon: float = 0.0) -> np.ndarray:
    """Return a depression-free copy of ``dem``.

    Classic priority-flood: seed a min-heap with the DEM border, then
    repeatedly pop the lowest frontier cell and raise unvisited neighbors
    to at least its elevation (+``epsilon`` to enforce drainable gradients
    when epsilon > 0).

    Parameters
    ----------
    dem : 2-D array of elevations.
    epsilon : optional small increment that guarantees strictly monotone
        drainage paths out of filled areas.
    """
    dem = np.asarray(dem, dtype=float)
    if dem.ndim != 2:
        raise ValueError(f"expected 2-D DEM, got shape {dem.shape}")
    rows, cols = dem.shape
    if rows < 3 or cols < 3:
        return dem.copy()

    filled = dem.copy()
    visited = np.zeros(dem.shape, dtype=bool)
    heap: list[tuple[float, int, int]] = []

    for r in range(rows):
        for c in (0, cols - 1):
            heapq.heappush(heap, (filled[r, c], r, c))
            visited[r, c] = True
    for c in range(1, cols - 1):
        for r in (0, rows - 1):
            heapq.heappush(heap, (filled[r, c], r, c))
            visited[r, c] = True

    while heap:
        elev, r, c = heapq.heappop(heap)
        for dr, dc in _NEIGHBORS:
            nr, nc = r + dr, c + dc
            if nr < 0 or nr >= rows or nc < 0 or nc >= cols or visited[nr, nc]:
                continue
            visited[nr, nc] = True
            if filled[nr, nc] < elev + epsilon:
                filled[nr, nc] = elev + epsilon
            heapq.heappush(heap, (filled[nr, nc], nr, nc))
    return filled


def depression_mask(dem: np.ndarray, min_depth: float = 1e-9) -> np.ndarray:
    """Boolean mask of cells raised by depression filling by > ``min_depth``.

    These are the candidate "digital dam" backwaters behind flow barriers.
    """
    filled = priority_flood_fill(dem)
    return (filled - np.asarray(dem, dtype=float)) > min_depth
