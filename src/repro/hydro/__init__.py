"""repro.hydro — DEM conditioning, D8 routing, delineation and breaching."""

from .breach import breach_at_crossing, breach_dem
from .connectivity import ConnectivityReport, assess_connectivity
from .delineate import StreamNetwork, delineate_streams, trace_flow_path
from .fill import depression_mask, priority_flood_fill
from .order import basin_labels, basin_sizes, strahler_order
from .flow import (
    D8_OFFSETS,
    FLOW_NONE,
    downstream_index,
    flow_accumulation,
    flow_direction,
)

__all__ = [
    "priority_flood_fill",
    "depression_mask",
    "D8_OFFSETS",
    "FLOW_NONE",
    "flow_direction",
    "flow_accumulation",
    "downstream_index",
    "StreamNetwork",
    "delineate_streams",
    "trace_flow_path",
    "breach_at_crossing",
    "breach_dem",
    "ConnectivityReport",
    "assess_connectivity",
    "strahler_order",
    "basin_labels",
    "basin_sizes",
]
