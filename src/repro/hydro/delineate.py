"""Stream network delineation and termination analysis.

Streams are cells whose D8 flow accumulation exceeds a support threshold.
The module also finds *premature terminations* — stream cells whose flow
path dies in an interior pit instead of reaching the grid edge — which is
precisely the "digital dam" failure mode of Figure 1(A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .flow import FLOW_NONE, downstream_index, flow_accumulation, flow_direction

__all__ = ["StreamNetwork", "delineate_streams", "trace_flow_path"]


@dataclass(frozen=True)
class StreamNetwork:
    """Delineated stream raster plus routing context."""

    mask: np.ndarray          # bool, stream cells
    accumulation: np.ndarray  # int64 flow accumulation
    direction: np.ndarray     # int8 D8 codes
    threshold: int

    @property
    def num_cells(self) -> int:
        return int(self.mask.sum())

    def components(self) -> tuple[np.ndarray, int]:
        """8-connected stream segments (labels array, count)."""
        labels, count = ndimage.label(self.mask, structure=np.ones((3, 3)))
        return labels, count

    def terminations(self) -> list[tuple[int, int]]:
        """Stream cells that drain into an interior pit (digital dams)."""
        down = downstream_index(self.direction)
        rows, cols = self.mask.shape
        border = np.zeros_like(self.mask)
        border[0, :] = border[-1, :] = border[:, 0] = border[:, -1] = True
        out: list[tuple[int, int]] = []
        for r, c in zip(*np.nonzero(self.mask)):
            if self.direction[r, c] == FLOW_NONE and not border[r, c]:
                out.append((int(r), int(c)))
                continue
            target = down[r, c]
            if target < 0 and not border[r, c]:
                out.append((int(r), int(c)))
        return out


def delineate_streams(dem: np.ndarray, threshold: int = 50,
                      direction: np.ndarray | None = None) -> StreamNetwork:
    """Delineate the stream network of a (conditioned) DEM.

    Parameters
    ----------
    dem : depression-filled or raw DEM.
    threshold : minimum upstream cell count for a cell to be a stream.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    if direction is None:
        direction = flow_direction(dem)
    acc = flow_accumulation(dem, direction)
    return StreamNetwork(
        mask=acc >= threshold,
        accumulation=acc,
        direction=direction,
        threshold=threshold,
    )


def trace_flow_path(direction: np.ndarray, start: tuple[int, int],
                    max_steps: int | None = None) -> list[tuple[int, int]]:
    """Follow D8 directions downstream from ``start`` until a pit or edge.

    Returns the visited cells including ``start``.  A cycle guard raises
    ``RuntimeError`` (cycles cannot occur on strictly descending DEMs but
    can on raw ties)."""
    down = downstream_index(direction)
    rows, cols = direction.shape
    limit = max_steps if max_steps is not None else rows * cols + 1
    path = [start]
    seen = {start}
    r, c = start
    for _ in range(limit):
        nxt = down[r, c]
        if nxt < 0:
            return path
        r, c = divmod(int(nxt), cols)
        if (r, c) in seen:
            raise RuntimeError(f"flow cycle detected at {(r, c)}")
        seen.add((r, c))
        path.append((r, c))
    return path
