"""Concurrent trial execution (multi-worker NAS dispatch).

The paper notes Retiarii "currently supports NAS exclusively for single
GPU setups" and defers multi-GPU NAS to future work.  Trial-level
parallelism is the simplest form: exploration strategies propose batches
of architectures and workers evaluate them concurrently.  On this
substrate the workers are threads (NumPy's BLAS releases the GIL inside
the GEMMs that dominate trial training), but the dispatch logic is what a
multi-GPU NNI deployment would use.

Determinism: proposals are drawn from the seeded strategy RNG *before*
dispatch and trials are recorded in proposal order, so a parallel
experiment explores exactly the trials the sequential one would with the
same strategy/seed (strategies that adapt to history see history only at
batch boundaries — the standard synchronous-batch NAS semantics).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .evaluator import FunctionalEvaluator
from .experiment import TrialRecord
from .space import ModelSpace
from .strategy import ExplorationStrategy, RandomStrategy

__all__ = ["ParallelExperiment"]


@dataclass
class ParallelExperiment:
    """Synchronous-batch multi-worker NAS experiment."""

    space: ModelSpace
    evaluator: FunctionalEvaluator
    strategy: ExplorationStrategy = field(default_factory=RandomStrategy)
    max_trials: int = 20
    workers: int = 4
    seed: int = 0
    deduplicate: bool = True
    trials: list[TrialRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def _propose_batch(self, rng: np.random.Generator,
                       seen: set[tuple]) -> list[dict]:
        batch: list[dict] = []
        attempts = 0
        want = min(self.workers, self.max_trials - len(self.trials))
        while len(batch) < want and attempts < 50 * want:
            attempts += 1
            sample = dict(self.strategy.propose(self.space, self.trials, rng))
            encoding = ModelSpace.encode(sample)
            if self.deduplicate and encoding in seen:
                continue
            seen.add(encoding)
            self.space.validate(sample)
            batch.append(sample)
        return batch

    def run(self) -> list[TrialRecord]:
        """Run trials in worker batches until the budget is spent."""
        rng = np.random.default_rng(self.seed)
        seen = {ModelSpace.encode(t.sample) for t in self.trials}
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            while len(self.trials) < self.max_trials:
                batch = self._propose_batch(rng, seen)
                if not batch:
                    break  # space exhausted
                start = time.perf_counter()
                results = list(pool.map(self.evaluator.evaluate, batch))
                duration = time.perf_counter() - start
                for sample, result in zip(batch, results):
                    self.trials.append(TrialRecord(
                        trial_id=len(self.trials),
                        sample=sample,
                        value=result.value,
                        metrics={k: v for k, v in result.items() if k != "value"},
                        duration_s=duration / len(batch),
                    ))
        return self.trials

    def best(self) -> TrialRecord:
        if not self.trials:
            raise RuntimeError("experiment has not run")
        return max(self.trials, key=lambda t: t.value)
