"""Concurrent trial execution (multi-worker NAS dispatch).

The paper notes Retiarii "currently supports NAS exclusively for single
GPU setups" and defers multi-GPU NAS to future work.  Trial-level
parallelism is the simplest form: exploration strategies propose batches
of architectures and workers evaluate them concurrently.  On this
substrate the workers are threads (NumPy's BLAS releases the GIL inside
the GEMMs that dominate trial training), but the dispatch logic is what a
multi-GPU NNI deployment would use.

Determinism: proposals are drawn from the seeded strategy RNG *before*
dispatch and trials are recorded in proposal order, so a parallel
experiment explores exactly the trials the sequential one would with the
same strategy/seed (strategies that adapt to history see history only at
batch boundaries — the standard synchronous-batch NAS semantics).

Fault tolerance: retries/quarantine happen *inside* each worker (via
:func:`~repro.nas.experiment.run_trial_with_retries`), so one failing
trial neither kills the batch nor loses its siblings' results — the
failure surfaces as a quarantined ``TrialRecord`` instead of an exception
out of ``pool.map``.  Each worker also times its own trial, so
``duration_s`` is the true per-trial cost, not the batch wall-clock split
evenly (efficiency ``e(n)`` readouts consume this).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .evaluator import FunctionalEvaluator
from .experiment import TrialRecord, _as_journal, run_trial_with_retries
from .retry import RetryPolicy
from .space import ModelSpace
from .strategy import ExplorationStrategy, RandomStrategy

if TYPE_CHECKING:  # pragma: no cover
    from .journal import TrialJournal

__all__ = ["ParallelExperiment"]


@dataclass
class ParallelExperiment:
    """Synchronous-batch multi-worker NAS experiment.

    ``retry_policy`` and ``journal`` mirror :class:`~repro.nas.Experiment`:
    failed trials are retried with backoff then quarantined, and every
    finished trial is journaled (in proposal order) for crash resume.
    """

    space: ModelSpace
    evaluator: FunctionalEvaluator
    strategy: ExplorationStrategy = field(default_factory=RandomStrategy)
    max_trials: int = 20
    workers: int = 4
    seed: int = 0
    deduplicate: bool = True
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    journal: "TrialJournal | str | Path | None" = None
    trials: list[TrialRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    @classmethod
    def resume(cls, journal: "TrialJournal | str | Path", space: ModelSpace,
               evaluator: FunctionalEvaluator, **kwargs) -> "ParallelExperiment":
        """Continue a killed sweep from its trial journal (see
        :meth:`repro.nas.Experiment.resume` for the determinism contract)."""
        store = _as_journal(journal)
        return cls(space=space, evaluator=evaluator, journal=store,
                   trials=store.load(), **kwargs)

    def _propose_batch(self, rng: np.random.Generator,
                       seen: set[tuple]) -> list[dict]:
        batch: list[dict] = []
        attempts = 0
        want = min(self.workers, self.max_trials - len(self.trials))
        while len(batch) < want and attempts < 50 * want + 2 * len(seen):
            attempts += 1
            sample = dict(self.strategy.propose(self.space, self.trials, rng))
            encoding = ModelSpace.encode(sample)
            if self.deduplicate and encoding in seen:
                continue
            seen.add(encoding)
            self.space.validate(sample)
            batch.append(sample)
        return batch

    def _run_one(self, task: tuple[int, dict]) -> TrialRecord:
        """Worker body: evaluate one sample with retries, timed in-worker.

        ``trial_id`` is the proposal ordinal — records are appended in
        batch order, so it is also the final position in ``trials``.
        """
        trial_id, sample = task
        backoff_rng = np.random.default_rng((self.seed, 0x5E11, trial_id))
        return run_trial_with_retries(
            self.evaluator, sample, trial_id=trial_id,
            policy=self.retry_policy, backoff_rng=backoff_rng,
        )

    def run(self) -> list[TrialRecord]:
        """Run trials in worker batches until the budget is spent."""
        rng = np.random.default_rng(self.seed)
        journal = _as_journal(self.journal)
        seen = {ModelSpace.encode(t.sample) for t in self.trials}
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            while len(self.trials) < self.max_trials:
                batch = self._propose_batch(rng, seen)
                if not batch:
                    break  # space exhausted
                base = len(self.trials)
                tasks = [(base + i, sample) for i, sample in enumerate(batch)]
                for record in pool.map(self._run_one, tasks):
                    self.trials.append(record)
                    if journal is not None:
                        journal.append(record)
        return self.trials

    # -- aggregation ------------------------------------------------------
    def succeeded(self) -> list[TrialRecord]:
        return [t for t in self.trials if t.ok]

    def failed(self) -> list[TrialRecord]:
        """Quarantined trials (all retry attempts exhausted)."""
        return [t for t in self.trials if not t.ok]

    def best(self) -> TrialRecord:
        ok = self.succeeded()
        if not ok:
            if self.trials:
                raise RuntimeError(
                    f"all {len(self.trials)} trials failed (quarantined)"
                )
            raise RuntimeError("experiment has not run")
        return max(ok, key=lambda t: t.value)
