"""Model search-space definition (NNI/Retiarii "mutable" style).

§4.2 of the paper defines three mutated quantities:

* **feature engineering** — first convolution filter size in {1, 3, 5, 7, 9};
* **SPP layer** — first (finest) pyramid level in {1, 2, 3, 4, 5};
* **fully-connected layers** — widths in {128, 256, ..., 8192}.

:class:`ValueChoice` mirrors Retiarii's primitive of the same name;
:class:`ModelSpace` is a named collection of choices that supports
sampling, grid enumeration, mutation, and deterministic encoding (for
trial deduplication).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from ..arch import ConvSpec, PoolSpec, SPPNetConfig

__all__ = ["ValueChoice", "ModelSpace", "sppnet_search_space", "config_from_sample"]


@dataclass(frozen=True)
class ValueChoice:
    """A named categorical hyper-parameter."""

    name: str
    candidates: tuple

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ValueError(f"choice {self.name!r} has no candidates")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError(f"choice {self.name!r} has duplicate candidates")

    def sample(self, rng: np.random.Generator):
        return self.candidates[int(rng.integers(len(self.candidates)))]

    def __len__(self) -> int:
        return len(self.candidates)


class ModelSpace:
    """An ordered set of :class:`ValueChoice` mutables."""

    def __init__(self, choices: list[ValueChoice]) -> None:
        if not choices:
            raise ValueError("empty model space")
        names = [c.name for c in choices]
        if len(set(names)) != len(names):
            raise ValueError("duplicate choice names")
        self.choices = list(choices)

    def __getitem__(self, name: str) -> ValueChoice:
        for choice in self.choices:
            if choice.name == name:
                return choice
        raise KeyError(name)

    @property
    def size(self) -> int:
        """Number of distinct architectures in the space."""
        n = 1
        for choice in self.choices:
            n *= len(choice)
        return n

    def sample(self, rng: np.random.Generator) -> dict:
        """Draw one architecture uniformly at random (the paper's strategy)."""
        return {c.name: c.sample(rng) for c in self.choices}

    def grid(self) -> Iterator[dict]:
        """Enumerate the whole space in lexicographic order."""
        names = [c.name for c in self.choices]
        for values in itertools.product(*(c.candidates for c in self.choices)):
            yield dict(zip(names, values))

    def mutate(self, sample: Mapping, rng: np.random.Generator) -> dict:
        """Change exactly one choice to a different value (evolution step)."""
        out = dict(sample)
        choice = self.choices[int(rng.integers(len(self.choices)))]
        alternatives = [v for v in choice.candidates if v != out[choice.name]]
        if alternatives:
            out[choice.name] = alternatives[int(rng.integers(len(alternatives)))]
        return out

    def validate(self, sample: Mapping) -> None:
        for choice in self.choices:
            if choice.name not in sample:
                raise KeyError(f"sample missing choice {choice.name!r}")
            if sample[choice.name] not in choice.candidates:
                raise ValueError(
                    f"{sample[choice.name]!r} is not a candidate of {choice.name!r}"
                )

    @staticmethod
    def encode(sample: Mapping) -> tuple:
        """Canonical hashable encoding for deduplication."""
        return tuple(sorted(sample.items()))


def sppnet_search_space(include_second_fc: bool = False,
                        include_batchnorm: bool = False) -> ModelSpace:
    """The paper's §4.2 search space.

    ``include_second_fc`` adds the second FC width §4.2 mentions; Table 1
    reports single-F architectures, so the default keeps one FC layer.
    ``include_batchnorm`` adds the BatchNorm extension axis (folds into
    convolutions at inference, so it trades training dynamics, not
    latency).
    """
    choices = [
        ValueChoice("first_kernel", (1, 3, 5, 7, 9)),
        ValueChoice("spp_first_level", (1, 2, 3, 4, 5)),
        ValueChoice("fc_width", (128, 256, 512, 1024, 2048, 4096, 8192)),
    ]
    if include_second_fc:
        choices.append(ValueChoice("fc2_width", (128, 256, 512, 1024, 2048, 4096, 8192)))
    if include_batchnorm:
        choices.append(ValueChoice("batchnorm", (False, True)))
    return ModelSpace(choices)


def config_from_sample(sample: Mapping, in_channels: int = 4,
                       name: str | None = None) -> SPPNetConfig:
    """Instantiate the SPP-Net architecture a search-space sample encodes.

    The finest pyramid level joins the fixed coarser (2, 1) levels; when it
    would duplicate one of them (levels must be distinct), the pyramid
    degenerates the way the paper's grammar implies: level 2 -> (2, 1),
    level 1 -> (1,).
    """
    first = int(sample["spp_first_level"])
    if first > 2:
        levels: tuple[int, ...] = (first, 2, 1)
    elif first == 2:
        levels = (2, 1)
    else:
        levels = (1,)
    fc_sizes: tuple[int, ...] = (int(sample["fc_width"]),)
    if "fc2_width" in sample:
        fc_sizes = fc_sizes + (int(sample["fc2_width"]),)
    k = int(sample["first_kernel"])
    batchnorm = bool(sample.get("batchnorm", False))
    label = name or (
        f"SPPNet[k{k}-spp{first}-fc{'x'.join(str(s) for s in fc_sizes)}"
        + ("-bn" if batchnorm else "") + "]"
    )
    return SPPNetConfig(
        convs=(ConvSpec(64, k, 1), ConvSpec(128, 3, 1), ConvSpec(256, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=levels,
        fc_sizes=fc_sizes,
        in_channels=in_channels,
        name=label,
        use_batchnorm=batchnorm,
    )
