"""Exploration strategies for multi-trial NAS.

The paper uses random search; grid search, regularized evolution and a
light SMBO policy are provided for the strategy ablation benchmark.
Every strategy implements ``propose(space, history, rng) -> sample`` and
is stateless apart from what it derives from ``history`` (so experiments
can be resumed deterministically).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Protocol, Sequence

import numpy as np

from .space import ModelSpace

if TYPE_CHECKING:  # pragma: no cover
    from .experiment import TrialRecord

__all__ = [
    "ExplorationStrategy",
    "RandomStrategy",
    "GridSearchStrategy",
    "RegularizedEvolution",
    "GreedyBanditStrategy",
]


class ExplorationStrategy(Protocol):
    """Strategy protocol: propose the next architecture to evaluate."""

    name: str

    def propose(self, space: ModelSpace, history: Sequence["TrialRecord"],
                rng: np.random.Generator) -> Mapping: ...


class RandomStrategy:
    """Uniform random sampling — the paper's exploration strategy (§4.2)."""

    name = "random"

    def propose(self, space: ModelSpace, history, rng: np.random.Generator) -> dict:
        return space.sample(rng)


class GridSearchStrategy:
    """Lexicographic sweep of the whole space (exhaustive baseline).

    Proposes the first grid point not present in history; falls back to
    random once the grid is exhausted.
    """

    name = "grid"

    def propose(self, space: ModelSpace, history, rng: np.random.Generator) -> dict:
        tried = {ModelSpace.encode(t.sample) for t in history}
        for sample in space.grid():
            if ModelSpace.encode(sample) not in tried:
                return sample
        return space.sample(rng)


class RegularizedEvolution:
    """Aging evolution (Real et al., 2019): tournament + single mutation.

    Keeps the most recent ``population`` trials alive; each proposal
    mutates the best of ``sample_size`` randomly drawn members.  Falls
    back to random sampling while the population is warming up.
    """

    name = "evolution"

    def __init__(self, population: int = 16, sample_size: int = 4) -> None:
        if population < 2 or sample_size < 1:
            raise ValueError("population >= 2 and sample_size >= 1 required")
        self.population = population
        self.sample_size = sample_size

    def propose(self, space: ModelSpace, history, rng: np.random.Generator) -> dict:
        alive = list(history)[-self.population:]
        if len(alive) < self.sample_size:
            return space.sample(rng)
        picks = rng.choice(len(alive), size=self.sample_size, replace=False)
        parent = max((alive[int(i)] for i in picks), key=lambda t: t.value)
        return space.mutate(parent.sample, rng)


class GreedyBanditStrategy:
    """Per-choice epsilon-greedy SMBO.

    Scores each candidate value of each choice by the mean objective of
    the trials that used it, then proposes the per-choice argmax with
    probability 1-epsilon (random otherwise).  A cheap stand-in for TPE
    that needs no density estimation.
    """

    name = "bandit"

    def __init__(self, epsilon: float = 0.3) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.epsilon = epsilon

    def propose(self, space: ModelSpace, history, rng: np.random.Generator) -> dict:
        if not history or rng.random() < self.epsilon:
            return space.sample(rng)
        sample: dict = {}
        for choice in space.choices:
            means: dict = {}
            for trial in history:
                value = trial.sample.get(choice.name)
                if value is not None:
                    means.setdefault(value, []).append(trial.value)
            scored = {v: float(np.mean(vals)) for v, vals in means.items()}
            untried = [v for v in choice.candidates if v not in scored]
            if untried:
                sample[choice.name] = untried[int(rng.integers(len(untried)))]
            else:
                sample[choice.name] = max(scored, key=scored.get)
        return sample
