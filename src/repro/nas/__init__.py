"""repro.nas — NNI/Retiarii-style neural architecture search toolkit."""

from .constrained import (
    CandidateProfile,
    benchmark_candidates,
    constrained_selection,
    resource_aware_selection,
)
from .parallel import ParallelExperiment
from .pareto import dominates, front_table, knee_point, pareto_front
from .evaluator import EvaluationResult, FunctionalEvaluator, TrainingEvaluator
from .experiment import Experiment, TrialRecord
from .space import ModelSpace, ValueChoice, config_from_sample, sppnet_search_space
from .strategy import (
    GreedyBanditStrategy,
    GridSearchStrategy,
    RandomStrategy,
    RegularizedEvolution,
)

__all__ = [
    "ValueChoice",
    "ModelSpace",
    "sppnet_search_space",
    "config_from_sample",
    "EvaluationResult",
    "FunctionalEvaluator",
    "TrainingEvaluator",
    "TrialRecord",
    "Experiment",
    "RandomStrategy",
    "GridSearchStrategy",
    "RegularizedEvolution",
    "GreedyBanditStrategy",
    "CandidateProfile",
    "benchmark_candidates",
    "constrained_selection",
    "resource_aware_selection",
    "dominates",
    "pareto_front",
    "knee_point",
    "front_table",
    "ParallelExperiment",
]
