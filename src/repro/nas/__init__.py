"""repro.nas — NNI/Retiarii-style neural architecture search toolkit."""

from .constrained import (
    CandidateProfile,
    benchmark_candidates,
    candidates_from_trials,
    constrained_selection,
    resource_aware_selection,
)
from .evaluator import (
    EvaluationResult,
    FunctionalEvaluator,
    TrainingEvaluator,
    measure_latency_ms,
)
from .experiment import Experiment, TrialRecord, run_trial_with_retries
from .journal import TrialJournal
from .parallel import ParallelExperiment
from .pareto import dominates, front_table, knee_point, pareto_front
from .retry import RetryPolicy
from .space import ModelSpace, ValueChoice, config_from_sample, sppnet_search_space
from .strategy import (
    GreedyBanditStrategy,
    GridSearchStrategy,
    RandomStrategy,
    RegularizedEvolution,
)

__all__ = [
    "ValueChoice",
    "ModelSpace",
    "sppnet_search_space",
    "config_from_sample",
    "EvaluationResult",
    "FunctionalEvaluator",
    "TrainingEvaluator",
    "measure_latency_ms",
    "TrialRecord",
    "Experiment",
    "RetryPolicy",
    "TrialJournal",
    "run_trial_with_retries",
    "RandomStrategy",
    "GridSearchStrategy",
    "RegularizedEvolution",
    "GreedyBanditStrategy",
    "CandidateProfile",
    "benchmark_candidates",
    "candidates_from_trials",
    "constrained_selection",
    "resource_aware_selection",
    "dominates",
    "pareto_front",
    "knee_point",
    "front_table",
    "ParallelExperiment",
]
