"""Trial retry policy: exponential backoff with seeded jitter.

One evaluator exception should cost one retry delay, not the whole
sweep.  ``RetryPolicy`` decides how many attempts a trial gets and how
long to back off between them; jitter decorrelates concurrent retries so
parallel workers do not hammer a shared resource in lockstep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the trial retry loop.

    max_attempts : total tries per trial (1 = no retries); a trial that
                   fails all attempts is quarantined as a failed record.
    backoff_s    : delay before the first retry.
    multiplier   : backoff growth factor per further retry.
    jitter       : uniform jitter fraction added to each delay
                   (``delay * U[0, jitter]``); 0 disables it.
    max_backoff_s: ceiling on any single delay.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter:
            raise ValueError("jitter must be >= 0")

    def delay(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retrying after ``attempt`` failures (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_s * self.multiplier ** (attempt - 1)
        if self.jitter and rng is not None:
            base *= 1.0 + float(rng.uniform(0.0, self.jitter))
        return min(base, self.max_backoff_s)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail-fast policy: a single attempt, quarantine on first error."""
        return cls(max_attempts=1, backoff_s=0.0)
