"""Accuracy-constrained inference-efficiency optimization (§5.3–5.4).

The paper converts the dual objective (maximize accuracy a(n) *and*
efficiency e(n)) into::

    maximize e(n), n in N,  subject to  a(n) > A

The Figure 5 pipeline: NAS produces candidates with measured accuracy;
candidates over the threshold are benchmarked through IOS on the
(simulated) GPU; the most efficient one wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..arch import SPPNetConfig
from ..gpusim.device import DeviceSpec
from ..graph.builder import build_sppnet_graph
from ..ios.optimizer import optimize_schedule

__all__ = ["CandidateProfile", "benchmark_candidates", "candidates_from_trials",
           "constrained_selection", "resource_aware_selection"]


def candidates_from_trials(trials) -> list[tuple[SPPNetConfig, float]]:
    """(config, accuracy) pairs from experiment trials, skipping quarantined
    failures — a NaN-valued failed trial must never reach the §5.4
    constraint check (NaN compares False everywhere and would poison the
    accuracy ordering)."""
    from .space import config_from_sample

    return [(config_from_sample(t.sample), t.value) for t in trials
            if getattr(t, "ok", True)]


@dataclass(frozen=True)
class CandidateProfile:
    """One NAS candidate with both objectives measured."""

    config: SPPNetConfig
    accuracy: float
    sequential_latency_us: float
    optimized_latency_us: float
    batch: int

    @property
    def efficiency(self) -> float:
        """Inference efficiency: images per second under the IOS schedule."""
        return 1e6 * self.batch / self.optimized_latency_us

    @property
    def speedup(self) -> float:
        return self.sequential_latency_us / self.optimized_latency_us


def benchmark_candidates(
    candidates: Sequence[tuple[SPPNetConfig, float]],
    batch: int = 1,
    device: DeviceSpec | None = None,
    input_size: int = 100,
) -> list[CandidateProfile]:
    """IOS-benchmark (sequential + optimized) every (config, accuracy) pair."""
    profiles: list[CandidateProfile] = []
    for config, accuracy in candidates:
        graph = build_sppnet_graph(config, input_size=input_size)
        result = optimize_schedule(graph, batch, device)
        profiles.append(CandidateProfile(
            config=config,
            accuracy=accuracy,
            sequential_latency_us=result.sequential_latency_us,
            optimized_latency_us=result.optimized_latency_us,
            batch=batch,
        ))
    return profiles


def constrained_selection(
    profiles: Sequence[CandidateProfile],
    accuracy_threshold: float,
) -> CandidateProfile:
    """maximize e(n) subject to a(n) > A.

    Raises ``ValueError`` when no candidate satisfies the constraint (the
    caller should lower A or search more architectures).
    """
    feasible = [p for p in profiles if p.accuracy > accuracy_threshold]
    if not feasible:
        best_acc = max((p.accuracy for p in profiles), default=float("nan"))
        raise ValueError(
            f"no candidate exceeds accuracy threshold {accuracy_threshold:.4f} "
            f"(best observed {best_acc:.4f})"
        )
    return max(feasible, key=lambda p: p.efficiency)


def resource_aware_selection(
    candidates: Sequence[tuple[SPPNetConfig, float]],
    accuracy_threshold: float,
    batch: int = 1,
    device: DeviceSpec | None = None,
    input_size: int = 100,
) -> tuple[CandidateProfile, list[CandidateProfile]]:
    """The full Figure 5 pipeline: benchmark, filter, select.

    Returns (winner, all profiles).
    """
    profiles = benchmark_candidates(candidates, batch=batch, device=device,
                                    input_size=input_size)
    return constrained_selection(profiles, accuracy_threshold), profiles
