"""Append-only JSONL trial journal: experiment checkpoint/resume.

Every finished trial (successful or quarantined) is appended as one JSON
line and flushed to disk, so a sweep killed at trial k has lost nothing —
``load()`` rebuilds the trial DB and ``Experiment.resume`` /
``ParallelExperiment.resume`` continue from it.  The format is
self-describing (one ``TrialRecord`` per line) and append-only: a resume
appends to the same file, never rewrites it.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from .experiment import TrialRecord

__all__ = ["TrialJournal"]


class TrialJournal:
    """Crash-safe JSONL log of trial records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: TrialRecord) -> None:
        """Write one record and force it to disk before returning.

        Open/append/fsync/close per trial: trials run for seconds to
        minutes, so durability beats the syscall cost, and there is no
        long-lived handle to leak when the process is killed.
        """
        line = json.dumps(self.to_json(record), allow_nan=False)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def load(self) -> list[TrialRecord]:
        """All journaled records, in the order they completed."""
        if not self.path.exists():
            return []
        records: list[TrialRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(self.from_json(json.loads(line)))
        return records

    @staticmethod
    def to_json(record: TrialRecord) -> dict:
        value = record.value
        return {
            "trial_id": record.trial_id,
            "sample": dict(record.sample),
            "value": None if math.isnan(value) else value,
            "metrics": dict(record.metrics),
            "duration_s": record.duration_s,
            "status": record.status,
            "error": record.error,
            "attempts": record.attempts,
        }

    @staticmethod
    def from_json(payload: dict) -> TrialRecord:
        value = payload["value"]
        return TrialRecord(
            trial_id=int(payload["trial_id"]),
            sample=dict(payload["sample"]),
            value=float("nan") if value is None else float(value),
            metrics=dict(payload.get("metrics", {})),
            duration_s=float(payload.get("duration_s", 0.0)),
            status=payload.get("status", "ok"),
            error=payload.get("error"),
            attempts=int(payload.get("attempts", 1)),
        )
