"""Multi-trial NAS experiment driver (Retiarii's experiment loop).

Runs strategy-proposed architectures through an evaluator, records every
trial, and aggregates results — "the tuning workflow organized by
aggregating and comparing tuning results" the paper credits NNI with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .evaluator import EvaluationResult, FunctionalEvaluator
from .space import ModelSpace
from .strategy import ExplorationStrategy, RandomStrategy

__all__ = ["TrialRecord", "Experiment"]


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated architecture."""

    trial_id: int
    sample: Mapping
    value: float
    metrics: Mapping
    duration_s: float

    def metric(self, key: str, default=None):
        return self.metrics.get(key, default)


@dataclass
class Experiment:
    """Multi-trial search experiment.

    Parameters
    ----------
    space : the model space to explore.
    evaluator : trial evaluator (typically :class:`FunctionalEvaluator`).
    strategy : exploration strategy; defaults to the paper's random search.
    max_trials : trial budget.
    seed : seeds the strategy RNG.
    deduplicate : skip proposals already evaluated (retrying up to
        ``dedup_patience`` times before accepting a duplicate).
    """

    space: ModelSpace
    evaluator: FunctionalEvaluator
    strategy: ExplorationStrategy = field(default_factory=RandomStrategy)
    max_trials: int = 20
    seed: int = 0
    deduplicate: bool = True
    dedup_patience: int = 50
    trials: list[TrialRecord] = field(default_factory=list)

    def run(self) -> list[TrialRecord]:
        """Execute the trial loop and return all records."""
        if self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        rng = np.random.default_rng(self.seed)
        seen = {ModelSpace.encode(t.sample) for t in self.trials}
        while len(self.trials) < self.max_trials:
            sample = self.strategy.propose(self.space, self.trials, rng)
            if self.deduplicate:
                retries = 0
                while ModelSpace.encode(sample) in seen and retries < self.dedup_patience:
                    sample = self.strategy.propose(self.space, self.trials, rng)
                    retries += 1
                if ModelSpace.encode(sample) in seen and len(seen) >= self.space.size:
                    break  # space exhausted
            self.space.validate(sample)
            start = time.perf_counter()
            result: EvaluationResult = self.evaluator.evaluate(sample)
            record = TrialRecord(
                trial_id=len(self.trials),
                sample=dict(sample),
                value=result.value,
                metrics={k: v for k, v in result.items() if k != "value"},
                duration_s=time.perf_counter() - start,
            )
            self.trials.append(record)
            seen.add(ModelSpace.encode(sample))
        return self.trials

    # -- aggregation ------------------------------------------------------
    def best(self) -> TrialRecord:
        if not self.trials:
            raise RuntimeError("experiment has not run")
        return max(self.trials, key=lambda t: t.value)

    def top_k(self, k: int) -> list[TrialRecord]:
        return sorted(self.trials, key=lambda t: t.value, reverse=True)[:k]

    def above_threshold(self, threshold: float) -> list[TrialRecord]:
        """Trials meeting the accuracy constraint of §5.4 (a(n) > A)."""
        return [t for t in self.trials if t.value > threshold]

    def results_table(self) -> str:
        """Tuning-result comparison table, best first."""
        if not self.trials:
            return "(no trials)"
        names = [c.name for c in self.space.choices]
        header = f"{'trial':>5}  {'value':>8}  " + "  ".join(f"{n:>14}" for n in names)
        lines = [header, "-" * len(header)]
        for t in sorted(self.trials, key=lambda t: t.value, reverse=True):
            cells = "  ".join(f"{str(t.sample.get(n)):>14}" for n in names)
            lines.append(f"{t.trial_id:>5}  {t.value:8.4f}  {cells}")
        return "\n".join(lines)
