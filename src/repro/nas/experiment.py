"""Multi-trial NAS experiment driver (Retiarii's experiment loop).

Runs strategy-proposed architectures through an evaluator, records every
trial, and aggregates results — "the tuning workflow organized by
aggregating and comparing tuning results" the paper credits NNI with.

Fault tolerance: an evaluator exception no longer kills the sweep.  Each
trial gets ``RetryPolicy.max_attempts`` tries with exponential backoff +
jitter; a trial that exhausts them is *quarantined* as a failed
:class:`TrialRecord` (``status="failed"``, NaN value) that ``best()`` and
the constrained-selection path skip.  With a ``journal`` configured,
every finished trial is appended to a crash-safe JSONL file and
:meth:`Experiment.resume` continues a killed sweep from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from .evaluator import EvaluationResult, FunctionalEvaluator
from .retry import RetryPolicy
from .space import ModelSpace
from .strategy import ExplorationStrategy, RandomStrategy

if TYPE_CHECKING:  # pragma: no cover
    from .journal import TrialJournal

__all__ = ["TrialRecord", "Experiment", "run_trial_with_retries"]


@dataclass(frozen=True)
class TrialRecord:
    """One evaluated architecture.

    status is ``"ok"`` for a successful evaluation or ``"failed"`` for a
    quarantined trial (all retry attempts exhausted; ``value`` is NaN and
    ``error`` holds the last exception).  ``attempts`` counts evaluator
    calls including retries; ``duration_s`` is the wall-clock time of the
    final attempt only (backoff sleeps excluded), measured per trial even
    under parallel dispatch.
    """

    trial_id: int
    sample: Mapping
    value: float
    metrics: Mapping
    duration_s: float
    status: str = "ok"
    error: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def metric(self, key: str, default=None):
        return self.metrics.get(key, default)


def run_trial_with_retries(
    evaluator: FunctionalEvaluator,
    sample: Mapping,
    trial_id: int,
    policy: RetryPolicy,
    backoff_rng: np.random.Generator | None = None,
) -> TrialRecord:
    """Evaluate one sample under the retry policy; never raises.

    Shared by the sequential and parallel drivers so both quarantine
    identically.  Only ``Exception`` is absorbed — ``KeyboardInterrupt``
    and friends still propagate.
    """
    attempts = 0
    while True:
        attempts += 1
        start = time.perf_counter()
        try:
            result: EvaluationResult = evaluator.evaluate(sample)
        except Exception as exc:
            duration = time.perf_counter() - start
            if attempts >= policy.max_attempts:
                return TrialRecord(
                    trial_id=trial_id,
                    sample=dict(sample),
                    value=float("nan"),
                    metrics={},
                    duration_s=duration,
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=attempts,
                )
            time.sleep(policy.delay(attempts, backoff_rng))
        else:
            return TrialRecord(
                trial_id=trial_id,
                sample=dict(sample),
                value=result.value,
                metrics={k: v for k, v in result.items() if k != "value"},
                duration_s=time.perf_counter() - start,
                status="ok",
                attempts=attempts,
            )


def _as_journal(journal) -> "TrialJournal | None":
    from .journal import TrialJournal

    if journal is None or isinstance(journal, TrialJournal):
        return journal
    return TrialJournal(journal)


@dataclass
class Experiment:
    """Multi-trial search experiment.

    Parameters
    ----------
    space : the model space to explore.
    evaluator : trial evaluator (typically :class:`FunctionalEvaluator`).
    strategy : exploration strategy; defaults to the paper's random search.
    max_trials : trial budget (quarantined failures count against it).
    seed : seeds the strategy RNG (and retry-jitter RNG).
    deduplicate : skip proposals already evaluated (retrying up to
        ``dedup_patience`` times before accepting a duplicate).
    retry_policy : per-trial retry/backoff knobs; ``RetryPolicy.none()``
        quarantines on the first failure.
    journal : path or :class:`~repro.nas.journal.TrialJournal`; when set,
        every finished trial is appended (JSONL) so the sweep can be
        resumed after a crash.
    """

    space: ModelSpace
    evaluator: FunctionalEvaluator
    strategy: ExplorationStrategy = field(default_factory=RandomStrategy)
    max_trials: int = 20
    seed: int = 0
    deduplicate: bool = True
    dedup_patience: int = 50
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    journal: "TrialJournal | str | Path | None" = None
    trials: list[TrialRecord] = field(default_factory=list)

    @classmethod
    def resume(cls, journal: "TrialJournal | str | Path", space: ModelSpace,
               evaluator: FunctionalEvaluator, **kwargs) -> "Experiment":
        """Rebuild an experiment from its trial journal and continue.

        The journaled trials seed both the trial DB and the dedup seen-set,
        so ``run()`` picks up exactly where the killed sweep stopped: with
        a history-independent strategy (random/grid) and the same seed the
        proposal stream replays from the start and already-journaled
        samples are skipped, yielding the identical trial sequence an
        uninterrupted run would have produced.  ``dedup_patience`` is
        raised to cover the replayed prefix.
        """
        store = _as_journal(journal)
        trials = store.load()
        kwargs.setdefault("dedup_patience", max(50, 2 * len(trials) + 50))
        return cls(space=space, evaluator=evaluator, journal=store,
                   trials=trials, **kwargs)

    def run(self) -> list[TrialRecord]:
        """Execute the trial loop and return all records."""
        if self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        rng = np.random.default_rng(self.seed)
        backoff_rng = np.random.default_rng((self.seed, 0x5E11))
        journal = _as_journal(self.journal)
        seen = {ModelSpace.encode(t.sample) for t in self.trials}
        while len(self.trials) < self.max_trials:
            sample = self.strategy.propose(self.space, self.trials, rng)
            if self.deduplicate:
                retries = 0
                while ModelSpace.encode(sample) in seen and retries < self.dedup_patience:
                    sample = self.strategy.propose(self.space, self.trials, rng)
                    retries += 1
                if ModelSpace.encode(sample) in seen and len(seen) >= self.space.size:
                    break  # space exhausted
            self.space.validate(sample)
            record = run_trial_with_retries(
                self.evaluator, sample, trial_id=len(self.trials),
                policy=self.retry_policy, backoff_rng=backoff_rng,
            )
            self.trials.append(record)
            seen.add(ModelSpace.encode(sample))
            if journal is not None:
                journal.append(record)
        return self.trials

    # -- aggregation ------------------------------------------------------
    def succeeded(self) -> list[TrialRecord]:
        return [t for t in self.trials if t.ok]

    def failed(self) -> list[TrialRecord]:
        """Quarantined trials (all retry attempts exhausted)."""
        return [t for t in self.trials if not t.ok]

    def best(self) -> TrialRecord:
        ok = self.succeeded()
        if not ok:
            if self.trials:
                raise RuntimeError(
                    f"all {len(self.trials)} trials failed (quarantined)"
                )
            raise RuntimeError("experiment has not run")
        return max(ok, key=lambda t: t.value)

    def top_k(self, k: int) -> list[TrialRecord]:
        return sorted(self.succeeded(), key=lambda t: t.value, reverse=True)[:k]

    def above_threshold(self, threshold: float) -> list[TrialRecord]:
        """Trials meeting the accuracy constraint of §5.4 (a(n) > A)."""
        return [t for t in self.succeeded() if t.value > threshold]

    def results_table(self) -> str:
        """Tuning-result comparison table, best first, failures last."""
        if not self.trials:
            return "(no trials)"
        names = [c.name for c in self.space.choices]
        header = f"{'trial':>5}  {'value':>8}  " + "  ".join(f"{n:>14}" for n in names)
        lines = [header, "-" * len(header)]
        ordered = sorted(self.succeeded(), key=lambda t: t.value, reverse=True)
        ordered += self.failed()
        for t in ordered:
            cells = "  ".join(f"{str(t.sample.get(n)):>14}" for n in names)
            shown = f"{t.value:8.4f}" if t.ok else f"{'FAILED':>8}"
            lines.append(f"{t.trial_id:>5}  {shown}  {cells}")
        return "\n".join(lines)
