"""Pareto analysis of the §5.4 dual objective.

The paper converts "maximize a(n) AND e(n)" into a constrained
scalarization.  The underlying structure is a Pareto front, and exposing
it is strictly more informative: every threshold A selects some point on
the front, and the front shows what each accuracy point costs in
throughput.  :func:`constrained_selection` and this module agree by
construction — the constrained winner is always a front member — which
the property tests assert.
"""

from __future__ import annotations

from typing import Sequence

from .constrained import CandidateProfile

__all__ = ["pareto_front", "dominates", "knee_point", "front_table"]


def dominates(a: CandidateProfile, b: CandidateProfile) -> bool:
    """True when ``a`` is at least as good on both objectives and strictly
    better on one (accuracy up, efficiency up)."""
    at_least = a.accuracy >= b.accuracy and a.efficiency >= b.efficiency
    strictly = a.accuracy > b.accuracy or a.efficiency > b.efficiency
    return at_least and strictly


def pareto_front(profiles: Sequence[CandidateProfile]) -> list[CandidateProfile]:
    """Non-dominated candidates, sorted by accuracy ascending."""
    front = [
        p for p in profiles
        if not any(dominates(q, p) for q in profiles)
    ]
    # Deduplicate identical objective pairs (keep first).
    seen: set[tuple[float, float]] = set()
    unique = []
    for p in sorted(front, key=lambda p: (p.accuracy, p.efficiency)):
        key = (p.accuracy, p.efficiency)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def knee_point(front: Sequence[CandidateProfile]) -> CandidateProfile:
    """The front member with the best normalized accuracy-efficiency sum —
    a threshold-free default pick when no accuracy constraint is given."""
    if not front:
        raise ValueError("empty front")
    accs = [p.accuracy for p in front]
    effs = [p.efficiency for p in front]
    a_lo, a_hi = min(accs), max(accs)
    e_lo, e_hi = min(effs), max(effs)

    def score(p: CandidateProfile) -> float:
        a = (p.accuracy - a_lo) / (a_hi - a_lo) if a_hi > a_lo else 1.0
        e = (p.efficiency - e_lo) / (e_hi - e_lo) if e_hi > e_lo else 1.0
        return a + e

    return max(front, key=score)


def front_table(profiles: Sequence[CandidateProfile]) -> str:
    """Render all candidates, marking front membership and the knee."""
    front = pareto_front(profiles)
    front_names = {p.config.name for p in front}
    knee = knee_point(front).config.name if front else None
    lines = [f"{'model':32s} {'accuracy':>9} {'efficiency':>11}  status"]
    for p in sorted(profiles, key=lambda p: -p.efficiency):
        status = "pareto" if p.config.name in front_names else "dominated"
        if p.config.name == knee:
            status += " (knee)"
        lines.append(f"{p.config.name:32s} {p.accuracy:9.4f} "
                     f"{p.efficiency:11.1f}  {status}")
    return "\n".join(lines)
