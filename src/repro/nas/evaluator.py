"""Model evaluators (Retiarii's FunctionalEvaluator equivalent).

An evaluator turns a sampled architecture into the scalar objective the
exploration strategy maximizes, optionally with auxiliary metrics that
the experiment records per trial.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..arch import SPPNetConfig
from .space import config_from_sample

__all__ = ["EvaluationResult", "FunctionalEvaluator", "TrainingEvaluator"]


class EvaluationResult(dict):
    """Metric dict with a mandatory ``value`` objective entry."""

    def __init__(self, value: float, **metrics) -> None:
        super().__init__(value=float(value), **metrics)

    @property
    def value(self) -> float:
        return self["value"]


class FunctionalEvaluator:
    """Wraps a plain callable ``fn(sample) -> float | Mapping``.

    This is the paper's choice ("we used FunctionalEvaluator, the default
    evaluator provided by the Retiarii framework").  The callable may
    return a bare float (treated as the objective) or a mapping with a
    ``value`` key plus any extra metrics.
    """

    def __init__(self, fn: Callable[[Mapping], float | Mapping]) -> None:
        self.fn = fn

    def evaluate(self, sample: Mapping) -> EvaluationResult:
        out = self.fn(sample)
        if isinstance(out, Mapping):
            if "value" not in out:
                raise KeyError("evaluator mapping result must contain 'value'")
            metrics = dict(out)
            value = float(metrics.pop("value"))
            return EvaluationResult(value, **metrics)
        return EvaluationResult(float(out))


class TrainingEvaluator(FunctionalEvaluator):
    """Evaluator that trains a real detector per sample.

    ``train_fn(config: SPPNetConfig) -> float | Mapping`` receives the
    instantiated architecture, keeping the search space decoding in one
    place.
    """

    def __init__(self, train_fn: Callable[[SPPNetConfig], float | Mapping],
                 in_channels: int = 4) -> None:
        super().__init__(lambda sample: train_fn(
            config_from_sample(sample, in_channels=in_channels)
        ))
