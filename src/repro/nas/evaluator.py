"""Model evaluators (Retiarii's FunctionalEvaluator equivalent).

An evaluator turns a sampled architecture into the scalar objective the
exploration strategy maximizes, optionally with auxiliary metrics that
the experiment records per trial.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping

from ..arch import SPPNetConfig
from .space import config_from_sample

__all__ = ["EvaluationResult", "FunctionalEvaluator", "TrainingEvaluator",
           "measure_latency_ms"]


class EvaluationResult(dict):
    """Metric dict with a mandatory ``value`` objective entry."""

    def __init__(self, value: float, **metrics) -> None:
        super().__init__(value=float(value), **metrics)

    @property
    def value(self) -> float:
        return self["value"]


class FunctionalEvaluator:
    """Wraps a plain callable ``fn(sample) -> float | Mapping``.

    This is the paper's choice ("we used FunctionalEvaluator, the default
    evaluator provided by the Retiarii framework").  The callable may
    return a bare float (treated as the objective) or a mapping with a
    ``value`` key plus any extra metrics.
    """

    def __init__(self, fn: Callable[[Mapping], float | Mapping]) -> None:
        self.fn = fn

    def evaluate(self, sample: Mapping) -> EvaluationResult:
        out = self.fn(sample)
        if isinstance(out, Mapping):
            if "value" not in out:
                raise KeyError("evaluator mapping result must contain 'value'")
            metrics = dict(out)
            value = float(metrics.pop("value"))
            return EvaluationResult(value, **metrics)
        return EvaluationResult(float(out))


def measure_latency_ms(
    config: SPPNetConfig,
    input_size: int = 100,
    batch: int = 1,
    repeats: int = 5,
    warmup: int = 1,
    backend: str = "eager",
    seed: int = 0,
    quant: str = "float32",
) -> float:
    """Wall-clock inference latency (ms) for one sampled architecture.

    Complements the analytic cost model in :mod:`repro.nas.constrained`
    (simulated FLOP/byte roofline) with a measured number: builds an
    untrained :class:`~repro.arch.SPPNetDetector` from ``config``, runs
    ``repeats`` timed forward passes over a fixed random batch, and
    returns the median per-pass time in milliseconds.  Latency is
    weight-agnostic, so untrained parameters measure the same program a
    trained checkpoint would.

    ``backend="engine"`` times the compiled inference engine
    (:mod:`repro.engine`) instead of the eager autograd path, so a
    latency-constrained search can rank candidates by their deployed
    cost — including whatever inter-operator schedule the engine's IOS
    pass (:mod:`repro.engine.sched`) chose for the architecture, since
    candidates with wide SPP branches deploy scheduled.  Compilation,
    step-cost measurement, and the schedule solve all happen in an
    explicit warmup before any timed pass and are not counted.  ``quant`` (engine backend only) measures the program under
    a reduced-precision mode (``"float16"``/``"int8"``) so a search can
    rank candidates by their quantized deployment latency; latency is
    accuracy-agnostic, so the accuracy gate for the mode is applied
    separately (:func:`repro.engine.quantize_with_accuracy_gate`).
    """
    import numpy as np

    from ..detect.predict import predict
    from ..detect.sppnet import SPPNetDetector

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if backend not in ("eager", "engine"):
        raise ValueError(f"unknown backend {backend!r}; use 'eager' or 'engine'")
    if quant != "float32" and backend != "engine":
        raise ValueError("quant modes require backend='engine'")
    rng = np.random.default_rng(seed)
    model = SPPNetDetector(config)
    model.eval()
    images = rng.standard_normal(
        (batch, config.in_channels, input_size, input_size)
    ).astype(np.float32)
    run: Callable[[], object]
    if backend == "engine":
        from ..engine import compiled_for

        compiled = compiled_for(model, quant=quant)
        # Bind the (batch, shape) program — including the IOS step-cost
        # measurement and DP solve on first use — before any timed (or
        # even warmup=0) pass, so the reported latency is steady-state
        # execution of the scheduled program, never compilation.
        compiled.warmup([batch],
                        (config.in_channels, input_size, input_size))
        run = lambda: compiled.predict(images, batch_size=batch)  # noqa: E731
    else:
        run = lambda: predict(model, images, batch_size=batch)  # noqa: E731
    for _ in range(warmup):
        run()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        times.append((time.perf_counter() - start) * 1e3)
    times.sort()
    return times[len(times) // 2]


class TrainingEvaluator(FunctionalEvaluator):
    """Evaluator that trains a real detector per sample.

    ``train_fn(config: SPPNetConfig) -> float | Mapping`` receives the
    instantiated architecture, keeping the search space decoding in one
    place.
    """

    def __init__(self, train_fn: Callable[[SPPNetConfig], float | Mapping],
                 in_channels: int = 4) -> None:
        super().__init__(lambda sample: train_fn(
            config_from_sample(sample, in_channels=in_channels)
        ))
