"""repro.fleet — supervised multi-scene scan orchestration.

The scan stack below this package is already crash-*safe* (journals,
resume, byte-identical parallel merge); this package makes it
crash-*surviving* at two levels:

* :mod:`~repro.fleet.supervise` — shard-level: per-shard deadlines,
  hung/dead worker kill-and-revive with redispatch, poison-shard
  quarantine with inline fallback, all without breaking the
  deterministic-merge byte-identity contract;
* :mod:`~repro.fleet.jobs` — scene-level: a durable JSONL job queue
  with leases, heartbeats, exponential-backoff retries
  (:class:`~repro.nas.retry.RetryPolicy`), and a dead-letter state;
* :mod:`~repro.fleet.orchestrator` — the sweep: claim a scene, scan it
  journaled-and-resumable under supervision, complete or retry.

See ``docs/fleet.md``.
"""

from .jobs import DEAD, DONE, LEASED, PENDING, JobQueue, JobQueueError, ScanJob
from .orchestrator import ScanFleet
from .supervise import ShardSupervisor, SupervisionPolicy, SupervisionReport

__all__ = [
    "SupervisionPolicy",
    "SupervisionReport",
    "ShardSupervisor",
    "JobQueue",
    "JobQueueError",
    "ScanJob",
    "PENDING",
    "LEASED",
    "DONE",
    "DEAD",
    "ScanFleet",
]
