"""Per-shard supervision for pool scans: deadlines, revival, poison
quarantine.

:class:`~repro.scanpar.pool.WorkerPool.run` trusts its workers: each one
gets a FIFO of shards and the parent waits for answers (bounded, since
PR 8, by a run-level dispatch deadline — but a single wedged worker
still fails the whole run).  The fleet needs scans that *finish* in the
presence of misbehaving workers, so :class:`ShardSupervisor` takes over
dispatch through :meth:`~repro.scanpar.pool.WorkerPool.exclusive` and
schedules shards itself, one in flight per worker:

* every in-flight shard carries a deadline
  (:attr:`SupervisionPolicy.shard_deadline_s`); a worker that misses it
  is presumed hung and is killed — after a last ``poll(0)`` drain, so a
  just-in-time answer is never discarded — then replaced, and the shard
  is redispatched to another worker;
* a worker that *dies* mid-shard (OOM kill, segfault, SIGKILL) is
  detected through its process sentinel the moment it exits, replaced,
  and its shard redispatched;
* a shard that fails :attr:`SupervisionPolicy.max_attempts` times on
  distinct workers is a **poison shard**: it is quarantined out of the
  pool and degrades to inline sequential execution in the parent after
  the pool phase, so one pathological shard can neither wedge the scan
  nor break the deterministic merge — the inline run produces exactly
  the bytes a worker would have;
* an overall ``deadline_at`` (the per-request deadline propagated from
  ``serve.InferenceService.scan_scene(timeout_s=...)``) aborts the run
  with :class:`~repro.detect.scan.ScanDeadlineError`, salvaging every
  buffered reply and killing the stragglers so the pool stays clean.

Because redispatch hands the *same* :class:`~repro.scanpar.worker.ShardTask`
to the replacement worker — same origin range, same batch boundaries,
same result slab — recovery is invisible to the merge: detections stay
byte-identical to the fault-free sequential scan.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection

from ..detect.scan import ScanDeadlineError
from ..scanpar.pool import WorkerError, WorkerPool
from ..scanpar.sharding import describe_shard
from ..scanpar.worker import run_shard

__all__ = ["SupervisionPolicy", "SupervisionReport", "ShardSupervisor"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for one supervised dispatch.

    shard_deadline_s : seconds an in-flight shard may run before its
                       worker is presumed hung (killed + revived,
                       shard redispatched); ``None`` disables per-shard
                       deadlines (deaths are still recovered).
    max_attempts     : distinct workers a shard may fail on before it
                       is quarantined as poison and runs inline.
    probe_interval_s : upper bound on how long the supervisor sleeps
                       between liveness checks — the wait also wakes on
                       replies and worker-death sentinels, so this only
                       bounds staleness, not latency.
    """

    shard_deadline_s: float | None = 120.0
    max_attempts: int = 3
    probe_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive or None")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")


@dataclass
class SupervisionReport:
    """What supervision had to do to finish one dispatch.

    ``max_overshoot_s`` is the worst gap between a shard's deadline and
    the moment its hung worker was actually killed — the chaos gate
    bounds it, because it is exactly the "hung worker stalls dispatch"
    failure the supervisor exists to prevent.
    """

    shards_total: int = 0
    deadline_kills: int = 0          # workers killed for missing a deadline
    worker_deaths: int = 0           # workers that died mid-shard
    workers_replaced: int = 0        # fresh processes spawned into slots
    redispatches: int = 0            # shard retries on another worker
    salvaged_replies: int = 0        # answers drained after death/deadline
    poison_shards: list[int] = field(default_factory=list)
    inline_shards: list[int] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    max_overshoot_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when no fault handling fired at all."""
        return (self.deadline_kills == 0 and self.worker_deaths == 0
                and self.redispatches == 0 and not self.poison_shards)

    def to_json(self) -> dict:
        return {
            "shards_total": self.shards_total,
            "deadline_kills": self.deadline_kills,
            "worker_deaths": self.worker_deaths,
            "workers_replaced": self.workers_replaced,
            "redispatches": self.redispatches,
            "salvaged_replies": self.salvaged_replies,
            "poison_shards": list(self.poison_shards),
            "inline_shards": list(self.inline_shards),
            "attempts": {str(k): v for k, v in sorted(self.attempts.items())},
            "max_overshoot_s": self.max_overshoot_s,
        }


class ShardSupervisor:
    """Supervised shard dispatch over a :class:`WorkerPool`.

    Holds the model object itself (not just its hash) for two reasons:
    replacement workers have empty caches and need the bytes re-sent,
    and poison shards run inline in the parent against this instance.
    """

    def __init__(self, pool: WorkerPool, model,
                 policy: SupervisionPolicy | None = None) -> None:
        self.pool = pool
        self.model = model
        self.policy = policy or SupervisionPolicy()

    def run(self, tasks: list, *,
            deadline_at: float | None = None,
            ) -> tuple[list[dict], SupervisionReport]:
        """Run shard tasks to completion under supervision.

        Returns ``(payloads in task order, report)``.  ``deadline_at``
        is an absolute ``time.monotonic()`` instant; past it the run
        aborts with :class:`ScanDeadlineError`.  Worker failures never
        raise — they redispatch — except a shard whose *inline* fallback
        also fails, which raises :class:`WorkerError` (at that point the
        failure is the model's, not a worker's).
        """
        policy = self.policy
        report = SupervisionReport(shards_total=len(tasks))
        if not tasks:
            return [], report
        results: dict[int, dict] = {}
        poisoned: list = []
        attempts: dict[int, int] = {t.shard_index: 0 for t in tasks}

        with self.pool.exclusive() as workers:
            self.pool.ensure_model(self.model)
            queue: deque = deque(tasks)
            idle: deque = deque(workers)
            in_flight: dict = {}      # conn -> [worker, task, deadline]

            def replace(worker, *, died: bool) -> None:
                if died:
                    report.worker_deaths += 1
                fresh = self.pool.replace_worker(worker)
                report.workers_replaced += 1
                self.pool.ensure_model(self.model)
                idle.append(fresh)

            def shard_failed(task) -> None:
                if attempts[task.shard_index] >= policy.max_attempts:
                    report.poison_shards.append(task.shard_index)
                    poisoned.append(task)
                else:
                    report.redispatches += 1
                    queue.append(task)

            def consume(conn, *, salvaged: bool = False) -> bool:
                """Receive the one in-flight reply on ``conn``; True if
                the worker is healthy and back to idle."""
                worker, task, _ = in_flight.pop(conn)
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    replace(worker, died=True)
                    shard_failed(task)
                    return False
                if salvaged:
                    report.salvaged_replies += 1
                if reply[0] == "ok":
                    results[task.shard_index] = reply[2]
                else:
                    # worker is alive and sane — the shard itself blew
                    # up — so it goes back to the idle set while the
                    # shard retries elsewhere (or is poisoned)
                    shard_failed(task)
                idle.append(worker)
                return True

            def dispatch() -> None:
                while queue and idle:
                    worker = idle.popleft()
                    task = queue.popleft()
                    try:
                        worker.send_shard(task)
                    except (BrokenPipeError, OSError):
                        queue.appendleft(task)
                        replace(worker, died=True)
                        continue
                    attempts[task.shard_index] += 1
                    due = (time.monotonic() + policy.shard_deadline_s
                           if policy.shard_deadline_s is not None else None)
                    in_flight[worker.conn] = [worker, task, due]

            def abort(now: float) -> None:
                # salvage everything already answered, then clear the
                # stragglers out of the pool so the next run is clean
                for conn in list(in_flight):
                    if conn.poll(0):
                        consume(conn, salvaged=True)
                missing = sorted(
                    {t.shard_index for t in tasks} - set(results)
                )
                for conn in list(in_flight):
                    worker, _, _ = in_flight.pop(conn)
                    report.deadline_kills += 1
                    replace(worker, died=False)
                raise ScanDeadlineError(
                    f"scan deadline expired with {len(missing)} of "
                    f"{len(tasks)} shards unfinished "
                    f"(missing shards {missing}); journaled tiles are "
                    f"resumable"
                )

            while queue or in_flight:
                dispatch()
                if not in_flight:
                    continue  # dispatch() replaced a worker; try again
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    abort(now)
                waits = [policy.probe_interval_s]
                waits += [due - now for _, _, due in in_flight.values()
                          if due is not None]
                if deadline_at is not None:
                    waits.append(deadline_at - now)
                sentinels = {entry[0].proc.sentinel: conn
                             for conn, entry in in_flight.items()}
                ready = mp_connection.wait(
                    list(in_flight) + list(sentinels),
                    timeout=max(0.0, min(waits)),
                )
                for obj in ready:
                    conn = obj if obj in in_flight else sentinels.get(obj)
                    if conn is None or conn not in in_flight:
                        continue
                    worker = in_flight[conn][0]
                    if conn.poll(0):
                        consume(conn, salvaged=obj is not conn)
                    elif not worker.proc.is_alive():
                        # died mid-shard, nothing buffered: the shard's
                        # answer is gone
                        _, task, _ = in_flight.pop(conn)
                        replace(worker, died=True)
                        shard_failed(task)
                # deadline sweep (also reached on a pure timeout wake)
                now = time.monotonic()
                for conn in list(in_flight):
                    worker, task, due = in_flight[conn]
                    if due is None or now < due:
                        continue
                    if conn.poll(0):     # answered just in time
                        consume(conn, salvaged=True)
                        continue
                    in_flight.pop(conn)
                    report.deadline_kills += 1
                    report.max_overshoot_s = max(report.max_overshoot_s,
                                                 now - due)
                    replace(worker, died=False)
                    shard_failed(task)

        # poison shards: inline sequential execution in the parent —
        # same task, same slab, same journal path, so the merge cannot
        # tell recovery happened
        for task in poisoned:
            report.inline_shards.append(task.shard_index)
            cache = ({task.model_hash: self.model}
                     if task.model_hash is not None else None)
            try:
                results[task.shard_index] = run_shard(task,
                                                      model_cache=cache)
            except Exception as exc:
                context = describe_shard(task.shard_index, task.start,
                                         task.stop)
                raise WorkerError(
                    f"{context} failed on {attempts[task.shard_index]} "
                    f"workers and again inline: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc

        report.attempts = dict(attempts)
        return [results[task.shard_index] for task in tasks], report
