"""Durable multi-scene job queue: leases, heartbeats, dead-letter.

One fleet sweep scans many scenes; each scene is one job.  The queue is
a single append-only JSONL event log (same crash contract as
:class:`~repro.robust.ScanJournal`, including torn-tail repair through
:func:`~repro.robust.journal.load_jsonl_repaired`): every state
transition is one fsynced line, and opening the file replays the events
into the current state.  Nothing is ever rewritten, so a worker killed
mid-transition loses at most the line in flight — and a torn line is
truncated away on the next open.

Semantics:

* :meth:`JobQueue.submit` registers a scene job (idempotent for an
  identical payload — resubmitting a sweep manifest is safe);
* :meth:`JobQueue.claim` hands the next runnable job to an owner under
  a **lease** that expires ``lease_ttl_s`` later; :meth:`heartbeat`
  extends it.  A lease that expires un-heartbeated means its owner
  crashed mid-scan: the job becomes claimable again, the lost lease is
  journaled, and the crashed run counts as an attempt;
* :meth:`JobQueue.fail` schedules a retry with the exponential backoff
  of :class:`~repro.nas.retry.RetryPolicy` (``not_before`` gates the
  next claim) until the policy's ``max_attempts`` is spent, after which
  the job moves to the **dead-letter** state — visible in
  :meth:`dead_letters`, never silently dropped, never retried;
* :meth:`JobQueue.complete` finishes a job and records its result
  summary.

The queue stores *job* state only; per-tile scan durability belongs to
each scene's :class:`~repro.robust.ScanJournal`, which is why a
reclaimed job resumes its journal instead of rescanning from zero.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nas.retry import RetryPolicy
from ..robust.journal import load_jsonl_repaired

__all__ = ["JobQueue", "ScanJob", "JobQueueError",
           "PENDING", "LEASED", "DONE", "DEAD"]

_HEADER_KIND = "fleet_queue"
_QUEUE_VERSION = 1

PENDING = "pending"
LEASED = "leased"
DONE = "done"
DEAD = "dead"


class JobQueueError(RuntimeError):
    """Corrupt queue file, or an event that violates job state."""


@dataclass(frozen=True)
class ScanJob:
    """Caller-facing snapshot of one job at claim time."""

    job_id: str
    payload: dict
    attempts: int                 # attempts *started*, this claim included
    lease_owner: str
    lease_expires_at: float       # wall clock (time.time())


class _JobState:
    """Mutable replay state of one job (internal)."""

    __slots__ = ("job_id", "payload", "status", "attempts", "not_before",
                 "lease_owner", "lease_expires_at", "error", "result")

    def __init__(self, job_id: str, payload: dict) -> None:
        self.job_id = job_id
        self.payload = payload
        self.status = PENDING
        self.attempts = 0
        self.not_before = 0.0
        self.lease_owner: str | None = None
        self.lease_expires_at = 0.0
        self.error: str | None = None
        self.result: dict | None = None

    def lease_live(self, now: float) -> bool:
        return self.status == LEASED and now < self.lease_expires_at


class JobQueue:
    """Crash-safe JSONL job queue for fleet scans.

    Parameters
    ----------
    path        : the event-log file; created (with a header line) if
                  absent, replayed if present.
    retry       : per-job retry policy — ``max_attempts`` counts every
                  attempt *started* (including leases lost to a crash),
                  and ``delay`` spaces the retries out.
    lease_ttl_s : seconds a claim stays valid without a heartbeat.
    seed        : seeds the backoff jitter RNG (deterministic tests).
    clock       : wall-clock source, injectable for lease-expiry tests.
    """

    def __init__(self, path: str | Path, *,
                 retry: RetryPolicy | None = None,
                 lease_ttl_s: float = 60.0,
                 seed: int = 0,
                 clock=time.time) -> None:
        if lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.retry = retry or RetryPolicy()
        self.lease_ttl_s = lease_ttl_s
        self._clock = clock
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._jobs: dict[str, _JobState] = {}
        self._replay()

    # -- durability --------------------------------------------------------

    def _append(self, event: dict) -> None:
        line = json.dumps(event, allow_nan=False)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _replay(self) -> None:
        events = load_jsonl_repaired(self.path)
        if not events:
            self._append({"kind": _HEADER_KIND, "version": _QUEUE_VERSION})
            return
        head = events[0]
        if head.get("kind") != _HEADER_KIND:
            raise JobQueueError(f"{self.path}: not a fleet queue file")
        if head.get("version") != _QUEUE_VERSION:
            raise JobQueueError(
                f"{self.path}: unsupported queue version {head.get('version')}"
            )
        for event in events[1:]:
            self._apply(event)

    def _apply(self, event: dict) -> None:
        kind = event.get("kind")
        job_id = event.get("job_id")
        if kind == "job":
            self._jobs.setdefault(job_id,
                                  _JobState(job_id, event["payload"]))
            return
        state = self._jobs.get(job_id)
        if state is None:
            raise JobQueueError(
                f"{self.path}: event for unknown job {job_id!r}"
            )
        if kind == "lease":
            state.status = LEASED
            state.attempts = int(event["attempt"])
            state.lease_owner = event["owner"]
            state.lease_expires_at = float(event["expires_at"])
        elif kind == "heartbeat":
            state.lease_expires_at = float(event["expires_at"])
        elif kind == "expired":
            state.status = PENDING
            state.lease_owner = None
            state.error = event.get("error")
        elif kind == "failed":
            state.status = PENDING
            state.lease_owner = None
            state.not_before = float(event["not_before"])
            state.error = event.get("error")
        elif kind == "done":
            state.status = DONE
            state.lease_owner = None
            state.result = event.get("result")
        elif kind == "dead":
            state.status = DEAD
            state.lease_owner = None
            state.error = event.get("error")
        else:
            raise JobQueueError(
                f"{self.path}: unknown event kind {kind!r}"
            )

    def _record(self, event: dict) -> None:
        """Apply + append: memory first (validation), disk second."""
        self._apply(event)
        self._append(event)

    # -- producer side -----------------------------------------------------

    def submit(self, job_id: str, payload: dict) -> bool:
        """Register a job; returns False if it already exists.

        Resubmitting with an identical payload is a no-op (sweep
        manifests can be re-applied after a crash); a *different*
        payload under the same id raises — two scans must never share a
        job identity.
        """
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if existing.payload != payload:
                    raise JobQueueError(
                        f"job {job_id!r} already exists with a different "
                        f"payload"
                    )
                return False
            self._record({"kind": "job", "job_id": job_id,
                          "payload": payload})
            return True

    # -- consumer side -----------------------------------------------------

    def claim(self, owner: str) -> ScanJob | None:
        """Lease the next runnable job to ``owner`` (None when idle).

        Runnable means: pending with its retry backoff elapsed, or
        leased by an owner whose lease expired (that owner is presumed
        crashed; the expiry is journaled and its attempt stays spent).
        Jobs are scanned in submission order, so a sweep drains
        deterministically under a single consumer.
        """
        now = self._clock()
        with self._lock:
            for state in self._jobs.values():
                if state.status == LEASED and not state.lease_live(now):
                    self._record({
                        "kind": "expired", "job_id": state.job_id,
                        "error": f"lease by {state.lease_owner!r} expired",
                    })
                if state.status != PENDING or now < state.not_before:
                    continue
                if state.attempts >= self.retry.max_attempts:
                    # budget spent by a lease that expired (the crash
                    # consumed the final attempt): dead-letter it here,
                    # since no owner is left to call fail()
                    self._record({
                        "kind": "dead", "job_id": state.job_id,
                        "error": state.error
                        or "retry budget exhausted by lost leases",
                    })
                    continue
                self._record({
                    "kind": "lease", "job_id": state.job_id,
                    "owner": owner, "attempt": state.attempts + 1,
                    "expires_at": now + self.lease_ttl_s,
                })
                return ScanJob(
                    job_id=state.job_id, payload=state.payload,
                    attempts=state.attempts, lease_owner=owner,
                    lease_expires_at=state.lease_expires_at,
                )
        return None

    def _held(self, job_id: str, owner: str) -> _JobState:
        state = self._jobs.get(job_id)
        if state is None:
            raise JobQueueError(f"unknown job {job_id!r}")
        if state.status != LEASED or state.lease_owner != owner:
            raise JobQueueError(
                f"job {job_id!r} is not leased by {owner!r} "
                f"(status={state.status}, owner={state.lease_owner!r})"
            )
        return state

    def heartbeat(self, job_id: str, owner: str) -> float:
        """Extend ``owner``'s lease; returns the new expiry instant.

        Raises if the lease was lost (expired and reclaimed) — the
        owner must stop working on a job it no longer holds.
        """
        now = self._clock()
        with self._lock:
            state = self._held(job_id, owner)
            if not state.lease_live(now):
                raise JobQueueError(
                    f"job {job_id!r}: lease expired before heartbeat"
                )
            self._record({"kind": "heartbeat", "job_id": job_id,
                          "owner": owner,
                          "expires_at": now + self.lease_ttl_s})
            return state.lease_expires_at

    def complete(self, job_id: str, owner: str,
                 result: dict | None = None) -> None:
        """Finish a held job, recording a small JSON result summary."""
        with self._lock:
            self._held(job_id, owner)
            self._record({"kind": "done", "job_id": job_id,
                          "result": result})

    def fail(self, job_id: str, owner: str, error: str) -> str:
        """Record a failed attempt; returns the job's new status.

        Under the retry budget the job returns to pending with an
        exponential-backoff ``not_before`` gate; at the budget it moves
        to the dead-letter state for operator inspection.
        """
        now = self._clock()
        with self._lock:
            state = self._held(job_id, owner)
            if state.attempts >= self.retry.max_attempts:
                self._record({"kind": "dead", "job_id": job_id,
                              "error": error})
                return DEAD
            delay = self.retry.delay(state.attempts, rng=self._rng)
            self._record({"kind": "failed", "job_id": job_id,
                          "error": error, "not_before": now + delay})
            return PENDING

    # -- introspection -----------------------------------------------------

    def job_ids(self) -> list[str]:
        with self._lock:
            return list(self._jobs)

    def status(self, job_id: str) -> str:
        """Current status, with expired leases reported as pending."""
        now = self._clock()
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None:
                raise JobQueueError(f"unknown job {job_id!r}")
            if state.status == LEASED and not state.lease_live(now):
                return PENDING
            return state.status

    def attempts(self, job_id: str) -> int:
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None:
                raise JobQueueError(f"unknown job {job_id!r}")
            return state.attempts

    def result(self, job_id: str) -> dict | None:
        with self._lock:
            state = self._jobs.get(job_id)
            if state is None:
                raise JobQueueError(f"unknown job {job_id!r}")
            return state.result

    def dead_letters(self) -> dict[str, str]:
        """``{job_id: last error}`` for every dead-lettered job."""
        with self._lock:
            return {s.job_id: s.error or "" for s in self._jobs.values()
                    if s.status == DEAD}

    def counts(self) -> dict[str, int]:
        """Jobs per status (expired leases counted as pending)."""
        now = self._clock()
        out = {PENDING: 0, LEASED: 0, DONE: 0, DEAD: 0}
        with self._lock:
            for state in self._jobs.values():
                status = state.status
                if status == LEASED and not state.lease_live(now):
                    status = PENDING
                out[status] += 1
        return out

    def drained(self) -> bool:
        """True when every job is done or dead-lettered."""
        counts = self.counts()
        return counts[PENDING] == 0 and counts[LEASED] == 0
