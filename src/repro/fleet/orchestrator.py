"""Multi-scene scan orchestration: the fleet's top layer.

:class:`ScanFleet` ties the other two fleet pieces together into a
crash-safe sweep over many scenes:

* the **job queue** (:class:`~repro.fleet.jobs.JobQueue`) durably owns
  which scenes exist, who is scanning them, and how many attempts each
  has burned — submit once, then any number of fleet processes can
  claim, crash, and retry without double-scanning or losing a scene;
* each claimed scene scans through :func:`repro.detect.scan_scene` in
  robust journaled mode with ``resume=True``, so a retried job picks up
  at the exact tile its predecessor's crash left off — the per-tile
  durability lives in the scene's :class:`~repro.robust.ScanJournal`,
  not in the queue;
* shard dispatch runs under the **supervisor**
  (:class:`~repro.fleet.supervise.ShardSupervisor`) whenever the fleet
  scans in parallel, so hung or dying pool workers cost redispatches,
  not jobs.

A heartbeat thread extends the job lease while the scan runs; if the
lease is lost anyway (the queue decided this process was dead), the
result is discarded rather than double-reported — whoever reclaimed the
job owns it now.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict
from pathlib import Path

from ..detect.scan import scan_scene
from ..geo.scene import Scene, build_scene
from ..geo.synthesis import WatershedConfig
from .jobs import JobQueue, JobQueueError, ScanJob

__all__ = ["ScanFleet"]

#: scan_scene kwargs a job payload may carry (whitelist: payloads come
#: from a durable file, not from code)
_SCAN_KEYS = frozenset({
    "window", "stride", "confidence_threshold", "nms_radius",
    "batch_size", "backend", "timeout_s",
})


def _default_scene_provider(payload: dict) -> Scene:
    """Rebuild a scene from its job payload (deterministic in the
    config seed, so every retry scans identical pixels)."""
    return build_scene(WatershedConfig(**payload["scene"]))


class _Heartbeat:
    """Background lease-extension while one job scans.

    ``lost`` flips when the queue refuses a heartbeat — the lease
    expired and may have been reclaimed — after which the owning fleet
    must discard its result instead of completing the job.
    """

    def __init__(self, queue: JobQueue, job: ScanJob,
                 interval_s: float) -> None:
        self._queue = queue
        self._job = job
        self._interval_s = interval_s
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(
            target=self._beat, name=f"fleet-heartbeat-{job.job_id}",
            daemon=True,
        )

    def _beat(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._queue.heartbeat(self._job.job_id,
                                      self._job.lease_owner)
            except JobQueueError:
                self.lost = True
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class ScanFleet:
    """Run a durable multi-scene scan sweep against one model.

    Parameters
    ----------
    queue          : the durable job queue — or a path, in which case a
                     :class:`JobQueue` with default retry/lease settings
                     is opened there.
    model          : the detector every job scans with.
    workdir        : directory for per-scene scan journals
                     (``<workdir>/<job_id>.journal.jsonl``).
    n_workers      : forwarded to :func:`~repro.detect.scan_scene` per
                     job (``"auto"`` adapts; 1 scans sequentially).
    supervision    : ``repro.fleet.SupervisionPolicy`` (or ``True``)
                     for supervised shard dispatch on parallel scans.
    scene_provider : ``payload -> Scene`` hook; defaults to rebuilding
                     the scene from the payload's ``WatershedConfig``
                     dict.  Tests and benches inject prebuilt (or
                     deliberately damaged) scenes here.
    owner          : lease owner name; defaults to ``fleet-<pid>``.
    """

    def __init__(self, queue: JobQueue | str | Path, model, *,
                 workdir: str | Path,
                 n_workers: int | str = "auto",
                 supervision=None,
                 scene_provider=None,
                 owner: str | None = None) -> None:
        import os

        self.queue = queue if isinstance(queue, JobQueue) \
            else JobQueue(queue)
        self.model = model
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.n_workers = n_workers
        self.supervision = supervision
        self.scene_provider = scene_provider or _default_scene_provider
        self.owner = owner or f"fleet-{os.getpid()}"

    # -- submission --------------------------------------------------------

    def submit_scene(self, job_id: str,
                     config: WatershedConfig | None = None,
                     **scan_kwargs) -> bool:
        """Register one scene job; returns False if already queued.

        ``scan_kwargs`` whitelists the :func:`scan_scene` parameters a
        payload may pin (window, stride, backend, timeout_s, ...).
        """
        unknown = set(scan_kwargs) - _SCAN_KEYS
        if unknown:
            raise ValueError(
                f"unsupported scan parameters {sorted(unknown)}; "
                f"allowed: {sorted(_SCAN_KEYS)}"
            )
        payload = {"scene": asdict(config or WatershedConfig()),
                   "scan": scan_kwargs}
        return self.queue.submit(job_id, payload)

    def journal_path(self, job_id: str) -> Path:
        return self.workdir / f"{job_id}.journal.jsonl"

    # -- execution ---------------------------------------------------------

    def _scan_job(self, job: ScanJob) -> dict:
        """Scan one claimed job; returns the job's result summary."""
        scene = self.scene_provider(job.payload)
        result = scan_scene(
            self.model, scene,
            journal=str(self.journal_path(job.job_id)),
            resume=True,
            n_workers=self.n_workers,
            supervision=self.supervision,
            **job.payload.get("scan", {}),
        )
        summary = {
            "detections": len(result),
            "tiles_total": result.coverage.tiles_total,
            "tiles_scanned": result.coverage.tiles_scanned,
            "tiles_quarantined": result.coverage.tiles_quarantined,
            "tiles_resumed": result.coverage.tiles_resumed,
            "attempt": job.attempts,
        }
        report = getattr(result, "supervision", None)
        if report is not None:
            summary["supervision"] = report.to_json()
        return summary

    def run_one(self) -> tuple[str, str, dict | None] | None:
        """Claim and run a single job.

        Returns ``(job_id, outcome, summary)`` where outcome is
        ``"done"``, ``"failed"`` (will retry), ``"dead"``
        (dead-lettered), or ``"lease_lost"`` — or None when nothing was
        claimable.  Scan exceptions are converted into queue state, not
        raised: one broken scene must not take down the sweep.
        """
        job = self.queue.claim(self.owner)
        if job is None:
            return None
        interval = self.queue.lease_ttl_s / 3.0
        with _Heartbeat(self.queue, job, interval) as heartbeat:
            try:
                summary = self._scan_job(job)
            except Exception as exc:
                if heartbeat.lost:
                    return job.job_id, "lease_lost", None
                status = self.queue.fail(
                    job.job_id, self.owner,
                    f"{type(exc).__name__}: {exc}",
                )
                return (job.job_id,
                        "dead" if status == "dead" else "failed",
                        None)
        if heartbeat.lost:
            # someone else owns the job now; the journal keeps our tiles
            return job.job_id, "lease_lost", None
        self.queue.complete(job.job_id, self.owner, result=summary)
        return job.job_id, "done", summary

    def run(self, *, max_jobs: int | None = None,
            idle_wait_s: float = 0.05,
            max_idle_s: float = 30.0) -> dict:
        """Drain the queue; returns a sweep summary.

        Stops when the queue is drained (every job done or dead),
        ``max_jobs`` jobs have been run, or nothing has been claimable
        for ``max_idle_s`` (jobs leased by *other* owners, or retry
        backoffs far in the future).
        """
        outcomes: dict[str, list[str]] = {}
        results: dict[str, dict] = {}
        ran = 0
        idle_since: float | None = None
        while not self.queue.drained():
            if max_jobs is not None and ran >= max_jobs:
                break
            step = self.run_one()
            if step is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= max_idle_s:
                    break
                time.sleep(idle_wait_s)
                continue
            idle_since = None
            ran += 1
            job_id, outcome, summary = step
            outcomes.setdefault(job_id, []).append(outcome)
            if summary is not None:
                results[job_id] = summary
        return {
            "owner": self.owner,
            "jobs_run": ran,
            "counts": self.queue.counts(),
            "dead_letters": self.queue.dead_letters(),
            "outcomes": outcomes,
            "results": results,
        }
