"""Related-work baseline comparison (§8.1).

Trains the paper's SPP-Net next to the faster-R-CNN-style baseline on the
same synthetic chips and compares detection quality — the reproduction of
the paper's implicit claim that the SPP-Net approach outperforms the
faster R-CNN applied to the same watershed by Li et al. (reported there:
accuracy 0.882, mean box IoU 0.668).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import TABLE1_MODELS
from ..detect import (
    RCNNConfig,
    TrainConfig,
    evaluate_detector,
    evaluate_rcnn,
    train_detector,
    train_rcnn,
)
from ..geo import build_dataset
from .results import ExperimentResult

__all__ = ["BaselineSettings", "run_baseline_comparison"]


@dataclass(frozen=True)
class BaselineSettings:
    """Training budget for the comparison (defaults are benchmark-sized)."""

    num_scenes: int = 2
    chips_per_crossing: int = 4
    seed: int = 3
    sppnet_epochs: int = 12
    rcnn_epochs: int = 12
    iou_threshold: float = 0.35

    @classmethod
    def fast(cls) -> "BaselineSettings":
        return cls(num_scenes=1, chips_per_crossing=2,
                   sppnet_epochs=3, rcnn_epochs=3)


def run_baseline_comparison(settings: BaselineSettings | None = None,
                            verbose: bool = False) -> ExperimentResult:
    """Train SPP-Net and FasterRCNNLite on the same split and compare."""
    settings = settings or BaselineSettings()
    dataset = build_dataset(num_scenes=settings.num_scenes,
                            chips_per_crossing=settings.chips_per_crossing,
                            seed=settings.seed)
    train_set, test_set = dataset.split(0.8, seed=settings.seed)

    spp_arch = TABLE1_MODELS["SPP-Net #2"]
    spp = train_detector(
        spp_arch, train_set, test_set,
        TrainConfig(epochs=settings.sppnet_epochs, seed=1, verbose=verbose,
                    box_weight=3.0),
    )
    spp_scores = evaluate_detector(spp.model, test_set,
                                   iou_threshold=settings.iou_threshold)

    rcnn_model = train_rcnn(
        train_set, RCNNConfig(), epochs=settings.rcnn_epochs,
        learning_rate=0.01, seed=1, verbose=verbose,
    )
    rcnn_scores = evaluate_rcnn(rcnn_model, test_set,
                                iou_threshold=settings.iou_threshold)

    rows = [
        [
            "SPP-Net #2 (this paper)",
            f"{100 * spp_scores.ap:.2f}%",
            f"{100 * spp_scores.accuracy:.1f}%",
            f"{spp_scores.mean_iou_tp:.3f}",
            spp.model.num_parameters(),
        ],
        [
            "FasterRCNNLite (related work)",
            f"{100 * rcnn_scores.ap:.2f}%",
            f"{100 * rcnn_scores.accuracy:.1f}%",
            f"{rcnn_scores.mean_iou_tp:.3f}",
            rcnn_model.num_parameters(),
        ],
    ]
    return ExperimentResult(
        experiment_id="baseline-comparison",
        title=f"SPP-Net vs faster-R-CNN-style baseline "
              f"(AP@IoU>={settings.iou_threshold}, same chips/split)",
        headers=["Detector", "AP", "Accuracy", "Mean IoU (TP)", "Parameters"],
        rows=rows,
        paper_reference=[
            ["SPP-Net (paper Table 1, best)", "97.40%", "-", "-", "-"],
            ["faster R-CNN (Li et al., §8.1)", "-", "88.2%", "0.668", "-"],
        ],
        notes="The related work reports classification accuracy and box "
              "IoU rather than AP; both detectors here see identical data.",
    )
