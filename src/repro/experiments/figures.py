"""Regenerators for the paper's figures (5, 6, 7, 8) as data series.

Each figure becomes a table of the series the paper plots, plus the
qualitative checks the paper derives from it (optimal batch size,
memory far below capacity, API-share crossover).
"""

from __future__ import annotations

from ..arch import TABLE1_MODELS, TABLE1_PAPER_AP, SPPNetConfig
from ..gpusim.device import DeviceSpec
from ..graph import build_sppnet_graph
from ..ios import dp_schedule, measure_latency, sequential_schedule
from ..nas import resource_aware_selection
from ..profiling import profile_session
from .results import ExperimentResult
from .tables import DEFAULT_BATCH_SIZES

__all__ = ["run_fig6", "run_fig7", "run_fig8", "run_constrained_selection",
           "select_optimal_batch", "run_input_size_sweep", "run_energy_sweep",
           "run_pareto_front"]


def select_optimal_batch(efficiencies: dict[int, float],
                         min_gain: float = 0.10) -> int:
    """The paper's §6.4 rule: batching gains diminish, pick the last batch
    size whose efficiency improves on the previous one by >= ``min_gain``."""
    batches = sorted(efficiencies)
    chosen = batches[0]
    for prev, cur in zip(batches, batches[1:]):
        gain = (efficiencies[prev] - efficiencies[cur]) / efficiencies[prev]
        if gain >= min_gain:
            chosen = cur
        else:
            break
    return chosen


def run_fig6(batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
             device: DeviceSpec | None = None,
             model: SPPNetConfig | None = None) -> ExperimentResult:
    """Figure 6: inference efficiency (latency/batch) vs batch size."""
    config = model or TABLE1_MODELS["SPP-Net #2"]
    graph = build_sppnet_graph(config)
    rows: list[list] = []
    optimized_eff: dict[int, float] = {}
    for batch in batch_sizes:
        seq = measure_latency(graph, sequential_schedule(graph, batch), device)
        opt = measure_latency(graph, dp_schedule(graph, batch, device), device)
        optimized_eff[batch] = opt / batch
        rows.append([
            batch,
            f"{seq / batch:.1f}",
            f"{opt / batch:.1f}",
            f"{seq / opt:.2f}x",
        ])
    optimal = select_optimal_batch(optimized_eff)
    return ExperimentResult(
        experiment_id="fig6",
        title=f"Inference efficiency vs batch size for {config.name} "
              "(us per image; lower is better)",
        headers=["Batch", "Sequential (us/img)", "Optimized (us/img)", "IOS speedup"],
        rows=rows,
        notes=f"Diminishing gains with batch; selected optimal batch size = "
              f"{optimal} (paper selects 32). IOS speedup shrinks as kernels "
              "saturate the device.",
    )


def run_fig7(batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
             device: DeviceSpec | None = None,
             model: SPPNetConfig | None = None,
             iterations: int = 200) -> ExperimentResult:
    """Figure 7: GPU memops timing and memory headroom vs batch size."""
    config = model or TABLE1_MODELS["SPP-Net #2"]
    graph = build_sppnet_graph(config)
    rows: list[list] = []
    for batch in batch_sizes:
        schedule = dp_schedule(graph, batch, device)
        report = profile_session(graph, schedule, batch, device,
                                 iterations=iterations, warmup=5)
        rows.append([
            batch,
            f"{report.memops.per_image_ns:.0f}",
            f"{report.peak_memory_bytes / 1024**2:.0f}",
            f"{100 * report.memory_utilization:.2f}%",
        ])
    return ExperimentResult(
        experiment_id="fig7",
        title=f"GPU memops timing per inferred image for {config.name} "
              "(simulated RTX A5500, 24 GB)",
        headers=["Batch", "Memops timing (ns/img)", "Peak memory (MiB)",
                 "Capacity used"],
        rows=rows,
        notes="Per-image memop timing falls as per-transfer overhead "
              "amortizes and stabilizes past batch ~16 (paper: stabilizes at "
              "19168 ns); memory stays far below the 24 GB capacity even at "
              "batch 64, so memory does not constrain inference.",
    )


def run_fig8(batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
             device: DeviceSpec | None = None,
             model: SPPNetConfig | None = None,
             iterations: int = 1000) -> ExperimentResult:
    """Figure 8: CUDA API time shares vs batch size."""
    config = model or TABLE1_MODELS["SPP-Net #2"]
    graph = build_sppnet_graph(config)
    rows: list[list] = []
    for batch in batch_sizes:
        schedule = dp_schedule(graph, batch, device)
        report = profile_session(graph, schedule, batch, device,
                                 iterations=iterations, warmup=5)
        rows.append([
            batch,
            f"{100 * report.api_share('cuLibraryLoadData'):.1f}",
            f"{100 * report.api_share('cudaDeviceSynchronize'):.1f}",
            f"{100 * report.api_share('cudaMemcpyAsync'):.1f}",
            f"{100 * report.api_share('cudaLaunchKernel'):.1f}",
        ])
    return ExperimentResult(
        experiment_id="fig8",
        title=f"CUDA API usage shares vs batch size for {config.name} "
              f"({iterations}-iteration profiled session)",
        headers=["Batch", "cuLibraryLoadData (%)", "cudaDeviceSynchronize (%)",
                 "cudaMemcpyAsync (%)", "cudaLaunchKernel (%)"],
        rows=rows,
        notes="cuLibraryLoadData dominates at batch 1 (paper: ~80%) and "
              "cudaDeviceSynchronize grows with batch until it surpasses it "
              "(paper: 45.4% at batch 64) as synchronization drains ever "
              "larger in-flight work.",
    )


def run_input_size_sweep(
    input_sizes: tuple[int, ...] = (100, 200, 400, 800),
    batch: int = 1,
    device: DeviceSpec | None = None,
    model: SPPNetConfig | None = None,
) -> ExperimentResult:
    """§5.1's motivation: variable-sized inputs and their latency load.

    SPP-Net accepts any input size; latency grows superlinearly with it
    (conv work is quadratic in edge length), which is exactly why the
    paper pairs SPP-Net with inference-efficiency optimization.  IOS is
    re-run per size, as it is per batch in the paper.
    """
    config = model or TABLE1_MODELS["SPP-Net #2"]
    rows: list[list] = []
    for size in input_sizes:
        graph = build_sppnet_graph(config, input_size=size)
        seq = measure_latency(graph, sequential_schedule(graph, batch), device)
        opt = measure_latency(graph, dp_schedule(graph, batch, device), device)
        rows.append([
            f"{size}x{size}",
            f"{seq / 1e3:.3f} ms",
            f"{opt / 1e3:.3f} ms",
            f"{seq / opt:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="input-size-sweep",
        title=f"Latency vs input size for {config.name} (batch {batch}); "
              "the SPP layer keeps the FC head fixed-size throughout",
        headers=["Input", "Sequential", "Optimized", "IOS speedup"],
        rows=rows,
        notes="Latency grows ~quadratically with image edge length while "
              "the SPP output (and thus the FC head) stays constant — the "
              "§5.1 motivation for accuracy-constrained efficiency "
              "optimization on large-scene inference.",
    )


def run_energy_sweep(
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    device: DeviceSpec | None = None,
    model: SPPNetConfig | None = None,
) -> ExperimentResult:
    """Extension: energy per inferred image vs batch size.

    The efficiency argument of §5 in joules: batching amortizes both the
    time *and* the energy of underutilized kernels, so energy per image
    improves with batch even faster than latency per image.
    """
    from ..gpusim import EnergyModel, GraphExecutor

    config = model or TABLE1_MODELS["SPP-Net #2"]
    graph = build_sppnet_graph(config)
    executor = GraphExecutor(graph, device=device)
    energy = EnergyModel(executor.device)
    rows: list[list] = []
    for batch in batch_sizes:
        result = executor.run(dp_schedule(graph, batch, device), batch)
        report = energy.report(result)
        rows.append([
            batch,
            f"{report.mj_per_image:.2f}",
            f"{report.average_power_w:.0f}",
            f"{result.efficiency_us_per_image:.1f}",
        ])
    return ExperimentResult(
        experiment_id="energy-sweep",
        title=f"Energy per image vs batch size for {config.name} "
              "(simulated A5500, 230 W board / 22 W idle)",
        headers=["Batch", "Energy (mJ/img)", "Avg power (W)", "Latency (us/img)"],
        rows=rows,
        notes="Joules per image fall ~4x from batch 1 to 64 — the "
              "sustainability reading of Figure 6's efficiency argument.",
    )


def run_pareto_front(
    measured_ap: dict[str, float] | None = None,
    batch: int = 1,
    device: DeviceSpec | None = None,
) -> ExperimentResult:
    """Extension: the §5.4 dual objective as an explicit Pareto front."""
    from ..nas import benchmark_candidates, knee_point, pareto_front

    aps = measured_ap or TABLE1_PAPER_AP
    candidates = [(cfg, aps[name]) for name, cfg in TABLE1_MODELS.items()
                  if name in aps]
    profiles = benchmark_candidates(candidates, batch=batch, device=device)
    front = pareto_front(profiles)
    front_names = {p.config.name for p in front}
    knee = knee_point(front).config.name
    rows = [
        [
            p.config.name,
            f"{100 * p.accuracy:.2f}%",
            f"{p.efficiency:.0f} img/s",
            ("pareto" if p.config.name in front_names else "dominated")
            + (" (knee)" if p.config.name == knee else ""),
        ]
        for p in sorted(profiles, key=lambda p: -p.efficiency)
    ]
    return ExperimentResult(
        experiment_id="pareto-front",
        title=f"Accuracy-efficiency Pareto front of the Table 1 candidates "
              f"(batch {batch})",
        headers=["Model", "Accuracy", "Efficiency", "Status"],
        rows=rows,
        notes="Every §5.4 threshold A selects a point on this front; the "
              "knee is the threshold-free default. With the paper's APs, "
              "SPP-Net #2 is dominated by #3 (more accurate AND faster in "
              "the deterministic simulator).",
    )


def run_constrained_selection(
    accuracy_threshold: float = 0.965,
    measured_ap: dict[str, float] | None = None,
    batch: int = 1,
    device: DeviceSpec | None = None,
) -> ExperimentResult:
    """§5.4 / Figure 5: maximize efficiency subject to accuracy > A.

    ``measured_ap`` may carry this run's Table 1 APs; when omitted, the
    paper's reported APs are used so the selection logic can be exercised
    stand-alone.
    """
    aps = measured_ap or TABLE1_PAPER_AP
    candidates = [(cfg, aps[name]) for name, cfg in TABLE1_MODELS.items()
                  if name in aps]
    winner, profiles = resource_aware_selection(
        candidates, accuracy_threshold, batch=batch, device=device
    )
    rows = [
        [
            p.config.name,
            f"{100 * p.accuracy:.2f}%",
            "yes" if p.accuracy > accuracy_threshold else "no",
            f"{p.optimized_latency_us / 1e3:.3f} ms",
            f"{p.efficiency:.0f} img/s",
            "<- selected" if p.config.name == winner.config.name else "",
        ]
        for p in profiles
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title=f"Accuracy-constrained efficiency optimization (A = "
              f"{accuracy_threshold:.3f}, batch {batch})",
        headers=["Model", "Accuracy", "a(n) > A", "IOS latency", "Efficiency", ""],
        rows=rows,
        notes="maximize e(n) s.t. a(n) > A over the NAS candidates; the "
              "paper selects SPP-Net #2. With paper APs and threshold "
              "0.965, feasible = {#2, #3}; our simulator ranks #3 (strictly "
              "smaller FC) faster — see EXPERIMENTS.md discussion.",
    )
