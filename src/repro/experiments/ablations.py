"""Ablation experiments for the design choices DESIGN.md calls out.

A1 — scheduler: IOS DP vs greedy / single-stage / sequential, on the
     SPP-Net graphs and on an Inception-style block where the DP's
     parallel grouping strictly wins.
A2 — SPP layer: branched pyramid pooling vs a single fixed adaptive pool
     (latency via IOS; optional accuracy via real training).
A3 — exploration strategy: random (paper) vs grid / evolution / bandit,
     trials-to-threshold on a deterministic surrogate objective.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..arch import TABLE1_MODELS, SPPNetConfig
from ..gpusim.device import DeviceSpec
from ..graph import build_inception_graph, build_sppnet_graph
from ..ios import compare_strategies, optimize_schedule
from ..nas import (
    Experiment,
    FunctionalEvaluator,
    GreedyBanditStrategy,
    GridSearchStrategy,
    RandomStrategy,
    RegularizedEvolution,
    sppnet_search_space,
)
from .results import ExperimentResult

__all__ = ["run_ablation_scheduler", "run_ablation_spp", "run_ablation_strategy",
           "run_ablation_multigpu", "run_ablation_scheduling_cost",
           "surrogate_accuracy"]


def run_ablation_scheduler(batch: int = 1,
                           device: DeviceSpec | None = None) -> ExperimentResult:
    """A1: scheduling strategies across workloads."""
    workloads = {
        "SPP-Net #2": build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"]),
        "inception(4x2)": build_inception_graph(branches=4, depth=2),
        "inception(6x1)": build_inception_graph(branches=6, depth=1,
                                                name="inception-6x1"),
    }
    rows: list[list] = []
    for name, graph in workloads.items():
        schedules = compare_strategies(graph, batch, device)
        dp = schedules["ios-dp"].latency_us
        rows.append([
            name,
            *(f"{schedules[k].latency_us:.1f}" for k in
              ("sequential", "greedy", "single-stage", "ios-dp")),
            f"{schedules['sequential'].latency_us / dp:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="ablation-scheduler",
        title=f"Scheduler ablation: stage latency (us) at batch {batch}",
        headers=["Workload", "sequential", "greedy", "single-stage", "ios-dp",
                 "DP speedup"],
        rows=rows,
        notes="On the linear-ish SPP-Net, merging stages (sync elimination) "
              "is the whole win, so single-stage matches DP; on branched "
              "blocks with occupancy-limited kernels, only the DP finds the "
              "parallel grouping and strictly beats every baseline.",
    )


def run_ablation_spp(batch: int = 1, device: DeviceSpec | None = None,
                     input_size: int = 100) -> ExperimentResult:
    """A2: SPP pyramid vs single fixed pooling level (latency, params)."""
    base = TABLE1_MODELS["SPP-Net #2"]
    variants: dict[str, SPPNetConfig] = {
        "SPP (5,2,1)": base,
        "SPP (4,2,1)": replace(base, spp_levels=(4, 2, 1), name="SPP-421"),
        "single pool 5": replace(base, spp_levels=(5,), name="single-5"),
        "single pool 1 (GAP)": replace(base, spp_levels=(1,), name="single-1"),
    }
    rows: list[list] = []
    for name, config in variants.items():
        graph = build_sppnet_graph(config, input_size=input_size)
        result = optimize_schedule(graph, batch, device)
        rows.append([
            name,
            config.spp_features,
            f"{result.sequential_latency_us / 1e3:.3f} ms",
            f"{result.optimized_latency_us / 1e3:.3f} ms",
            f"{result.speedup:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="ablation-spp",
        title=f"SPP-layer ablation at batch {batch} (input {input_size}px)",
        headers=["Pooling", "SPP features", "Sequential", "Optimized", "Speedup"],
        rows=rows,
        notes="The pyramid adds little latency over a single level (branches "
              "overlap and the FC input grows sublinearly), while providing "
              "the multi-scale features the accuracy results rely on; a "
              "global average pool (level 1) collapses localization ability.",
    )


def surrogate_accuracy(sample: dict) -> float:
    """Deterministic surrogate of Table 1's accuracy landscape.

    Peaks at the paper's best found configuration (kernel 3, SPP level 5,
    FC 2048) with smooth falloff — used to compare exploration strategies
    without paying full training per trial.  The functional form is a
    documented surrogate, not a claim about real accuracies.
    """
    k = sample["first_kernel"]
    spp = sample["spp_first_level"]
    fc = sample["fc_width"]
    score = 0.95
    score += {1: -0.03, 3: 0.012, 5: 0.006, 7: -0.004, 9: -0.012}[k]
    score += 0.004 * (spp - 1) / 4
    score -= 0.004 * abs(np.log2(fc / 2048))
    return float(score)


def run_ablation_multigpu(batch: int = 1,
                          device: DeviceSpec | None = None) -> ExperimentResult:
    """Extension: HIOS-style multi-GPU scheduling (the paper's future work)."""
    from ..ios import multigpu_schedule

    workloads = {
        "SPP-Net #2 (linear)": build_sppnet_graph(TABLE1_MODELS["SPP-Net #2"]),
        "inception(4x2)": build_inception_graph(branches=4, depth=2),
        "inception(6x1)": build_inception_graph(branches=6, depth=1,
                                                name="inception-6x1"),
    }
    rows: list[list] = []
    for name, graph in workloads.items():
        latencies = {}
        transfers = {}
        for k in (1, 2, 4):
            sched = multigpu_schedule(graph, batch, num_devices=k, device=device)
            latencies[k] = sched.latency_us
            transfers[k] = sched.transfer_us
        rows.append([
            name,
            f"{latencies[1]:.1f}",
            f"{latencies[2]:.1f}",
            f"{latencies[4]:.1f}",
            f"{latencies[1] / latencies[2]:.2f}x",
            f"{transfers[2]:.1f}",
        ])
    return ExperimentResult(
        experiment_id="ablation-multigpu",
        title=f"Multi-GPU inter-operator scheduling at batch {batch} "
              "(analytic HIOS-style extension, us)",
        headers=["Workload", "1 GPU", "2 GPUs", "4 GPUs", "2-GPU speedup",
                 "2-GPU transfer (us)"],
        rows=rows,
        notes="Inter-GPU parallelism pays on wide branched blocks and is "
              "neutral on the (mostly linear) SPP-Net, matching the HIOS "
              "motivation the paper cites as future work.",
    )


def run_ablation_scheduling_cost(batch: int = 1,
                                 device: DeviceSpec | None = None
                                 ) -> ExperimentResult:
    """Extension: §8.3's scheduling-cost vs schedule-quality trade-off."""
    from ..ios import scheduling_cost_comparison

    graph = build_inception_graph(branches=4, depth=2)
    rows = [
        [r.strategy, f"{r.scheduling_ms:.2f}", f"{r.latency_us:.1f}", r.num_stages]
        for r in scheduling_cost_comparison(graph, batch, device)
    ]
    return ExperimentResult(
        experiment_id="ablation-scheduling-cost",
        title=f"Scheduling cost vs schedule quality (inception 4x2, batch {batch})",
        headers=["Scheduler", "Scheduling time (ms)", "Schedule latency (us)",
                 "Stages"],
        rows=rows,
        notes="The §8.3 trade-off: Rammer/Nimble-style static scheduling is "
              "orders of magnitude cheaper to produce but the IOS DP finds "
              "strictly faster schedules — the reason the paper picks IOS "
              "('our task requires the best possible schedules, even at the "
              "computational cost of generating them').",
    )


def run_ablation_strategy(threshold: float = 0.962, max_trials: int = 60,
                          seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
                          ) -> ExperimentResult:
    """A3: trials-to-threshold per exploration strategy on the surrogate."""
    strategies = {
        "random (paper)": RandomStrategy,
        "grid": GridSearchStrategy,
        "evolution": lambda: RegularizedEvolution(population=12, sample_size=3),
        "bandit": lambda: GreedyBanditStrategy(epsilon=0.3),
    }
    rows: list[list] = []
    for name, factory in strategies.items():
        trials_needed: list[int] = []
        best_values: list[float] = []
        for seed in seeds:
            exp = Experiment(
                space=sppnet_search_space(),
                evaluator=FunctionalEvaluator(surrogate_accuracy),
                strategy=factory(),
                max_trials=max_trials,
                seed=seed,
            )
            exp.run()
            best_values.append(exp.best().value)
            hit = next((t.trial_id + 1 for t in exp.trials if t.value > threshold),
                       max_trials)
            trials_needed.append(hit)
        rows.append([
            name,
            f"{np.mean(trials_needed):.1f}",
            f"{max(trials_needed)}",
            f"{np.mean(best_values):.4f}",
        ])
    return ExperimentResult(
        experiment_id="ablation-strategy",
        title=f"NAS strategy ablation: trials to exceed surrogate accuracy "
              f"{threshold} (budget {max_trials}, {len(seeds)} seeds)",
        headers=["Strategy", "Mean trials to threshold", "Worst case",
                 "Mean best value"],
        rows=rows,
        notes="Random search (the paper's choice) is competitive on this "
              "small 175-point space; informed strategies shine mainly in "
              "worst-case trials-to-threshold.",
    )
