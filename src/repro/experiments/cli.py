"""Command-line entry point: regenerate any table or figure of the paper.

Usage::

    python -m repro.experiments table2
    python -m repro.experiments table1 --fast
    python -m repro.experiments all --fast --out results/

Each command prints the measured table next to the paper's values and can
persist JSON under ``--out``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .ablations import (
    run_ablation_multigpu,
    run_ablation_scheduler,
    run_ablation_scheduling_cost,
    run_ablation_spp,
    run_ablation_strategy,
)
from .baseline import BaselineSettings, run_baseline_comparison
from .figures import (
    run_constrained_selection,
    run_fig6,
    run_fig7,
    run_fig8,
    run_input_size_sweep,
    run_energy_sweep,
    run_pareto_front,
)
from .results import ExperimentResult
from .tables import Table1Settings, run_table1, run_table2, run_table3

__all__ = ["main", "EXPERIMENTS"]


def _table1(args) -> ExperimentResult:
    settings = Table1Settings.fast() if args.fast else Table1Settings()
    return run_table1(settings, verbose=args.verbose)


def _pipeline(args) -> ExperimentResult:
    """End-to-end Figure 5 pipeline with journaled, resumable NAS trials."""
    from ..pipeline import PipelineConfig, run_pipeline

    config = PipelineConfig(
        nas_trials=2 if args.fast else 3,
        train_epochs=1 if args.fast else 3,
        # CI-sized training never clears the real constraint; keep the
        # selection step meaningful but satisfiable.
        accuracy_threshold=-1.0 if args.fast else 0.5,
        journal_path=str(args.journal) if args.journal else None,
        resume=args.resume,
    )
    result = run_pipeline(config, verbose=args.verbose)
    rows = [
        [t.trial_id, t.status, t.attempts,
         "nan" if not t.ok else f"{t.value:.4f}", f"{t.duration_s:.2f}s"]
        for t in result.trials
    ]
    winner = result.winner_config.name if result.winner_config else "-"
    notes = f"winner: {winner}"
    if args.journal:
        notes += f"; journal: {args.journal} (resume with --resume)"
    return ExperimentResult(
        experiment_id="pipeline",
        title="End-to-end NAS pipeline (fault-tolerant, journaled trials)",
        headers=["trial", "status", "attempts", "value", "duration"],
        rows=rows,
        notes=notes,
    )


EXPERIMENTS = {
    "pipeline": _pipeline,
    "table1": _table1,
    "table2": lambda args: run_table2(),
    "table3": lambda args: run_table3(iterations=50 if args.fast else 200),
    "fig5": lambda args: run_constrained_selection(),
    "fig6": lambda args: run_fig6(),
    "fig7": lambda args: run_fig7(iterations=50 if args.fast else 200),
    "fig8": lambda args: run_fig8(iterations=200 if args.fast else 1000),
    "ablation-scheduler": lambda args: run_ablation_scheduler(),
    "ablation-spp": lambda args: run_ablation_spp(),
    "ablation-strategy": lambda args: run_ablation_strategy(),
    "ablation-multigpu": lambda args: run_ablation_multigpu(),
    "ablation-scheduling-cost": lambda args: run_ablation_scheduling_cost(),
    "input-size-sweep": lambda args: run_input_size_sweep(),
    "energy-sweep": lambda args: run_energy_sweep(),
    "pareto-front": lambda args: run_pareto_front(),
    "baseline-comparison": lambda args: run_baseline_comparison(
        BaselineSettings.fast() if args.fast else None, verbose=args.verbose),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the "
                    "simulated substrate.",
    )
    parser.add_argument("experiment", choices=[*EXPERIMENTS, "all"],
                        help="which artifact to regenerate")
    parser.add_argument("--fast", action="store_true",
                        help="reduced workload (CI-sized)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for JSON results")
    parser.add_argument("--journal", type=Path, default=None,
                        help="pipeline: JSONL trial journal for checkpoint/"
                             "resume of the NAS sweep")
    parser.add_argument("--resume", action="store_true",
                        help="pipeline: continue the sweep recorded in "
                             "--journal instead of starting fresh")
    args = parser.parse_args(argv)
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal")

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = EXPERIMENTS[name](args)
        print(result.to_text())
        print()
        if args.out is not None:
            path = result.save_json(args.out / f"{name}.json")
            print(f"[saved {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
