"""repro.experiments — per-table/figure regenerators and the CLI."""

from .ablations import (
    run_ablation_multigpu,
    run_ablation_scheduler,
    run_ablation_scheduling_cost,
    run_ablation_spp,
    run_ablation_strategy,
    surrogate_accuracy,
)
from .baseline import BaselineSettings, run_baseline_comparison
from .figures import (
    run_constrained_selection,
    run_fig6,
    run_fig7,
    run_fig8,
    run_energy_sweep,
    run_input_size_sweep,
    run_pareto_front,
    select_optimal_batch,
)
from .results import ExperimentResult, format_table
from .tables import DEFAULT_BATCH_SIZES, Table1Settings, run_table1, run_table2, run_table3

__all__ = [
    "ExperimentResult",
    "format_table",
    "DEFAULT_BATCH_SIZES",
    "Table1Settings",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_constrained_selection",
    "select_optimal_batch",
    "run_input_size_sweep",
    "run_energy_sweep",
    "run_pareto_front",
    "BaselineSettings",
    "run_baseline_comparison",
    "run_ablation_scheduler",
    "run_ablation_multigpu",
    "run_ablation_scheduling_cost",
    "run_ablation_spp",
    "run_ablation_strategy",
    "surrogate_accuracy",
]
