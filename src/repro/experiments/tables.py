"""Regenerators for the paper's tables (1, 2 and 3).

Each function runs the full measurement pipeline on the simulator /
training substrate and returns an :class:`ExperimentResult` whose rows
mirror the paper's table, with the paper's reported values attached for
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import (
    TABLE1_MODELS,
    TABLE1_PAPER_AP,
    TABLE2_PAPER_LATENCY_MS,
    SPPNetConfig,
)
from ..detect import TrainConfig, evaluate_detector, train_detector
from ..geo import build_dataset
from ..gpusim.device import DeviceSpec
from ..graph import build_sppnet_graph
from ..ios import dp_schedule, optimize_schedule
from ..profiling import profile_session
from .results import ExperimentResult

__all__ = ["Table1Settings", "run_table1", "run_table2", "run_table3",
           "DEFAULT_BATCH_SIZES"]

#: The batch sizes the paper sweeps in §6.4 and §7.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Table1Settings:
    """Training workload knobs for the Table 1 reproduction.

    ``fast`` trades accuracy for wall-clock (CI-sized); defaults give the
    full benchmark run.  ``iou_threshold`` is the AP matching criterion:
    the paper does not state one, and its related-work baseline reports a
    mean detection IoU of 0.668, so 0.35 is the headline threshold here
    (AP@0.5 is reported alongside in the notes).
    """

    epochs: int = 14
    num_scenes: int = 2
    chips_per_crossing: int = 4
    seed: int = 3
    box_weight: float = 3.0
    iou_threshold: float = 0.35
    # Augmentation doubles per-epoch cost; at the paper's lr it trades
    # AP@0.35 for AP@0.5 under a fixed budget (see EXPERIMENTS.md), so the
    # canonical Table 1 run leaves it off.
    augment: bool = False

    @classmethod
    def fast(cls) -> "Table1Settings":
        return cls(epochs=3, num_scenes=1, chips_per_crossing=2, augment=False)


def run_table1(settings: Table1Settings | None = None,
               models: dict[str, SPPNetConfig] | None = None,
               verbose: bool = False) -> ExperimentResult:
    """Table 1: AP of the original SPP-Net and the NAS candidates."""
    settings = settings or Table1Settings()
    models = models or TABLE1_MODELS
    dataset = build_dataset(
        num_scenes=settings.num_scenes,
        chips_per_crossing=settings.chips_per_crossing,
        seed=settings.seed,
    )
    train_set, test_set = dataset.split(0.8, seed=settings.seed)
    if settings.augment:
        from ..geo import augment_dataset

        train_set = augment_dataset(train_set, seed=settings.seed)
    rows: list[list] = []
    strict: list[str] = []
    for name, config in models.items():
        result = train_detector(
            config, train_set, test_set,
            TrainConfig(epochs=settings.epochs, seed=1, verbose=verbose,
                        box_weight=settings.box_weight),
        )
        scores = evaluate_detector(result.model, test_set,
                                   iou_threshold=settings.iou_threshold)
        strict_scores = evaluate_detector(result.model, test_set, iou_threshold=0.5)
        rows.append([name, config.grammar(), f"{100 * scores.ap:.2f}%"])
        strict.append(f"{name}: AP@0.5={100 * strict_scores.ap:.2f}%, "
                      f"acc={100 * scores.accuracy:.1f}%")
    paper_rows = [
        [name, models[name].grammar() if name in models else "",
         f"{100 * TABLE1_PAPER_AP[name]:.2f}%"]
        for name in TABLE1_PAPER_AP if name in models
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Average precision of SPP-Net candidates (synthetic chips, "
              f"{len(train_set)} train / {len(test_set)} test, "
              f"AP@IoU>={settings.iou_threshold})",
        headers=["Model", "Hyper-parameters", "Average Precision"],
        rows=rows,
        paper_reference=paper_rows,
        notes="; ".join(strict),
    )


def run_table2(batch: int = 1, device: DeviceSpec | None = None,
               models: dict[str, SPPNetConfig] | None = None) -> ExperimentResult:
    """Table 2: sequential vs IOS-optimized inference latency, batch 1."""
    models = models or TABLE1_MODELS
    rows: list[list] = []
    for name, config in models.items():
        graph = build_sppnet_graph(config)
        result = optimize_schedule(graph, batch, device)
        rows.append([
            name,
            f"{result.sequential_latency_us / 1e3:.3f} ms",
            f"{result.optimized_latency_us / 1e3:.3f} ms",
            f"{result.speedup:.2f}x",
        ])
    paper_rows = [
        [name, f"{seq:.3f} ms", f"{opt:.3f} ms", f"{seq / opt:.2f}x"]
        for name, (seq, opt) in TABLE2_PAPER_LATENCY_MS.items()
        if name in models
    ]
    return ExperimentResult(
        experiment_id="table2",
        title=f"Inference latency, sequential vs IOS-optimized (batch {batch}, "
              "simulated RTX A5500)",
        headers=["Model", "Sequential", "Optimized", "Speedup"],
        rows=rows,
        paper_reference=paper_rows,
        notes="Optimized < sequential for every model, as in the paper. The "
              "paper's cross-model ordering (e.g. SPP-Net #3 slower than its "
              "strict sub-network SPP-Net #2) is not physically reproducible "
              "in a deterministic simulator and is attributed to testbed "
              "measurement variance; see EXPERIMENTS.md.",
    )


def run_table3(batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
               device: DeviceSpec | None = None,
               model: SPPNetConfig | None = None,
               iterations: int = 200) -> ExperimentResult:
    """Table 3: GPU kernel time shares (matmul/pooling/conv) per batch size."""
    config = model or TABLE1_MODELS["SPP-Net #2"]
    graph = build_sppnet_graph(config)
    rows: list[list] = []
    for batch in batch_sizes:
        schedule = dp_schedule(graph, batch, device)
        report = profile_session(graph, schedule, batch, device,
                                 iterations=iterations, warmup=5)
        shares = report.table3_row()
        rows.append([
            batch,
            f"{shares['matmul']:.1f}",
            f"{shares['pooling']:.1f}",
            f"{shares['conv']:.1f}",
        ])
    paper_rows = [
        [1, "41.6", "14.1", "7.7"],
        [2, "34.8", "14.4", "9.7"],
        [4, "39.9", "13.5", "9.5"],
        [8, "34.8", "13.7", "10"],
        [16, "18.1", "17.1", "16.6"],
        [32, "15.7", "14.7", "13.4"],
        [64, "7.4", "8.6", "77.2"],
    ]
    return ExperimentResult(
        experiment_id="table3",
        title=f"GPU kernel profiling shares for {config.name} "
              "(percent of kernel time)",
        headers=["Batch Size", "Matrix Multiplication (%)", "Pooling (%)", "Conv (%)"],
        rows=rows,
        paper_reference=paper_rows,
        notes="Shape: matmul share falls with batch (weight streaming "
              "amortizes), conv share rises and dominates at batch 64, "
              "pooling stays comparatively stable.",
    )
