"""Result records and table formatting shared by the experiment harness.

Every experiment regenerator returns an :class:`ExperimentResult` — rows
of measured values next to the paper's reported values — and can render
itself as the table/series the paper prints.  EXPERIMENTS.md is generated
from these.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["ExperimentResult", "format_table"]


def format_table(headers: list[str], rows: list[list], widths: list[int] | None = None) -> str:
    """Fixed-width text table."""
    if widths is None:
        widths = []
        for i, h in enumerate(headers):
            cell_width = max([len(str(r[i])) for r in rows], default=0)
            widths.append(max(len(h), cell_width) + 2)
    lines = ["".join(str(h).rjust(w) for h, w in zip(headers, widths))]
    lines.append("-" * sum(widths))
    for row in rows:
        lines.append("".join(str(c).rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Measured output of one experiment, aligned with the paper artifact.

    Attributes
    ----------
    experiment_id : e.g. "table1", "fig6".
    title : human-readable description.
    headers : column names of the result table.
    rows : measured rows (list of cell lists).
    paper_reference : what the paper reported, as display rows (optional).
    notes : fidelity commentary recorded into EXPERIMENTS.md.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    paper_reference: list[list] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==",
                 format_table(self.headers, self.rows)]
        if self.paper_reference:
            parts.append("paper reported:")
            parts.append(format_table(self.headers, self.paper_reference))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        def md_table(rows: list[list]) -> str:
            head = "| " + " | ".join(self.headers) + " |"
            sep = "|" + "|".join("---" for _ in self.headers) + "|"
            body = "\n".join("| " + " | ".join(str(c) for c in row) + " |" for row in rows)
            return "\n".join([head, sep, body])

        parts = [f"### {self.experiment_id}: {self.title}", "", "Measured:", "",
                 md_table(self.rows), ""]
        if self.paper_reference:
            parts += ["Paper reported:", "", md_table(self.paper_reference), ""]
        if self.notes:
            parts += [f"*{self.notes}*", ""]
        return "\n".join(parts)

    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "paper_reference": self.paper_reference,
            "notes": self.notes,
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path
