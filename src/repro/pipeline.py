"""End-to-end convenience API: data -> train -> NAS -> IOS -> profile.

``run_pipeline`` strings the whole paper together on a small budget and
returns every intermediate artifact — the programmatic equivalent of the
Figure 5 flow, used by the quickstart example and the end-to-end
integration test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .arch import SPPNetConfig
from .detect import DetectionScores, TrainConfig, evaluate_detector, train_detector
from .geo import ChipDataset, build_dataset
from .gpusim.device import DeviceSpec
from .graph import build_sppnet_graph
from .ios import OptimizationResult, optimize_schedule
from .nas import (
    Experiment,
    RandomStrategy,
    RetryPolicy,
    TrainingEvaluator,
    candidates_from_trials,
    resource_aware_selection,
    sppnet_search_space,
)
from .profiling import ProfileReport, profile_session

__all__ = ["PipelineConfig", "PipelineResult", "run_pipeline", "serve_winner"]


@dataclass(frozen=True)
class PipelineConfig:
    """Budget knobs for the end-to-end run (defaults are demo-sized)."""

    num_scenes: int = 1
    chips_per_crossing: int = 2
    data_seed: int = 3
    nas_trials: int = 3
    train_epochs: int = 3
    accuracy_threshold: float = 0.5
    batch: int = 1
    profile_iterations: int = 100
    serve_requests: int = 0  # >0: smoke the winner through InferenceService
    trial_attempts: int = 3  # retries + quarantine for flaky trial training
    journal_path: str | None = None  # JSONL trial journal (crash resume)
    resume: bool = False  # continue the sweep recorded in journal_path


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    dataset: ChipDataset
    trials: list = field(default_factory=list)
    candidates: list[tuple[SPPNetConfig, float]] = field(default_factory=list)
    winner_config: SPPNetConfig | None = None
    winner_scores: DetectionScores | None = None
    winner_model: object | None = None
    schedule_result: OptimizationResult | None = None
    profile: ProfileReport | None = None
    serve_metrics: dict | None = None


def run_pipeline(config: PipelineConfig | None = None,
                 device: DeviceSpec | None = None,
                 verbose: bool = False) -> PipelineResult:
    """Execute the full accuracy-constrained efficiency pipeline."""
    config = config if config is not None else PipelineConfig()
    dataset = build_dataset(
        num_scenes=config.num_scenes,
        chips_per_crossing=config.chips_per_crossing,
        seed=config.data_seed,
    )
    train_set, test_set = dataset.split(0.8, seed=config.data_seed)
    result = PipelineResult(dataset=dataset)

    trained: dict[tuple, DetectionScores] = {}
    models: dict[tuple, object] = {}

    def evaluate(arch: SPPNetConfig) -> dict:
        run = train_detector(
            arch, train_set, test_set,
            TrainConfig(epochs=config.train_epochs, seed=1, verbose=verbose),
        )
        scores = evaluate_detector(run.model, test_set, iou_threshold=0.35)
        trained[(arch.name,)] = scores
        models[(arch.name,)] = run.model
        return {"value": scores.ap, "accuracy": scores.accuracy}

    retry_policy = RetryPolicy(max_attempts=max(1, config.trial_attempts))
    if config.resume:
        if config.journal_path is None:
            raise ValueError("resume=True requires journal_path")
        experiment = Experiment.resume(
            config.journal_path,
            space=sppnet_search_space(),
            evaluator=TrainingEvaluator(evaluate),
            strategy=RandomStrategy(),
            max_trials=config.nas_trials,
            seed=config.data_seed,
            retry_policy=retry_policy,
        )
    else:
        experiment = Experiment(
            space=sppnet_search_space(),
            evaluator=TrainingEvaluator(evaluate),
            strategy=RandomStrategy(),
            max_trials=config.nas_trials,
            seed=config.data_seed,
            retry_policy=retry_policy,
            journal=config.journal_path,
        )
    experiment.run()
    result.trials = list(experiment.trials)
    # quarantined (failed) trials never reach the §5.4 selection step
    result.candidates = candidates_from_trials(experiment.trials)

    winner, _profiles = resource_aware_selection(
        result.candidates, config.accuracy_threshold,
        batch=config.batch, device=device,
    )
    result.winner_config = winner.config
    result.winner_scores = trained.get((winner.config.name,))
    result.winner_model = models.get((winner.config.name,))

    graph = build_sppnet_graph(winner.config)
    result.schedule_result = optimize_schedule(graph, config.batch, device)
    result.profile = profile_session(
        graph, result.schedule_result.optimized, config.batch, device,
        iterations=config.profile_iterations, warmup=2,
    )
    if config.serve_requests > 0 and result.winner_model is not None:
        result.serve_metrics = serve_winner(
            result.winner_model, test_set, config.serve_requests
        )
    return result


def serve_winner(model, dataset: ChipDataset, num_requests: int) -> dict:
    """Smoke the trained winner through the dynamic-batching service.

    Submits ``num_requests`` test chips (cycling the dataset, so repeats
    exercise the LRU cache) and returns the service metrics snapshot —
    the deployment-readiness check the Figure 5 flow stops short of.
    """
    from .serve import InferenceService

    with InferenceService(model) as service:
        futures = [
            service.submit(dataset.images[i % len(dataset)])
            for i in range(num_requests)
        ]
        for future in futures:
            future.result()
        return service.metrics.snapshot()
