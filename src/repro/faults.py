"""Deterministic fault injection for resilience tests and benchmarks.

Two families, both seeded or scripted and never wall-clock dependent, so
a test that injects a 20% failure rate injects *the same* failures on
every run:

* **Call-level wrappers** that make a callable misbehave on purpose —
  flaky (seeded random failures), fail-first (deterministic transient
  outage), fatal-on (a poisoned subset of inputs), and slow (added
  latency).
* **Data-level corruption injectors** that degrade (C, H, W) imagery the
  way production NAIP tiles actually degrade — NaN pepper, nodata holes,
  dropped bands, saturation stripes, truncated edge tiles — plus
  :func:`corrupt_scene` to damage a seeded fraction of a scene's tiles.
* **Process-level worker faults** for the fleet chaos suite —
  :class:`FaultyDetector` wraps a picklable model so scripted forward
  calls hang, die (SIGKILL), stall, or raise *inside pool worker
  processes*, each fault firing exactly once across the whole worker
  fleet via an atomic filesystem fuse; :func:`tear_trailing_line`
  manufactures the torn-JSONL crash artifact the journal repair path
  recovers from.

Used by the NAS retry/quarantine tests, the serving circuit-breaker
tests, the ``repro.robust`` sanitizer tests, the ``repro.fleet`` chaos
suite, and ``benchmarks/bench_resilience.py`` /
``benchmarks/bench_robustness.py`` / ``benchmarks/bench_fleet.py``.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "InjectedFault",
    "Flaky",
    "FailFirst",
    "FatalOn",
    "Slow",
    "Corruption",
    "NaNPepper",
    "NodataHoles",
    "DropBand",
    "SaturateStripe",
    "TruncateTile",
    "default_injectors",
    "corrupt_scene",
    "WorkerFaultPlan",
    "FaultyDetector",
    "tear_trailing_line",
]


class InjectedFault(RuntimeError):
    """The failure raised by every fault wrapper (so tests can tell an
    injected fault from a genuine bug)."""


class Flaky:
    """Fail each call independently with probability ``rate``.

    Decisions come from a seeded generator keyed only by call order, so a
    replay with the same seed injects faults at the same call indices.
    Thread-safe: concurrent callers draw from one lock-protected stream.
    """

    def __init__(self, fn: Callable, rate: float, seed: int = 0,
                 exc: type[Exception] = InjectedFault) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.fn = fn
        self.rate = rate
        self.exc = exc
        self.calls = 0
        self.faults = 0
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
            fail = self._rng.random() < self.rate
            if fail:
                self.faults += 1
        if fail:
            raise self.exc(f"injected fault (call #{self.calls})")
        return self.fn(*args, **kwargs)


class FailFirst:
    """Fail the first ``n`` calls, then delegate forever after.

    The canonical transient outage: a retry loop (or a circuit breaker's
    half-open probe) sees the failure window end deterministically.
    """

    def __init__(self, fn: Callable, n: int,
                 exc: type[Exception] = InjectedFault) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.fn = fn
        self.n = n
        self.calls = 0
        self.exc = exc
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
            fail = self.calls <= self.n
        if fail:
            raise self.exc(f"injected fault (call {self.calls}/{self.n})")
        return self.fn(*args, **kwargs)


class FatalOn:
    """Always fail for inputs whose key is in ``poisoned``.

    ``key`` maps the call arguments to a hashable key (default: ``repr``
    of the first positional argument).  Retries never help — this is the
    quarantine path's fault model.
    """

    def __init__(self, fn: Callable, poisoned: set, key: Callable | None = None,
                 exc: type[Exception] = InjectedFault) -> None:
        self.fn = fn
        self.poisoned = set(poisoned)
        self.key = key if key is not None else (lambda *a, **k: repr(a[0]))
        self.exc = exc
        self.faults = 0
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        if self.key(*args, **kwargs) in self.poisoned:
            with self._lock:
                self.faults += 1
            raise self.exc("injected fatal fault (poisoned input)")
        return self.fn(*args, **kwargs)


class Slow:
    """Add a fixed delay before delegating (deadline/timeout tests)."""

    def __init__(self, fn: Callable, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.fn = fn
        self.delay_s = delay_s

    def __call__(self, *args, **kwargs):
        time.sleep(self.delay_s)
        return self.fn(*args, **kwargs)


# ----------------------------------------------------------------------
# data-level corruption injectors
# ----------------------------------------------------------------------
NODATA = -9999.0  # GDAL-convention sentinel, matches SanitizePolicy's default


class Corruption:
    """Base class: deterministic, replayable image corruption.

    Each call draws from a fresh generator keyed by ``(seed, call
    index)``, so the k-th corruption an instance produces is identical on
    every run regardless of what happened between calls — the property
    the resumable-scan and severity-sweep tests depend on.  The input is
    never modified; every call returns a new float32 array.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.ndim != 3:
            raise ValueError(f"expected a (C, H, W) image, got shape {image.shape}")
        with self._lock:
            index = self.calls
            self.calls += 1
        rng = np.random.default_rng((self.seed, index))
        return self._apply(image.astype(np.float32, copy=True), rng)

    def _apply(self, image: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class NaNPepper(Corruption):
    """Scatter NaN over a ``rate`` fraction of pixels (all bands drawn
    independently) — failed radiometric processing."""

    def __init__(self, rate: float = 0.05, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        super().__init__(seed)
        self.rate = rate

    def _apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        image[rng.random(image.shape) < self.rate] = np.nan
        return image


class NodataHoles(Corruption):
    """Punch ``holes`` circular nodata holes through every band — the
    camera-footprint voids real mosaics carry, filled with the -9999
    sentinel rather than NaN so the two damage kinds stay distinguishable."""

    def __init__(self, holes: int = 3, radius: int = 6,
                 fill: float = NODATA, seed: int = 0) -> None:
        if holes < 1:
            raise ValueError("holes must be >= 1")
        if radius < 1:
            raise ValueError("radius must be >= 1")
        super().__init__(seed)
        self.holes = holes
        self.radius = radius
        self.fill = fill

    def _apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _, h, w = image.shape
        rows = np.arange(h)[:, None]
        cols = np.arange(w)[None, :]
        for _ in range(self.holes):
            cr = rng.integers(0, h)
            cc = rng.integers(0, w)
            mask = (rows - cr) ** 2 + (cols - cc) ** 2 <= self.radius**2
            image[:, mask] = self.fill
        return image


class DropBand(Corruption):
    """Blank one whole band (``band=None`` picks one per call) — a
    dropped spectral band arriving as all-NaN."""

    def __init__(self, band: int | None = None, fill: float = np.nan,
                 seed: int = 0) -> None:
        super().__init__(seed)
        self.band = band
        self.fill = fill

    def _apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        band = self.band if self.band is not None \
            else int(rng.integers(0, len(image)))
        image[band] = self.fill
        return image


class SaturateStripe(Corruption):
    """Drive a ``width``-pixel stripe (random orientation and offset) to
    an out-of-range value across all bands — sensor saturation / glint."""

    def __init__(self, width: int = 8, value: float = 4.0,
                 seed: int = 0) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        super().__init__(seed)
        self.width = width
        self.value = value

    def _apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _, h, w = image.shape
        horizontal = bool(rng.integers(0, 2))
        extent = h if horizontal else w
        start = int(rng.integers(0, max(extent - self.width, 0) + 1))
        if horizontal:
            image[:, start:start + self.width, :] = self.value
        else:
            image[:, :, start:start + self.width] = self.value
        return image


class TruncateTile(Corruption):
    """Cut trailing rows and columns (up to a ``max_loss`` fraction of
    each axis) — the short tile a truncated transfer leaves at a scene
    edge.  The returned array is genuinely smaller; use
    ``SanitizePolicy.expected_shape`` to repair by edge padding."""

    def __init__(self, max_loss: float = 0.25, seed: int = 0) -> None:
        if not 0.0 < max_loss < 1.0:
            raise ValueError("max_loss must be in (0, 1)")
        super().__init__(seed)
        self.max_loss = max_loss

    def _apply(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _, h, w = image.shape
        cut_h = int(rng.integers(1, max(int(h * self.max_loss), 1) + 1))
        cut_w = int(rng.integers(1, max(int(w * self.max_loss), 1) + 1))
        return image[:, : h - cut_h, : w - cut_w].copy()


def default_injectors(seed: int = 0) -> list[Corruption]:
    """One of each injector at default severity, independently seeded."""
    return [
        NaNPepper(seed=seed),
        NodataHoles(seed=seed + 1),
        DropBand(seed=seed + 2),
        SaturateStripe(seed=seed + 3),
        TruncateTile(seed=seed + 4),
    ]


# ----------------------------------------------------------------------
# process-level worker faults (fleet chaos suite)
# ----------------------------------------------------------------------

_FAULT_KINDS = frozenset({"hang", "kill", "slow", "error"})


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Scripted worker-process faults keyed by model-call ordinal.

    ``faults`` maps a *global* forward-call ordinal (0-based, counted
    across every worker process that shares ``fuse_dir``) to a fault
    kind:

    - ``"hang"``  : sleep ``hang_s`` (the wedged-but-alive worker; the
      supervisor's deadline kill is the only way out),
    - ``"kill"``  : ``SIGKILL`` the calling process mid-shard,
    - ``"slow"``  : sleep ``slow_s`` then answer normally,
    - ``"error"`` : raise :class:`InjectedFault`.

    The ordinal is claimed through an atomic ``O_CREAT | O_EXCL`` file
    per call under ``fuse_dir`` — exactly one process across the fleet
    owns any ordinal, and each fault fires **exactly once** per plan no
    matter how often the shard is redispatched, because the claim file
    outlives the worker the fault killed.  That single-shot property is
    what lets a chaos run assert completion: every injected fault costs
    one recovery, then the retry runs clean.
    """

    faults: dict[int, str]
    fuse_dir: str
    hang_s: float = 3600.0
    slow_s: float = 1.0

    def __post_init__(self) -> None:
        unknown = set(self.faults.values()) - _FAULT_KINDS
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)}; "
                f"allowed: {sorted(_FAULT_KINDS)}"
            )
        Path(self.fuse_dir).mkdir(parents=True, exist_ok=True)

    def counts(self) -> dict[str, int]:
        out = {kind: 0 for kind in sorted(_FAULT_KINDS)}
        for kind in self.faults.values():
            out[kind] += 1
        return out

    def fired(self) -> int:
        """Fault ordinals whose fuse has been claimed by some process."""
        claimed = {int(p.name.split("-")[1])
                   for p in Path(self.fuse_dir).glob("call-*")}
        return sum(1 for ordinal in self.faults if ordinal in claimed)


@dataclass(eq=False)  # identity hash: the pool's model-bytes cache is
#                       keyed by instance, like any other model
class FaultyDetector:
    """Picklable detector wrapper that injects :class:`WorkerFaultPlan`
    faults into forward calls **in worker processes only**.

    Travels to pool workers inside the normal model pickle; the wrapped
    model's numerics are untouched (a non-faulting call delegates
    verbatim), so a scan through a ``FaultyDetector`` that recovers from
    every fault must produce byte-identical detections to the bare
    model — the fleet chaos gate's core assertion.

    The parent pid is captured at construction: calls in that process
    never fault (and never consume ordinals), so the supervisor's
    inline poison-shard fallback and any parent-side reference scan run
    clean by construction.
    """

    model: object
    plan: WorkerFaultPlan
    parent_pid: int = field(default_factory=os.getpid)
    _next_ordinal: int = field(default=0, compare=False)

    def _claim_ordinal(self) -> int:
        """Atomically claim the next unclaimed global call ordinal."""
        n = self._next_ordinal
        while True:
            path = Path(self.plan.fuse_dir) / f"call-{n:06d}"
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                n += 1
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            self._next_ordinal = n + 1
            return n

    def _maybe_fault(self) -> None:
        if os.getpid() == self.parent_pid:
            return
        ordinal = self._claim_ordinal()
        kind = self.plan.faults.get(ordinal)
        if kind is None:
            return
        if kind == "hang":
            time.sleep(self.plan.hang_s)
        elif kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "slow":
            time.sleep(self.plan.slow_s)
        elif kind == "error":
            raise InjectedFault(
                f"injected worker fault at call ordinal {ordinal}"
            )

    def __call__(self, *args, **kwargs):
        self._maybe_fault()
        return self.model(*args, **kwargs)

    def eval(self):
        self.model.eval()
        return self

    def train(self):
        self.model.train()
        return self

    def __getattr__(self, name: str):
        # dataclass attributes resolve normally; everything else (arch
        # config, parameters, ...) delegates to the wrapped model.  The
        # guards keep pickle/copy protocol probes from recursing while
        # ``model`` is not set yet during unpickling.
        if name.startswith("__") or "model" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.model, name)


def tear_trailing_line(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Truncate a file mid-way through its final line (crash artifact).

    Reproduces what a ``SIGKILL`` during an unflushed append leaves
    behind: the last line's bytes cut at an arbitrary point, no
    terminating newline.  Returns the number of bytes removed.  Used by
    the torn-journal chaos tests against
    :func:`repro.robust.journal.load_jsonl_repaired`.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    raw = path.read_bytes()
    body = raw.rstrip(b"\n")
    if not body:
        return 0
    last_start = body.rfind(b"\n") + 1
    last_line = body[last_start:]
    keep = max(1, int(len(last_line) * keep_fraction))
    torn = body[:last_start] + last_line[:keep]
    with open(path, "r+b") as fh:
        fh.truncate(len(torn))
        fh.flush()
        os.fsync(fh.fileno())
    return len(raw) - len(torn)


def corrupt_scene(
    image: np.ndarray,
    origins: Sequence[tuple[int, int]],
    window: int,
    fraction: float = 0.2,
    injectors: Sequence[Corruption] | None = None,
    seed: int = 0,
) -> tuple[np.ndarray, dict[int, str]]:
    """Corrupt a seeded ``fraction`` of a scene's tiles in place-of-copy.

    Picks ``round(fraction * len(origins))`` tile indices with a seeded
    generator and applies one (round-robin) injector to each tile's
    region of a copied scene image.  An injector that shrinks its tile
    (:class:`TruncateTile`) has the lost strip filled with the nodata
    sentinel, which is how a mosaicker represents a short tile inside a
    fixed-size raster.

    Returns ``(corrupted image copy, {tile index: injector name})``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    image = np.asarray(image).astype(np.float32, copy=True)
    if injectors is None:
        injectors = default_injectors(seed)
    rng = np.random.default_rng(seed)
    count = int(round(fraction * len(origins)))
    chosen = sorted(rng.choice(len(origins), size=count, replace=False))
    applied: dict[int, str] = {}
    for slot, index in enumerate(chosen):
        injector = injectors[slot % len(injectors)]
        r, c = origins[index]
        tile = image[:, r:r + window, c:c + window]
        out = injector(tile)
        if out.shape != tile.shape:
            padded = np.full_like(tile, NODATA)
            padded[:, : out.shape[1], : out.shape[2]] = out
            out = padded
        image[:, r:r + window, c:c + window] = out
        applied[int(index)] = type(injector).__name__
    return image, applied
