"""Deterministic fault injection for resilience tests and benchmarks.

Wrappers that make a callable misbehave on purpose — flaky (seeded random
failures), fail-first (deterministic transient outage), fatal-on (a
poisoned subset of inputs), and slow (added latency).  Every wrapper is
seeded or scripted, never wall-clock dependent, so a test that injects a
20% failure rate injects *the same* failures on every run.

Used by the NAS retry/quarantine tests, the serving circuit-breaker
tests, and ``benchmarks/bench_resilience.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

__all__ = ["InjectedFault", "Flaky", "FailFirst", "FatalOn", "Slow"]


class InjectedFault(RuntimeError):
    """The failure raised by every fault wrapper (so tests can tell an
    injected fault from a genuine bug)."""


class Flaky:
    """Fail each call independently with probability ``rate``.

    Decisions come from a seeded generator keyed only by call order, so a
    replay with the same seed injects faults at the same call indices.
    Thread-safe: concurrent callers draw from one lock-protected stream.
    """

    def __init__(self, fn: Callable, rate: float, seed: int = 0,
                 exc: type[Exception] = InjectedFault) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.fn = fn
        self.rate = rate
        self.exc = exc
        self.calls = 0
        self.faults = 0
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
            fail = self._rng.random() < self.rate
            if fail:
                self.faults += 1
        if fail:
            raise self.exc(f"injected fault (call #{self.calls})")
        return self.fn(*args, **kwargs)


class FailFirst:
    """Fail the first ``n`` calls, then delegate forever after.

    The canonical transient outage: a retry loop (or a circuit breaker's
    half-open probe) sees the failure window end deterministically.
    """

    def __init__(self, fn: Callable, n: int,
                 exc: type[Exception] = InjectedFault) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.fn = fn
        self.n = n
        self.calls = 0
        self.exc = exc
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
            fail = self.calls <= self.n
        if fail:
            raise self.exc(f"injected fault (call {self.calls}/{self.n})")
        return self.fn(*args, **kwargs)


class FatalOn:
    """Always fail for inputs whose key is in ``poisoned``.

    ``key`` maps the call arguments to a hashable key (default: ``repr``
    of the first positional argument).  Retries never help — this is the
    quarantine path's fault model.
    """

    def __init__(self, fn: Callable, poisoned: set, key: Callable | None = None,
                 exc: type[Exception] = InjectedFault) -> None:
        self.fn = fn
        self.poisoned = set(poisoned)
        self.key = key if key is not None else (lambda *a, **k: repr(a[0]))
        self.exc = exc
        self.faults = 0
        self._lock = threading.Lock()

    def __call__(self, *args, **kwargs):
        if self.key(*args, **kwargs) in self.poisoned:
            with self._lock:
                self.faults += 1
            raise self.exc("injected fatal fault (poisoned input)")
        return self.fn(*args, **kwargs)


class Slow:
    """Add a fixed delay before delegating (deadline/timeout tests)."""

    def __init__(self, fn: Callable, delay_s: float) -> None:
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.fn = fn
        self.delay_s = delay_s

    def __call__(self, *args, **kwargs):
        time.sleep(self.delay_s)
        return self.fn(*args, **kwargs)
