"""Compiled inference: bind fused steps to a planned arena and execute.

``compile(model)`` snapshots the model once — trace, fuse, pack weights
into GEMM-ready layouts — and returns a :class:`CompiledModel`.  Each
distinct runtime shape ``(batch, H, W)`` then gets a *program*: arena
buffers sized by the memory planner, array views bound into them, and a
flat list of zero-argument kernel closures.  Steady-state inference is
just ``for fn in fns: fn()`` over NumPy ``out=`` kernels — no autograd
tape, no per-op allocation, no layout shuffling (activations stay NHWC
between convolutions).

Programs are cached per shape, so a sliding-window scan pays the bind
cost once for its window shape and once for the final ragged batch.
Weights are packed once at compile time and shared by every program
(trace node names are structural, hence stable across input sizes).

When IOS scheduling is on (the default; see :mod:`repro.engine.sched`),
program construction additionally measures each step's kernel on the
freshly-bound sequential program, solves the IOS stage/group DP against
those measured costs, and — only if the solver found profitable
inter-operator parallelism — rebinds the program with a stage-barrier
arena plan and a staged executor that runs concurrent groups on a
shared thread pool.  Solved schedules are sticky per (program, batch,
shape, quant, workers) exactly like autotune decisions, so the
measure+solve cost is paid once per process (or never, when seeded from
a scan-pool parent).

Execution is serialized with an internal lock: programs own mutable
arena state, so one ``CompiledModel`` must not run concurrently with
itself.  Multi-worker serving should compile one model per worker.
(The staged executor's intra-program group threads are internal and do
not relax this rule.)
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import replace

import numpy as np

from . import sched as _sched
from .autotune import ConvKey, choose_variant
from .fusion import Step, fuse_graph
from .kernels import (
    adaptive_bins,
    adaptive_pool_nhwc,
    bind_conv,
    concat_rows,
    conv_scratch_elems,
    linear,
    maxpool_shifted,
    pack_conv_weight,
    pack_linear_weight,
    pooled_to_flat,
    relu_,
    shifted_views,
    sigmoid_into,
    softmax_rows,
    winograd23_pack_weight,
)
from .plan import MemoryPlan, plan_memory
from .quant import (
    QuantPolicy,
    activation_scale,
    bind_conv_q8,
    bind_linear_q8,
    quantize_weight_per_channel,
    round_f16,
)
from .trace import Traced, trace

__all__ = ["CompiledModel", "compile", "compiled_for"]

# Kernel-category attribution for profile(), matching the
# repro.profiling taxonomy (conv / matmul / pooling / elementwise) plus
# a "memops" bucket for pure data movement.  Fused kernels (conv_pool,
# quantized convs) further split their own wall time into phases —
# gather/staging as memops, fused pooling as pooling — inside
# run_timed(); the entry here is the bucket for any untimed remainder.
_CATEGORY = {
    "input": "memops",
    "conv": "conv",
    "conv_pool": "conv",
    "linear": "matmul",
    "maxpool": "pooling",
    "maxpool_flatten": "pooling",
    "adaptive_pool": "pooling",
    "adaptive_pool_flatten": "pooling",
    "relu": "elementwise",
    "sigmoid": "elementwise",
    "softmax": "elementwise",
    "flatten": "memops",
    "concat": "memops",
    "identity": "memops",
}


def _nhwc(shape: tuple[int, ...], n: int) -> tuple[int, ...]:
    """Runtime view shape for a per-sample shape: NHWC for spatial
    tensors, ``(N, F)`` for flat ones."""
    if len(shape) == 3:
        c, h, w = shape
        return (n, h, w, c)
    return (n,) + shape


def _conv_step_params(step: Step, shapes: dict) -> dict:
    """Static conv geometry shared by variant selection and binding."""
    c_in, h, w = shapes[step.inputs[0]]
    pooled = step.kind == "conv_pool"
    return {
        "h": int(h), "w": int(w), "c_in": int(c_in),
        "out_channels": int(step.attrs["out_channels"]),
        "kernel": int(step.attrs["kernel"]),
        "stride": int(step.attrs["stride"]),
        "padding": int(step.attrs["padding"]),
        "bias": bool(step.attrs["bias"]),
        "pool": pooled,
    }


def _select_conv_variant(step: Step, shapes: dict, batch: int,
                         dtype: np.dtype, packed: dict,
                         quant: QuantPolicy) -> tuple[str, int]:
    """Autotuned kernel variant and its per-sample scratch size."""
    geo = _conv_step_params(step, shapes)
    key = ConvKey(batch=batch, height=geo["h"], width=geo["w"],
                  in_channels=geo["c_in"], out_channels=geo["out_channels"],
                  kernel=geo["kernel"], stride=geo["stride"],
                  padding=geo["padding"], pool=geo["pool"],
                  dtype=str(np.dtype(dtype)), mode=quant.mode)
    pack = packed[step.attrs["weights"]]
    pool = (2, 2) if geo["pool"] else None
    relu = bool(step.attrs["relu"])

    def make_kernel(variant: str):
        # Standalone benchmark buffers: the arena does not exist yet
        # (its sizing depends on the choice made here).
        rng = np.random.default_rng(0)
        src = rng.standard_normal(
            (batch, geo["h"], geo["w"], geo["c_in"])).astype(dtype)
        out = np.empty(_nhwc(step.out_shape, batch), dtype=dtype)
        scratch = np.empty(
            batch * conv_scratch_elems(
                variant, batch=batch, h=geo["h"], w=geo["w"],
                c_in=geo["c_in"], out_channels=geo["out_channels"],
                kernel=geo["kernel"], stride=geo["stride"],
                padding=geo["padding"], bias=geo["bias"], pool=geo["pool"]),
            dtype=dtype)
        return bind_conv(
            variant, src=src, out=out, scratch=scratch, k=geo["kernel"],
            stride=geo["stride"], pad=geo["padding"], relu=relu, pool=pool,
            w_pack=pack.get("im2col"),
            wg_pack=(pack.get("wg"), pack.get("bias")))

    variant = choose_variant(key, make_kernel)
    bias_col = geo["bias"] and quant.mode != "int8"
    scratch_elems = conv_scratch_elems(
        variant, batch=batch, h=geo["h"], w=geo["w"], c_in=geo["c_in"],
        out_channels=geo["out_channels"], kernel=geo["kernel"],
        stride=geo["stride"], padding=geo["padding"], bias=bias_col,
        pool=geo["pool"])
    return variant, scratch_elems


def _run_group(group: list) -> None:
    """Execute one schedule group's closures in order (worker thread body)."""
    for _, _, fn in group:
        fn()


def _timed_step(triple: tuple, acc: dict[str, float]) -> None:
    """Run one (category, name, closure) step, attributing wall time."""
    category, _, fn = triple
    phases: dict[str, float] = {}
    t0 = time.perf_counter()
    fn(phases)
    t1 = time.perf_counter()
    if phases:
        # fused kernels self-attribute their phases (gather ->
        # memops, fused pool -> pooling, ...); any untimed
        # remainder lands in the step's own category
        timed = 0.0
        for phase_cat, dt in phases.items():
            acc[phase_cat] = acc.get(phase_cat, 0.0) + dt
            timed += dt
        acc[category] = (acc.get(category, 0.0)
                         + max(0.0, (t1 - t0) - timed))
    else:
        acc[category] = acc.get(category, 0.0) + (t1 - t0)


def _run_group_timed(group: list, acc: dict[str, float]) -> None:
    for triple in group:
        _timed_step(triple, acc)


class _Program:
    """One bound executable: arena slots, views, kernel closures.

    With ``schedule`` (an IOS :class:`~repro.ios.schedule.Schedule` whose
    ``max_parallelism`` exceeds 1), the arena is planned with
    stage-barrier interference so concurrent groups never share slots,
    and ``run``/``run_timed`` execute the stage/group structure on the
    shared group thread pool instead of the flat step list.
    """

    def __init__(self, steps: list[Step], outputs: tuple[str, ...],
                 batch: int, dtype: np.dtype, packed: dict,
                 quant: QuantPolicy, act_scales: dict,
                 schedule=None) -> None:
        self.quant = quant
        self.schedule = schedule
        self._act_scales = act_scales
        shapes = {s.name: s.out_shape for s in steps}

        # Resolve the kernel variant per conv before planning: each
        # variant has its own scratch footprint (im2col columns vs block
        # buffers vs Winograd transform planes), and the plan must
        # reserve what the bound kernel will actually touch.
        self.kernel_choices: dict[str, str] = {}
        resolved: list[Step] = []
        for step in steps:
            if step.kind in ("conv", "conv_pool"):
                variant, scratch = _select_conv_variant(
                    step, shapes, batch, dtype, packed, quant)
                self.kernel_choices[step.name] = variant
                step = replace(step, scratch_elems=scratch)
            elif step.kind == "linear" and quant.mode == "int8":
                # quantized input copy (the arena view may have other
                # consumers, so it cannot be quantized in place)
                step = replace(step,
                               scratch_elems=int(step.attrs["in_features"]))
            resolved.append(step)
        steps = resolved

        stages = schedule.stage_groups() if schedule is not None else None
        self.plan: MemoryPlan = plan_memory(
            steps, outputs, batch, itemsize=dtype.itemsize, stages=stages
        )
        self.batch = batch
        elems = [size // dtype.itemsize for size in self.plan.slot_sizes]
        self._slots = [np.empty(n, dtype=dtype) for n in elems]

        views: dict[str, np.ndarray] = {}
        for step in steps:
            life = self.plan.lifetimes[step.name]
            shape = _nhwc(step.out_shape, batch)
            count = int(np.prod(shape))
            views[step.name] = self._slots[life.slot][:count].reshape(shape)

        self._input_fn = None
        self._fns: list[tuple[str, str, object]] = []  # (category, name, fn)
        # quantized step name -> input view (int8 calibration taps)
        self._taps: dict[str, np.ndarray] = {}
        for step in steps:
            fn = self._bind(step, views, shapes, batch, dtype, packed)
            if step.kind == "input":
                self._input_fn = fn
            else:
                self._fns.append((_CATEGORY[step.kind], step.name, fn))
                if (quant.mode == "int8" and
                        step.kind in ("conv", "conv_pool", "linear")):
                    self._taps[step.name] = views[step.inputs[0]]

        # Staged execution structure: stage -> group -> (category, name,
        # fn) triples in schedule order.  ``_linear`` is the sequential
        # linearization actually used by calibration and step timing —
        # for scheduled programs that is the *schedule* order (the
        # stage-barrier arena plan assumes it), for plain programs the
        # original step order.
        if schedule is not None:
            by_name = {name: triple for triple in self._fns
                       for name in (triple[1],)}
            self._exec_stages: list[list[list[tuple]]] | None = [
                [[by_name[name] for name in group] for group in stage]
                for stage in stages
            ]
            self._linear = [triple for stage in self._exec_stages
                            for group in stage for triple in group]
        else:
            self._exec_stages = None
            self._linear = self._fns

        out_views = [views[name] for name in outputs]
        out_spatial = [len(shapes[name]) == 3 for name in outputs]
        self._outputs = list(zip(out_views, out_spatial))

    # -- binding ---------------------------------------------------------
    def _scratch(self, step: Step, batch: int,
                 dtype: np.dtype) -> np.ndarray:
        life = self.plan.lifetimes[f"{step.name}:scratch"]
        return self._slots[life.slot][: batch * step.scratch_elems]

    def _bind(self, step: Step, views: dict, shapes: dict, n: int,
              dtype: np.dtype, packed: dict):
        out = views[step.name]
        ins = [views[name] for name in step.inputs]
        kind = step.kind

        if kind == "input":
            spatial = len(step.out_shape) == 3
            if spatial:
                def fn(x, out=out):
                    np.copyto(out, x.transpose(0, 2, 3, 1))
            else:
                def fn(x, out=out):
                    np.copyto(out, x)
            return fn

        if kind in ("conv", "conv_pool"):
            k = int(step.attrs["kernel"])
            stride = int(step.attrs["stride"])
            pad = int(step.attrs["padding"])
            relu = bool(step.attrs["relu"])
            pool = (2, 2) if kind == "conv_pool" else None
            scratch = self._scratch(step, n, dtype)
            pack = packed[step.attrs["weights"]]
            src = ins[0]
            if self.quant.mode == "int8":
                w_q, w_scales = pack["q"]
                return bind_conv_q8(
                    src=src, out=out, scratch=scratch, w_q=w_q,
                    w_scales=w_scales, bias=pack["bias"], k=k,
                    stride=stride, pad=pad, relu=relu, pool=pool,
                    scales=self._act_scales, name=step.name)
            return bind_conv(
                self.kernel_choices[step.name], src=src, out=out,
                scratch=scratch, k=k, stride=stride, pad=pad, relu=relu,
                pool=pool, w_pack=pack.get("im2col"),
                wg_pack=(pack.get("wg"), pack.get("bias")))

        if kind == "linear":
            pack = packed[step.attrs["weights"]]
            relu = bool(step.attrs["relu"])
            if self.quant.mode == "int8":
                w_q, w_scales = pack["q"]
                return bind_linear_q8(
                    in2d=ins[0], out=out,
                    scratch=self._scratch(step, n, dtype), w_q=w_q,
                    w_scales=w_scales, bias=pack["bias"], relu=relu,
                    scales=self._act_scales, name=step.name)
            w_pack, bias = pack["pack"], pack["bias"]

            def fn(acc=None, in2d=ins[0], w_pack=w_pack, bias=bias,
                   out2d=out, relu=relu):
                linear(in2d, w_pack, bias, out2d, relu)
            return fn

        if kind in ("maxpool", "maxpool_flatten"):
            k = int(step.attrs["kernel"])
            stride = int(step.attrs["stride"])
            relu = bool(step.attrs.get("relu"))
            src = ins[0]
            _, h, w, c = src.shape
            ho = (h - k) // stride + 1
            wo = (w - k) // stride + 1
            if kind == "maxpool":
                pooled = out
            else:
                staging = self._scratch(step, n, dtype)
                pooled = staging[: n * ho * wo * c].reshape(n, ho, wo, c)
            views = shifted_views(src, k, stride, ho, wo)

            def reduce_fn(acc=None, views=views, pooled=pooled, relu=relu):
                maxpool_shifted(views, pooled)
                if relu:
                    # deferred conv activation (ReLU commutes with max),
                    # one pass over the k*k-times smaller pooled tensor
                    np.maximum(pooled, 0.0, out=pooled)
            if kind == "maxpool":
                return reduce_fn

            out_nchw = out.reshape(n, c, ho, wo)

            def fn(acc=None, reduce_fn=reduce_fn, pooled=pooled,
                   out_nchw=out_nchw):
                reduce_fn()
                pooled_to_flat(pooled, out_nchw)
            return fn

        if kind in ("adaptive_pool", "adaptive_pool_flatten"):
            lv = int(step.attrs["output_size"])
            src = ins[0]
            _, h, w, c = src.shape
            ridx, _ = adaptive_bins(h, lv)
            cidx, _ = adaptive_bins(w, lv)
            if kind == "adaptive_pool":
                def fn(acc=None, src=src, ridx=ridx, cidx=cidx, out=out):
                    adaptive_pool_nhwc(src, ridx, cidx, out)
                return fn
            staging = self._scratch(step, n, dtype)
            pooled = staging[: n * lv * lv * c].reshape(n, lv, lv, c)
            out_nchw = out.reshape(n, c, lv, lv)

            def fn(acc=None, src=src, ridx=ridx, cidx=cidx, pooled=pooled,
                   out_nchw=out_nchw):
                adaptive_pool_nhwc(src, ridx, cidx, pooled)
                pooled_to_flat(pooled, out_nchw)
            return fn

        if kind == "relu":
            def fn(acc=None, src=ins[0], out=out):
                relu_(src, out)
            return fn

        if kind == "sigmoid":
            def fn(acc=None, src=ins[0], out=out):
                sigmoid_into(src, out)
            return fn

        if kind == "softmax":
            def fn(acc=None, src=ins[0], out=out):
                softmax_rows(src, out)
            return fn

        if kind == "flatten":
            src = ins[0]
            if src.ndim == 4:
                _, h, w, c = src.shape
                out_nchw = out.reshape(n, c, h, w)

                def fn(acc=None, src=src, out_nchw=out_nchw):
                    pooled_to_flat(src, out_nchw)
            else:
                def fn(acc=None, src=src, out=out):
                    np.copyto(out, src)
            return fn

        if kind == "concat":
            axis = 3 if out.ndim == 4 else 1

            def fn(acc=None, parts=ins, out=out, axis=axis):
                concat_rows(parts, out, axis)
            return fn

        if kind == "identity":
            def fn(acc=None, src=ins[0], out=out):
                np.copyto(out, src)
            return fn

        raise ValueError(f"no binding for step kind {kind!r}")  # pragma: no cover

    # -- execution -------------------------------------------------------
    def run(self, x: np.ndarray) -> list[np.ndarray]:
        self._input_fn(x)
        if self._exec_stages is None:
            for _, _, fn in self._fns:
                fn()
        else:
            self._run_staged()
        return self._extract()

    def _run_staged(self) -> None:
        # Single-group stages run inline (no dispatch, no barrier — the
        # exact overheads the cost model charges).  Parallel stages hand
        # groups[1:] to the shared pool while the calling thread runs
        # groups[0], then join at the barrier.
        for stage in self._exec_stages:
            if len(stage) == 1:
                for _, _, fn in stage[0]:
                    fn()
                continue
            executor = _sched.group_executor()
            futures = [executor.submit(_run_group, group)
                       for group in stage[1:]]
            _run_group(stage[0])
            for future in futures:
                future.result()

    def run_timed(self, x: np.ndarray, acc: dict[str, float]) -> list[np.ndarray]:
        """Run once, accumulating per-category wall time into ``acc``.

        On scheduled programs each concurrent group times its steps into
        a group-local accumulator, merged at the stage barrier — so
        category sums are *thread* time and may exceed the stage's wall
        clock when groups genuinely overlap.
        """
        t0 = time.perf_counter()
        self._input_fn(x)
        t1 = time.perf_counter()
        acc["memops"] = acc.get("memops", 0.0) + (t1 - t0)
        if self._exec_stages is None:
            for triple in self._fns:
                _timed_step(triple, acc)
            return self._extract()
        for stage in self._exec_stages:
            if len(stage) == 1:
                for triple in stage[0]:
                    _timed_step(triple, acc)
                continue
            executor = _sched.group_executor()
            partials = [dict() for _ in stage[1:]]
            futures = [executor.submit(_run_group_timed, group, part)
                       for group, part in zip(stage[1:], partials)]
            _run_group_timed(stage[0], acc)
            for future in futures:
                future.result()
            for part in partials:
                for category, dt in part.items():
                    acc[category] = acc.get(category, 0.0) + dt
        return self._extract()

    def run_calibrate(self, x: np.ndarray, stats: dict[str, float],
                      percentile: float) -> None:
        """One forward pass recording per-quantized-step input scales.

        Always sequential (over the plan's own linearization) so the
        recorded percentile per tap is deterministic.
        """
        self._input_fn(x)
        for _, name, fn in self._linear:
            view = self._taps.get(name)
            if view is not None:
                stats[name] = max(stats.get(name, 0.0),
                                  activation_scale(view, percentile))
            fn()

    def step_costs(self, x: np.ndarray,
                   repeats: int = 3) -> dict[str, float]:
        """Best-of wall-clock seconds per step on the real bound kernels.

        This is the cost input to the IOS DP (``repro.engine.sched``):
        run_timed-style per-step attribution, but keyed by step name and
        taken as a min over ``repeats`` full passes so scheduler input is
        noise-robust.  The pass re-feeds the input each repeat, so every
        pass executes in a valid sequential order over live buffers.
        """
        costs: dict[str, float] = {}
        for _ in range(max(1, int(repeats))):
            self._input_fn(x)
            for _, name, fn in self._linear:
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
                prev = costs.get(name)
                if prev is None or dt < prev:
                    costs[name] = dt
        return costs

    def _extract(self) -> list[np.ndarray]:
        return [
            view.transpose(0, 3, 1, 2).copy() if spatial else view.copy()
            for view, spatial in self._outputs
        ]


class CompiledModel:
    """A model lowered to fused, memory-planned NumPy programs.

    Calling it mirrors the eager module: one ndarray (or Tensor) in,
    the module's output(s) out — a tuple when the traced module returns
    several values (the detector's ``(class_logits, boxes)``), a single
    array otherwise.  Outputs are returned in eager NCHW / ``(N, F)``
    layouts regardless of the internal NHWC representation.
    """

    def __init__(self, module, input_shape: tuple[int, ...],
                 dtype=np.float32, quant="float32",
                 schedule: bool = True) -> None:
        self.module = module
        self.dtype = np.dtype(dtype)
        self.quant = QuantPolicy.coerce(quant)
        #: per-model IOS-scheduling opt-out; the process-wide escape
        #: hatch is ``REPRO_IOS_SCHEDULE=off`` (see repro.engine.sched)
        self.schedule_enabled = bool(schedule)
        self.input_shape = tuple(int(d) for d in input_shape)
        traced = trace(module, self.input_shape)
        self.graph = traced.graph
        self.outputs = traced.outputs
        self.steps: list[Step] = fuse_graph(traced.graph, traced.outputs)
        self._packed = self._pack(traced)
        #: static int8 activation scales, committed by calibrate();
        #: quantized kernels fall back to dynamic scales while empty.
        self._act_scales: dict[str, float] = {}
        self._step_cache: dict[tuple[int, ...], list[Step]] = {
            self.input_shape: self.steps
        }
        self._programs: dict[tuple[int, ...], _Program] = {}
        self._lock = threading.Lock()

    # -- compile-time ----------------------------------------------------
    def _pack(self, traced: Traced) -> dict[str, dict]:
        """Snapshot weights into per-variant GEMM layouts (taken once).

        Under ``quant="float16"`` every parameter is rounded through
        half precision first; under ``quant="int8"`` the GEMM operands
        are additionally quantized per output channel (integer values
        stored in the arena dtype so BLAS consumes them directly).
        """
        f16 = self.quant.mode == "float16"
        int8 = self.quant.mode == "int8"
        packed: dict[str, dict] = {}
        for name, params in traced.params.items():
            weight = params["weight"]
            bias = params.get("bias")
            if f16:
                weight = round_f16(weight, self.dtype)
                bias = None if bias is None else round_f16(bias, self.dtype)
            b_vec = None if bias is None else \
                np.ascontiguousarray(bias, dtype=self.dtype)
            if weight.ndim == 4:
                # conv bias rides inside the packed matrix (ones-column
                # trick); the separate vector serves the winograd /
                # quantized / fused-pool epilogues
                entry = {
                    "kind": "conv",
                    "im2col": pack_conv_weight(weight, bias, self.dtype),
                    "bias": b_vec,
                }
                if weight.shape[2] == weight.shape[3] == 3 and not int8:
                    entry["wg"] = winograd23_pack_weight(weight, self.dtype)
                if int8:
                    rows = weight.transpose(2, 3, 1, 0).reshape(
                        -1, weight.shape[0])
                    entry["q"] = quantize_weight_per_channel(rows, self.dtype)
                packed[name] = entry
            else:
                entry = {
                    "kind": "linear",
                    "pack": pack_linear_weight(weight, self.dtype),
                    "bias": b_vec,
                }
                if int8:
                    entry["q"] = quantize_weight_per_channel(
                        entry["pack"], self.dtype)
                packed[name] = entry
        return packed

    def _steps_for(self, sample_shape: tuple[int, ...]) -> list[Step]:
        steps = self._step_cache.get(sample_shape)
        if steps is None:
            traced = trace(self.module, sample_shape)
            if tuple(traced.outputs) != tuple(self.outputs):
                raise ValueError(
                    "model structure changed between compile and execution"
                )
            for name in traced.params:
                if name not in self._packed:
                    raise ValueError(
                        f"node {name!r} has no packed weights; the model "
                        "gained parameters after compile()"
                    )
            steps = fuse_graph(traced.graph, traced.outputs)
            self._step_cache[sample_shape] = steps
        return steps

    def _program_for(self, batch: int,
                     sample_shape: tuple[int, ...]) -> _Program:
        key = (batch,) + sample_shape
        prog = self._programs.get(key)
        if prog is None:
            steps = self._steps_for(sample_shape)
            prog = _Program(steps, self.outputs, batch, self.dtype,
                            self._packed, self.quant, self._act_scales)
            if self.schedule_enabled and _sched.scheduling_enabled():
                plan = self._resolve_schedule(steps, batch, sample_shape,
                                              prog)
                if plan is not None and plan.max_parallelism > 1:
                    # Rebind with the stage-barrier arena plan and the
                    # staged executor.  Conv variants are sticky in the
                    # autotune cache, so the rebind reuses the first
                    # build's decisions (and its kernels) verbatim.
                    prog = _Program(steps, self.outputs, batch, self.dtype,
                                    self._packed, self.quant,
                                    self._act_scales, schedule=plan)
            self._programs[key] = prog
        return prog

    def _resolve_schedule(self, steps: list[Step], batch: int,
                          sample_shape: tuple[int, ...], prog: _Program):
        """Cached-or-solved IOS schedule for one (batch, shape) program.

        On a cache miss the freshly-bound sequential program measures
        its own per-step kernel costs (synthetic input — cost magnitude
        is what matters, not values) and the DP solves against them.
        Any failure falls back to no schedule: the sequential program
        is always a correct executable.
        """
        try:
            key = _sched.schedule_key(steps, batch, sample_shape,
                                      self.dtype, self.quant.mode)
            plan = _sched.cached_schedule(key)
            if plan is None:
                rng = np.random.default_rng(0)
                x = rng.standard_normal(
                    (batch,) + tuple(sample_shape)).astype(
                        self.dtype, copy=False)
                costs = prog.step_costs(x)
                plan = _sched.solve_schedule(key, steps, costs,
                                             graph_name=self.graph.name)
            return plan
        except Exception:
            return None

    # -- execution -------------------------------------------------------
    def __call__(self, x):
        data = np.asarray(getattr(x, "data", x))
        if data.ndim != len(self.input_shape) + 1:
            raise ValueError(
                f"expected batched input with {len(self.input_shape) + 1} "
                f"dims, got shape {data.shape}"
            )
        with self._lock:
            prog = self._program_for(data.shape[0], tuple(data.shape[1:]))
            results = prog.run(data)
        return results[0] if len(results) == 1 else tuple(results)

    def predict(self, images: np.ndarray,
                batch_size: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """Drop-in for :func:`repro.detect.predict` on a traced detector:
        returns (crossing confidences, normalized boxes)."""
        if len(self.outputs) != 2:
            raise ValueError(
                "predict() requires a detector-style compiled model with "
                f"(logits, boxes) outputs, this one has {len(self.outputs)}"
            )
        confidences: list[np.ndarray] = []
        boxes: list[np.ndarray] = []
        for start in range(0, len(images), batch_size):
            logits, box = self(images[start:start + batch_size])
            shifted = logits - logits.max(axis=1, keepdims=True)
            np.exp(shifted, out=shifted)
            probs = shifted / shifted.sum(axis=1, keepdims=True)
            confidences.append(probs[:, 1].copy())
            boxes.append(box)
        return np.concatenate(confidences), np.concatenate(boxes)

    def warmup(self, batch_sizes, sample_shape: tuple[int, ...] | None = None
               ) -> float:
        """Pre-build the per-(batch, shape) programs for ``batch_sizes``.

        Binding a program — memory planning, arena allocation, view and
        closure construction, plus (first time per shape) the IOS
        step-cost measurement and DP solve — is the one non-amortized
        cost of the compiled path; without warmup the first request of
        each batch shape pays it inline.  Calling this at startup (the serving
        layer does, and every parallel scan worker warms its shard's
        batch shapes) moves that latency out of the request path.

        Returns the elapsed milliseconds; already-cached programs cost
        nothing, so warmup is idempotent.
        """
        shape = tuple(int(d) for d in (sample_shape or self.input_shape))
        start = time.perf_counter()
        with self._lock:
            for batch in batch_sizes:
                if batch < 1:
                    raise ValueError("warmup batch sizes must be >= 1")
                self._program_for(int(batch), shape)
        return (time.perf_counter() - start) * 1e3

    def calibrate(self, images, batch_size: int = 20,
                  percentile: float | None = None) -> dict[str, float]:
        """Freeze int8 activation scales from a held-out chip sample.

        Runs ``images`` (NCHW) through the quantized programs, records
        the |activation| percentile at every quantized step's input, and
        commits the resulting static scales — replacing the per-call
        dynamic absmax fallback.  Returns the committed ``{step name:
        scale}`` table (empty for non-int8 modes, where calibration is a
        no-op).
        """
        if self.quant.mode != "int8":
            return {}
        pct = self.quant.percentile if percentile is None else percentile
        data = np.asarray(getattr(images, "data", images))
        if data.ndim != len(self.input_shape) + 1:
            raise ValueError(
                f"calibration sample must be batched with "
                f"{len(self.input_shape) + 1} dims, got {data.shape}")
        stats: dict[str, float] = {}
        with self._lock:
            for start in range(0, len(data), batch_size):
                batch = data[start:start + batch_size]
                prog = self._program_for(batch.shape[0],
                                         tuple(batch.shape[1:]))
                prog.run_calibrate(batch, stats, pct)
            self._act_scales.clear()
            self._act_scales.update(stats)
        return dict(stats)

    # -- introspection ---------------------------------------------------
    def memory_plan(self, batch: int = 1,
                    sample_shape: tuple[int, ...] | None = None) -> MemoryPlan:
        """The arena assignment the executed program holds at ``batch``
        (scratch already re-sized for the autotuned kernel variants)."""
        with self._lock:
            return self._program_for(
                batch, tuple(sample_shape or self.input_shape)).plan

    def kernel_choices(self, batch: int = 1,
                       sample_shape: tuple[int, ...] | None = None
                       ) -> dict[str, str]:
        """The autotuner's conv-variant decision per conv step for one
        (batch, shape) program — recorded in the program cache, so this
        never re-measures."""
        with self._lock:
            prog = self._program_for(
                batch, tuple(sample_shape or self.input_shape))
        return dict(prog.kernel_choices)

    def schedule_for(self, batch: int = 1,
                     sample_shape: tuple[int, ...] | None = None):
        """The IOS schedule the executed (batch, shape) program follows.

        Returns the attached :class:`~repro.ios.schedule.Schedule` when
        the program runs staged, the solved-but-sequential schedule when
        the DP judged parallelism unprofitable (its ``max_parallelism``
        is 1), and ``None`` when scheduling is disabled for this model
        or process.
        """
        shape = tuple(sample_shape or self.input_shape)
        with self._lock:
            prog = self._program_for(batch, shape)
            if prog.schedule is not None:
                return prog.schedule
            if not (self.schedule_enabled and _sched.scheduling_enabled()):
                return None
            steps = self._steps_for(shape)
        key = _sched.schedule_key(steps, batch, shape, self.dtype,
                                  self.quant.mode)
        return _sched.cached_schedule(key)

    def planned_peak_bytes(self, batch: int = 1) -> int:
        """Arena bytes the compiled program holds at ``batch`` — the
        reuse-aware counterpart of ``graph.analysis.activation_bytes``."""
        return self.memory_plan(batch).peak_bytes

    def fused_step_kinds(self) -> list[str]:
        return [s.kind for s in self.steps]

    def profile(self, x: np.ndarray, repeats: int = 10,
                warmup: int = 2) -> dict:
        """Kernel-category timing of one input shape.

        Returns ``{"total_ms", "per_run_ms", "categories": {name:
        {"ms", "share"}}}`` with categories matching the
        ``repro.profiling`` taxonomy.
        """
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        data = np.asarray(getattr(x, "data", x))
        acc: dict[str, float] = {}
        with self._lock:
            prog = self._program_for(data.shape[0], tuple(data.shape[1:]))
            for _ in range(warmup):
                prog.run(data)
            for _ in range(repeats):
                prog.run_timed(data, acc)
        total = sum(acc.values())
        return {
            "total_ms": total * 1e3,
            "per_run_ms": total * 1e3 / repeats,
            "categories": {
                name: {"ms": sec * 1e3,
                       "share": sec / total if total else 0.0}
                for name, sec in sorted(acc.items(), key=lambda kv: -kv[1])
            },
        }


def compile(model, input_shape: tuple[int, ...] | None = None,
            dtype=np.float32, quant="float32",
            schedule: bool = True) -> CompiledModel:
    """Compile ``model`` for fast inference.

    ``input_shape`` is the nominal per-sample shape ``(C, H, W)``; for an
    :class:`~repro.detect.SPPNetDetector` it defaults to the paper's
    100x100 chip in the architecture's band count.  Other spatial shapes
    still execute (SPP makes the network size-agnostic) — they just bind
    their own programs on first use.

    ``dtype`` selects the arena precision: ``float32`` (default) is the
    deployment configuration; ``float64`` reproduces eager numerics
    bit-for-bit and exists for equivalence testing.

    ``quant`` selects reduced-precision execution (``"float16"`` /
    ``"int8"`` or a :class:`~.quant.QuantPolicy`); see
    :mod:`repro.engine.quant` — in particular
    :func:`~.quant.quantize_with_accuracy_gate`, which subordinates the
    mode choice to the paper's accuracy constraint.

    ``schedule=False`` opts this model out of IOS inter-operator
    scheduling (:mod:`repro.engine.sched`), pinning every program to
    flat sequential execution.
    """
    if input_shape is None:
        config = getattr(model, "config", None)
        if config is None or not hasattr(config, "in_channels"):
            raise ValueError(
                "input_shape is required for models without an "
                "SPPNetConfig-style .config"
            )
        side = max(100, config.min_input_size())
        input_shape = (config.in_channels, side, side)
    return CompiledModel(model, input_shape, dtype=dtype, quant=quant,
                         schedule=schedule)


_COMPILED_CACHE: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def compiled_for(model, dtype=np.float32, quant="float32",
                 schedule: bool = True) -> CompiledModel:
    """Per-model-instance compile cache used by ``backend="engine"``
    call sites (``predict``, ``scan_scene``, the NAS latency evaluator).

    The compiled program snapshots weights at first use; training the
    model afterwards requires a fresh :func:`compile` (or a new model
    object) to pick up the new parameters.
    """
    policy = QuantPolicy.coerce(quant)
    compiled = _COMPILED_CACHE.get(model)
    if (compiled is None or compiled.dtype != np.dtype(dtype)
            or compiled.quant.mode != policy.mode
            or compiled.schedule_enabled != bool(schedule)):
        compiled = compile(model, dtype=dtype, quant=policy,
                           schedule=schedule)
        _COMPILED_CACHE[model] = compiled
    return compiled
