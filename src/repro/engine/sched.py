"""IOS-scheduled execution of compiled programs.

The compiled engine historically replayed its fused step list strictly
sequentially, leaving the SPP pyramid's independent branches (three
``adaptive_pool_flatten`` steps feeding one concat) unexploited.  This
module closes the ROADMAP's "IOS-scheduled engine execution" loop:

1. a program's step list is converted into the :mod:`repro.graph` IR
   (:func:`steps_to_graph`);
2. every step is timed on its *real bound kernel*
   (``_Program.step_costs``) — measured costs, not the analytic
   ``op_cost`` roofline — and wrapped in
   :class:`repro.ios.cost.MeasuredCosts` with honest thread dispatch /
   barrier overheads;
3. the IOS dynamic program (:class:`repro.ios.dp.DPScheduler`) solves
   the latency-optimal stage/group partition against those costs;
4. the compiled program re-plans its arena with stage-barrier
   interference (see :func:`repro.engine.plan.plan_memory`) and executes
   parallel groups concurrently on a small persistent thread pool —
   NumPy GEMMs release the GIL, so threads suffice.

Schedules are sticky per :class:`ScheduleKey` — (program structure,
batch, shape, dtype, quant mode, worker budget) — for the process
lifetime, exactly like the conv-variant autotuner: the first solve wins,
and :func:`snapshot` / :func:`seed` ship solved schedules (as
``Schedule.to_json`` payloads, hash-verified on adoption) to scan pool
workers so they never re-measure or re-solve.

Safety properties:

* concurrent groups are data-independent by IOS construction and write
  disjoint arena slots by planner construction, so scheduled output is
  **byte-identical** to sequential output regardless of interleaving;
* when the DP finds no parallel stage worth its overheads (always the
  case on a 1-core host — the cost model prices parallelism at its LPT
  makespan over the worker budget), the program silently stays on the
  sequential path;
* ``REPRO_IOS_SCHEDULE=off`` disables scheduling globally, and
  ``CompiledModel(..., schedule=False)`` per model.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..graph.ir import Graph, Operator, OpType
from ..ios.baselines import sequential_schedule
from ..ios.cost import MeasuredCosts
from ..ios.dp import DPScheduler
from ..ios.schedule import Schedule
from .fusion import Step

__all__ = [
    "ENV_SCHEDULE",
    "ENV_WORKERS",
    "DISPATCH_US",
    "SYNC_US",
    "ScheduleKey",
    "scheduling_enabled",
    "schedule_workers",
    "steps_to_graph",
    "schedule_key",
    "cached_schedule",
    "solve_schedule",
    "snapshot",
    "seed",
    "clear_cache",
    "stats",
    "group_executor",
]

#: Environment escape hatch: ``off``/``0``/``false`` disables scheduling.
ENV_SCHEDULE = "REPRO_IOS_SCHEDULE"

#: Override the concurrency budget the DP prices stages against
#: (defaults to ``os.cpu_count()``).
ENV_WORKERS = "REPRO_IOS_WORKERS"

#: Cost charged per extra concurrent group (thread-pool submit +
#: wakeup) and per parallel-stage barrier (join).  Deliberately
#: conservative: the DP only parallelizes when the measured branch
#: overlap clears these by a margin, which is what keeps the scheduled
#: engine never-slower than sequential on small programs.
DISPATCH_US = 60.0
SYNC_US = 25.0

_OFF_VALUES = ("off", "0", "false", "no")

#: Step kind -> IR operator type for the scheduling graph.  Fused steps
#: map to their dominant operator (the DP only needs dependency
#: structure; costs are measured, not modeled from the type).
_STEP_OPTYPE = {
    "input": OpType.INPUT,
    "conv": OpType.CONV2D,
    "conv_pool": OpType.CONV2D,
    "linear": OpType.LINEAR,
    "maxpool": OpType.MAXPOOL,
    "maxpool_flatten": OpType.MAXPOOL,
    "adaptive_pool": OpType.ADAPTIVE_MAXPOOL,
    "adaptive_pool_flatten": OpType.ADAPTIVE_MAXPOOL,
    "relu": OpType.RELU,
    "sigmoid": OpType.SIGMOID,
    "softmax": OpType.SOFTMAX,
    "flatten": OpType.FLATTEN,
    "concat": OpType.CONCAT,
    "identity": OpType.IDENTITY,
}


def scheduling_enabled() -> bool:
    """Whether IOS scheduling is on for this process (the escape hatch)."""
    return os.environ.get(ENV_SCHEDULE, "").strip().lower() not in _OFF_VALUES


def schedule_workers() -> int:
    """Concurrency budget the DP prices parallel stages against."""
    forced = os.environ.get(ENV_WORKERS, "").strip()
    if forced:
        workers = int(forced)
        if workers < 1:
            raise ValueError(f"{ENV_WORKERS} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


@dataclass(frozen=True)
class ScheduleKey:
    """Everything a schedule choice may legally depend on.

    ``program`` is a structural fingerprint of the fused step list
    (kinds, names, edges, shapes), so two models with the same fused
    program share one solved schedule — and a model change can never
    adopt a stale plan.
    """

    program: str
    batch: int
    shape: tuple[int, ...]
    dtype: str
    mode: str
    workers: int


_lock = threading.Lock()
_cache: dict[ScheduleKey, Schedule] = {}
_stats = {"solves": 0, "solve_ms": 0.0, "hits": 0, "seeded": 0}


def steps_to_graph(steps: list[Step], name: str = "program") -> Graph:
    """Lower a fused step list into the IR DAG the IOS DP schedules.

    One operator per step, edges from ``Step.inputs`` — the *fused*
    graph, so a ``conv_pool`` step is a single schedulable unit exactly
    as it is a single kernel at runtime.
    """
    graph = Graph(name=name)
    for step in steps:
        op_type = _STEP_OPTYPE.get(step.kind)
        if op_type is None:
            raise ValueError(f"no IR mapping for step kind {step.kind!r}")
        graph.add(Operator(step.name, op_type, tuple(step.inputs),
                           tuple(step.out_shape), dict(step.attrs)))
    graph.validate()
    return graph


def _program_fingerprint(steps: list[Step]) -> str:
    payload = repr([(s.kind, s.name, s.inputs, s.out_shape) for s in steps])
    return hashlib.sha1(payload.encode()).hexdigest()


def schedule_key(steps: list[Step], batch: int, shape: tuple[int, ...],
                 dtype, mode: str, workers: int | None = None) -> ScheduleKey:
    """The sticky-cache key for one (program, batch, shape, quant) plan."""
    return ScheduleKey(
        program=_program_fingerprint(steps),
        batch=int(batch),
        shape=tuple(int(d) for d in shape),
        dtype=str(dtype),
        mode=str(mode),
        workers=int(workers if workers is not None else schedule_workers()),
    )


def cached_schedule(key: ScheduleKey) -> Schedule | None:
    """The already-solved (or seeded) schedule for ``key``, if any."""
    with _lock:
        schedule = _cache.get(key)
        if schedule is not None:
            _stats["hits"] += 1
        return schedule


def solve_schedule(key: ScheduleKey, steps: list[Step],
                   costs_s: dict[str, float],
                   graph_name: str = "program") -> Schedule:
    """Solve (and memoize) the IOS DP for one program under measured costs.

    ``costs_s`` maps step name -> measured seconds (``_Program.
    step_costs`` output).  On any DP failure the sequential schedule is
    cached instead — the guard that keeps a malformed program executing
    correctly rather than not at all.  First writer wins, so concurrent
    builders (and pool workers that raced a seed) agree forever after.
    """
    with _lock:
        cached = _cache.get(key)
        if cached is not None:
            _stats["hits"] += 1
            return cached
    graph = steps_to_graph(steps, name=graph_name)
    costs_us = {name: max(s * 1e6, 1e-3) for name, s in costs_s.items()}
    source = MeasuredCosts(costs_us, workers=key.workers,
                           dispatch_us=DISPATCH_US, sync_us=SYNC_US)
    start = time.perf_counter()
    try:
        schedule = DPScheduler(graph, key.batch, cost_source=source).solve()
    except Exception:
        schedule = sequential_schedule(graph, key.batch)
    solve_ms = (time.perf_counter() - start) * 1e3
    with _lock:
        schedule = _cache.setdefault(key, schedule)
        _stats["solves"] += 1
        _stats["solve_ms"] += solve_ms
    return schedule


def snapshot() -> dict[ScheduleKey, str]:
    """Picklable copy of every solved schedule, serialized via
    ``Schedule.to_json`` (the same payload ``Schedule.save`` persists).

    What the scan worker pool ships alongside a model: a worker that
    adopted the parent's schedules never re-measures step costs or
    re-runs the DP, so its warmup is as cheap as an autotune-seeded
    compile — and the whole pool provably executes one plan (the JSON
    carries ``schedule_hash``, verified on adoption).
    """
    with _lock:
        return {key: schedule.to_json() for key, schedule in _cache.items()}


def seed(decided: dict[ScheduleKey, str]) -> int:
    """Adopt schedules solved in another process; returns how many stuck.

    Payloads are ``Schedule.to_json`` text (hash-verified by
    ``Schedule.from_json`` — a corrupted plan raises instead of silently
    executing a wrong stage structure).  Entries land through
    ``setdefault``: a key this process already solved keeps its sticky
    plan, preserving first-writer-wins determinism.
    """
    parsed = {key: Schedule.from_json(text) for key, text in decided.items()}
    adopted = 0
    with _lock:
        for key, schedule in parsed.items():
            if _cache.setdefault(key, schedule) is schedule:
                adopted += 1
        _stats["seeded"] += adopted
    return adopted


def clear_cache() -> None:
    with _lock:
        _cache.clear()
        for name in _stats:
            _stats[name] = type(_stats[name])()


def stats() -> dict:
    """Copy of the solver counters (DP solves, cumulative solve ms,
    cache hits, seeded adoptions) — what ``bench_ios_sched`` uses to
    prove the second run pays zero DP-solve time."""
    with _lock:
        return dict(_stats)


# ---------------------------------------------------------------------------
# the persistent group executor
# ---------------------------------------------------------------------------

_executor: ThreadPoolExecutor | None = None
_executor_lock = threading.Lock()


def group_executor() -> ThreadPoolExecutor:
    """The process-wide thread pool that runs parallel groups.

    Sized to the host (capped small — groups are coarse units and the
    calling thread always runs one itself).  Created lazily so programs
    that never schedule a parallel stage cost no threads.
    """
    global _executor
    with _executor_lock:
        if _executor is None:
            workers = max(1, min((os.cpu_count() or 1), 8) - 1)
            _executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-ios-group")
        return _executor


def _reset_executor_after_fork() -> None:
    # A forked child inherits the parent's executor object but none of
    # its threads; submitting to it would hang forever.  Drop it so the
    # child lazily builds its own.
    global _executor
    _executor = None


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_reset_executor_after_fork)
