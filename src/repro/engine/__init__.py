"""Compiled inference engine: trace -> fuse -> plan -> execute.

``compile(model)`` lowers a live :class:`~repro.tensor.Module` into a
:class:`CompiledModel`: the module is traced into the :mod:`repro.graph`
IR, adjacent operators are fused (conv+bias+relu, linear+bias+relu,
pool+flatten), weights are packed into GEMM-ready layouts, and every
intermediate is assigned to a recycled arena slot by a liveness-based
memory planner.  The result runs single-image chip inference several
times faster than the eager autograd path while producing equivalent
outputs (``docs/engine.md`` walks through each stage).

The eager path remains the default everywhere; callers opt in with
``backend="engine"`` (``repro.detect.predict`` / ``scan_scene``,
``repro.serve.InferenceService``, ``repro.nas.measure_latency_ms``).
"""

from .compiled import CompiledModel, compile, compiled_for
from .fusion import FusionError, Step, fuse_graph
from .plan import Lifetime, MemoryPlan, plan_memory
from .trace import Traced, TraceError, register_tracer, trace

__all__ = [
    "CompiledModel",
    "compile",
    "compiled_for",
    "FusionError",
    "Step",
    "fuse_graph",
    "Lifetime",
    "MemoryPlan",
    "plan_memory",
    "Traced",
    "TraceError",
    "register_tracer",
    "trace",
]
