"""Compiled inference engine: trace -> fuse -> plan -> execute.

``compile(model)`` lowers a live :class:`~repro.tensor.Module` into a
:class:`CompiledModel`: the module is traced into the :mod:`repro.graph`
IR, adjacent operators are fused (conv+bias+relu, linear+bias+relu,
pool+flatten), weights are packed into GEMM-ready layouts, and every
intermediate is assigned to a recycled arena slot by a liveness-based
memory planner.  The result runs single-image chip inference several
times faster than the eager autograd path while producing equivalent
outputs (``docs/engine.md`` walks through each stage).

The eager path remains the default everywhere; callers opt in with
``backend="engine"`` (``repro.detect.predict`` / ``scan_scene``,
``repro.serve.InferenceService``, ``repro.nas.measure_latency_ms``).

Convolutions dispatch over three kernel variants (plain im2col,
memory-tiled implicit GEMM, Winograd F(2x2,3x3)); a build-time
autotuner (:mod:`.autotune`) benchmarks the eligible variants per conv
geometry and memoizes the winner.  Reduced-precision execution
(float16 weight rounding, int8 per-channel GEMM) lives in
:mod:`.quant` and is selected under the paper's accuracy constraint by
:func:`quantize_with_accuracy_gate`.

Programs additionally pass through the IOS inter-operator scheduler
(:mod:`.sched`): per-step kernel costs are measured on the bound
program, the :mod:`repro.ios` DP partitions the step DAG into stages of
concurrent groups, and profitable schedules execute on a shared thread
pool with a stage-barrier arena plan.  ``REPRO_IOS_SCHEDULE=off``
restores flat sequential execution.
"""

from . import sched
from .autotune import (
    CONV_VARIANTS,
    ConvKey,
    autotune_choices,
    clear_autotune_cache,
    eligible_variants,
)
from .compiled import CompiledModel, compile, compiled_for
from .fusion import FusionError, Step, fuse_graph
from .plan import Lifetime, MemoryPlan, plan_memory
from .quant import (
    QUANT_MODES,
    QuantPolicy,
    quantize_with_accuracy_gate,
)
from .trace import Traced, TraceError, register_tracer, trace

__all__ = [
    "sched",
    "CompiledModel",
    "compile",
    "compiled_for",
    "FusionError",
    "Step",
    "fuse_graph",
    "Lifetime",
    "MemoryPlan",
    "plan_memory",
    "Traced",
    "TraceError",
    "register_tracer",
    "trace",
    "CONV_VARIANTS",
    "ConvKey",
    "eligible_variants",
    "autotune_choices",
    "clear_autotune_cache",
    "QUANT_MODES",
    "QuantPolicy",
    "quantize_with_accuracy_gate",
]
