"""Operator fusion: lower a traced graph into an executable step list.

The fusion pass walks the IR in topological order and greedily merges
producer/consumer pairs whose composition has a cheaper fused kernel than
the two operators run separately:

* ``CONV2D + RELU + MAXPOOL(2x2/s2)`` -> one ``conv_pool`` step: the
  trunk pattern of every SPP-Net candidate.  The conv variants
  (:func:`.kernels.bind_conv`) pool inside the kernel — tiled im2col
  pools each block while it is cache-hot, and a Winograd F(2x2,3x3)
  output tile *is* a 2x2/s2 pool window, so bias+ReLU run on the
  4x-smaller pooled tensor and the full conv output never becomes a
  planned tensor;
* ``CONV2D + RELU``   -> one ``conv`` step (ReLU applied in the GEMM
  output buffer, saving a full activation read+write);
* ``LINEAR + RELU``   -> one ``linear`` step (same argument);
* ``MAXPOOL + FLATTEN`` and ``ADAPTIVE_MAXPOOL + FLATTEN`` -> one
  pooling step that writes the flattened, channel-major vector directly
  (the pooled NCHW intermediate never materializes as a planned tensor).

A fusion only fires when the producer has exactly one consumer and is not
itself a requested graph output — otherwise its value must exist
standalone.  Each :class:`Step` records the IR nodes it covers so tests
and docs can audit what fused.

Steps name their result after the *last* covered node, which keeps the
output-name mapping trivial: requested outputs always survive as step
results (a fused ``relu2`` is the name of the fused conv step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..graph.ir import Graph, OpType
from .kernels import conv_scratch_elems

__all__ = ["Step", "FusionError", "fuse_graph"]


class FusionError(ValueError):
    """Raised when a traced graph cannot be lowered to executable steps."""


@dataclass(frozen=True)
class Step:
    """One executable unit of a compiled program.

    kind      : kernel selector ('input', 'conv', 'conv_pool', 'linear',
                'maxpool', 'maxpool_flatten', 'adaptive_pool',
                'adaptive_pool_flatten', 'relu', 'sigmoid', 'softmax',
                'flatten', 'concat').
    name      : name of the tensor this step produces (= last covered node).
    inputs    : names of consumed tensors.
    out_shape : per-sample shape of the produced tensor.
    attrs     : static kernel attributes (kernel/stride/relu/...).
    covers    : IR node names this step implements, in order.
    scratch_elems : per-sample elements of step-local scratch (im2col
                columns, pooled staging buffer) the memory planner must
                reserve for the duration of this step.
    """

    kind: str
    name: str
    inputs: tuple[str, ...]
    out_shape: tuple[int, ...]
    attrs: Mapping[str, object] = field(default_factory=dict)
    covers: tuple[str, ...] = ()
    scratch_elems: int = 0

    @property
    def out_elems(self) -> int:
        n = 1
        for d in self.out_shape:
            n *= d
        return n


def _elems(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def _sole_successor(graph: Graph, succ: dict[str, list[str]], name: str,
                    op_type: OpType, outputs: set[str]) -> str | None:
    """Name of ``name``'s only consumer if it has type ``op_type`` and
    fusing would not hide a requested output; else ``None``."""
    if name in outputs:
        return None
    consumers = succ[name]
    if len(consumers) != 1:
        return None
    nxt = consumers[0]
    if graph[nxt].op_type is not op_type:
        return None
    return nxt


def fuse_graph(graph: Graph, outputs: tuple[str, ...]) -> list[Step]:
    """Lower ``graph`` to a fused step list producing ``outputs``."""
    succ = graph.successor_map()
    out_set = set(outputs)
    for name in outputs:
        if name not in graph:
            raise FusionError(f"requested output {name!r} is not in the graph")
    consumed: set[str] = set()
    relu_after_pool: set[str] = set()
    steps: list[Step] = []

    for op in graph.nodes():
        if op.name in consumed:
            continue
        t = op.op_type

        if t is OpType.INPUT:
            steps.append(Step("input", op.name, (), op.out_shape,
                              covers=(op.name,)))
            continue

        if t is OpType.CONV2D:
            relu = _sole_successor(graph, succ, op.name, OpType.RELU, out_set)
            covers = (op.name,) if relu is None else (op.name, relu)
            apply_relu = relu is not None
            pool_node = None
            if relu is not None:
                consumed.add(relu)
                pool = _sole_successor(graph, succ, relu, OpType.MAXPOOL,
                                       out_set)
                if pool is not None:
                    pk = int(graph[pool].attr("kernel"))
                    ps = int(graph[pool].attr("stride"))
                    if pk == 2 and ps == 2:
                        # The trunk pattern: fuse the whole
                        # conv->relu->pool chain into one kernel.
                        pool_node = pool
                        consumed.add(pool)
                    else:
                        # ReLU commutes with max pooling, so when the
                        # activated tensor feeds exactly one (unfusable)
                        # MAXPOOL, apply ReLU to the smaller pooled
                        # output instead.
                        apply_relu = False
                        relu_after_pool.add(pool)
            k = int(op.attr("kernel"))
            c_in = int(op.attr("in_channels"))
            p = int(op.attr("padding", 0))
            has_bias = bool(op.attr("bias", True))
            f, ho, wo = op.out_shape
            _, h_in, w_in = graph[op.inputs[0]].out_shape
            attrs = {"kernel": k, "stride": int(op.attr("stride")),
                     "padding": p, "in_channels": c_in, "out_channels": f,
                     "bias": has_bias, "weights": op.name}
            # Scratch is sized for the reference im2col kernel here; the
            # program binder re-sizes it for whichever variant the
            # autotuner selects before memory planning.
            scratch = conv_scratch_elems(
                "im2col", batch=1, h=h_in, w=w_in, c_in=c_in,
                out_channels=f, kernel=k, stride=attrs["stride"],
                padding=p, bias=has_bias, pool=pool_node is not None)
            if pool_node is not None:
                steps.append(Step(
                    "conv_pool", pool_node, op.inputs,
                    graph[pool_node].out_shape,
                    attrs={**attrs, "relu": True,
                           "pool_kernel": 2, "pool_stride": 2,
                           "conv_out": op.out_shape},
                    covers=covers + (pool_node,),
                    scratch_elems=scratch,
                ))
            else:
                steps.append(Step(
                    "conv", covers[-1], op.inputs, op.out_shape,
                    attrs={**attrs, "relu": apply_relu},
                    covers=covers,
                    scratch_elems=scratch,
                ))
            continue

        if t is OpType.LINEAR:
            relu = _sole_successor(graph, succ, op.name, OpType.RELU, out_set)
            covers = (op.name,) if relu is None else (op.name, relu)
            result = covers[-1]
            if relu is not None:
                consumed.add(relu)
            steps.append(Step(
                "linear", result, op.inputs, op.out_shape,
                attrs={"in_features": int(op.attr("in_features")),
                       "relu": relu is not None, "weights": op.name},
                covers=covers,
            ))
            continue

        if t is OpType.MAXPOOL:
            flat = _sole_successor(graph, succ, op.name, OpType.FLATTEN, out_set)
            attrs = {"kernel": int(op.attr("kernel")),
                     "stride": int(op.attr("stride")),
                     "relu": op.name in relu_after_pool}
            if flat is None:
                steps.append(Step("maxpool", op.name, op.inputs, op.out_shape,
                                  attrs=attrs, covers=(op.name,)))
            else:
                consumed.add(flat)
                steps.append(Step(
                    "maxpool_flatten", flat, op.inputs,
                    graph[flat].out_shape, attrs=attrs,
                    covers=(op.name, flat),
                    # pooled NHWC staging buffer before the channel-major
                    # reorder into the flat output.
                    scratch_elems=_elems(op.out_shape),
                ))
            continue

        if t is OpType.ADAPTIVE_MAXPOOL:
            flat = _sole_successor(graph, succ, op.name, OpType.FLATTEN, out_set)
            attrs = {"output_size": int(op.attr("output_size"))}
            if flat is None:
                steps.append(Step("adaptive_pool", op.name, op.inputs,
                                  op.out_shape, attrs=attrs, covers=(op.name,)))
            else:
                consumed.add(flat)
                steps.append(Step(
                    "adaptive_pool_flatten", flat, op.inputs,
                    graph[flat].out_shape, attrs=attrs,
                    covers=(op.name, flat),
                    scratch_elems=_elems(op.out_shape),
                ))
            continue

        if t in (OpType.RELU, OpType.SIGMOID, OpType.SOFTMAX, OpType.FLATTEN,
                 OpType.CONCAT, OpType.IDENTITY):
            steps.append(Step(t.value, op.name, op.inputs, op.out_shape,
                              covers=(op.name,)))
            continue

        raise FusionError(f"no lowering for op type {t} (node {op.name!r})")

    produced = {s.name for s in steps}
    missing = out_set - produced
    if missing:  # pragma: no cover - defensive; fusion preserves outputs
        raise FusionError(f"outputs lost during fusion: {sorted(missing)}")
    return steps
