"""Build-time kernel autotuner for the convolution variants.

The engine carries three interchangeable conv kernels (``im2col``,
``im2col_tiled``, ``winograd23`` — see :func:`.kernels.bind_conv`), and
which one wins depends on the conv geometry, the batch, and the BLAS on
the host: a 4-channel first layer is gather-bound (tiling wins), a
deep 3x3 layer is MAC-bound (Winograd wins), a 1x1 or strided conv only
admits the GEMM forms.  Rather than hardcode a heuristic, each program
build benchmarks the eligible variants once per :class:`ConvKey` —
(batch, geometry, dtype, quantization mode) — on standalone buffers and
records the winner in a process-wide cache, so every later program with
the same key (other batch programs, scan workers, other models sharing a
layer shape) binds the chosen kernel with zero re-measurement.

Determinism: the first measurement for a key is sticky for the process
lifetime, ties break toward the first-listed variant, and
``REPRO_CONV_VARIANT`` force-overrides the choice (where eligible)
without touching the cache — that is what the per-variant benchmark A/B
and the equivalence tests use.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from .kernels import conv_out_hw

__all__ = [
    "CONV_VARIANTS",
    "ENV_VARIANT",
    "ConvKey",
    "eligible_variants",
    "choose_variant",
    "choices",
    "snapshot",
    "seed",
    "clear_cache",
    "autotune_choices",
    "clear_autotune_cache",
]

#: Preference-ordered kernel variants (ties break toward the front).
CONV_VARIANTS = ("im2col", "im2col_tiled", "winograd23")

#: Environment override: force this variant wherever it is eligible.
ENV_VARIANT = "REPRO_CONV_VARIANT"


@dataclass(frozen=True)
class ConvKey:
    """Everything the variant choice may legally depend on."""

    batch: int
    height: int
    width: int
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    padding: int
    pool: bool
    dtype: str
    mode: str = "float32"


_lock = threading.Lock()
_cache: dict[ConvKey, str] = {}
_timings: dict[ConvKey, dict[str, float]] = {}


def eligible_variants(key: ConvKey) -> tuple[str, ...]:
    """Variants that produce correct results for ``key``.

    int8 execution is pinned to the plain im2col kernel: the quantized
    GEMM quantizes the gathered columns, and the Winograd input
    transform would have to run on already-quantized tiles (compounding
    the rounding) while tiling would re-quantize per block.  Winograd
    additionally requires a 3x3 stride-1 convolution.
    """
    if key.mode == "int8":
        return ("im2col",)
    variants = ["im2col", "im2col_tiled"]
    ho, wo = conv_out_hw(key.height, key.width, key.kernel, key.stride,
                         key.padding)
    if key.kernel == 3 and key.stride == 1 and ho >= 1 and wo >= 1:
        variants.append("winograd23")
    return tuple(variants)


def _best_of(repeats: int):
    def bench(fn) -> float:
        fn(None)  # warm: first call touches cold buffers
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(None)
            best = min(best, time.perf_counter() - t0)
        return best
    return bench


def choose_variant(key: ConvKey, make_kernel, *, repeats: int = 2,
                   rounds: int = 3, bench=None,
                   cache: dict | None = None) -> str:
    """Pick (and memoize) the fastest eligible variant for ``key``.

    ``make_kernel(variant)`` must return a bound ``fn(acc=None)`` kernel
    over standalone benchmark buffers; it is only called on a cache
    miss.  Probing interleaves ``rounds`` bench passes across the
    variants and keeps each variant's best pass — an ambient load spike
    degrades every variant's sample in the pass it lands on instead of
    silently flipping a near-tie against whichever variant it hit.
    ``bench`` (callable ``fn -> seconds``) and ``cache`` are injectable
    so tests can rig timings and observe memoization without real
    clocks.
    """
    variants = eligible_variants(key)
    forced = os.environ.get(ENV_VARIANT, "")
    if forced:
        if forced not in CONV_VARIANTS:
            raise ValueError(
                f"{ENV_VARIANT}={forced!r}: unknown variant, expected one "
                f"of {CONV_VARIANTS}")
        if forced in variants:
            return forced  # transient override, never cached
    if len(variants) == 1:
        return variants[0]
    store = _cache if cache is None else cache
    with _lock:
        if key in store:
            return store[key]
    bench = bench or _best_of(repeats)
    kernels = {v: make_kernel(v) for v in variants}
    timings = {v: bench(kernels[v]) for v in variants}
    for _ in range(rounds - 1):
        for v in variants:
            timings[v] = min(timings[v], bench(kernels[v]))
    choice = min(variants, key=timings.__getitem__)
    with _lock:
        # first writer wins so concurrent builders agree forever after
        choice = store.setdefault(key, choice)
        _timings.setdefault(key, timings)
    return choice


def choices() -> dict[ConvKey, dict]:
    """Snapshot of every autotuned decision (with raw timings, seconds)."""
    with _lock:
        return {
            key: {"variant": variant,
                  "timings": dict(_timings.get(key, {}))}
            for key, variant in _cache.items()
        }


def snapshot() -> dict[ConvKey, str]:
    """Picklable copy of the sticky choices (variant only, no timings).

    What the scan worker pool ships alongside a model: measured timings
    differ between the parent and a worker process, so a worker left to
    tune on its own can legally flip a near-tie the other way — and a
    Winograd-vs-GEMM flip changes float rounding, breaking the parallel
    scan's byte-identity contract.  Seeding workers with the parent's
    snapshot pins every process to one set of kernels.
    """
    with _lock:
        return dict(_cache)


def seed(decided: dict[ConvKey, str]) -> None:
    """Adopt variant choices decided in another process.

    Entries land through ``setdefault`` — a key this process already
    measured keeps its sticky choice, preserving the first-writer-wins
    determinism guarantee within the process.
    """
    for key, variant in decided.items():
        if variant not in CONV_VARIANTS:
            raise ValueError(
                f"unknown conv variant {variant!r} for {key}, expected one "
                f"of {CONV_VARIANTS}")
    with _lock:
        for key, variant in decided.items():
            _cache.setdefault(key, variant)


def clear_cache() -> None:
    with _lock:
        _cache.clear()
        _timings.clear()


# Package-level aliases: the bare names read poorly outside this module.
autotune_choices = choices
clear_autotune_cache = clear_cache
