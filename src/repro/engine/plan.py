"""Liveness-based memory planning for compiled programs.

Every step output (and every step-local scratch buffer, e.g. an im2col
column matrix) is assigned to a *slot* in a shared arena.  Slots are
recycled greedily: when a tensor dies — its last consumer has executed —
its slot returns to a free list, and later allocations pick the
best-fitting free slot (growing it if necessary) before opening a new
one.  Graph outputs are pinned alive to the end of the program.

The resulting ``peak_bytes`` (the arena size) is what a deployment
actually holds in activation memory, as opposed to the no-reuse
``naive_bytes`` upper bound that
:func:`repro.graph.analysis.activation_bytes` reports — the planner is
the precise counterpart of that conservative estimate, and its numbers
can be fed to :mod:`repro.gpusim`'s memory checks directly.

Allocation ordering guarantees correctness for in-place-free execution:
a step's output slot (and scratch) is reserved *before* its input slots
are released, so a kernel never reads and writes the same memory.

Concurrent execution (the IOS-scheduled engine, ``repro.engine.sched``)
needs a stronger invariant: two steps in different groups of one stage
may interleave arbitrarily, so nothing either of them reads, writes, or
scratches may share a slot with anything the other touches.  Passing a
stage/group ``stages`` structure to :func:`plan_memory` switches the
planner to *stage-barrier* release semantics — every slot acquired or
consumed during a stage stays allocated until the stage's barrier — which
makes the whole stage one interference set.  That is conservative
(sequential steps inside one group could legally reuse each other's
buffers) but exactly matches what the thread-pool executor can prove.
With ``stages=None`` the planner is byte-identical to the sequential
behavior above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .fusion import Step

__all__ = ["Lifetime", "MemoryPlan", "plan_memory"]


@dataclass(frozen=True)
class Lifetime:
    """Arena residency of one tensor (or scratch buffer).

    birth : index of the step that writes it.
    death : index of the last step that reads it (== birth for scratch;
            ``len(steps) - 1`` for pinned program outputs).
    nbytes: allocation size at the planned batch.
    slot  : arena slot index the tensor was assigned.
    """

    name: str
    birth: int
    death: int
    nbytes: int
    slot: int


@dataclass(frozen=True)
class MemoryPlan:
    """Slot assignment for every tensor a program touches.

    slot_sizes  : final byte size of each arena slot.
    peak_bytes  : arena footprint = ``sum(slot_sizes)``.
    naive_bytes : footprint with no reuse (every tensor held at once).
    """

    batch: int
    itemsize: int
    lifetimes: dict[str, Lifetime]
    slot_sizes: tuple[int, ...]
    peak_bytes: int
    naive_bytes: int

    @property
    def reuse_factor(self) -> float:
        """How many times over the arena is recycled (>= 1.0)."""
        return self.naive_bytes / self.peak_bytes if self.peak_bytes else 1.0


class _Arena:
    def __init__(self) -> None:
        self.sizes: list[int] = []
        self.free: list[int] = []

    def acquire(self, nbytes: int) -> int:
        # Best fit: smallest free slot that already holds nbytes.  If none
        # fits, grow the largest free slot (cheapest total growth).  Only
        # open a fresh slot when nothing is free.
        fitting = [s for s in self.free if self.sizes[s] >= nbytes]
        if fitting:
            slot = min(fitting, key=lambda s: self.sizes[s])
        elif self.free:
            slot = max(self.free, key=lambda s: self.sizes[s])
            self.sizes[slot] = nbytes
        else:
            slot = len(self.sizes)
            self.sizes.append(nbytes)
            self.free.append(slot)
        self.free.remove(slot)
        return slot

    def release(self, slot: int) -> None:
        self.free.append(slot)


def plan_memory(steps: list[Step], outputs: tuple[str, ...], batch: int,
                itemsize: int = 4,
                stages: Sequence[Sequence[Sequence[str]]] | None = None
                ) -> MemoryPlan:
    """Assign every step output and scratch buffer to an arena slot.

    ``stages`` (optional) is a schedule's nested stage -> group -> step
    name structure (``Schedule.stage_groups()``).  When given, the plan
    is computed over the *scheduled* execution order with stage-barrier
    release semantics, so buffers of steps in concurrent groups never
    alias; when ``None``, planning is the original sequential liveness
    pass, unchanged.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if stages is not None:
        return _plan_scheduled(steps, outputs, batch, itemsize, stages)
    last = len(steps) - 1
    death: dict[str, int] = {}
    for i, step in enumerate(steps):
        death[step.name] = i  # a value never read still occupies its slot
        for name in step.inputs:
            death[name] = i
    for name in outputs:
        death[name] = last

    arena = _Arena()
    lifetimes: dict[str, Lifetime] = {}
    slot_of: dict[str, int] = {}
    naive = 0

    for i, step in enumerate(steps):
        out_bytes = batch * step.out_elems * itemsize
        naive += out_bytes
        slot = arena.acquire(out_bytes)
        slot_of[step.name] = slot
        lifetimes[step.name] = Lifetime(step.name, i, death[step.name],
                                        out_bytes, slot)
        if step.scratch_elems:
            s_bytes = batch * step.scratch_elems * itemsize
            naive += s_bytes  # the eager path allocates these fresh per op
            s_slot = arena.acquire(s_bytes)
            lifetimes[f"{step.name}:scratch"] = Lifetime(
                f"{step.name}:scratch", i, i, s_bytes, s_slot)
            arena.release(s_slot)
        for name in step.inputs:
            if death[name] == i:
                arena.release(slot_of[name])
        if death[step.name] == i and step.name not in outputs:
            arena.release(slot)

    return MemoryPlan(
        batch=batch,
        itemsize=itemsize,
        lifetimes=lifetimes,
        slot_sizes=tuple(arena.sizes),
        peak_bytes=sum(arena.sizes),
        naive_bytes=naive,
    )


def _scheduled_order(steps: list[Step],
                     stages: Sequence[Sequence[Sequence[str]]]
                     ) -> tuple[list[Step], list[list[int]]]:
    """Flatten ``steps`` into scheduled execution order.

    Returns ``(ordered_steps, stage_indices)`` where each entry of
    ``stage_indices`` lists the ordered-step indices that execute
    between two barriers.  Input steps (no schedulable work) run first,
    each as its own barrier.  Raises ``ValueError`` if the schedule does
    not cover the compute steps exactly once.
    """
    by_name = {s.name: s for s in steps}
    ordered: list[Step] = []
    stage_indices: list[list[int]] = []
    for step in steps:
        if step.kind == "input":
            stage_indices.append([len(ordered)])
            ordered.append(step)
    seen: set[str] = set()
    for stage in stages:
        members: list[int] = []
        for group in stage:
            for name in group:
                step = by_name.get(name)
                if step is None or step.kind == "input":
                    raise ValueError(
                        f"schedule names unknown or non-compute step {name!r}")
                if name in seen:
                    raise ValueError(f"step {name!r} scheduled twice")
                seen.add(name)
                members.append(len(ordered))
                ordered.append(step)
        stage_indices.append(members)
    compute = {s.name for s in steps if s.kind != "input"}
    missing = compute - seen
    if missing:
        raise ValueError(
            f"schedule does not cover steps: {sorted(missing)}")
    return ordered, stage_indices


def _plan_scheduled(steps: list[Step], outputs: tuple[str, ...], batch: int,
                    itemsize: int,
                    stages: Sequence[Sequence[Sequence[str]]]) -> MemoryPlan:
    """Stage-barrier planning for concurrent execution.

    Identical to the sequential pass except for *when* slots return to
    the free list: every release — consumed inputs, dead outputs, step
    scratch — is deferred to the enclosing stage's barrier, so any two
    tensors touched by concurrently-running steps occupy distinct slots
    by construction.
    """
    ordered, stage_indices = _scheduled_order(steps, stages)
    last = len(ordered) - 1
    death: dict[str, int] = {}
    for i, step in enumerate(ordered):
        death[step.name] = i
        for name in step.inputs:
            death[name] = i
    for name in outputs:
        death[name] = last
    # A tensor stays resident to the barrier of the stage it dies in.
    stage_end: dict[int, int] = {}
    for members in stage_indices:
        for i in members:
            stage_end[i] = members[-1] if members else i
    hold = {name: stage_end[i] for name, i in death.items()}

    arena = _Arena()
    lifetimes: dict[str, Lifetime] = {}
    slot_of: dict[str, int] = {}
    naive = 0

    for members in stage_indices:
        deferred: list[int] = []
        for i in members:
            step = ordered[i]
            out_bytes = batch * step.out_elems * itemsize
            naive += out_bytes
            slot = arena.acquire(out_bytes)
            slot_of[step.name] = slot
            lifetimes[step.name] = Lifetime(step.name, i, hold[step.name],
                                            out_bytes, slot)
            if step.scratch_elems:
                s_bytes = batch * step.scratch_elems * itemsize
                naive += s_bytes
                s_slot = arena.acquire(s_bytes)
                lifetimes[f"{step.name}:scratch"] = Lifetime(
                    f"{step.name}:scratch", i, stage_end[i], s_bytes, s_slot)
                deferred.append(s_slot)
            for name in step.inputs:
                if death[name] == i:
                    deferred.append(slot_of[name])
            if death[step.name] == i and step.name not in outputs:
                deferred.append(slot)
        for slot in deferred:
            arena.release(slot)

    return MemoryPlan(
        batch=batch,
        itemsize=itemsize,
        lifetimes=lifetimes,
        slot_sizes=tuple(arena.sizes),
        peak_bytes=sum(arena.sizes),
        naive_bytes=naive,
    )
