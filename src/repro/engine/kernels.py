"""Inference kernels for the compiled engine.

All kernels operate on *prebound* array views into the arena (shapes are
static per compiled program, so window views, reshapes, and gather
indices are constructed once at bind time) and write through ``out=`` —
the hot path performs no Python-level tape bookkeeping and no transient
allocations beyond NumPy's internal GEMM workspace.

Layout convention: spatial activations live in the arena as **NHWC**.
An im2col GEMM produces ``(N*Ho*Wo, F)`` rows, which reshape for free to
``(N, Ho, Wo, F)`` — NHWC — and ``sliding_window_view`` over the H/W
axes of an NHWC tensor yields trailing ``(C, kh, kw)`` window dims, the
exact row layout of a ``(C*kh*kw, F)`` packed weight matrix.  Keeping
NHWC end-to-end therefore removes the two transposed copies per
convolution that the eager path pays.  Flatten steps reorder to the
eager channel-major order so fully-connected weights apply unchanged.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pack_conv_weight",
    "pack_linear_weight",
    "winograd23_pack_weight",
    "adaptive_bins",
    "conv_im2col",
    "conv_out_hw",
    "conv_scratch_elems",
    "bind_conv",
    "linear",
    "maxpool_shifted",
    "shifted_views",
    "pooled_to_flat",
    "adaptive_pool_nhwc",
    "relu_",
    "sigmoid_into",
    "softmax_rows",
    "concat_rows",
    "strided_windows",
]

#: Output rows per block of the tiled implicit-GEMM variant.  Even (so
#: a fused 2x2/s2 pool consumes whole row pairs) and small enough that a
#: block's im2col columns stay L2-resident on the deployment shapes.
TILE_ROWS = 4


# -- weight packing ------------------------------------------------------

def pack_conv_weight(weight: np.ndarray, bias: np.ndarray | None,
                     dtype: np.dtype) -> np.ndarray:
    """``(F, C, kh, kw)`` [+ bias] -> contiguous ``(kh*kw*C [+1], F)``.

    Window-major row order (kh, kw, C): the matching im2col gather then
    copies runs of ``kw * C`` contiguous input elements per window row,
    instead of strided element-at-a-time picks in the conventional
    channel-major order — a ~6x faster column fill on NHWC activations.

    A bias becomes one extra weight row matched by a ones column in the
    im2col matrix, so the GEMM adds it for free instead of a separate
    full-size broadcast pass over the output.
    """
    rows = weight.transpose(2, 3, 1, 0).reshape(-1, weight.shape[0])
    if bias is not None:
        rows = np.vstack([rows, bias[None, :]])
    return np.ascontiguousarray(rows, dtype=dtype)


def pack_linear_weight(weight: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``(out, in)`` -> contiguous ``(in, out)`` GEMM operand."""
    return np.ascontiguousarray(weight.T, dtype=dtype)


# Winograd F(2x2, 3x3) transform matrices (Lavin & Gray 2016).  BT/AT are
# integer matrices, G carries exact binary fractions, so the weight
# transform is exact in float64 and the runtime transforms are pure
# adds/subtracts.
_WG_G = np.array([[1.0, 0.0, 0.0],
                  [0.5, 0.5, 0.5],
                  [0.5, -0.5, 0.5],
                  [0.0, 0.0, 1.0]])


def winograd23_pack_weight(weight: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``(F, C, 3, 3)`` -> pre-transformed ``(16, C, F)`` operand.

    ``U = G w G^T`` per (f, c) filter, computed in float64 and laid out
    as 16 per-tile-position ``(C, F)`` GEMM operands so the runtime does
    one batched ``np.matmul`` against the transformed input tiles.
    """
    u = np.einsum("ik,fckl,jl->ijcf", _WG_G, weight.astype(np.float64), _WG_G)
    return np.ascontiguousarray(
        u.reshape(16, weight.shape[1], weight.shape[0]), dtype=dtype)


def conv_out_hw(h: int, w: int, k: int, stride: int,
                pad: int) -> tuple[int, int]:
    """Spatial output dims of a convolution."""
    return ((h + 2 * pad - k) // stride + 1,
            (w + 2 * pad - k) // stride + 1)


def _winograd_geometry(ho: int, wo: int) -> tuple[int, int, int, int]:
    """(tile rows, tile cols, padded H, padded W) for F(2x2,3x3)."""
    th, tw = (ho + 1) // 2, (wo + 1) // 2
    return th, tw, 2 * th + 2, 2 * tw + 2


def _tile_rows(ho: int, pool: bool) -> int:
    """Block height of the tiled variant (even when a pool is fused)."""
    if pool:
        return min(TILE_ROWS, max(2, ho - ho % 2))
    return min(TILE_ROWS, ho)


def conv_scratch_elems(variant: str, *, batch: int, h: int, w: int,
                       c_in: int, out_channels: int, kernel: int,
                       stride: int, padding: int, bias: bool,
                       pool: bool) -> int:
    """Per-sample scratch elements a conv variant needs at ``batch``.

    The memory planner multiplies by ``batch``, so buffers that do not
    scale with the batch (the tiled variant's block buffers) are
    amortized with a ceiling division.
    """
    ho, wo = conv_out_hw(h, w, kernel, stride, padding)
    f = out_channels
    width = c_in * kernel * kernel + (1 if bias else 0)
    pad_elems = ((h + 2 * padding) * (w + 2 * padding) * c_in
                 if padding else 0)
    if variant == "im2col":
        elems = ho * wo * width + pad_elems
        if pool:
            elems += ho * wo * f  # full conv output staged before the pool
        return elems
    if variant == "im2col_tiled":
        br = _tile_rows(ho, pool)
        total = br * wo * width
        if pool:
            total += br * wo * f + (br // 2) * wo * f
        return -(-total // batch) + pad_elems
    if variant == "winograd23":
        th, tw, hp, wp = _winograd_geometry(ho, wo)
        staged = padding > 0 or (hp, wp) != (h, w)
        return ((hp * wp * c_in if staged else 0)
                + 17 * th * tw * c_in    # 16 transform planes + 1 temp
                + 16 * th * tw * f)      # GEMM output / inverse transform
    raise ValueError(f"unknown conv variant {variant!r}")


def adaptive_bins(in_size: int, out_size: int) -> tuple[np.ndarray, int]:
    """Gather indices for adaptive max pooling, PyTorch bin convention.

    Returns ``(idx, max_bin)`` where ``idx[i, j]`` is the ``j``-th source
    index of output bin ``i`` (bins are ``[floor(i*n/out), ceil((i+1)*n/out))``).
    Ragged bins are padded by clamping to the bin's last element —
    duplicates are harmless under ``max``.
    """
    i = np.arange(out_size)
    starts = (i * in_size) // out_size
    ends = -((-(i + 1) * in_size) // out_size)
    max_bin = int((ends - starts).max())
    idx = starts[:, None] + np.arange(max_bin)[None, :]
    return np.minimum(idx, ends[:, None] - 1), max_bin


def strided_windows(x: np.ndarray, k: int, stride: int) -> np.ndarray:
    """``(N, H, W, C)`` -> window-major view ``(N, Ho, Wo, k, k, C)``.

    The trailing ``(k, k, C)`` dims have strides ``(W*C, C, 1)``, so the
    last two flatten to contiguous runs of ``k * C`` elements — the
    layout :func:`pack_conv_weight` expects and the one ``np.copyto``
    streams fastest.
    """
    win = sliding_window_view(x, (k, k), axis=(1, 2))
    return win[:, ::stride, ::stride].transpose(0, 1, 2, 4, 5, 3)


def shifted_views(x: np.ndarray, k: int, stride: int,
                  ho: int, wo: int) -> list[np.ndarray]:
    """The ``k*k`` strided NHWC views whose elementwise max is the pooled
    output — each view keeps C contiguous, unlike a window-axis reduce."""
    return [
        x[:, i:i + stride * (ho - 1) + 1:stride,
          j:j + stride * (wo - 1) + 1:stride, :]
        for i in range(k) for j in range(k)
    ]


# -- compute kernels -----------------------------------------------------

def conv_im2col(win: np.ndarray, cols: np.ndarray, cols2d: np.ndarray,
                ones_col: np.ndarray | None, w_pack: np.ndarray,
                out2d: np.ndarray, relu: bool) -> None:
    """Fused conv(+bias)(+relu): gather windows, one GEMM, activate in place.

    win      : strided window view (N, Ho, Wo, kh, kw, C) of the NHWC input.
    cols     : scratch with win's shape (the window part of the im2col
               buffer; its rows may be strided when a bias column follows).
    cols2d   : the full im2col scratch as (N*Ho*Wo, kh*kw*C [+1]).
    ones_col : the trailing bias column of cols2d, or None when biasless.
               Refilled every call — arena slots are recycled between steps.
    out2d    : output viewed as (N*Ho*Wo, F) — i.e. NHWC.
    """
    np.copyto(cols, win)
    if ones_col is not None:
        ones_col.fill(1.0)
    np.dot(cols2d, w_pack, out=out2d)
    if relu:
        np.maximum(out2d, 0.0, out=out2d)


def linear(in2d: np.ndarray, w_pack: np.ndarray, bias: np.ndarray | None,
           out2d: np.ndarray, relu: bool) -> None:
    """Fused affine(+relu): ``out = max(x @ W_pack + b, 0)``."""
    np.dot(in2d, w_pack, out=out2d)
    if bias is not None:
        np.add(out2d, bias, out=out2d)
    if relu:
        np.maximum(out2d, 0.0, out=out2d)


def maxpool_shifted(views: list[np.ndarray], out: np.ndarray) -> None:
    """Elementwise max of the :func:`shifted_views` into ``out``."""
    np.copyto(out, views[0])
    for view in views[1:]:
        np.maximum(out, view, out=out)


def pooled_to_flat(pooled_nhwc: np.ndarray, out_nchw: np.ndarray) -> None:
    """Reorder pooled NHWC into the flat output's channel-major NCHW view."""
    np.copyto(out_nchw, pooled_nhwc.transpose(0, 3, 1, 2))


def adaptive_pool_nhwc(x: np.ndarray, ridx: np.ndarray, cidx: np.ndarray,
                       out: np.ndarray) -> None:
    """Adaptive max pool NHWC ``(N, H, W, C)`` -> ``(N, out, out, C)``.

    When bins tile the input exactly, a contiguous reshape reduces with
    zero gather cost; otherwise clamped gather indices fetch (possibly
    overlapping) bins.
    """
    n, h, w, c = x.shape
    lv = out.shape[1]
    if h % lv == 0 and w % lv == 0:
        x.reshape(n, lv, h // lv, lv, w // lv, c).max(axis=(2, 4), out=out)
    else:
        # gathered: (N, lv, bh, lv, bw, C)
        gathered = x[:, ridx[:, :, None, None], cidx[None, None, :, :], :]
        gathered.max(axis=(2, 4), out=out)


def relu_(x: np.ndarray, out: np.ndarray) -> None:
    np.maximum(x, 0.0, out=out)


def sigmoid_into(x: np.ndarray, out: np.ndarray) -> None:
    np.negative(x, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.reciprocal(out, out=out)


def softmax_rows(x: np.ndarray, out: np.ndarray) -> None:
    np.subtract(x, x.max(axis=1, keepdims=True), out=out)
    np.exp(out, out=out)
    out /= out.sum(axis=1, keepdims=True)


def concat_rows(parts: list[np.ndarray], out: np.ndarray, axis: int) -> None:
    offset = 0
    for part in parts:
        width = part.shape[axis]
        sl = [slice(None)] * out.ndim
        sl[axis] = slice(offset, offset + width)
        np.copyto(out[tuple(sl)], part)
        offset += width


# -- conv variant binders ------------------------------------------------
#
# Each binder closes over prebound views and returns ``fn(acc=None)``.
# With ``acc`` a dict, per-phase wall time is accumulated under the
# profiling taxonomy (gather/staging -> "memops", arithmetic -> "conv",
# fused pooling -> "pooling") so run_timed() can attribute fused kernels
# at sub-step granularity; with ``acc=None`` the phase list runs with no
# timing overhead.

import time as _time  # noqa: E402  (kernel-local, keeps module header lean)


def _compose(phases: list[tuple[str, object]]):
    def fn(acc=None, phases=phases):
        if acc is None:
            for _, sub in phases:
                sub()
            return
        for category, sub in phases:
            t0 = _time.perf_counter()
            sub()
            acc[category] = (acc.get(category, 0.0)
                            + _time.perf_counter() - t0)
    return fn


def _pad_phase(src: np.ndarray, scratch: np.ndarray, offset: int, pad: int):
    """Stage ``src`` into a zero-bordered buffer; returns (phase, padded,
    next offset).  Slots recycle between steps, so the border is re-zeroed
    every call (one cheap fill beats four edge writes in NumPy)."""
    n, h, w, c = src.shape
    hp, wp = h + 2 * pad, w + 2 * pad
    padded = scratch[offset:offset + n * hp * wp * c].reshape(n, hp, wp, c)
    interior = padded[:, pad:pad + h, pad:pad + w]

    def stage(padded=padded, interior=interior, src=src):
        padded.fill(0.0)
        np.copyto(interior, src)
    return ("memops", stage), padded, offset + n * hp * wp * c


def _pool2x2_views(stage: np.ndarray, ph: int, pw: int):
    """The four shifted views of a conv-output staging tensor whose
    elementwise max is the fused 2x2/s2 pooled output."""
    return shifted_views(stage, 2, 2, ph, pw)


def _bind_conv_im2col(src, out, scratch, w_pack, k, stride, pad, relu, pool):
    n, h, w, c = src.shape
    ho, wo = conv_out_hw(h, w, k, stride, pad)
    f = out.shape[-1]
    kkc = c * k * k
    width = w_pack.shape[0]
    has_bias = width == kkc + 1
    phases: list[tuple[str, object]] = []
    offset = 0
    if pad:
        phase, padded, offset = _pad_phase(src, scratch, offset, pad)
        phases.append(phase)
        win = strided_windows(padded, k, stride)
    else:
        win = strided_windows(src, k, stride)
    cols2d = scratch[offset:offset + n * ho * wo * width].reshape(
        n * ho * wo, width)
    offset += n * ho * wo * width
    cols = cols2d[:, :kkc].reshape(n, ho, wo, k, k, c)
    assert np.shares_memory(cols, cols2d)  # axis-split reshape never copies
    ones_col = cols2d[:, -1] if has_bias else None

    def gather(win=win, cols=cols, ones_col=ones_col):
        np.copyto(cols, win)
        if ones_col is not None:
            ones_col.fill(1.0)
    phases.append(("memops", gather))

    if pool is None:
        out2d = out.reshape(n * ho * wo, f)

        def gemm(cols2d=cols2d, w_pack=w_pack, out2d=out2d, relu=relu):
            np.dot(cols2d, w_pack, out=out2d)
            if relu:
                np.maximum(out2d, 0.0, out=out2d)
        phases.append(("conv", gemm))
        return _compose(phases)

    stage = scratch[offset:offset + n * ho * wo * f].reshape(n, ho, wo, f)
    stage2d = stage.reshape(n * ho * wo, f)

    def gemm(cols2d=cols2d, w_pack=w_pack, stage2d=stage2d):
        np.dot(cols2d, w_pack, out=stage2d)
    phases.append(("conv", gemm))

    ph, pw = out.shape[1], out.shape[2]
    views = _pool2x2_views(stage, ph, pw)

    def pool_fn(views=views, out=out, relu=relu):
        maxpool_shifted(views, out)
        if relu:
            np.maximum(out, 0.0, out=out)
    phases.append(("pooling", pool_fn))
    return _compose(phases)


def _bind_conv_tiled(src, out, scratch, w_pack, k, stride, pad, relu, pool):
    n, h, w, c = src.shape
    ho, wo = conv_out_hw(h, w, k, stride, pad)
    f = out.shape[-1]
    kkc = c * k * k
    width = w_pack.shape[0]
    has_bias = width == kkc + 1
    br = _tile_rows(ho, pool is not None)
    phases: list[tuple[str, object]] = []
    offset = 0
    if pad:
        phase, padded, offset = _pad_phase(src, scratch, offset, pad)
        phases.append(phase)
        win = strided_windows(padded, k, stride)
    else:
        win = strided_windows(src, k, stride)

    bcols = scratch[offset:offset + br * wo * width].reshape(br * wo, width)
    offset += br * wo * width
    ones_col = bcols[:, -1] if has_bias else None
    if pool is not None:
        bstage = scratch[offset:offset + br * wo * f].reshape(br, wo, f)
        offset += br * wo * f
        rowbuf = scratch[offset:offset + (br // 2) * wo * f].reshape(
            br // 2, wo, f)
        offset += (br // 2) * wo * f
        ph, pw = out.shape[1], out.shape[2]

    # Prebind every (batch item, row block): tuples of views, so the hot
    # loop is pure NumPy calls over L2-resident buffers — the full
    # (N*Ho*Wo, C*k*k) im2col matrix never materializes.
    blocks = []
    for b in range(n):
        for r0 in range(0, ho, br):
            r1 = min(r0 + br, ho)
            rows = r1 - r0
            cb = bcols[:rows * wo]
            cb_win = cb[:, :kkc].reshape(1, rows, wo, k, k, c)
            src_win = win[b:b + 1, r0:r1]
            if pool is None:
                tgt = out[b].reshape(ho * wo, f)[r0 * wo:r1 * wo]
                blocks.append((cb, cb_win, src_win, tgt))
            else:
                pr = min(rows // 2, ph - r0 // 2)
                if pr <= 0 and rows > 0:
                    continue  # trailing rows past the last pool window
                blocks.append((
                    cb, cb_win, src_win,
                    bstage.reshape(br * wo, f)[:rows * wo],
                    bstage[0:2 * pr:2], bstage[1:2 * pr:2], rowbuf[:pr],
                    out[b, r0 // 2:r0 // 2 + pr],
                ))

    if pool is None:
        def run(blocks=blocks, w_pack=w_pack, ones_col=ones_col,
                out=out, relu=relu):
            if ones_col is not None:
                ones_col.fill(1.0)
            for cb, cb_win, src_win, tgt in blocks:
                np.copyto(cb_win, src_win)
                np.dot(cb, w_pack, out=tgt)
            if relu:
                np.maximum(out, 0.0, out=out)
    else:
        def run(blocks=blocks, w_pack=w_pack, ones_col=ones_col,
                out=out, relu=relu, pw=pw):
            if ones_col is not None:
                ones_col.fill(1.0)
            for (cb, cb_win, src_win, gtgt, even, odd, rbuf,
                 ptgt) in blocks:
                np.copyto(cb_win, src_win)
                np.dot(cb, w_pack, out=gtgt)
                np.maximum(even, odd, out=rbuf)
                np.maximum(rbuf[:, 0:2 * pw:2], rbuf[:, 1:2 * pw:2],
                           out=ptgt)
            if relu:
                np.maximum(out, 0.0, out=out)
    phases.append(("conv", run))
    return _compose(phases)


def _bind_conv_winograd23(src, out, scratch, wg_pack, pad, relu, pool):
    u, bias = wg_pack
    n, h, w, c = src.shape
    ho, wo = conv_out_hw(h, w, 3, 1, pad)
    f = u.shape[2]
    th, tw, hp, wp = _winograd_geometry(ho, wo)
    nsp = n * th * tw
    phases: list[tuple[str, object]] = []
    offset = 0
    staged = pad > 0 or (hp, wp) != (h, w)
    if staged:
        xp = scratch[offset:offset + n * hp * wp * c].reshape(n, hp, wp, c)
        offset += n * hp * wp * c
        interior = xp[:, pad:pad + h, pad:pad + w]

        def stage_fn(xp=xp, interior=interior, src=src):
            xp.fill(0.0)
            np.copyto(interior, src)
        phases.append(("memops", stage_fn))
    else:
        xp = src

    T = scratch[offset:offset + 16 * nsp * c].reshape(4, 4, n, th, tw, c)
    offset += 16 * nsp * c
    temp = scratch[offset:offset + nsp * c].reshape(n, th, tw, c)
    offset += nsp * c
    M = scratch[offset:offset + 16 * nsp * f].reshape(16, nsp, f)
    M4 = M.reshape(4, 4, nsp, f)
    V = T.reshape(16, nsp, c)
    # 4x4 input tiles on the stride-2 grid, as direct strided slices of
    # the (padded) input — no sliding-window gather is materialized.
    d = [[xp[:, a:a + 2 * th:2, b:b + 2 * tw:2, :] for b in range(4)]
         for a in range(4)]

    def transform(d=d, T=T, temp=temp, V=V, u=u, M=M, M4=M4):
        # rows: T[i][b] = (BT @ d)[i][b] — BT is +-1, pure add/sub
        for b in range(4):
            np.subtract(d[0][b], d[2][b], out=T[0, b])
            np.add(d[1][b], d[2][b], out=T[1, b])
            np.subtract(d[2][b], d[1][b], out=T[2, b])
            np.subtract(d[1][b], d[3][b], out=T[3, b])
        # cols in place: V[i] = T[i] @ B, one saved plane via `temp`
        for i in range(4):
            np.copyto(temp, T[i, 1])
            np.subtract(T[i, 0], T[i, 2], out=T[i, 0])
            np.add(temp, T[i, 2], out=T[i, 1])
            np.subtract(T[i, 2], temp, out=T[i, 2])
            np.subtract(temp, T[i, 3], out=T[i, 3])
        np.matmul(V, u, out=M)
        # inverse transform in place: rows of AT M, then the four
        # 2x2-quadrant planes land in the freed M4[2]/M4[3] rows
        for j in range(4):
            np.add(M4[0, j], M4[1, j], out=M4[0, j])
            M4[0, j] += M4[2, j]
            np.subtract(M4[1, j], M4[2, j], out=M4[1, j])
            M4[1, j] -= M4[3, j]
        np.add(M4[0, 0], M4[0, 1], out=M4[2, 0])
        M4[2, 0] += M4[0, 2]
        np.subtract(M4[0, 1], M4[0, 2], out=M4[2, 1])
        M4[2, 1] -= M4[0, 3]
        np.add(M4[1, 0], M4[1, 1], out=M4[2, 2])
        M4[2, 2] += M4[1, 2]
        np.subtract(M4[1, 1], M4[1, 2], out=M4[2, 3])
        M4[2, 3] -= M4[1, 3]
    phases.append(("conv", transform))

    quads = [M4[2, i].reshape(n, th, tw, f) for i in range(4)]
    if pool is not None:
        # A 2x2/s2 pool window is exactly one output tile: max the four
        # quadrant planes, then bias+ReLU on the 4x-smaller pooled crop.
        ph, pw = out.shape[1], out.shape[2]
        pooled = quads[0][:, :ph, :pw]

        def pool_fn(quads=quads, pooled=pooled, out=out, bias=bias,
                    relu=relu):
            np.maximum(quads[0], quads[1], out=quads[0])
            np.maximum(quads[2], quads[3], out=quads[2])
            np.maximum(quads[0], quads[2], out=quads[0])
            if bias is not None:
                np.add(pooled, bias, out=out)
            else:
                np.copyto(out, pooled)
            if relu:
                np.maximum(out, 0.0, out=out)
        phases.append(("pooling", pool_fn))
        return _compose(phases)

    writes = []
    for (a, b), quad in zip(((0, 0), (0, 1), (1, 0), (1, 1)), quads):
        rows, colw = (ho - a + 1) // 2, (wo - b + 1) // 2
        writes.append((quad[:, :rows, :colw], out[:, a::2, b::2]))

    def scatter(writes=writes, out=out, bias=bias, relu=relu):
        for quad, tgt in writes:
            if bias is not None:
                np.add(quad, bias, out=tgt)
            else:
                np.copyto(tgt, quad)
        if relu:
            np.maximum(out, 0.0, out=out)
    phases.append(("conv", scatter))
    return _compose(phases)


def bind_conv(variant: str, *, src: np.ndarray, out: np.ndarray,
              scratch: np.ndarray, k: int, stride: int, pad: int,
              relu: bool, pool: tuple[int, int] | None = None,
              w_pack: np.ndarray | None = None,
              wg_pack: tuple | None = None):
    """Bind one conv (optionally with a fused 2x2/s2 max pool) to views.

    variant : 'im2col' (one-shot gather + GEMM), 'im2col_tiled'
              (block-row implicit GEMM, cache-resident columns), or
              'winograd23' (F(2x2,3x3), 2.25x fewer GEMM MACs).
    src     : NHWC input view; out: NHWC output view (pooled dims when
              ``pool`` is set); scratch: flat per-program scratch slice
              sized by :func:`conv_scratch_elems` for this variant.
    w_pack  : im2col-packed weights (bias ones-column layout) for the
              GEMM variants; wg_pack: ``(U, bias)`` for winograd23.
    Returns ``fn(acc=None)`` — see the phase-attribution note above.
    """
    if pool is not None and tuple(pool) != (2, 2):
        raise ValueError("only 2x2/stride-2 pools fuse into conv kernels")
    if variant == "im2col":
        return _bind_conv_im2col(src, out, scratch, w_pack, k, stride, pad,
                                 relu, pool)
    if variant == "im2col_tiled":
        return _bind_conv_tiled(src, out, scratch, w_pack, k, stride, pad,
                                relu, pool)
    if variant == "winograd23":
        if k != 3 or stride != 1:
            raise ValueError("winograd23 requires 3x3 stride-1 convolution")
        return _bind_conv_winograd23(src, out, scratch, wg_pack, pad, relu,
                                     pool)
    raise ValueError(f"unknown conv variant {variant!r}")
