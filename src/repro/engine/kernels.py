"""Inference kernels for the compiled engine.

All kernels operate on *prebound* array views into the arena (shapes are
static per compiled program, so window views, reshapes, and gather
indices are constructed once at bind time) and write through ``out=`` —
the hot path performs no Python-level tape bookkeeping and no transient
allocations beyond NumPy's internal GEMM workspace.

Layout convention: spatial activations live in the arena as **NHWC**.
An im2col GEMM produces ``(N*Ho*Wo, F)`` rows, which reshape for free to
``(N, Ho, Wo, F)`` — NHWC — and ``sliding_window_view`` over the H/W
axes of an NHWC tensor yields trailing ``(C, kh, kw)`` window dims, the
exact row layout of a ``(C*kh*kw, F)`` packed weight matrix.  Keeping
NHWC end-to-end therefore removes the two transposed copies per
convolution that the eager path pays.  Flatten steps reorder to the
eager channel-major order so fully-connected weights apply unchanged.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "pack_conv_weight",
    "pack_linear_weight",
    "adaptive_bins",
    "conv_im2col",
    "linear",
    "maxpool_shifted",
    "shifted_views",
    "pooled_to_flat",
    "adaptive_pool_nhwc",
    "relu_",
    "sigmoid_into",
    "softmax_rows",
    "concat_rows",
    "strided_windows",
]


# -- weight packing ------------------------------------------------------

def pack_conv_weight(weight: np.ndarray, bias: np.ndarray | None,
                     dtype: np.dtype) -> np.ndarray:
    """``(F, C, kh, kw)`` [+ bias] -> contiguous ``(kh*kw*C [+1], F)``.

    Window-major row order (kh, kw, C): the matching im2col gather then
    copies runs of ``kw * C`` contiguous input elements per window row,
    instead of strided element-at-a-time picks in the conventional
    channel-major order — a ~6x faster column fill on NHWC activations.

    A bias becomes one extra weight row matched by a ones column in the
    im2col matrix, so the GEMM adds it for free instead of a separate
    full-size broadcast pass over the output.
    """
    rows = weight.transpose(2, 3, 1, 0).reshape(-1, weight.shape[0])
    if bias is not None:
        rows = np.vstack([rows, bias[None, :]])
    return np.ascontiguousarray(rows, dtype=dtype)


def pack_linear_weight(weight: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``(out, in)`` -> contiguous ``(in, out)`` GEMM operand."""
    return np.ascontiguousarray(weight.T, dtype=dtype)


def adaptive_bins(in_size: int, out_size: int) -> tuple[np.ndarray, int]:
    """Gather indices for adaptive max pooling, PyTorch bin convention.

    Returns ``(idx, max_bin)`` where ``idx[i, j]`` is the ``j``-th source
    index of output bin ``i`` (bins are ``[floor(i*n/out), ceil((i+1)*n/out))``).
    Ragged bins are padded by clamping to the bin's last element —
    duplicates are harmless under ``max``.
    """
    i = np.arange(out_size)
    starts = (i * in_size) // out_size
    ends = -((-(i + 1) * in_size) // out_size)
    max_bin = int((ends - starts).max())
    idx = starts[:, None] + np.arange(max_bin)[None, :]
    return np.minimum(idx, ends[:, None] - 1), max_bin


def strided_windows(x: np.ndarray, k: int, stride: int) -> np.ndarray:
    """``(N, H, W, C)`` -> window-major view ``(N, Ho, Wo, k, k, C)``.

    The trailing ``(k, k, C)`` dims have strides ``(W*C, C, 1)``, so the
    last two flatten to contiguous runs of ``k * C`` elements — the
    layout :func:`pack_conv_weight` expects and the one ``np.copyto``
    streams fastest.
    """
    win = sliding_window_view(x, (k, k), axis=(1, 2))
    return win[:, ::stride, ::stride].transpose(0, 1, 2, 4, 5, 3)


def shifted_views(x: np.ndarray, k: int, stride: int,
                  ho: int, wo: int) -> list[np.ndarray]:
    """The ``k*k`` strided NHWC views whose elementwise max is the pooled
    output — each view keeps C contiguous, unlike a window-axis reduce."""
    return [
        x[:, i:i + stride * (ho - 1) + 1:stride,
          j:j + stride * (wo - 1) + 1:stride, :]
        for i in range(k) for j in range(k)
    ]


# -- compute kernels -----------------------------------------------------

def conv_im2col(win: np.ndarray, cols: np.ndarray, cols2d: np.ndarray,
                ones_col: np.ndarray | None, w_pack: np.ndarray,
                out2d: np.ndarray, relu: bool) -> None:
    """Fused conv(+bias)(+relu): gather windows, one GEMM, activate in place.

    win      : strided window view (N, Ho, Wo, kh, kw, C) of the NHWC input.
    cols     : scratch with win's shape (the window part of the im2col
               buffer; its rows may be strided when a bias column follows).
    cols2d   : the full im2col scratch as (N*Ho*Wo, kh*kw*C [+1]).
    ones_col : the trailing bias column of cols2d, or None when biasless.
               Refilled every call — arena slots are recycled between steps.
    out2d    : output viewed as (N*Ho*Wo, F) — i.e. NHWC.
    """
    np.copyto(cols, win)
    if ones_col is not None:
        ones_col.fill(1.0)
    np.dot(cols2d, w_pack, out=out2d)
    if relu:
        np.maximum(out2d, 0.0, out=out2d)


def linear(in2d: np.ndarray, w_pack: np.ndarray, bias: np.ndarray | None,
           out2d: np.ndarray, relu: bool) -> None:
    """Fused affine(+relu): ``out = max(x @ W_pack + b, 0)``."""
    np.dot(in2d, w_pack, out=out2d)
    if bias is not None:
        np.add(out2d, bias, out=out2d)
    if relu:
        np.maximum(out2d, 0.0, out=out2d)


def maxpool_shifted(views: list[np.ndarray], out: np.ndarray) -> None:
    """Elementwise max of the :func:`shifted_views` into ``out``."""
    np.copyto(out, views[0])
    for view in views[1:]:
        np.maximum(out, view, out=out)


def pooled_to_flat(pooled_nhwc: np.ndarray, out_nchw: np.ndarray) -> None:
    """Reorder pooled NHWC into the flat output's channel-major NCHW view."""
    np.copyto(out_nchw, pooled_nhwc.transpose(0, 3, 1, 2))


def adaptive_pool_nhwc(x: np.ndarray, ridx: np.ndarray, cidx: np.ndarray,
                       out: np.ndarray) -> None:
    """Adaptive max pool NHWC ``(N, H, W, C)`` -> ``(N, out, out, C)``.

    When bins tile the input exactly, a contiguous reshape reduces with
    zero gather cost; otherwise clamped gather indices fetch (possibly
    overlapping) bins.
    """
    n, h, w, c = x.shape
    lv = out.shape[1]
    if h % lv == 0 and w % lv == 0:
        x.reshape(n, lv, h // lv, lv, w // lv, c).max(axis=(2, 4), out=out)
    else:
        # gathered: (N, lv, bh, lv, bw, C)
        gathered = x[:, ridx[:, :, None, None], cidx[None, None, :, :], :]
        gathered.max(axis=(2, 4), out=out)


def relu_(x: np.ndarray, out: np.ndarray) -> None:
    np.maximum(x, 0.0, out=out)


def sigmoid_into(x: np.ndarray, out: np.ndarray) -> None:
    np.negative(x, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.reciprocal(out, out=out)


def softmax_rows(x: np.ndarray, out: np.ndarray) -> None:
    np.subtract(x, x.max(axis=1, keepdims=True), out=out)
    np.exp(out, out=out)
    out /= out.sum(axis=1, keepdims=True)


def concat_rows(parts: list[np.ndarray], out: np.ndarray, axis: int) -> None:
    offset = 0
    for part in parts:
        width = part.shape[axis]
        sl = [slice(None)] * out.ndim
        sl[axis] = slice(offset, offset + width)
        np.copyto(out[tuple(sl)], part)
        offset += width
