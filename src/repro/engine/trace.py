"""Trace :mod:`repro.tensor` modules into the :mod:`repro.graph` IR.

Tracing is structural: the tracer walks the module tree (the same walk
``Module.modules()`` performs) and emits one IR operator per layer,
propagating per-sample shapes symbolically.  The result is the exact
graph family :func:`repro.graph.build_sppnet_graph` produces from an
:class:`~repro.arch.SPPNetConfig`, but obtained from a *live* model —
with its trained weights captured alongside each node — so the compiled
engine, the IOS scheduler, and the gpusim cost model all consume one IR.

Inference-time simplifications are applied during the trace:

* ``Dropout`` disappears (identity in eval mode);
* ``BatchNorm2d`` is folded into the preceding convolution's weights
  (running-statistics semantics — the standard deployment constant fold
  the :class:`~repro.arch.SPPNetConfig` docs promise);
* the detector's box head records an explicit ``SIGMOID`` node so the
  traced outputs match ``SPPNetDetector.forward`` exactly.

Support for new module types is open: register a handler with
:func:`register_tracer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graph.ir import Graph, Operator, OpType
from ..tensor import functional as F
from ..tensor.modules import (
    AdaptiveMaxPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    SpatialPyramidPooling,
)

__all__ = ["TraceError", "Traced", "trace", "register_tracer"]


class TraceError(ValueError):
    """Raised when a module (or module arrangement) cannot be traced."""


@dataclass(frozen=True)
class Traced:
    """Result of tracing a module.

    graph   : the IR DAG (validated, topologically ordered).
    params  : node name -> {"weight": ..., "bias": ...} ndarrays
              (references to the live parameters at trace time, with any
              BatchNorm folding already applied).
    outputs : ordered names of the nodes whose values the module returns.
    """

    graph: Graph
    params: dict[str, dict[str, np.ndarray]]
    outputs: tuple[str, ...]


class _Tracer:
    """Mutable trace state: the growing graph plus naming counters."""

    def __init__(self, name: str) -> None:
        self.graph = Graph(name=name)
        self.params: dict[str, dict[str, np.ndarray]] = {}
        self._counts: dict[str, int] = {}

    def fresh(self, kind: str) -> str:
        # Structural counters: the same module traced at a different
        # input size yields identical node names, which lets compiled
        # programs share packed weights across spatial shapes.
        self._counts[kind] = self._counts.get(kind, 0) + 1
        return f"{kind}{self._counts[kind]}"

    def emit(self, name: str, op_type: OpType, inputs: tuple[str, ...],
             out_shape: tuple[int, ...], attrs: dict | None = None,
             params: dict[str, np.ndarray] | None = None) -> str:
        self.graph.add(Operator(name, op_type, inputs, out_shape, attrs or {}))
        if params:
            self.params[name] = params
        return name

    # -- dispatch --------------------------------------------------------
    def trace_module(self, module: Module, prev: str,
                     shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
        """Emit IR for ``module`` applied to node ``prev``; returns the
        output node name and its per-sample shape."""
        for cls in type(module).__mro__:
            handler = _HANDLERS.get(cls)
            if handler is not None:
                return handler(self, module, prev, shape)
        raise TraceError(
            f"cannot trace module of type {type(module).__name__}; "
            f"register a handler with repro.engine.register_tracer"
        )


_HANDLERS: dict[type, Callable] = {}


def register_tracer(module_type: type) -> Callable:
    """Class decorator registering a trace handler for ``module_type``.

    The handler signature is ``fn(tracer, module, prev, shape) ->
    (name, shape)`` where ``shape`` is the per-sample input shape.
    """

    def deco(fn: Callable) -> Callable:
        _HANDLERS[module_type] = fn
        return fn

    return deco


def _spatial(shape: tuple[int, ...], module: Module) -> tuple[int, int, int]:
    if len(shape) != 3:
        raise TraceError(
            f"{type(module).__name__} expects a (C, H, W) input, got {shape}"
        )
    return shape  # type: ignore[return-value]


@register_tracer(Sequential)
def _trace_sequential(t: _Tracer, module: Sequential, prev: str,
                      shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    for layer in module:
        prev, shape = t.trace_module(layer, prev, shape)
    return prev, shape


@register_tracer(Conv2d)
def _trace_conv(t: _Tracer, module: Conv2d, prev: str,
                shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    c, h, w = _spatial(shape, module)
    if c != module.in_channels:
        raise TraceError(
            f"conv expects {module.in_channels} channels, input has {c}"
        )
    k, s, p = module.kernel_size, module.stride, module.padding
    try:
        ho = F.conv_output_size(h, k, s, p)
        wo = F.conv_output_size(w, k, s, p)
    except ValueError as exc:  # collapsed output: report as a trace failure
        raise TraceError(str(exc)) from exc
    params = {"weight": module.weight.data}
    if module.bias is not None:
        params["bias"] = module.bias.data
    name = t.emit(
        t.fresh("conv"), OpType.CONV2D, (prev,), (module.out_channels, ho, wo),
        attrs={"in_channels": c, "out_channels": module.out_channels,
               "kernel": k, "stride": s, "padding": p,
               "in_size": h, "in_h": h, "in_w": w,
               "bias": module.bias is not None},
        params=params,
    )
    return name, (module.out_channels, ho, wo)


@register_tracer(BatchNorm2d)
def _trace_batchnorm(t: _Tracer, module: BatchNorm2d, prev: str,
                     shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    producer = t.graph[prev]
    if producer.op_type is not OpType.CONV2D or prev not in t.params:
        raise TraceError(
            "BatchNorm2d can only be traced immediately after a Conv2d "
            "(it is folded into the convolution weights)"
        )
    scale = module.weight.data / np.sqrt(module.running_var + module.eps)
    shift = module.bias.data - module.running_mean * scale
    folded = dict(t.params[prev])
    folded["weight"] = folded["weight"] * scale[:, None, None, None]
    folded["bias"] = folded.get("bias", 0.0) * scale + shift
    t.params[prev] = folded
    producer.attrs["bias"] = True  # folding adds a bias term if absent
    return prev, shape


@register_tracer(ReLU)
def _trace_relu(t: _Tracer, module: ReLU, prev: str,
                shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    return t.emit(t.fresh("relu"), OpType.RELU, (prev,), shape), shape


@register_tracer(Sigmoid)
def _trace_sigmoid(t: _Tracer, module: Sigmoid, prev: str,
                   shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    return t.emit(t.fresh("sigmoid"), OpType.SIGMOID, (prev,), shape), shape


@register_tracer(Dropout)
def _trace_dropout(t: _Tracer, module: Dropout, prev: str,
                   shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    return prev, shape  # identity at inference


@register_tracer(MaxPool2d)
def _trace_maxpool(t: _Tracer, module: MaxPool2d, prev: str,
                   shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    c, h, w = _spatial(shape, module)
    k, s = module.kernel_size, module.stride
    ho = F.pool_output_size(h, k, s)
    wo = F.pool_output_size(w, k, s)
    name = t.emit(
        t.fresh("pool"), OpType.MAXPOOL, (prev,), (c, ho, wo),
        attrs={"kernel": k, "stride": s, "in_size": h, "in_h": h, "in_w": w},
    )
    return name, (c, ho, wo)


@register_tracer(AdaptiveMaxPool2d)
def _trace_adaptive(t: _Tracer, module: AdaptiveMaxPool2d, prev: str,
                    shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    c, h, w = _spatial(shape, module)
    n = module.output_size
    if h < n or w < n:
        raise TraceError(f"adaptive pool output {n} exceeds input {(h, w)}")
    name = t.emit(
        t.fresh("apool"), OpType.ADAPTIVE_MAXPOOL, (prev,), (c, n, n),
        attrs={"output_size": n, "in_size": h, "in_h": h, "in_w": w,
               "in_channels": c},
    )
    return name, (c, n, n)


@register_tracer(Flatten)
def _trace_flatten(t: _Tracer, module: Module, prev: str,
                   shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    feat = 1
    for d in shape:
        feat *= d
    name = t.emit(t.fresh("flatten"), OpType.FLATTEN, (prev,), (feat,))
    return name, (feat,)


@register_tracer(SpatialPyramidPooling)
def _trace_spp(t: _Tracer, module: SpatialPyramidPooling, prev: str,
               shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    c, h, w = _spatial(shape, module)
    branches: list[str] = []
    total = 0
    for level in module.levels:
        pooled, pshape = _trace_adaptive(
            t, AdaptiveMaxPool2d(level), prev, (c, h, w)
        )
        flat, fshape = _trace_flatten(t, Flatten(), pooled, pshape)
        branches.append(flat)
        total += fshape[0]
    if len(branches) == 1:
        return branches[0], (total,)
    name = t.emit(t.fresh("spp_concat"), OpType.CONCAT, tuple(branches), (total,))
    return name, (total,)


@register_tracer(Linear)
def _trace_linear(t: _Tracer, module: Linear, prev: str,
                  shape: tuple[int, ...]) -> tuple[str, tuple[int, ...]]:
    if len(shape) != 1:
        raise TraceError(f"Linear expects a flat (F,) input, got {shape}")
    if shape[0] != module.in_features:
        raise TraceError(
            f"Linear expects {module.in_features} features, input has {shape[0]}"
        )
    params = {"weight": module.weight.data}
    if module.bias is not None:
        params["bias"] = module.bias.data
    name = t.emit(
        t.fresh("fc"), OpType.LINEAR, (prev,), (module.out_features,),
        attrs={"in_features": module.in_features},
        params=params,
    )
    return name, (module.out_features,)


def trace(module: Module, input_shape: tuple[int, int, int] | tuple[int, ...],
          name: str | None = None) -> Traced:
    """Trace ``module`` into the IR for a per-sample ``input_shape``.

    ``input_shape`` excludes the batch dimension (it is supplied at
    execution time, like everywhere else in :mod:`repro.graph`).
    """
    # SPPNetDetector needs bespoke handling (two output heads); import
    # lazily to keep repro.engine import-light.
    from ..detect.sppnet import SPPNetDetector

    input_shape = tuple(int(d) for d in input_shape)
    label = name or getattr(module, "config", None) and module.config.name \
        or type(module).__name__
    t = _Tracer(str(label))
    t.emit("input", OpType.INPUT, (), input_shape)

    if isinstance(module, SPPNetDetector):
        prev, shape = t.trace_module(module.trunk, "input", input_shape)
        prev, shape = t.trace_module(module.spp, prev, shape)
        prev, shape = t.trace_module(module.fc, prev, shape)
        cls_name, _ = t.trace_module(module.cls_head, prev, shape)
        box_name, box_shape = t.trace_module(module.box_head, prev, shape)
        box_sig = t.emit("box_sigmoid", OpType.SIGMOID, (box_name,), box_shape)
        outputs: tuple[str, ...] = (cls_name, box_sig)
    else:
        prev, _ = t.trace_module(module, "input", input_shape)
        outputs = (prev,)

    t.graph.validate()
    return Traced(graph=t.graph, params=t.params, outputs=outputs)
