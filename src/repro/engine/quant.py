"""Quantized execution for the compiled engine, gated by accuracy.

Two reduced-precision modes ride the same trace/fuse/plan pipeline as
float32:

* ``float16`` — weights are rounded through IEEE half precision at pack
  time and the program otherwise runs unchanged.  Zero runtime cost, a
  2x smaller checkpoint footprint, and a worst-case relative error
  around 1e-3 — the mode deployment uses when the accuracy constraint
  has headroom.
* ``int8`` — symmetric per-output-channel weight quantization plus
  per-tensor activation scales.  The conv/linear GEMMs run on
  integer-valued operands with float32 accumulation (the NumPy
  simulation of an int8 MAC pipeline with a 32-bit accumulator) and the
  output is rescaled by ``a_scale * w_scale[ch]`` before bias and
  activation.  Activation scales are dynamic (per-call absmax) until
  :meth:`~.compiled.CompiledModel.calibrate` freezes static scales from
  a percentile sweep over a held-out chip sample.

Mode selection is subordinated to the paper's accuracy constraint
``a(n) > A`` (§4: efficiency optimization is only admissible while
accuracy stays above the floor): :func:`quantize_with_accuracy_gate`
evaluates candidate modes against a caller-supplied accuracy function
and falls back to float32 when every reduced-precision candidate misses
the floor.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "QUANT_MODES",
    "QuantPolicy",
    "round_f16",
    "quantize_weight_per_channel",
    "activation_scale",
    "bind_conv_q8",
    "bind_linear_q8",
    "quantize_with_accuracy_gate",
]

QUANT_MODES = ("float32", "float16", "int8")


@dataclass(frozen=True)
class QuantPolicy:
    """Quantized-execution configuration for one compiled model."""

    mode: str = "float32"
    #: |activation| percentile that maps to int8 full scale during
    #: calibration; clipping the tail beats scaling to outliers.
    percentile: float = 99.9

    def __post_init__(self) -> None:
        if self.mode not in QUANT_MODES:
            raise ValueError(
                f"unknown quantization mode {self.mode!r}; "
                f"expected one of {QUANT_MODES}")
        if not 50.0 <= self.percentile <= 100.0:
            raise ValueError("calibration percentile must be in [50, 100]")

    @staticmethod
    def coerce(value) -> "QuantPolicy":
        if isinstance(value, QuantPolicy):
            return value
        return QuantPolicy(mode=str(value))


def round_f16(arr: np.ndarray, dtype=np.float32) -> np.ndarray:
    """Round through IEEE float16 (the float16 mode's weight transform)."""
    return np.ascontiguousarray(
        np.asarray(arr).astype(np.float16).astype(dtype))


def quantize_weight_per_channel(
        w_pack: np.ndarray, dtype=np.float32
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 per-output-channel quantization of a ``(K, F)``
    GEMM operand.

    Returns ``(q, scales)`` where ``q`` holds integer values in
    ``[-127, 127]`` stored as ``dtype`` (so BLAS consumes them directly)
    and ``w ≈ q * scales`` columnwise.  All-zero channels get scale 1.
    """
    absmax = np.abs(w_pack).max(axis=0)
    scales = np.where(absmax > 0.0, absmax / 127.0, 1.0)
    q = np.clip(np.rint(w_pack / scales), -127.0, 127.0)
    return (np.ascontiguousarray(q, dtype=dtype),
            np.ascontiguousarray(scales, dtype=dtype))


def activation_scale(view: np.ndarray, percentile: float) -> float:
    """Calibration statistic: |x| percentile mapped to int8 full scale."""
    mag = float(np.percentile(np.abs(view), percentile))
    return mag / 127.0 if mag > 0.0 else 1.0


def _quantize_into(dst2d: np.ndarray, scale: float) -> None:
    """In-place ``dst = clip(rint(dst / scale), -127, 127)``."""
    np.multiply(dst2d, 1.0 / scale, out=dst2d)
    np.rint(dst2d, out=dst2d)
    np.clip(dst2d, -127.0, 127.0, out=dst2d)


def _dynamic_scale(arr: np.ndarray) -> float:
    mag = float(np.abs(arr).max())
    return mag / 127.0 if mag > 0.0 else 1.0


def _compose_q(phases):
    def fn(acc=None, phases=phases):
        if acc is None:
            for _, sub in phases:
                sub()
            return
        for category, sub in phases:
            t0 = _time.perf_counter()
            sub()
            acc[category] = (acc.get(category, 0.0)
                            + _time.perf_counter() - t0)
    return fn


def bind_conv_q8(*, src, out, scratch, w_q, w_scales, bias, k, stride, pad,
                 relu, pool, scales: dict, name: str):
    """Bind one int8 conv (+ optional fused 2x2/s2 pool) to arena views.

    ``scales`` is the model's shared activation-scale table; until
    :meth:`calibrate` populates ``scales[name]`` the kernel falls back
    to a dynamic per-call absmax scale.  Pooling runs on the raw integer
    accumulator (per-channel rescaling is positive, so it commutes with
    max), keeping the dequantization pass on the 4x-smaller tensor.
    """
    from .kernels import (  # local import avoids a module cycle
        _pad_phase,
        _pool2x2_views,
        conv_out_hw,
        maxpool_shifted,
        strided_windows,
    )

    n, h, w, c = src.shape
    ho, wo = conv_out_hw(h, w, k, stride, pad)
    f = w_q.shape[1]
    kkc = c * k * k
    phases = []
    offset = 0
    if pad:
        phase, padded, offset = _pad_phase(src, scratch, offset, pad)
        phases.append(phase)
        win = strided_windows(padded, k, stride)
    else:
        win = strided_windows(src, k, stride)
    cols2d = scratch[offset:offset + n * ho * wo * kkc].reshape(
        n * ho * wo, kkc)
    offset += n * ho * wo * kkc
    cols = cols2d.reshape(n, ho, wo, k, k, c)

    def gather(win=win, cols=cols):
        np.copyto(cols, win)
    phases.append(("memops", gather))

    state = {"scale": 1.0}

    def quantize(cols2d=cols2d, scales=scales, name=name, state=state):
        scale = scales.get(name)
        if scale is None:
            scale = _dynamic_scale(cols2d)
        state["scale"] = scale
        _quantize_into(cols2d, scale)
    phases.append(("elementwise", quantize))

    if pool is None:
        gemm_out = out.reshape(n * ho * wo, f)
    else:
        stage = scratch[offset:offset + n * ho * wo * f].reshape(n, ho, wo, f)
        gemm_out = stage.reshape(n * ho * wo, f)

    def gemm(cols2d=cols2d, w_q=w_q, gemm_out=gemm_out):
        np.dot(cols2d, w_q, out=gemm_out)
    phases.append(("conv", gemm))

    if pool is not None:
        ph, pw = out.shape[1], out.shape[2]
        views = _pool2x2_views(stage, ph, pw)

        def pool_fn(views=views, out=out):
            maxpool_shifted(views, out)
        phases.append(("pooling", pool_fn))

    deq_out = out.reshape(-1, f)

    def epilogue(deq_out=deq_out, w_scales=w_scales, bias=bias,
                 state=state, relu=relu):
        deq_out *= state["scale"] * w_scales
        if bias is not None:
            deq_out += bias
        if relu:
            np.maximum(deq_out, 0.0, out=deq_out)
    phases.append(("elementwise", epilogue))
    return _compose_q(phases)


def bind_linear_q8(*, in2d, out, scratch, w_q, w_scales, bias, relu,
                   scales: dict, name: str):
    """Bind one int8 linear layer: quantize a scratch copy of the input
    (the arena view may have other consumers), integer GEMM, rescale."""
    rows, feats = in2d.shape
    qbuf = scratch[:rows * feats].reshape(rows, feats)
    state = {"scale": 1.0}

    def quantize(in2d=in2d, qbuf=qbuf, scales=scales, name=name,
                 state=state):
        scale = scales.get(name)
        if scale is None:
            scale = _dynamic_scale(in2d)
        state["scale"] = scale
        np.copyto(qbuf, in2d)
        _quantize_into(qbuf, scale)

    def gemm(qbuf=qbuf, w_q=w_q, out=out):
        np.dot(qbuf, w_q, out=out)

    def epilogue(out=out, w_scales=w_scales, bias=bias, state=state,
                 relu=relu):
        out *= state["scale"] * w_scales
        if bias is not None:
            out += bias
        if relu:
            np.maximum(out, 0.0, out=out)
    return _compose_q([("elementwise", quantize), ("matmul", gemm),
                       ("elementwise", epilogue)])


def quantize_with_accuracy_gate(
        model, eval_fn, *, floor: float,
        modes: tuple[str, ...] = ("int8", "float16"),
        input_shape: tuple[int, ...] | None = None,
        calibration: np.ndarray | None = None,
        dtype=np.float32):
    """Select the most aggressive quantization that honors ``a(n) > A``.

    ``eval_fn(compiled) -> float`` scores a candidate (the paper's
    accuracy ``a(n)``; any higher-is-better proxy works).  Candidate
    ``modes`` are tried in order; the first whose score strictly exceeds
    ``floor`` wins.  If none does, the float32 model is returned — the
    efficiency optimization is rejected rather than the constraint.

    Returns ``(compiled, report)`` where ``report`` records the float32
    reference score, every candidate's score, and the selection.
    """
    from .compiled import compile as _compile  # deferred: module cycle

    baseline = _compile(model, input_shape, dtype=dtype)
    report = {
        "floor": float(floor),
        "float32_accuracy": float(eval_fn(baseline)),
        "candidates": [],
        "selected": "float32",
    }
    for mode in modes:
        candidate = _compile(model, input_shape, dtype=dtype, quant=mode)
        if mode == "int8" and calibration is not None:
            candidate.calibrate(calibration)
        accuracy = float(eval_fn(candidate))
        passed = accuracy > floor
        report["candidates"].append(
            {"mode": mode, "accuracy": accuracy, "passed": passed,
             "calibrated": mode == "int8" and calibration is not None})
        if passed:
            report["selected"] = mode
            return candidate, report
    return baseline, report
