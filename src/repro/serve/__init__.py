"""repro.serve — dynamic-batching inference service for crossing detection.

Production front-end over the trained detector: micro-batching tuned by
the Figure 6 batch-efficiency curve, content-hash LRU caching, bounded
queueing with backpressure, per-request deadlines, graceful draining
shutdown, and a metrics registry rendered in the ``repro.profiling``
report style.  See ``docs/serving.md``.
"""

from .batching import BatchPolicy, policy_from_fig6
from .cache import LRUCache, chip_key
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    ServiceMetrics,
    format_service_report,
)
from .service import (
    DetectionResult,
    InferenceService,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServiceStoppedError,
)

__all__ = [
    "BatchPolicy",
    "policy_from_fig6",
    "LRUCache",
    "chip_key",
    "Counter",
    "Gauge",
    "Histogram",
    "ServiceMetrics",
    "format_service_report",
    "DetectionResult",
    "InferenceService",
    "ServeError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServiceStoppedError",
]
