"""repro.serve — dynamic-batching inference service for crossing detection.

Production front-end over the trained detector: micro-batching tuned by
the Figure 6 batch-efficiency curve, content-hash LRU caching, bounded
queueing with backpressure, per-request deadlines, graceful draining
shutdown, a model-worker circuit breaker with cache-only degraded mode,
and a metrics registry rendered in the ``repro.profiling`` report style.
See ``docs/serving.md`` and ``docs/resilience.md``.
"""

from .batching import BatchPolicy, policy_from_fig6
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerPolicy, CircuitBreaker
from .cache import LRUCache, chip_key
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    ServiceMetrics,
    format_service_report,
)
from .service import (
    DegradedServiceError,
    DetectionResult,
    InferenceService,
    InvalidInputError,
    QueueFullError,
    RequestTimeoutError,
    ServeError,
    ServiceStoppedError,
)

__all__ = [
    "BatchPolicy",
    "policy_from_fig6",
    "BreakerPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "LRUCache",
    "chip_key",
    "Counter",
    "Gauge",
    "Histogram",
    "ServiceMetrics",
    "format_service_report",
    "DetectionResult",
    "InferenceService",
    "ServeError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServiceStoppedError",
    "DegradedServiceError",
    "InvalidInputError",
]
