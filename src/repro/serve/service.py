"""Dynamic-batching inference service over a trained detector.

One long-lived :class:`InferenceService` turns the repo's synchronous
``predict`` loop into a request/response system:

* callers :meth:`~InferenceService.submit` single chips and receive
  ``concurrent.futures.Future`` objects;
* a batcher thread coalesces waiting requests into micro-batches
  (:class:`~repro.serve.batching.BatchPolicy`: dispatch at ``max_batch``
  or after ``max_wait_ms``, whichever first) and hands them to a worker
  pool running the model;
* an LRU cache keyed by chip content hash answers repeat tiles without
  touching the model;
* a bounded queue applies backpressure (:class:`QueueFullError`),
  per-request deadlines expire stale work (:class:`RequestTimeoutError`),
  and :meth:`~InferenceService.shutdown` drains in-flight requests before
  the threads exit;
* a circuit breaker (:class:`~repro.serve.breaker.CircuitBreaker`) guards
  the model workers: failed batches are retried, consecutive failures
  trip the breaker, and while it is open the service runs in *degraded
  mode* — cache hits are still served, uncached requests fail fast with
  :class:`DegradedServiceError` until a half-open probe succeeds.

Telemetry lives in a :class:`~repro.serve.metrics.ServiceMetrics`
registry rendered through the ``repro.profiling`` report conventions.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..detect.predict import predict
from ..detect.sppnet import SPPNetDetector
from .batching import BatchPolicy
from .breaker import OPEN, BreakerPolicy, CircuitBreaker
from .cache import LRUCache, chip_key
from .metrics import ServiceMetrics

__all__ = [
    "ServeError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServiceStoppedError",
    "DegradedServiceError",
    "InvalidInputError",
    "DetectionResult",
    "InferenceService",
]


class ServeError(RuntimeError):
    """Base class for inference-service failures."""


class QueueFullError(ServeError):
    """Raised by submit() when the bounded queue is at capacity."""


class RequestTimeoutError(ServeError):
    """Set on a request future whose deadline expired before dispatch."""


class ServiceStoppedError(ServeError):
    """Raised when submitting to (or pending inside) a stopped service."""


class DegradedServiceError(ServeError):
    """The circuit breaker is open and the request is not in the cache."""


class InvalidInputError(ServeError):
    """The submitted chip failed admission validation (non-finite pixels
    or policy-defined damage).  Rejecting it at submit keeps one bad chip
    from poisoning the whole micro-batch it would have ridden in."""


@dataclass(frozen=True)
class DetectionResult:
    """Per-request model output.

    confidence : crossing probability (softmax class 1)
    box        : normalized (cx, cy, w, h) in chip coordinates
    cached     : True when served from the LRU cache
    batch_size : size of the micro-batch this request rode in (0 if cached)
    backend    : execution path that produced the value ("eager",
                 "engine", or "custom" for an injected predict_fn); a
                 cached result reports the backend of the run that filled
                 the cache
    """

    confidence: float
    box: np.ndarray
    cached: bool = False
    batch_size: int = 0
    backend: str = "eager"


class _Pending:
    """One queued request: chip, future, bookkeeping timestamps."""

    __slots__ = ("chip", "key", "future", "deadline", "enqueued_at")

    def __init__(self, chip: np.ndarray, key: str,
                 deadline: float | None) -> None:
        self.chip = chip
        self.key = key
        self.future: Future[DetectionResult] = Future()
        self.deadline = deadline
        self.enqueued_at = time.monotonic()

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class InferenceService:
    """Dynamic-batching, caching, metered inference front-end.

    Parameters
    ----------
    model       : trained (or untrained) :class:`SPPNetDetector`
    policy      : batching policy; defaults to ``BatchPolicy()``
                  (see :func:`~repro.serve.batching.policy_from_fig6`
                  to tune it from a Figure 6 artifact)
    max_queue   : bounded-queue capacity; submits beyond it raise
                  :class:`QueueFullError`
    cache_size  : LRU entries (0 disables caching)
    num_workers : model-execution threads; micro-batches from the batcher
                  fan out across them
    breaker     : :class:`~repro.serve.breaker.BreakerPolicy` for the
                  model-worker circuit breaker (None = defaults)
    max_batch_retries : immediate re-runs of a failed micro-batch before
                  its futures fail and the breaker counts the failure
    backend     : ``"eager"`` (default) runs the autograd model;
                  ``"engine"`` compiles the model at service start
                  (:func:`repro.engine.compile`) and serves every batch
                  through the *guarded* compiled program
                  (:class:`repro.robust.GuardedEngine`): outputs are
                  checked for non-finite values and shape mismatches,
                  violations transparently re-execute on the eager
                  backend (tallied in the metrics snapshot's
                  ``fallback_by_reason``), and repeated engine faults
                  trip an engine-scoped circuit breaker toward
                  eager-only.  The engine serializes execution
                  internally, so pair it with the default
                  ``num_workers=1``; results record which backend
                  produced them (:class:`DetectionResult` and the
                  metrics snapshot's ``completed_by_backend``).
    engine      : a pre-built :class:`~repro.robust.GuardedEngine` to
                  serve with (implies ``backend="engine"``); lets tests
                  inject faulty compiled programs and deployments share
                  one compile across services
    validate    : admission control for :meth:`submit`.  ``True``
                  (default) rejects chips with non-finite pixels
                  (:meth:`~repro.robust.SanitizePolicy.for_serving`);
                  a :class:`~repro.robust.SanitizePolicy` applies that
                  policy's checks; ``False`` disables validation.
                  Rejections raise :class:`InvalidInputError` and count
                  in ``metrics.invalid_inputs``.
    predict_fn  : model-execution function
                  ``(model, stack, batch_size) -> (confidences, boxes)``;
                  injectable for fault-injection tests (``repro.faults``).
                  Overrides ``backend`` (results then report "custom")
    scan_workers: bulk-scan worker processes.  ``None`` (default)
                  creates the service's scan pool lazily on the first
                  ``scan_scene(n_workers=...)`` bulk call; an int (or
                  ``"auto"``) spawns and warms the persistent
                  :class:`repro.scanpar.WorkerPool` at service startup
                  so even the first bulk scan runs on warm workers.
                  The pool lives until :meth:`shutdown` (closed after
                  the request queue drains).  A startup pool is created
                  *before* the service threads exist, so it may still
                  use cheap ``fork``; a lazily created pool starts its
                  workers via ``spawn`` (the service's running threads
                  make ``fork`` unsafe), a one-time cost at creation.

    Use as a context manager or call :meth:`shutdown` explicitly —
    the batcher and workers are non-daemon threads.
    """

    def __init__(
        self,
        model: SPPNetDetector,
        policy: BatchPolicy | None = None,
        *,
        max_queue: int = 1024,
        cache_size: int = 512,
        num_workers: int = 1,
        breaker: BreakerPolicy | None = None,
        max_batch_retries: int = 1,
        backend: str = "eager",
        engine=None,
        validate=True,
        predict_fn=None,
        scan_workers: int | str | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_batch_retries < 0:
            raise ValueError("max_batch_retries must be >= 0")
        if engine is not None:
            backend = "engine"
        if backend not in ("eager", "engine"):
            raise ValueError(
                f"unknown backend {backend!r}; use 'eager' or 'engine'"
            )
        self.model = model
        self.policy = policy if policy is not None else BatchPolicy()
        self.max_queue = max_queue
        self.max_batch_retries = max_batch_retries
        self.cache: LRUCache[DetectionResult] = LRUCache(cache_size)
        self.metrics = ServiceMetrics()
        self.breaker = CircuitBreaker(
            breaker, on_transition=self.metrics.record_breaker_transition
        )
        self._validate_policy = None
        if validate is True:
            from ..robust.sanitize import SanitizePolicy

            self._validate_policy = SanitizePolicy.for_serving()
        elif validate:  # a SanitizePolicy
            self._validate_policy = validate
        self.engine = None
        if predict_fn is not None:
            self.backend = "custom"
            self._predict_fn = predict_fn
        elif backend == "engine":
            if engine is None:
                from ..robust.guard import GuardedEngine

                model.eval()
                engine = GuardedEngine(model)
            engine.add_fallback_listener(self.metrics.record_fallback)
            self.engine = engine
            self.backend = "engine"
            self._predict_fn = (
                lambda _model, stack, batch_size:
                engine.predict_batch(stack, batch_size=batch_size)
            )
            # pre-build the programs the batcher will actually dispatch
            # (single stragglers and full micro-batches) so the first
            # request never pays compile/bind latency inline
            try:
                warmup_ms = engine.warmup(
                    sorted({1, self.policy.max_batch})
                )
            except Exception:
                # a broken engine surfaces through the guarded per-batch
                # fallback, not as a startup crash
                warmup_ms = 0.0
            self.metrics.warmup_ms.set(warmup_ms)
        else:
            self.backend = "eager"
            self._predict_fn = predict

        # bulk-scan worker pool: created here (pre-thread, fork-safe)
        # when scan_workers is given, else lazily at the first bulk
        # scan; closed by shutdown() after the request queue drains
        self._scan_pool = None
        self._scan_pool_lock = threading.Lock()
        if scan_workers is not None:
            self._scan_pool = self._create_scan_pool(scan_workers)
            if self._scan_pool is not None:
                self._scan_pool.ensure_model(self.model)

        self._queue: deque[_Pending] = deque()
        # O(1) batcher bookkeeping: same-shape counts decide batch
        # readiness and deadline_count gates the expiry scan, so a wake
        # never walks the queue in the common (uniform, no-deadline) case
        self._shape_counts: Counter[tuple] = Counter()
        self._deadline_count = 0
        self._cond = threading.Condition()
        self._stopping = False
        self._draining = True
        # At most num_workers batches in flight: the batcher blocks here
        # instead of spilling into the executor's unbounded work queue,
        # so max_queue is the real backpressure bound.
        self._inflight = threading.Semaphore(num_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="serve-worker"
        )
        self._batcher = threading.Thread(
            target=self._batch_loop, name="serve-batcher"
        )
        self._batcher.start()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def __enter__(self) -> InferenceService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def submit(self, chip: np.ndarray,
               timeout_s: float | None = None) -> Future[DetectionResult]:
        """Queue one (C, H, W) chip; returns a future of DetectionResult.

        ``timeout_s`` is a dispatch deadline: if the request is still
        queued when it expires, its future fails with
        :class:`RequestTimeoutError`.  Raises :class:`QueueFullError`
        immediately when the bounded queue is at capacity,
        :class:`InvalidInputError` when the chip fails the admission
        policy (so one NaN chip cannot poison a whole micro-batch), and
        :class:`ServiceStoppedError` after shutdown began.
        """
        if chip.ndim != 3:
            raise ValueError(f"expected one (C, H, W) chip, got shape {chip.shape}")
        self.metrics.submitted.inc()
        if self._validate_policy is not None:
            from ..robust.sanitize import validate_chip

            report = validate_chip(chip, self._validate_policy)
            if not report.ok:
                self.metrics.invalid_inputs.inc()
                raise InvalidInputError(
                    f"chip failed input validation: {report.summary()}"
                )

        key = chip_key(chip) if self.cache.capacity else ""
        degraded = self.breaker.state == OPEN
        if self.cache.capacity:
            hit = self.cache.get(key)
            if hit is not None:
                self.metrics.cache_hits.inc()
                if degraded:
                    self.metrics.degraded_served.inc()
                self.metrics.completed.inc()
                self.metrics.latency_ms.observe(0.0)
                future: Future[DetectionResult] = Future()
                future.set_result(
                    DetectionResult(hit.confidence, hit.box, cached=True,
                                    backend=hit.backend)
                )
                return future
            self.metrics.cache_misses.inc()

        if degraded:
            # cache-only mode: fail fast instead of queueing work the
            # tripped workers would only reject later
            self.metrics.degraded_rejected.inc()
            raise DegradedServiceError(
                "circuit breaker open: model workers unavailable and "
                "result not cached"
            )

        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        pending = _Pending(np.asarray(chip, dtype=np.float32), key, deadline)
        if self.policy.inline_single:
            # max_batch=1 with the low-latency opt-in: when nothing is
            # queued and a worker slot is free, run the request
            # synchronously on the caller's thread instead of paying the
            # queue → batcher → pool round-trip (see BatchPolicy)
            with self._cond:
                stopping = self._stopping
                idle = not self._queue
            if stopping:
                self.metrics.rejected.inc()
                raise ServiceStoppedError("service is shut down")
            if idle and self._inflight.acquire(blocking=False):
                self._run_batch([pending])  # releases the inflight slot
                return pending.future
        with self._cond:
            if self._stopping:
                self.metrics.rejected.inc()
                raise ServiceStoppedError("service is shut down")
            if len(self._queue) >= self.max_queue:
                self.metrics.rejected.inc()
                raise QueueFullError(
                    f"queue full ({self.max_queue} requests waiting)"
                )
            self._queue.append(pending)
            self._shape_counts[pending.chip.shape] += 1
            if pending.deadline is not None:
                self._deadline_count += 1
            self.metrics.queue_depth.set(len(self._queue))
            self._cond.notify()
        return pending.future

    def submit_many(self, chips: np.ndarray | list[np.ndarray],
                    timeout_s: float | None = None) -> list[Future[DetectionResult]]:
        """Submit a stack of chips; returns one future per chip."""
        return [self.submit(chip, timeout_s=timeout_s) for chip in chips]

    def _create_scan_pool(self, scan_workers: int | str):
        """Build the service-owned scan pool, or ``None`` if pointless.

        ``"auto"`` sizes the pool to the CPU affinity mask and skips
        pool creation entirely on single-core boxes (the adaptive
        policy would inline those scans anyway); an explicit int is
        honoured as requested.
        """
        from ..scanpar import WorkerPool, cpu_affinity_count

        if scan_workers == "auto":
            n = cpu_affinity_count()
            if n < 2:
                return None
        else:
            n = int(scan_workers)
            if n < 1:
                raise ValueError("scan_workers must be >= 1 or 'auto'")
            if n == 1:
                return None
        return WorkerPool(n)

    def _ensure_scan_pool(self, n_workers: int | str):
        """Lazily create (once) and return the service's scan pool."""
        with self._scan_pool_lock:
            if self._scan_pool is None and not self._stopping:
                pool = self._create_scan_pool(n_workers)
                if pool is not None:
                    pool.ensure_model(self.model)
                self._scan_pool = pool
            return self._scan_pool

    def scan_scene(self, scene, *, n_workers: int | str = 1,
                   timeout_s: float | None = None, supervision=None,
                   **scan_kwargs):
        """Scan a whole scene with this service's model.

        ``n_workers=1`` routes every window through the request path
        (:func:`repro.detect.scan_scene` with ``service=self``) — the
        scan shares the batcher, cache, and breaker with live traffic.
        ``n_workers > 1`` (or ``"auto"``) takes the *bulk* path
        instead: the sharded parallel scanner
        (:func:`repro.scanpar.parallel_scan_scene`) runs the service's
        model on its configured backend across the service-owned
        persistent worker pool, bypassing the request queue —
        whole-scene throughput without holding the queue hostage for
        thousands of tiles.  Both paths tally ``metrics.scans`` /
        ``metrics.scan_tiles``.

        ``timeout_s`` is this scan's per-request deadline, propagated
        all the way down: on the request path it bounds each submitted
        tile, on the bulk path it becomes the fleet supervisor's run
        deadline over the shard dispatch — either way the call raises
        :class:`~repro.detect.scan.ScanDeadlineError` rather than
        outliving its budget.  ``supervision`` (a
        ``repro.fleet.SupervisionPolicy``, or ``True``) supervises bulk
        dispatch — hung/dead pool workers are killed, revived, and
        their shards redispatched — and its recovery counts land in the
        ``scan_*`` fleet metrics.
        """
        from ..detect.scan import ScanDeadlineError
        from ..detect.scan import scan_scene as scan

        bulk = n_workers == "auto" or (
            isinstance(n_workers, int) and n_workers > 1
        )
        if bulk and self.backend == "custom":
            raise ValueError(
                "bulk parallel scanning runs the model directly and "
                "needs backend='eager' or 'engine', not an injected "
                "predict_fn"
            )
        try:
            if bulk:
                pool = self._ensure_scan_pool(n_workers)
                result = scan(self.model, scene, backend=self.backend,
                              n_workers=n_workers, pool=pool,
                              timeout_s=timeout_s, supervision=supervision,
                              **scan_kwargs)
            else:
                result = scan(self.model, scene, service=self,
                              timeout_s=timeout_s, **scan_kwargs)
        except ScanDeadlineError:
            self.metrics.scan_deadline_expired.inc()
            raise
        self.metrics.scans.inc()
        self.metrics.scan_tiles.inc(result.coverage.tiles_total)
        self.metrics.record_supervision(getattr(result, "supervision", None))
        return result

    def scan_many(self, jobs, *, workdir, n_workers: int | str = "auto",
                  supervision=None, queue_path=None, **fleet_kwargs):
        """Scan a batch of scenes as a durable fleet sweep.

        ``jobs`` maps job id -> ``WatershedConfig`` (or a payload the
        fleet's scene provider understands).  Builds a
        :class:`repro.fleet.ScanFleet` over a job queue at
        ``queue_path`` (default ``<workdir>/queue.jsonl``), submits
        every job (idempotently — resubmitting a sweep that crashed
        resumes it), drains the queue with this service's model, and
        returns the sweep summary.  Per-scene crash recovery, retries,
        and dead-lettering follow the fleet semantics in
        ``docs/fleet.md``; supervision recovery counts fold into the
        ``scan_*`` fleet metrics.
        """
        from pathlib import Path

        from ..fleet import JobQueue, ScanFleet

        if self.backend == "custom":
            raise ValueError(
                "fleet scanning runs the model directly and needs "
                "backend='eager' or 'engine', not an injected predict_fn"
            )
        workdir = Path(workdir)
        queue = JobQueue(queue_path or workdir / "queue.jsonl")
        fleet = ScanFleet(queue, self.model, workdir=workdir,
                          n_workers=n_workers, supervision=supervision,
                          **fleet_kwargs)
        for job_id, config in jobs.items():
            fleet.submit_scene(job_id, config, backend=self.backend)
        summary = fleet.run()
        for job in summary["results"].values():
            self.metrics.scans.inc()
            self.metrics.scan_tiles.inc(job.get("tiles_total", 0))
            sup = job.get("supervision")
            if sup:
                self.metrics.scan_redispatches.inc(sup["redispatches"])
                self.metrics.scan_workers_killed.inc(sup["deadline_kills"])
                self.metrics.scan_worker_deaths.inc(sup["worker_deaths"])
                self.metrics.scan_poison_shards.inc(
                    len(sup["poison_shards"]))
                self.metrics.scan_inline_shards.inc(
                    len(sup["inline_shards"]))
        return summary

    def shutdown(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop the service.

        With ``drain=True`` (default) already-queued requests are still
        batched and completed; with ``drain=False`` they fail with
        :class:`ServiceStoppedError`.  New submits are rejected either
        way.  Idempotent.
        """
        with self._cond:
            self._stopping = True
            self._draining = drain
            self._cond.notify_all()
        self._batcher.join(timeout=timeout_s)
        self._pool.shutdown(wait=True)
        with self._scan_pool_lock:
            if self._scan_pool is not None:
                self._scan_pool.close()
                self._scan_pool = None

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # batcher + workers
    # ------------------------------------------------------------------
    def _batch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                break
            if not self._dispatch(batch):
                break
        # fail leftovers on non-draining shutdown
        with self._cond:
            leftovers = list(self._queue)
            self._queue.clear()
            self._shape_counts.clear()
            self._deadline_count = 0
            self.metrics.queue_depth.set(0)
        for pending in leftovers:
            pending.future.set_exception(
                ServiceStoppedError("service shut down before dispatch")
            )

    def _dispatch(self, batch: list[_Pending]) -> bool:
        """Hand one batch to the worker pool, blocking while all workers
        are busy.  Returns False when a non-draining shutdown interrupts
        the wait (the batch is failed, the batcher should exit)."""
        while not self._inflight.acquire(timeout=0.05):
            with self._cond:
                abort = self._stopping and not self._draining
            if abort:
                for pending in batch:
                    pending.future.set_exception(
                        ServiceStoppedError("service shut down before dispatch")
                    )
                return False
        self._pool.submit(self._run_batch, batch)
        return True

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a micro-batch is ready (or the service stops).

        Returns None to terminate the batcher.  Coalescing rule: wait for
        the first request, then keep gathering until ``max_batch`` chips
        of the *same spatial shape* are waiting or ``max_wait_ms`` has
        elapsed since that first request arrived.  Expired requests are
        timed out here, at dispatch, so a timeout never needs its own
        timer thread.
        """
        policy = self.policy
        with self._cond:
            while True:
                self._expire_locked()
                if self._queue:
                    break
                if self._stopping:
                    return None
                self._cond.wait(timeout=0.05)

            flush_at = self._queue[0].enqueued_at + policy.max_wait_s
            while True:
                self._expire_locked()
                if not self._queue:
                    if self._stopping:
                        return None
                    self._cond.wait(timeout=0.05)
                    continue
                shape = self._queue[0].chip.shape
                ready = self._shape_counts[shape]
                now = time.monotonic()
                if (ready >= policy.max_batch or now >= flush_at
                        or (self._stopping and self._draining)):
                    return self._take_batch_locked(shape, policy.max_batch)
                if self._stopping and not self._draining:
                    return None
                # wake at the flush point or the nearest request deadline,
                # whichever comes first, so timeouts fire promptly
                wake_at = flush_at
                if self._deadline_count:
                    for pending in self._queue:
                        if pending.deadline is not None:
                            wake_at = min(wake_at, pending.deadline)
                self._cond.wait(timeout=max(wake_at - now, 1e-4))

    def _take_batch_locked(self, shape: tuple, limit: int) -> list[_Pending]:
        """Pop up to ``limit`` same-shaped requests (SPP accepts any chip
        size, but one stacked batch must share H and W)."""
        batch: list[_Pending] = []
        skipped: deque[_Pending] = deque()
        while self._queue and len(batch) < limit:
            pending = self._queue.popleft()
            if pending.chip.shape == shape:
                batch.append(pending)
            else:
                skipped.append(pending)
        self._queue.extendleft(reversed(skipped))
        self._shape_counts[shape] -= len(batch)
        if not self._shape_counts[shape]:
            del self._shape_counts[shape]
        self._deadline_count -= sum(1 for p in batch if p.deadline is not None)
        self.metrics.queue_depth.set(len(self._queue))
        return batch

    def _expire_locked(self) -> None:
        if not self._deadline_count:
            return
        now = time.monotonic()
        alive: deque[_Pending] = deque()
        for pending in self._queue:
            if pending.expired(now):
                self.metrics.timeouts.inc()
                self._deadline_count -= 1
                self._shape_counts[pending.chip.shape] -= 1
                if not self._shape_counts[pending.chip.shape]:
                    del self._shape_counts[pending.chip.shape]
                pending.future.set_exception(RequestTimeoutError(
                    f"request waited {now - pending.enqueued_at:.3f}s, "
                    "deadline passed before dispatch"
                ))
            else:
                alive.append(pending)
        if len(alive) != len(self._queue):
            self._queue.clear()
            self._queue.extend(alive)
            self.metrics.queue_depth.set(len(self._queue))

    def _run_batch(self, batch: list[_Pending]) -> None:
        try:
            started = time.monotonic()
            # a batch can out-wait its deadline behind busy workers, so
            # expire again at the moment work actually starts
            live: list[_Pending] = []
            for pending in batch:
                if pending.expired(started):
                    self.metrics.timeouts.inc()
                    pending.future.set_exception(RequestTimeoutError(
                        f"request waited {started - pending.enqueued_at:.3f}s, "
                        "deadline passed before inference"
                    ))
                else:
                    live.append(pending)
            batch = live
            if not batch:
                return
            if not self.breaker.allow():
                # tripped while these requests were queued: cache-only
                self._serve_degraded(batch)
                return
            # single-request batches (stragglers, inline_single) skip the
            # stack copy — chip[None] is a view with the same layout
            stack = (batch[0].chip[None] if len(batch) == 1
                     else np.stack([p.chip for p in batch]))
            attempts = 0
            used_backend = self.backend
            while True:
                attempts += 1
                try:
                    out = self._predict_fn(
                        self.model, stack, batch_size=len(batch)
                    )
                    # the guarded engine also reports which backend
                    # actually answered (engine, or eager on fallback)
                    if len(out) == 3:
                        confidences, boxes, used_backend = out
                    else:
                        confidences, boxes = out
                    self.breaker.record_success()
                    break
                except BaseException as exc:
                    self.metrics.worker_failures.inc()
                    retryable = (isinstance(exc, Exception)
                                 and attempts <= self.max_batch_retries)
                    if not retryable:  # propagate to every waiting caller
                        self.breaker.record_failure()
                        for pending in batch:
                            if not pending.future.done():
                                pending.future.set_exception(exc)
                        return
                    self.metrics.worker_retries.inc()
            now = time.monotonic()
            self.metrics.observe_batch(len(batch), (now - started) * 1e3)
            for pending, conf, box in zip(batch, confidences, boxes):
                result = DetectionResult(
                    float(conf), box.copy(), cached=False,
                    batch_size=len(batch), backend=used_backend,
                )
                self.cache.put(pending.key, result)
                self.metrics.record_backend(used_backend)
                self.metrics.completed.inc()
                self.metrics.latency_ms.observe((now - pending.enqueued_at) * 1e3)
                pending.future.set_result(result)
        finally:
            self._inflight.release()

    def _serve_degraded(self, batch: list[_Pending]) -> None:
        """Cache-only answers for a batch the open breaker refused.

        Requests whose chips were cached since they queued are still
        served (marked degraded); the rest fail with
        :class:`DegradedServiceError` rather than touching the workers.
        """
        for pending in batch:
            hit = self.cache.get(pending.key) if self.cache.capacity else None
            if hit is not None:
                self.metrics.degraded_served.inc()
                self.metrics.completed.inc()
                self.metrics.latency_ms.observe(
                    (time.monotonic() - pending.enqueued_at) * 1e3
                )
                pending.future.set_result(
                    DetectionResult(hit.confidence, hit.box, cached=True,
                                    backend=hit.backend)
                )
            else:
                self.metrics.degraded_rejected.inc()
                pending.future.set_exception(DegradedServiceError(
                    "circuit breaker open: model workers unavailable and "
                    "result not cached"
                ))
