"""Content-addressed LRU cache for chip inference results.

Overlapping scene scans re-submit identical tiles (a 50%-overlap sliding
window visits flat background repeatedly, and adjacent scans share border
windows).  Keying by chip *content* — not submission order or coordinates
— lets any repeat hit the cache instead of the model, which is the
cheapest inference of all.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Generic, TypeVar

import numpy as np

__all__ = ["chip_key", "LRUCache"]

V = TypeVar("V")


def chip_key(chip: np.ndarray) -> str:
    """Deterministic content hash of one chip (shape + dtype + bytes).

    Shape and dtype are mixed into the digest so a (4, 32, 32) chip can
    never collide with a reshaped (4, 64, 16) view of the same buffer.
    """
    h = hashlib.sha256()
    h.update(str(chip.shape).encode())
    h.update(str(chip.dtype).encode())
    h.update(np.ascontiguousarray(chip).tobytes())
    return h.hexdigest()


class LRUCache(Generic[V]):
    """Thread-safe least-recently-used cache with hit/miss counters."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[str, V] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: str) -> V | None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: str, value: V) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> tuple[int, int]:
        """Atomic (hits, misses) snapshot under the writers' lock."""
        with self._lock:
            return self.hits, self.misses

    @property
    def hit_rate(self) -> float:
        # Both counters must come from one locked snapshot: an unlocked
        # read can interleave with a concurrent get() and observe a hits
        # value newer than the total it is divided by (rate > 1).
        hits, misses = self.stats
        total = hits + misses
        return hits / total if total else 0.0
