"""Circuit breaker for the inference-service model workers.

Classic three-state breaker (Nygard's *Release It!* pattern):

* **closed** — traffic flows; consecutive worker failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: model execution is refused outright and the service degrades to
  cache-only answers until ``reset_timeout_s`` elapses.
* **half-open** — after the timeout one probe batch is let through; its
  success closes the breaker, its failure re-opens it (timer restarts).

The breaker never raises by itself — callers ask :meth:`allow` before
touching the workers and report outcomes via :meth:`record_success` /
:meth:`record_failure`.  All transitions are published to an optional
``on_transition(old, new)`` callback (the service feeds them into
``ServiceMetrics``).  ``clock`` is injectable so tests can step time
instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BreakerPolicy", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Breaker knobs.

    failure_threshold : consecutive worker failures that trip the breaker.
    reset_timeout_s   : how long the breaker stays open before probing.
    half_open_probes  : successful probes required to close again.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker."""

    def __init__(self, policy: BreakerPolicy | None = None,
                 on_transition: Callable[[str, str], None] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """May a batch run right now?  Half-open admits only the probes."""
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            # half-open: admit up to half_open_probes concurrent probes
            if self._probes_in_flight < self.policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.policy.half_open_probes:
                    self._transition_locked(CLOSED)
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures >= self.policy.failure_threshold):
                self._trip_locked()

    # -- internals ------------------------------------------------------
    def _trip_locked(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._transition_locked(OPEN)

    def _maybe_half_open_locked(self) -> None:
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.policy.reset_timeout_s):
            self._probes_in_flight = 0
            self._probe_successes = 0
            self._transition_locked(HALF_OPEN)

    def _transition_locked(self, new: str) -> None:
        old, self._state = self._state, new
        if old != new and self._on_transition is not None:
            self._on_transition(old, new)
