"""Dynamic micro-batching policy.

The batcher coalesces requests until either ``max_batch`` chips are
waiting or ``max_wait_ms`` has elapsed since the oldest one arrived —
whichever comes first.  ``max_batch`` is the knee of the paper's Figure 6
batch-efficiency curve (per-image latency falls steeply then flattens;
§6.4 picks the last batch size that still improves efficiency by >= 10%),
so :func:`policy_from_fig6` tunes the batcher straight from the
regenerated ``results/fig6.json`` artifact.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BatchPolicy", "policy_from_fig6"]

_FIG6_PATH = Path(__file__).resolve().parents[3] / "results" / "fig6.json"


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher.

    max_batch     : dispatch as soon as this many requests are waiting
    max_wait_ms   : dispatch a partial batch once the oldest waiting
                    request has aged this long (latency ceiling under
                    light traffic)
    inline_single : only meaningful at ``max_batch=1``, where batching
                    cannot coalesce anything and the queue → batcher →
                    pool round-trip is pure overhead.  When True, an
                    idle service runs the request synchronously on the
                    caller's thread (the returned future is already
                    resolved); ``submit`` may then block for one model
                    call, so leave this off when callers rely on
                    non-blocking submission.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    inline_single: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if self.inline_single and self.max_batch != 1:
            raise ValueError("inline_single requires max_batch=1")

    @property
    def max_wait_s(self) -> float:
        return self.max_wait_ms / 1e3


def policy_from_fig6(path: str | Path | None = None,
                     max_wait_ms: float = 2.0) -> BatchPolicy:
    """Derive a :class:`BatchPolicy` from a Figure 6 results artifact.

    Reads the optimized us/image column, applies the paper's §6.4
    diminishing-gains rule (:func:`repro.experiments.select_optimal_batch`),
    and uses the selected batch size as ``max_batch``.

    A missing or malformed artifact (fresh clone before
    ``python -m repro.experiments fig6`` regenerated it) falls back to the
    default :class:`BatchPolicy` with a warning instead of raising, so the
    service always starts.
    """
    from ..experiments import select_optimal_batch

    artifact = Path(path) if path is not None else _FIG6_PATH
    try:
        payload = json.loads(artifact.read_text())
        efficiencies = {int(row[0]): float(row[2]) for row in payload["rows"]}
        if not efficiencies:
            raise ValueError(f"no batch-efficiency rows in {artifact}")
        return BatchPolicy(max_batch=select_optimal_batch(efficiencies),
                           max_wait_ms=max_wait_ms)
    except (OSError, ValueError, KeyError, IndexError, TypeError) as exc:
        # OSError covers the missing file; the rest cover a malformed one
        # (bad JSON raises json.JSONDecodeError, a ValueError subclass).
        warnings.warn(
            f"could not derive BatchPolicy from {artifact} "
            f"({type(exc).__name__}: {exc}); falling back to the default "
            f"policy — regenerate with 'python -m repro.experiments fig6'",
            RuntimeWarning,
            stacklevel=2,
        )
        return BatchPolicy(max_wait_ms=max_wait_ms)
