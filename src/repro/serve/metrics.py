"""Metrics registry for the inference service.

Counters, gauges, and reservoir histograms, aggregated into a
:class:`ServiceMetrics` snapshot and rendered in the same fixed-width
table style as the ``repro.profiling`` Nsight reports, so service
telemetry and GPU profiles read as one family of artifacts.
"""

from __future__ import annotations

import threading
from collections import Counter as TallyCounter

import numpy as np

from ..profiling.report import rule

__all__ = ["Counter", "Gauge", "Histogram", "ServiceMetrics", "format_service_report"]


class Counter:
    """Monotonically increasing counter."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value (e.g. queue depth) tracking its high-water mark."""

    def __init__(self) -> None:
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._peak = max(self._peak, value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def peak(self) -> float:
        with self._lock:
            return self._peak


class Histogram:
    """Bounded-reservoir histogram with exact quantiles over the window.

    Keeps the most recent ``window`` observations in a ring buffer;
    quantiles are exact over that window rather than approximated over
    the full stream — the same trade nsys makes with its sampling buffer.
    """

    def __init__(self, window: int = 4096) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self._ring = np.zeros(window, dtype=np.float64)
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._ring[self._count % len(self._ring)] = value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _window(self) -> np.ndarray:
        return self._ring[: min(self._count, len(self._ring))]

    def quantile(self, q: float) -> float:
        with self._lock:
            win = self._window()
            return float(np.percentile(win, 100 * q)) if len(win) else 0.0

    def mean(self) -> float:
        with self._lock:
            win = self._window()
            return float(win.mean()) if len(win) else 0.0


class ServiceMetrics:
    """All service telemetry in one registry.

    ``snapshot()`` returns a JSON-safe dict (no NaN, no numpy scalars) so
    benchmark emitters and the CI artifact upload can serialize it as-is.
    """

    def __init__(self) -> None:
        self.submitted = Counter()
        self.completed = Counter()
        self.rejected = Counter()
        self.timeouts = Counter()
        self.cache_hits = Counter()
        self.cache_misses = Counter()
        self.worker_failures = Counter()
        self.worker_retries = Counter()
        self.degraded_served = Counter()
        self.degraded_rejected = Counter()
        self.invalid_inputs = Counter()
        self.scans = Counter()
        self.scan_tiles = Counter()
        # fleet supervision telemetry (supervised bulk scans only)
        self.scan_redispatches = Counter()
        self.scan_workers_killed = Counter()
        self.scan_worker_deaths = Counter()
        self.scan_poison_shards = Counter()
        self.scan_inline_shards = Counter()
        self.scan_deadline_expired = Counter()
        self.queue_depth = Gauge()
        self.warmup_ms = Gauge()
        self.latency_ms = Histogram()
        self.batch_latency_ms = Histogram()
        self._batch_sizes: TallyCounter[int] = TallyCounter()
        self._backend_results: TallyCounter[str] = TallyCounter()
        self._fallbacks: TallyCounter[str] = TallyCounter()
        self._breaker_state = "closed"
        self._breaker_transitions: TallyCounter[str] = TallyCounter()
        self._lock = threading.Lock()

    def record_supervision(self, report) -> None:
        """Fold one scan's :class:`~repro.fleet.SupervisionReport` into
        the fleet counters (no-op for unsupervised scans)."""
        if report is None:
            return
        self.scan_redispatches.inc(report.redispatches)
        self.scan_workers_killed.inc(report.deadline_kills)
        self.scan_worker_deaths.inc(report.worker_deaths)
        self.scan_poison_shards.inc(len(report.poison_shards))
        self.scan_inline_shards.inc(len(report.inline_shards))

    # -- circuit breaker telemetry --------------------------------------
    def record_breaker_transition(self, old: str, new: str) -> None:
        with self._lock:
            self._breaker_state = new
            self._breaker_transitions[f"{old}->{new}"] += 1

    @property
    def breaker_state(self) -> str:
        with self._lock:
            return self._breaker_state

    @property
    def breaker_transitions(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._breaker_transitions.items()))

    def record_backend(self, backend: str) -> None:
        """Tally one completed inference result per execution backend.

        Lets a single BENCH_serve.json A/B run show exactly how many
        results each backend (eager vs engine vs custom) produced.
        """
        with self._lock:
            self._backend_results[backend] += 1

    @property
    def completed_by_backend(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._backend_results.items()))

    def record_fallback(self, reason: str) -> None:
        """Tally one engine→eager fallback by its guard reason
        (non-finite output, shape mismatch, engine error, breaker open).
        Fed by :class:`repro.robust.GuardedEngine` when the service runs
        ``backend="engine"``."""
        with self._lock:
            self._fallbacks[reason] += 1

    @property
    def fallback_by_reason(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._fallbacks.items()))

    def observe_batch(self, size: int, latency_ms: float) -> None:
        with self._lock:
            self._batch_sizes[size] += 1
        self.batch_latency_ms.observe(latency_ms)

    @property
    def batch_size_histogram(self) -> dict[int, int]:
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def mean_batch_size(self) -> float:
        with self._lock:
            total = sum(self._batch_sizes.values())
            if not total:
                return 0.0
            return sum(s * n for s, n in self._batch_sizes.items()) / total

    def cache_hit_rate(self) -> float:
        # Read each counter exactly once: re-reading ``cache_hits`` for
        # the numerator could observe a later value than the one summed
        # into the denominator and report a rate above 1 under load.
        hits = self.cache_hits.value
        misses = self.cache_misses.value
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "submitted": self.submitted.value,
            "completed": self.completed.value,
            "rejected": self.rejected.value,
            "timeouts": self.timeouts.value,
            "cache_hits": self.cache_hits.value,
            "cache_misses": self.cache_misses.value,
            "cache_hit_rate": self.cache_hit_rate(),
            "worker_failures": self.worker_failures.value,
            "worker_retries": self.worker_retries.value,
            "degraded_served": self.degraded_served.value,
            "degraded_rejected": self.degraded_rejected.value,
            "invalid_inputs": self.invalid_inputs.value,
            "scans": self.scans.value,
            "scan_tiles": self.scan_tiles.value,
            "scan_redispatches": self.scan_redispatches.value,
            "scan_workers_killed": self.scan_workers_killed.value,
            "scan_worker_deaths": self.scan_worker_deaths.value,
            "scan_poison_shards": self.scan_poison_shards.value,
            "scan_inline_shards": self.scan_inline_shards.value,
            "scan_deadline_expired": self.scan_deadline_expired.value,
            "warmup_ms": self.warmup_ms.value,
            "fallback_by_reason": self.fallback_by_reason,
            "breaker_state": self.breaker_state,
            "breaker_transitions": self.breaker_transitions,
            "queue_depth": self.queue_depth.value,
            "queue_depth_peak": self.queue_depth.peak,
            "batch_size_histogram": {
                str(k): v for k, v in self.batch_size_histogram.items()
            },
            "mean_batch_size": self.mean_batch_size(),
            "completed_by_backend": self.completed_by_backend,
            "latency_ms": {
                "p50": self.latency_ms.quantile(0.50),
                "p95": self.latency_ms.quantile(0.95),
                "p99": self.latency_ms.quantile(0.99),
                "mean": self.latency_ms.mean(),
            },
        }


def format_service_report(metrics: ServiceMetrics, label: str = "serve") -> str:
    """Render service telemetry in the ``repro.profiling`` table style."""
    snap = metrics.snapshot()
    lat = snap["latency_ms"]
    lines = [
        f"Serving session: {label} | {snap['completed']} completed | "
        f"mean latency {lat['mean']:.3f} ms",
        "",
        "Request Statistics:",
        f"{'Submitted':>10}  {'Completed':>10}  {'Rejected':>9}  "
        f"{'Timeouts':>9}  {'Queue peak':>10}",
        rule(),
        f"{snap['submitted']:10d}  {snap['completed']:10d}  {snap['rejected']:9d}  "
        f"{snap['timeouts']:9d}  {snap['queue_depth_peak']:10.0f}",
        "",
        "Latency Statistics (ms):",
        f"{'p50':>9}  {'p95':>9}  {'p99':>9}  {'mean':>9}",
        rule(),
        f"{lat['p50']:9.3f}  {lat['p95']:9.3f}  {lat['p99']:9.3f}  {lat['mean']:9.3f}",
        "",
        "Batch Statistics:",
        f"{'Batch size':>10}  {'Dispatches':>10}",
        rule(),
    ]
    for size, count in metrics.batch_size_histogram.items():
        lines.append(f"{size:10d}  {count:10d}")
    if not metrics.batch_size_histogram:
        lines.append(f"{'-':>10}  {0:10d}")
    lines += [
        "",
        "Cache Statistics:",
        f"{'Hits':>9}  {'Misses':>9}  {'Hit rate':>9}",
        rule(),
        f"{snap['cache_hits']:9d}  {snap['cache_misses']:9d}  "
        f"{100 * snap['cache_hit_rate']:8.1f}%",
        "",
        "Resilience Statistics:",
        f"{'Failures':>9}  {'Retries':>9}  {'Degraded':>9}  "
        f"{'Deg.rej':>9}  {'Breaker':>9}",
        rule(),
        f"{snap['worker_failures']:9d}  {snap['worker_retries']:9d}  "
        f"{snap['degraded_served']:9d}  {snap['degraded_rejected']:9d}  "
        f"{snap['breaker_state']:>9}",
        "",
        "Robustness Statistics:",
        f"{'Invalid':>9}  {'Fallbacks':>9}",
        rule(),
        f"{snap['invalid_inputs']:9d}  "
        f"{sum(snap['fallback_by_reason'].values()):9d}",
    ]
    for reason, count in snap["fallback_by_reason"].items():
        lines.append(f"  engine->eager [{reason}]: {count}")
    return "\n".join(lines)
