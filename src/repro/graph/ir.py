"""Computation-graph intermediate representation.

A :class:`Graph` is a DAG of :class:`Operator` nodes with *per-sample*
output shapes (the batch dimension is supplied at execution time, mirroring
how IOS re-optimizes a schedule per batch size).  The IR is deliberately
small: it carries exactly the information the IOS dynamic program and the
GPU cost model need — operator category, tensor shapes, and dependency
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping

__all__ = ["OpType", "Operator", "Graph", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed graph construction or validation failures."""


class OpType(str, Enum):
    """Operator categories understood by the cost model and profiler."""

    INPUT = "input"
    CONV2D = "conv2d"
    RELU = "relu"
    MAXPOOL = "maxpool"
    ADAPTIVE_MAXPOOL = "adaptive_maxpool"
    FLATTEN = "flatten"
    CONCAT = "concat"
    LINEAR = "linear"
    SOFTMAX = "softmax"
    SIGMOID = "sigmoid"
    ADD = "add"
    IDENTITY = "identity"


@dataclass(frozen=True)
class Operator:
    """One node of the computation graph.

    Attributes
    ----------
    name : unique node identifier within its graph.
    op_type : operator category (drives the cost model).
    inputs : names of producer nodes, in argument order.
    out_shape : per-sample output shape, e.g. ``(C, H, W)`` or ``(F,)``.
    attrs : static attributes (kernel, stride, in_channels, features, ...).
    """

    name: str
    op_type: OpType
    inputs: tuple[str, ...] = ()
    out_shape: tuple[int, ...] = ()
    attrs: Mapping[str, object] = field(default_factory=dict)

    def attr(self, key: str, default=None):
        return self.attrs.get(key, default)

    @property
    def out_elems(self) -> int:
        """Number of scalar outputs per sample."""
        n = 1
        for d in self.out_shape:
            n *= d
        return n


class Graph:
    """A DAG of operators with shape-checked edges.

    Nodes are appended with :meth:`add`; producers must exist before
    consumers, so insertion order is already a topological order (this is
    asserted by :meth:`validate`).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[str, Operator] = {}
        self._order: list[str] = []

    # -- construction ----------------------------------------------------
    def add(self, op: Operator) -> Operator:
        if op.name in self._nodes:
            raise GraphError(f"duplicate node name {op.name!r}")
        for dep in op.inputs:
            if dep not in self._nodes:
                raise GraphError(f"node {op.name!r} depends on unknown node {dep!r}")
        self._nodes[op.name] = op
        self._order.append(op.name)
        return op

    # -- accessors ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, name: str) -> Operator:
        return self._nodes[name]

    def nodes(self) -> Iterator[Operator]:
        """Iterate operators in insertion (topological) order."""
        return (self._nodes[n] for n in self._order)

    def names(self) -> list[str]:
        return list(self._order)

    def predecessors(self, name: str) -> tuple[str, ...]:
        return self._nodes[name].inputs

    def successors(self, name: str) -> list[str]:
        return [n for n in self._order if name in self._nodes[n].inputs]

    def successor_map(self) -> dict[str, list[str]]:
        """All successor lists in one pass (preferred for hot loops)."""
        succ: dict[str, list[str]] = {n: [] for n in self._order}
        for n in self._order:
            for dep in self._nodes[n].inputs:
                succ[dep].append(n)
        return succ

    def input_nodes(self) -> list[Operator]:
        return [op for op in self.nodes() if op.op_type is OpType.INPUT]

    def output_nodes(self) -> list[Operator]:
        succ = self.successor_map()
        return [op for op in self.nodes() if not succ[op.name]]

    def compute_nodes(self) -> list[Operator]:
        """All non-INPUT operators in topological order (what gets scheduled)."""
        return [op for op in self.nodes() if op.op_type is not OpType.INPUT]

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        """Check DAG well-formedness; raises :class:`GraphError` on failure."""
        if not self._nodes:
            raise GraphError("empty graph")
        seen: set[str] = set()
        for name in self._order:
            op = self._nodes[name]
            for dep in op.inputs:
                if dep not in seen:
                    raise GraphError(f"node {name!r} used before its input {dep!r}")
            seen.add(name)
        if not self.input_nodes():
            raise GraphError("graph has no INPUT node")
        # Every non-input node must be reachable from an input.
        reachable = {op.name for op in self.input_nodes()}
        for name in self._order:
            op = self._nodes[name]
            if op.op_type is OpType.INPUT:
                continue
            if not op.inputs:
                raise GraphError(f"non-input node {name!r} has no inputs")
            if any(dep in reachable for dep in op.inputs):
                reachable.add(name)
        unreachable = set(self._order) - reachable
        if unreachable:
            raise GraphError(f"nodes unreachable from inputs: {sorted(unreachable)}")

    # -- analysis helpers ----------------------------------------------------
    def ancestors(self, name: str) -> set[str]:
        out: set[str] = set()
        stack = list(self._nodes[name].inputs)
        while stack:
            cur = stack.pop()
            if cur in out:
                continue
            out.add(cur)
            stack.extend(self._nodes[cur].inputs)
        return out

    def max_antichain_upper_bound(self) -> int:
        """Cheap upper bound on graph width (used to sanity-check DP cost)."""
        succ = self.successor_map()
        return max(
            sum(1 for n in self._order if not succ[n]),
            max((len(succ[n]) for n in self._order), default=1),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, {len(self)} nodes)"
