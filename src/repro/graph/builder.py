"""Lower an :class:`~repro.arch.SPPNetConfig` to the computation-graph IR.

The SPP layer becomes the branched block the Inter-Operator Scheduler
exists for: one ``ADAPTIVE_MAXPOOL`` branch per pyramid level, converging
on a ``CONCAT``.  The detection head contributes a second (smaller)
branched region: the classifier and box-regressor linears both consume the
last FC feature.
"""

from __future__ import annotations

from ..arch import SPPNetConfig
from .ir import Graph, GraphError, Operator, OpType

__all__ = ["build_sppnet_graph", "build_inception_graph"]


def build_sppnet_graph(
    config: SPPNetConfig,
    input_size: int = 100,
    num_classes: int = 2,
    box_outputs: int = 4,
    include_head: bool = True,
) -> Graph:
    """Build the inference graph of one SPP-Net candidate.

    Parameters
    ----------
    config : architecture hyper-parameters (Table 1 grammar).
    input_size : square chip size in pixels (paper: 100).
    num_classes : classifier outputs (crossing / background).
    box_outputs : bbox regression outputs (cx, cy, w, h).
    include_head : when False, stop at the last FC feature (useful for
        scheduling experiments on the backbone alone).
    """
    g = Graph(name=config.name)
    g.add(Operator("input", OpType.INPUT, out_shape=(config.in_channels, input_size, input_size)))

    prev = "input"
    channels = config.in_channels
    size = input_size
    for i, (conv, pool) in enumerate(zip(config.convs, config.pools), start=1):
        out_size = (size - conv.kernel) // conv.stride + 1
        if out_size <= 0:
            raise GraphError(f"input {input_size} collapses at conv{i} of {config.name}")
        g.add(Operator(
            f"conv{i}", OpType.CONV2D, (prev,), (conv.filters, out_size, out_size),
            attrs={"in_channels": channels, "kernel": conv.kernel, "stride": conv.stride,
                   "in_size": size},
        ))
        g.add(Operator(f"relu{i}", OpType.RELU, (f"conv{i}",),
                       (conv.filters, out_size, out_size)))
        size = out_size
        pooled = (size - pool.kernel) // pool.stride + 1
        if pooled <= 0:
            raise GraphError(f"input {input_size} collapses at pool{i} of {config.name}")
        g.add(Operator(
            f"pool{i}", OpType.MAXPOOL, (f"relu{i}",), (conv.filters, pooled, pooled),
            attrs={"kernel": pool.kernel, "stride": pool.stride, "in_size": size},
        ))
        prev = f"pool{i}"
        channels = conv.filters
        size = pooled

    if size < max(config.spp_levels):
        raise GraphError(
            f"trunk output {size}x{size} too small for SPP level {max(config.spp_levels)}"
        )

    # SPP block: one adaptive-max-pool branch per pyramid level.
    branch_names = []
    for level in config.spp_levels:
        name = f"spp{level}"
        g.add(Operator(
            name, OpType.ADAPTIVE_MAXPOOL, (prev,), (channels, level, level),
            attrs={"output_size": level, "in_size": size, "in_channels": channels},
        ))
        branch_names.append(name)
    spp_features = config.spp_features
    g.add(Operator("spp_concat", OpType.CONCAT, tuple(branch_names), (spp_features,)))

    prev = "spp_concat"
    in_features = spp_features
    for j, width in enumerate(config.fc_sizes, start=1):
        g.add(Operator(f"fc{j}", OpType.LINEAR, (prev,), (width,),
                       attrs={"in_features": in_features}))
        g.add(Operator(f"fc{j}_relu", OpType.RELU, (f"fc{j}",), (width,)))
        prev = f"fc{j}_relu"
        in_features = width

    if include_head:
        # Classification and box regression heads branch from the same feature.
        g.add(Operator("cls_head", OpType.LINEAR, (prev,), (num_classes,),
                       attrs={"in_features": in_features}))
        g.add(Operator("box_head", OpType.LINEAR, (prev,), (box_outputs,),
                       attrs={"in_features": in_features}))
        g.add(Operator("cls_softmax", OpType.SOFTMAX, ("cls_head",), (num_classes,)))

    g.validate()
    return g


def build_inception_graph(
    branches: int = 4,
    depth: int = 2,
    channels: int = 64,
    in_channels: int = 512,
    size: int = 8,
    name: str = "inception-block",
) -> Graph:
    """A synthetic Inception-style block: ``branches`` parallel conv chains
    of ``depth`` between one input and one concat.

    This is the scheduler-ablation workload: at batch 1 the small per-branch
    convolutions are occupancy-limited, so the IOS DP should place the
    branches in parallel groups and strictly beat both the sequential and
    the single-stage schedules.
    """
    if branches < 2 or depth < 1:
        raise GraphError("need >= 2 branches of depth >= 1")
    g = Graph(name=name)
    g.add(Operator("input", OpType.INPUT, out_shape=(in_channels, size, size)))
    tails: list[str] = []
    for b in range(branches):
        prev = "input"
        prev_channels = in_channels
        for d in range(depth):
            node = f"b{b}_conv{d}"
            g.add(Operator(
                node, OpType.CONV2D, (prev,), (channels, size, size),
                attrs={"in_channels": prev_channels, "kernel": 3, "stride": 1,
                       "in_size": size + 2},  # padded 'same' convolution
            ))
            relu = f"b{b}_relu{d}"
            g.add(Operator(relu, OpType.RELU, (node,), (channels, size, size)))
            prev = relu
            prev_channels = channels
        tails.append(prev)
    g.add(Operator("concat", OpType.CONCAT, tuple(tails),
                   (branches * channels, size, size)))
    g.validate()
    return g
