"""repro.graph — computation-graph IR, builder, and static analysis."""

from .analysis import OpCost, activation_bytes, graph_bytes, graph_flops, op_cost, weight_bytes
from .builder import build_inception_graph, build_sppnet_graph
from .ir import Graph, GraphError, Operator, OpType

__all__ = [
    "Graph",
    "GraphError",
    "Operator",
    "OpType",
    "build_sppnet_graph",
    "build_inception_graph",
    "OpCost",
    "op_cost",
    "graph_flops",
    "graph_bytes",
    "weight_bytes",
    "activation_bytes",
]
