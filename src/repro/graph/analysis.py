"""Static analysis of IR operators: FLOPs, DRAM traffic, and footprints.

These quantities feed the roofline cost model in :mod:`repro.gpusim`.
All counts are *per execution at a given batch size*; weights are counted
once per kernel invocation (a GEMM streams its weight matrix regardless of
batch, which is exactly why fully-connected layers dominate small-batch
inference — Table 3's 41.6% matmul share at batch 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import Graph, Operator, OpType

__all__ = ["OpCost", "op_cost", "graph_flops", "graph_bytes", "weight_bytes", "activation_bytes"]

_DTYPE_BYTES = 4  # fp32 inference throughout, matching the paper's setup


@dataclass(frozen=True)
class OpCost:
    """Resource requirements of one operator execution.

    flops : floating point operations (multiply-adds counted as 2).
    dram_bytes : bytes moved to/from device memory (inputs + weights + outputs).
    threads : degree of data parallelism (one thread per output element).
    weight_bytes : parameter bytes the kernel must stream (subset of dram_bytes).
    """

    flops: float
    dram_bytes: float
    threads: int
    weight_bytes: float = 0.0


def _in_elems(graph: Graph, op: Operator) -> int:
    total = 0
    for dep in op.inputs:
        total += graph[dep].out_elems
    return total


def op_cost(graph: Graph, op: Operator, batch: int) -> OpCost:
    """Compute the :class:`OpCost` of ``op`` at ``batch`` samples."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    b = batch
    out = op.out_elems

    if op.op_type is OpType.INPUT:
        return OpCost(0.0, 0.0, 0)

    if op.op_type is OpType.CONV2D:
        c_in = int(op.attr("in_channels"))
        k = int(op.attr("kernel"))
        f, ho, wo = op.out_shape
        macs = b * ho * wo * f * c_in * k * k
        w_bytes = f * c_in * k * k * _DTYPE_BYTES
        io_bytes = (b * _in_elems(graph, op) + b * out) * _DTYPE_BYTES
        return OpCost(2.0 * macs, io_bytes + w_bytes, b * out, w_bytes)

    if op.op_type is OpType.LINEAR:
        f_in = int(op.attr("in_features"))
        f_out = out
        macs = b * f_in * f_out
        w_bytes = (f_in * f_out + f_out) * _DTYPE_BYTES
        io_bytes = (b * f_in + b * f_out) * _DTYPE_BYTES
        return OpCost(2.0 * macs, io_bytes + w_bytes, b * f_out, w_bytes)

    if op.op_type is OpType.MAXPOOL:
        k = int(op.attr("kernel"))
        compares = b * out * k * k
        io_bytes = (b * _in_elems(graph, op) + b * out) * _DTYPE_BYTES
        return OpCost(float(compares), io_bytes, b * out)

    if op.op_type is OpType.ADAPTIVE_MAXPOOL:
        in_size = int(op.attr("in_size"))
        n = int(op.attr("output_size"))
        # Each output bin scans roughly (in/n)^2 elements.
        region = max(1, in_size // n) ** 2
        compares = b * out * region
        io_bytes = (b * _in_elems(graph, op) + b * out) * _DTYPE_BYTES
        return OpCost(float(compares), io_bytes, b * out)

    if op.op_type in (OpType.RELU, OpType.IDENTITY, OpType.FLATTEN):
        io_bytes = 2 * b * out * _DTYPE_BYTES
        return OpCost(float(b * out), io_bytes, b * out)

    if op.op_type is OpType.CONCAT:
        io_bytes = 2 * b * out * _DTYPE_BYTES
        return OpCost(0.0, io_bytes, b * out)

    if op.op_type is OpType.SOFTMAX:
        io_bytes = 2 * b * out * _DTYPE_BYTES
        return OpCost(5.0 * b * out, io_bytes, b * out)

    if op.op_type is OpType.SIGMOID:
        io_bytes = 2 * b * out * _DTYPE_BYTES
        return OpCost(4.0 * b * out, io_bytes, b * out)

    if op.op_type is OpType.ADD:
        io_bytes = 3 * b * out * _DTYPE_BYTES
        return OpCost(float(b * out), io_bytes, b * out)

    raise ValueError(f"no cost model for op type {op.op_type}")  # pragma: no cover


def graph_flops(graph: Graph, batch: int) -> float:
    """Total FLOPs of one forward execution."""
    return sum(op_cost(graph, op, batch).flops for op in graph.nodes())


def graph_bytes(graph: Graph, batch: int) -> float:
    """Total DRAM traffic of one forward execution."""
    return sum(op_cost(graph, op, batch).dram_bytes for op in graph.nodes())


def weight_bytes(graph: Graph) -> float:
    """Total parameter bytes resident on the device."""
    return sum(op_cost(graph, op, 1).weight_bytes for op in graph.nodes())


def activation_bytes(graph: Graph, batch: int) -> float:
    """Peak-ish activation memory: sum of all live per-op outputs.

    A conservative (upper-bound) estimate: every intermediate output held
    simultaneously.  Used for the Figure 7 "far below 24 GB" check.
    """
    return sum(batch * op.out_elems * _DTYPE_BYTES for op in graph.compute_nodes())
