"""SPP-Net architecture grammar (Table 1 of the paper).

The paper describes each candidate with a compact grammar::

    C_{64,3,1} - P_{2,2} - C_{128,3,1} - P_{2,2} - C_{256,3,1} - P_{2,2}
        - SPP_{4,2,1} - F_{1024}

``C`` = convolution (number of filters, filter size, stride — the caption's
subscript order is normalized here to match §4.2, where the first-conv
*filter size* is the mutated quantity: 1/3/5/7/9), ``P`` = max pooling
(filter size, stride), ``SPP`` = spatial pyramid pooling (pyramid levels),
``F`` = fully-connected width.  This module is a dependency-free leaf so
both the trainable model builder (:mod:`repro.detect.sppnet`) and the IR
builder (:mod:`repro.graph.builder`) can share it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

__all__ = [
    "ConvSpec",
    "PoolSpec",
    "SPPNetConfig",
    "parse_grammar",
    "TABLE1_MODELS",
    "TABLE1_PAPER_AP",
    "TABLE2_PAPER_LATENCY_MS",
]


@dataclass(frozen=True)
class ConvSpec:
    """One convolution layer: ``filters`` output channels, square ``kernel``."""

    filters: int
    kernel: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.filters < 1 or self.kernel < 1 or self.stride < 1:
            raise ValueError(f"invalid conv spec {self}")

    def grammar(self) -> str:
        return f"C_{{{self.filters},{self.kernel},{self.stride}}}"


@dataclass(frozen=True)
class PoolSpec:
    """One max-pooling layer: square ``kernel`` and ``stride``."""

    kernel: int
    stride: int

    def __post_init__(self) -> None:
        if self.kernel < 1 or self.stride < 1:
            raise ValueError(f"invalid pool spec {self}")

    def grammar(self) -> str:
        return f"P_{{{self.kernel},{self.stride}}}"


@dataclass(frozen=True)
class SPPNetConfig:
    """Full hyper-parameter configuration of one SPP-Net candidate.

    Attributes
    ----------
    convs / pools : alternating feature-engineering trunk (conv then pool).
    spp_levels : pyramid levels of the SPP layer, finest first.
    fc_sizes : widths of the fully-connected layers before the output heads.
    in_channels : input bands (4 for NAIP R,G,B,NIR chips).
    name : optional display name.
    """

    convs: tuple[ConvSpec, ...] = (
        ConvSpec(64, 3, 1),
        ConvSpec(128, 3, 1),
        ConvSpec(256, 3, 1),
    )
    pools: tuple[PoolSpec, ...] = (PoolSpec(2, 2), PoolSpec(2, 2), PoolSpec(2, 2))
    spp_levels: tuple[int, ...] = (4, 2, 1)
    fc_sizes: tuple[int, ...] = (1024,)
    in_channels: int = 4
    name: str = "SPP-Net"
    #: Extension axis (not in Table 1): insert BatchNorm after each conv.
    #: Inference latency is unaffected — BN folds into the preceding
    #: convolution's weights at deployment (standard constant folding), so
    #: the IR builder intentionally ignores this flag.
    use_batchnorm: bool = False

    def __post_init__(self) -> None:
        if len(self.convs) != len(self.pools):
            raise ValueError("convs and pools must alternate one-to-one")
        if not self.spp_levels or any(lv < 1 for lv in self.spp_levels):
            raise ValueError(f"invalid SPP levels {self.spp_levels}")
        if len(set(self.spp_levels)) != len(self.spp_levels):
            raise ValueError("SPP pyramid levels must be distinct")
        if not self.fc_sizes or any(s < 1 for s in self.fc_sizes):
            raise ValueError(f"invalid fc sizes {self.fc_sizes}")
        if self.in_channels < 1:
            raise ValueError("in_channels must be >= 1")

    # -- derived quantities ----------------------------------------------
    @property
    def trunk_out_channels(self) -> int:
        return self.convs[-1].filters

    @property
    def spp_features(self) -> int:
        """Fixed SPP output length: C * sum(level^2)."""
        return self.trunk_out_channels * sum(lv * lv for lv in self.spp_levels)

    def trunk_spatial_size(self, input_size: int) -> int:
        """Spatial size of the final feature map for a square input."""
        size = input_size
        for conv, pool in zip(self.convs, self.pools):
            size = (size - conv.kernel) // conv.stride + 1
            if size <= 0:
                raise ValueError(f"input {input_size} collapses at conv {conv}")
            size = (size - pool.kernel) // pool.stride + 1
            if size <= 0:
                raise ValueError(f"input {input_size} collapses at pool {pool}")
        return size

    def min_input_size(self) -> int:
        """Smallest square input for which the SPP layer is well defined."""
        need = max(self.spp_levels)
        lo, hi = 1, 4096
        while lo < hi:
            mid = (lo + hi) // 2
            try:
                ok = self.trunk_spatial_size(mid) >= need
            except ValueError:
                ok = False
            if ok:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def grammar(self) -> str:
        """Render the Table 1 grammar string for this configuration."""
        parts: list[str] = []
        for conv, pool in zip(self.convs, self.pools):
            parts.append(conv.grammar())
            parts.append(pool.grammar())
        parts.append("SPP_{" + ",".join(str(lv) for lv in self.spp_levels) + "}")
        parts.extend(f"F_{{{s}}}" for s in self.fc_sizes)
        return " - ".join(parts)

    def with_name(self, name: str) -> "SPPNetConfig":
        return replace(self, name=name)


_TOKEN = re.compile(r"(C|P|SPP|F)_\{([0-9,\s]+)\}")


def parse_grammar(text: str, in_channels: int = 4, name: str = "SPP-Net") -> SPPNetConfig:
    """Parse a Table 1 grammar string into an :class:`SPPNetConfig`.

    Accepts e.g.
    ``"C_{64,3,1}-P_{2,2}-C_{128,3,1}-P_{2,2}-C_{256,3,1}-P_{2,2}-SPP_{4,2,1}-F_{1024}"``.
    """
    convs: list[ConvSpec] = []
    pools: list[PoolSpec] = []
    spp: tuple[int, ...] | None = None
    fcs: list[int] = []
    matches = list(_TOKEN.finditer(text))
    if not matches:
        raise ValueError(f"no grammar tokens found in {text!r}")
    for m in matches:
        kind, args_text = m.group(1), m.group(2)
        args = tuple(int(a) for a in args_text.replace(" ", "").split(","))
        if kind == "C":
            if len(args) != 3:
                raise ValueError(f"C expects 3 args, got {args}")
            convs.append(ConvSpec(filters=args[0], kernel=args[1], stride=args[2]))
        elif kind == "P":
            if len(args) != 2:
                raise ValueError(f"P expects 2 args, got {args}")
            pools.append(PoolSpec(kernel=args[0], stride=args[1]))
        elif kind == "SPP":
            spp = args
        elif kind == "F":
            fcs.extend(args)
    if spp is None:
        raise ValueError("grammar must contain an SPP layer")
    return SPPNetConfig(
        convs=tuple(convs),
        pools=tuple(pools),
        spp_levels=spp,
        fc_sizes=tuple(fcs),
        in_channels=in_channels,
        name=name,
    )


def _table1(first_kernel: int, spp_first: int, fc: int, name: str) -> SPPNetConfig:
    return SPPNetConfig(
        convs=(ConvSpec(64, first_kernel, 1), ConvSpec(128, 3, 1), ConvSpec(256, 3, 1)),
        pools=(PoolSpec(2, 2), PoolSpec(2, 2), PoolSpec(2, 2)),
        spp_levels=(spp_first, 2, 1),
        fc_sizes=(fc,),
        name=name,
    )


#: The four candidate models of Table 1, keyed by the paper's row names.
TABLE1_MODELS: dict[str, SPPNetConfig] = {
    "Original SPP-Net": _table1(3, 4, 1024, "Original SPP-Net"),
    "SPP-Net #1": _table1(5, 4, 1024, "SPP-Net #1"),
    "SPP-Net #2": _table1(3, 5, 4096, "SPP-Net #2"),
    "SPP-Net #3": _table1(3, 5, 2048, "SPP-Net #3"),
}

#: Average precision reported in Table 1 (for EXPERIMENTS.md comparison).
TABLE1_PAPER_AP: dict[str, float] = {
    "Original SPP-Net": 0.9500,
    "SPP-Net #1": 0.9610,
    "SPP-Net #2": 0.9670,
    "SPP-Net #3": 0.9740,
}

#: (sequential, IOS-optimized) latency in ms reported in Table 2, batch 1.
TABLE2_PAPER_LATENCY_MS: dict[str, tuple[float, float]] = {
    "Original SPP-Net": (0.512, 0.268),
    "SPP-Net #1": (0.419, 0.379),
    "SPP-Net #2": (0.295, 0.236),
    "SPP-Net #3": (0.562, 0.427),
}
