"""Full-scene crossing detection: sliding window + NMS.

The chips of §3.2 are a training convenience; deployment means finding
*all* crossings in a watershed image.  :func:`scan_scene` slides the
trained detector over the scene (SPP would accept the whole scene in one
pass, but windowing keeps localization within the box head's trained
operating range), collects per-window detections, and merges them with
non-maximum suppression.  :func:`evaluate_scene_detections` scores the
result against ground-truth crossing locations by center distance — the
operational metric a hydrologist cares about (is the breach applied at
the right cell?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..geo.crossings import Crossing
from ..geo.scene import Scene
from .predict import predict
from .sppnet import SPPNetDetector

if TYPE_CHECKING:
    from ..serve import InferenceService

__all__ = ["SceneDetection", "SceneDetectionScores", "scan_origins",
           "non_max_suppression", "scan_scene", "evaluate_scene_detections"]


@dataclass(frozen=True)
class SceneDetection:
    """One detected crossing in scene coordinates."""

    row: float
    col: float
    height: float
    width: float
    confidence: float

    @property
    def center(self) -> tuple[int, int]:
        return (int(round(self.row)), int(round(self.col)))


def non_max_suppression(detections: list[SceneDetection],
                        radius: float = 20.0) -> list[SceneDetection]:
    """Greedy NMS by center distance: keep the most confident detection,
    drop any lower-confidence detection within ``radius`` cells of a kept
    one."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    kept: list[SceneDetection] = []
    for det in sorted(detections, key=lambda d: -d.confidence):
        if all((det.row - k.row) ** 2 + (det.col - k.col) ** 2 > radius**2
               for k in kept):
            kept.append(det)
    return kept


def scan_origins(size: int, window: int, stride: int) -> list[tuple[int, int]]:
    """Window origins covering a ``size``-by-``size`` scene completely.

    A final origin at ``size - window`` is always included so coverage
    reaches the scene edge even when ``size - window`` is not a multiple
    of ``stride``.
    """
    if window > size:
        raise ValueError(f"window {window} exceeds scene size {size}")
    if stride < 1:
        raise ValueError("stride must be >= 1")
    starts = list(range(0, size - window, stride)) + [size - window]
    return [(r, c) for r in starts for c in starts]


def scan_scene(
    model: SPPNetDetector,
    scene: Scene,
    window: int = 100,
    stride: int = 50,
    confidence_threshold: float = 0.7,
    nms_radius: float = 20.0,
    batch_size: int = 20,
    service: "InferenceService | None" = None,
    backend: str = "eager",
) -> list[SceneDetection]:
    """Detect crossings across a whole scene.

    Overlapping windows (default 50% overlap) guarantee every crossing is
    near the center of at least one window; the per-window box regression
    is mapped back to scene coordinates before NMS.  The confidence
    threshold defaults to 0.7 like the related-work faster-R-CNN baseline.

    With a ``service`` (:class:`repro.serve.InferenceService`), windows
    are submitted as individual requests instead of one local ``predict``
    call — the service micro-batches them, repeat tiles hit its LRU
    cache, and concurrent scans share the same worker pool.  The
    service's own backend applies there; ``backend`` selects the local
    path's execution (``"engine"`` = compiled inference engine).
    """
    n = scene.size
    origins = scan_origins(n, window, stride)
    tiles = np.stack([
        scene.image[:, r:r + window, c:c + window] for r, c in origins
    ]).astype(np.float32)

    if service is not None:
        results = [f.result() for f in service.submit_many(tiles)]
        confidences = np.array([r.confidence for r in results])
        boxes = np.stack([r.box for r in results])
    else:
        confidences, boxes = predict(model, tiles, batch_size=batch_size,
                                     backend=backend)
    detections: list[SceneDetection] = []
    for (r0, c0), conf, box in zip(origins, confidences, boxes):
        if conf < confidence_threshold:
            continue
        cx, cy, w, h = box
        detections.append(SceneDetection(
            row=r0 + cy * window,
            col=c0 + cx * window,
            height=h * window,
            width=w * window,
            confidence=float(conf),
        ))
    return non_max_suppression(detections, radius=nms_radius)


@dataclass(frozen=True)
class SceneDetectionScores:
    """Center-distance matching of detections vs ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    mean_center_error: float

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def evaluate_scene_detections(
    detections: list[SceneDetection],
    ground_truth: list[Crossing],
    match_radius: float = 15.0,
) -> SceneDetectionScores:
    """Greedy one-to-one matching by center distance (confident first).

    ``mean_center_error`` is ``0.0`` when there are no matches: the JSON
    spec has no NaN literal, so serialized score artifacts must never
    contain one — check ``true_positives`` to distinguish "no matches"
    from "perfect centering".
    """
    unmatched = list(ground_truth)
    tp = 0
    errors: list[float] = []
    for det in sorted(detections, key=lambda d: -d.confidence):
        best_i, best_d = -1, match_radius
        for i, gt in enumerate(unmatched):
            d = np.hypot(det.row - gt.row, det.col - gt.col)
            if d <= best_d:
                best_i, best_d = i, d
        if best_i >= 0:
            tp += 1
            errors.append(best_d)
            unmatched.pop(best_i)
    return SceneDetectionScores(
        true_positives=tp,
        false_positives=len(detections) - tp,
        false_negatives=len(unmatched),
        mean_center_error=float(np.mean(errors)) if errors else 0.0,
    )
